"""Legacy-compatibility setup shim.

All project metadata — name, version, dependencies, the ``repro`` console
script, package discovery under ``src/`` — lives in ``pyproject.toml``.
This file carries none of it and exists only so that ``pip install -e .``
can fall back to a legacy (``setup.py develop``) editable install on
toolchains that cannot build PEP 660 editable wheels, e.g. offline
environments whose ``pip``/``setuptools`` predate editable-wheel support or
lack the ``wheel`` distribution.  Do not add configuration here; edit
``pyproject.toml`` instead.
"""

from setuptools import setup

setup()
