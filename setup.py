"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` can fall back to a legacy editable install when
PEP 660 editable wheels cannot be built (offline environments without the
``wheel`` distribution).
"""

from setuptools import setup

setup()
