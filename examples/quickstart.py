"""Quickstart: deconvolve a synthetic population expression time course.

This example walks through the whole pipeline on a small synthetic gene:

1. build the population volume-density kernel ``Q(phi, t)`` by Monte-Carlo
   simulation of an initially synchronous Caulobacter culture;
2. push a known single-cell profile through the forward model to obtain
   population-level measurements (plus measurement noise);
3. deconvolve the population data back into a synchronous profile;
4. compare the estimate against the known truth.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CellCycleParameters,
    Deconvolver,
    GaussianMagnitudeNoise,
    KernelBuilder,
    ftsz_like_profile,
)
from repro.analysis.metrics import nrmse, pearson_correlation
from repro.experiments.reporting import format_series, format_table


def main() -> None:
    parameters = CellCycleParameters()  # the paper's Caulobacter values
    times = np.linspace(0.0, 150.0, 16)  # one average cell cycle, 16 samples

    print("Building the population kernel Q(phi, t) ...")
    kernel = KernelBuilder(parameters, num_cells=8000, phase_bins=80).build(times, rng=0)

    # A known "single cell" profile: delayed onset, mid-cycle peak.
    truth = ftsz_like_profile(onset=parameters.mu_sst, peak=0.4, amplitude=10.0)

    # Forward model: what a microarray on the whole culture would measure.
    clean = kernel.apply_function(truth)
    noise = GaussianMagnitudeNoise(0.05)
    population = noise.apply(clean, rng=1)
    sigma = noise.standard_deviations(clean)
    print(format_series("population measurements", times, population,
                        x_label="minutes", y_label="expression"))

    print("\nDeconvolving ...")
    deconvolver = Deconvolver(kernel, parameters=parameters, num_basis=14)
    result = deconvolver.fit(times, population, sigma=sigma)
    print(result.summary())

    phases = np.linspace(0.0, 1.0, 11)
    print(format_table(
        ["phase", "true f(phi)", "deconvolved f(phi)"],
        [[phi, truth(phi), result.profile(phi)] for phi in phases],
    ))

    dense = np.linspace(0.0, 1.0, 201)
    print(f"\nNRMSE vs truth       : {nrmse(result.profile(dense), truth(dense)):.3f}")
    print(f"correlation vs truth : {pearson_correlation(result.profile(dense), truth(dense)):.3f}")


if __name__ == "__main__":
    main()
