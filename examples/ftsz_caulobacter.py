"""Reproduce the paper's Figure 5: ftsZ expression in Caulobacter.

Deconvolves the synthetic stand-in for the McGrath et al. (2007) ftsZ
population time course and reports the two features the paper highlights:
the transcription delay before the swarmer-to-stalked transition (visible only
after deconvolution) and the post-peak drop with no subsequent increase.

Run with:  python examples/ftsz_caulobacter.py
"""

from repro.experiments.figure5 import run_ftsz_experiment
from repro.experiments.reporting import format_series, format_table


def main() -> None:
    print("Running the ftsZ deconvolution experiment ...")
    result = run_ftsz_experiment(noise_fraction=0.05, num_times=16, num_cells=10_000, rng=2011)

    series = result.dataset.series
    print(format_series("population ftsZ expression", series.times, series.values,
                        x_label="minutes", y_label="expression"))
    times, values = result.result.profile_vs_time(21)
    print(format_series("deconvolved ftsZ expression", times, values,
                        x_label="simulated minutes", y_label="expression"))

    print()
    print(format_table(
        ["feature", "population", "deconvolved", "ground truth"],
        [
            ["onset phase", result.population_onset_phase, result.deconvolved_onset_phase,
             result.true_onset_phase],
            ["post-peak drop", result.population_post_peak_drop,
             result.deconvolved_post_peak_drop, "-"],
        ],
    ))
    print(f"deconvolved peak phase             : {result.deconvolved_peak_phase:.3f}")
    print(f"post-peak increase in deconvolved? : {result.deconvolved_has_post_peak_increase}")
    print(f"population still rising late?      : {result.population_final_trend_up}")
    print(f"NRMSE of deconvolved vs truth      : {result.comparison.nrmse:.3f}")
    print()
    print("The transcription delay (near-zero expression before the SW-to-ST")
    print("transition) and the post-maximum drop are resolved only in the")
    print("deconvolved profile, as in the paper's Figure 5.")


if __name__ == "__main__":
    main()
