"""Reproduce the paper's Figure 4: cell-type distribution in a batch culture.

Simulates the time-dependent fractions of swarmer (SW), early stalked (STE),
early predivisional (STEPD) and late predivisional (STLPD) cells in an
initially synchronised culture and compares them to the reference distribution
encoded from Judd et al. (2003).

Run with:  python examples/celltype_distribution.py
"""

from repro.cellcycle.celltypes import CellType
from repro.experiments.figure4 import run_celltype_experiment
from repro.experiments.reporting import format_table


def main() -> None:
    print("Simulating the batch-culture cell-type distribution ...")
    result = run_celltype_experiment(num_cells=30_000, rng=11)

    header = ["minutes"]
    for cell_type in CellType.ordered():
        header += [f"sim {cell_type.value}", f"ref {cell_type.value}"]
    rows = []
    for index, time in enumerate(result.simulated.times):
        row = [time]
        for cell_type in CellType.ordered():
            row.append(result.simulated.fractions[cell_type][index])
            row.append(result.reference.fractions[cell_type][index])
        rows.append(row)
    print(format_table(header, rows, precision=3))

    print()
    print(format_table(
        ["cell type", "band low @105min", "band high @105min"],
        [
            [cell_type.value, result.simulated.lower[cell_type][2], result.simulated.upper[cell_type][2]]
            for cell_type in CellType.ordered()
        ],
    ))
    print(f"\nmean |simulated - reference|      : {result.mean_error:.3f}")
    print(f"reference points inside sim band  : {result.within_band_fraction:.0%}")
    print("\nAs in the paper, the simulated distribution of each cell type closely")
    print("tracks the observed distribution, supporting the asynchrony model used")
    print("to build the deconvolution kernel.")


if __name__ == "__main__":
    main()
