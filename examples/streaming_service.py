"""Service-style streaming deconvolution through an experiment-scoped FitSession.

A deconvolution *service* receives measurement vectors one at a time — new
genes from the same microarray run, replicate cultures on a second sampling
schedule — and should not pay kernel construction, problem assembly or a QP
factorization per request.  `FitSession` is the layer that owns all of that:

* kernels, forward models and assembled problems are cached **per
  measurement time grid**, so an experiment spanning several grids pays
  assembly once per grid, not once per request;
* `submit()` queues incoming vectors and `flush()` solves everything queued
  as stacked multi-RHS batches (one per grid and smoothing setting), so the
  marginal cost per request is a gradient plus one row of a batched solve;
* `fit_stream()` wraps both for an iterator-shaped caller, and the results
  are identical (to solver precision) to one-shot `Deconvolver.fit` calls.

Run with:  python examples/streaming_service.py
"""

import time

import numpy as np

from repro import CellCycleParameters, Deconvolver, KernelBuilder
from repro.data.synthetic import single_pulse_profile
from repro.experiments.reporting import format_table

REQUESTS = 24


def incoming_requests(kernels, rng):
    """Simulate a stream of (times, measurements) requests on two time grids.

    Requests interleave the two grids the way a real service sees mixed
    experiments; each carries a different synthetic "gene".
    """
    requests = []
    for index in range(REQUESTS):
        kernel = kernels[index % len(kernels)]
        truth = single_pulse_profile(
            center=0.2 + 0.6 * rng.random(), width=0.12, amplitude=2.0, baseline=0.3
        )
        clean = kernel.apply_function(truth)
        noisy = clean + 0.01 * rng.normal(size=clean.size)
        requests.append((kernel.times, noisy))
    return requests


def main() -> None:
    parameters = CellCycleParameters()
    rng = np.random.default_rng(0)

    # Two measurement schedules ("experiments") served by one session.
    grids = [np.linspace(0.0, 150.0, 16), np.linspace(0.0, 120.0, 12)]
    print("Building one population kernel per measurement grid ...")
    builder = KernelBuilder(parameters, num_cells=6000, phase_bins=80)
    kernels = [builder.build(times, rng=index) for index, times in enumerate(grids)]

    deconvolver = Deconvolver(parameters=parameters, num_basis=14)
    session = deconvolver.session()
    for kernel in kernels:
        session.register_kernel(kernel)

    requests = incoming_requests(kernels, rng)

    # Warm the per-grid workspaces (assembly + per-lambda factorization) so
    # both timed passes below measure the steady-state service, not the
    # first-request setup the session pays once per grid.
    for times, values in requests[: len(grids)]:
        session.submit(times, values, lam=1e-3)
    session.flush()

    print(f"Streaming {REQUESTS} requests through FitSession.fit_stream ...")
    start = time.perf_counter()
    streamed = list(session.fit_stream(requests, flush_every=8, lam=1e-3))
    streamed_seconds = time.perf_counter() - start
    print(f"  streaming session: {streamed_seconds * 1e3:.1f} ms total "
          f"({streamed_seconds / REQUESTS * 1e3:.2f} ms per request)")

    # Reference: one-shot fits, exactly what a caller without the streaming
    # layer would run.  Results agree to solver precision.
    start = time.perf_counter()
    references = [deconvolver.fit(times, values, lam=1e-3) for times, values in requests]
    one_shot_seconds = time.perf_counter() - start
    print(f"  one-shot fits    : {one_shot_seconds * 1e3:.1f} ms total")
    worst_gap = max(
        float(np.max(np.abs(a.coefficients - b.coefficients)))
        for a, b in zip(streamed, references)
    )
    print(f"  max |stream - one-shot| coefficient gap: {worst_gap:.2e}")

    rows = [
        [index, len(result.times), result.lam, "yes" if result.solver_converged else "no"]
        for index, result in enumerate(streamed[:8])
    ]
    print(format_table(["request", "num times", "lambda", "converged"], rows))
    print(f"session caches: {session.num_grids} grids, "
          f"{session.num_workspaces} workspaces, {session.num_pending} pending")


if __name__ == "__main__":
    main()
