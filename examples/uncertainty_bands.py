"""Bootstrap confidence bands for a deconvolved profile (library extension).

The paper reports point estimates of the synchronous profile; this example
adds a residual-bootstrap band so downstream feature calls ("expression is
delayed until the SW-to-ST transition") can be made with a notion of
uncertainty.  It also demonstrates the dependency-free ASCII plotting helper.

Run with:  python examples/uncertainty_bands.py
"""

import numpy as np

from repro import CellCycleParameters, Deconvolver, GaussianMagnitudeNoise, KernelBuilder, ftsz_like_profile
from repro.core.uncertainty import bootstrap_deconvolution
from repro.experiments.reporting import format_table
from repro.viz.ascii import ascii_compare


def main() -> None:
    parameters = CellCycleParameters()
    times = np.linspace(0.0, 150.0, 16)
    kernel = KernelBuilder(parameters, num_cells=6000, phase_bins=80).build(times, rng=0)

    truth = ftsz_like_profile(onset=parameters.mu_sst, peak=0.4, amplitude=10.0)
    clean = kernel.apply_function(truth)
    noise = GaussianMagnitudeNoise(0.08)
    values = noise.apply(clean, rng=1)
    sigma = noise.standard_deviations(clean)

    print("Deconvolving with a residual bootstrap (30 replicates) ...")
    deconvolver = Deconvolver(kernel, parameters=parameters, num_basis=14)
    band = bootstrap_deconvolution(
        deconvolver, times, values, sigma=sigma, num_replicates=30, coverage=0.9, rng=2
    )

    sample_phases = np.linspace(0.0, 1.0, 11)
    indices = [int(round(p * (band.phases.size - 1))) for p in sample_phases]
    print(format_table(
        ["phase", "truth", "estimate", "5th pct", "95th pct"],
        [
            [band.phases[i], truth(band.phases[i]), band.estimate[i], band.lower[i], band.upper[i]]
            for i in indices
        ],
    ))
    print(f"\nfraction of the truth inside the 90% band: {band.contains(truth(band.phases)):.0%}")

    print(ascii_compare(
        {
            "estimate": (band.phases, band.estimate),
            "lower": (band.phases, band.lower),
            "upper": (band.phases, band.upper),
        },
        width=70,
        height=16,
        x_label="phase",
        y_label="expression",
    ))


if __name__ == "__main__":
    main()
