"""Reproduce the paper's Figures 2 and 3: Lotka-Volterra oscillator deconvolution.

A Lotka-Volterra oscillator tuned to the 150-minute Caulobacter cycle plays
the role of a cell-cycle-regulated gene pair.  The script prints, for both
species, the true single-cell series, the (optionally noisy) population series
and the deconvolved profile, plus recovery metrics — the content of the
paper's Figure 2 (noiseless) and Figure 3 (10% noise) panels.

Run with:  python examples/oscillator_deconvolution.py [noise_fraction]
"""

import sys

from repro.experiments.figure2 import run_oscillator_experiment
from repro.experiments.reporting import format_series, format_table


def main(noise_fraction: float = 0.0) -> None:
    label = "Figure 2 (noiseless)" if noise_fraction == 0 else f"Figure 3 ({noise_fraction:.0%} noise)"
    print(f"Running the {label} oscillator experiment ...")
    result = run_oscillator_experiment(
        noise_fraction=noise_fraction,
        num_times=19,
        t_end=180.0,
        num_cells=8000,
        phase_bins=80,
        rng=42,
    )

    model = result.model
    print(f"Lotka-Volterra rates: a={model.a:.4f} b={model.b:.4f} c={model.c:.4f} d={model.d:.4f}")
    for name in model.species_names:
        print()
        print(format_series(f"{name}: true single cell", result.times, result.single_cell[name],
                            x_label="minutes", y_label="concentration"))
        print(format_series(f"{name}: population", result.times, result.population[name],
                            x_label="minutes", y_label="concentration"))
        times, values = result.deconvolved[name].profile_vs_time(19)
        print(format_series(f"{name}: deconvolved", times, values,
                            x_label="minutes", y_label="concentration"))

    print()
    print(format_table(
        ["species", "deconv NRMSE", "population NRMSE", "improvement", "correlation"],
        [
            [name, comp.nrmse, comp.population_nrmse, comp.improvement_factor, comp.correlation]
            for name, comp in result.comparisons.items()
        ],
    ))


if __name__ == "__main__":
    fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.0
    main(fraction)
