"""Multi-species batch deconvolution through the batched multi-RHS engine.

Eight synthetic "genes" measured on the same population time course are
deconvolved with one `Deconvolver.fit_many` call.  Everything expensive is
shared across the batch:

* one Monte-Carlo kernel and one design/constraint assembly (`FitWorkspace`);
* one GCV eigendecomposition and one set of k-fold plans for the whole
  lambda search (filled by the first species, reused by the rest);
* one stacked multi-RHS QP solve per selected lambda (the default
  ``engine="batch"``): a single shared Cholesky/QR factorization handles all
  species, and the per-species active-set loop only runs where the
  positivity pattern genuinely differs.

Run with:  python examples/multi_species_batch.py
"""

import time

import numpy as np

from repro import (
    CellCycleParameters,
    Deconvolver,
    GaussianMagnitudeNoise,
    KernelBuilder,
)
from repro.analysis.metrics import nrmse
from repro.data.synthetic import single_pulse_profile
from repro.experiments.reporting import format_table

NUM_SPECIES = 8


def make_truth_profiles():
    """Eight synthetic single-cell profiles peaking across the cycle."""
    centers = np.linspace(0.15, 0.85, NUM_SPECIES)
    return [
        single_pulse_profile(center=center, width=0.12, amplitude=2.0, baseline=0.3)
        for center in centers
    ]


def main() -> None:
    parameters = CellCycleParameters()
    times = np.linspace(0.0, 150.0, 16)

    print("Building the shared population kernel Q(phi, t) ...")
    kernel = KernelBuilder(parameters, num_cells=6000, phase_bins=80).build(times, rng=0)

    # Forward-simulate eight species on the same culture, with noise.
    truths = make_truth_profiles()
    noise = GaussianMagnitudeNoise(0.05)
    columns = []
    for index, truth in enumerate(truths):
        clean = kernel.apply_function(truth)
        columns.append(noise.apply(clean, rng=100 + index))
    matrix = np.column_stack(columns)

    deconvolver = Deconvolver(kernel, parameters=parameters, num_basis=14)

    print(f"Deconvolving {NUM_SPECIES} species as one batched fit_many call ...")
    start = time.perf_counter()
    results = deconvolver.fit_many(times, matrix, lambda_method="kfold")
    batch_seconds = time.perf_counter() - start
    print(f"  batched engine: {batch_seconds * 1e3:.1f} ms total "
          f"({batch_seconds / NUM_SPECIES * 1e3:.1f} ms per species)")

    # The serial reference engine (one warm-started fit per species) is kept
    # for comparison; results agree to solver precision.
    reference = Deconvolver(kernel, parameters=parameters, num_basis=14)
    start = time.perf_counter()
    serial_results = reference.fit_many(
        times, matrix, lambda_method="kfold", engine="serial", warm_start_chain=False
    )
    serial_seconds = time.perf_counter() - start
    print(f"  serial engine : {serial_seconds * 1e3:.1f} ms total")
    worst_gap = max(
        float(np.max(np.abs(a.coefficients - b.coefficients)))
        for a, b in zip(results, serial_results)
    )
    print(f"  max |batch - serial| coefficient gap: {worst_gap:.2e}")

    dense = np.linspace(0.0, 1.0, 201)
    rows = []
    for index, (truth, result) in enumerate(zip(truths, results)):
        rows.append(
            [
                index,
                result.lam,
                nrmse(result.profile(dense), truth(dense)),
                "yes" if result.solver_converged else "no",
            ]
        )
    print(format_table(["species", "lambda", "NRMSE vs truth", "converged"], rows))


if __name__ == "__main__":
    main()
