"""Load-test the micro-batching fit service with concurrent producers.

`repro.service` turns the library into a long-lived serving runtime:

* a `SessionPool` shards warm `FitSession`s by deconvolver configuration
  (LRU-bounded, so a service over many experiments stays within budget);
* a `MicroBatchScheduler` accepts requests from many producer threads,
  coalesces compatible ones within a small time/size window and solves each
  batch as one stacked multi-RHS `fit_many(engine="batch")` call;
* a content-addressed `ResultCache` answers bit-exact repeats in O(lookup);
* `Telemetry` records counters plus latency / batch-size histograms.

This example drives the scheduler from four concurrent producer threads with
a deterministic seeded workload (mixed grids, genes, noise levels, repeats),
then verifies every response against a one-request-at-a-time
`Deconvolver.fit` reference — the results are bit-identical, the service
only changes when and with what company each request is solved.

Run with:  python examples/service_load.py
"""

import threading
import time

import numpy as np

from repro import CellCycleParameters, Deconvolver, KernelBuilder
from repro.experiments.reporting import format_table
from repro.service import (
    MicroBatchScheduler,
    SessionPool,
    WorkloadSpec,
    build_workload,
    max_coefficient_gap,
    serial_reference,
)

PRODUCERS = 4
REQUESTS = 48


def main() -> None:
    parameters = CellCycleParameters()
    builder = KernelBuilder(parameters, num_cells=3000, phase_bins=50)
    grids = [np.linspace(0.0, 150.0, 14), np.linspace(0.0, 120.0, 11)]
    print("Building one population kernel per measurement grid ...")
    kernels = [builder.build(times, rng=index) for index, times in enumerate(grids)]

    def factory(_key):
        deconvolver = Deconvolver(parameters=parameters, num_basis=12)
        session = deconvolver.session()
        for kernel in kernels:
            session.register_kernel(kernel)
        return deconvolver

    pool = SessionPool(factory, max_entries=4)
    workload = build_workload(
        kernels,
        WorkloadSpec(num_requests=REQUESTS, repeat_ratio=0.25, selection_fraction=0.1, seed=7),
    )

    with MicroBatchScheduler(pool, max_batch=16, max_wait_ms=1.0, workers=2) as scheduler:
        # Warm pass (kernel registration, assembly, factorizations), then
        # reset the metrics so the report covers only the measured window.
        scheduler.map(workload)
        scheduler.cache.clear()
        scheduler.telemetry.reset()

        # Concurrent producers: each thread owns a slice of the workload and
        # submits it request by request, the way service traffic arrives.
        futures: list = [None] * len(workload)

        def produce(offset: int) -> None:
            for index in range(offset, len(workload), PRODUCERS):
                futures[index] = scheduler.submit(workload[index])

        print(f"Streaming {REQUESTS} requests from {PRODUCERS} producer threads ...")
        start = time.perf_counter()
        threads = [threading.Thread(target=produce, args=(offset,)) for offset in range(PRODUCERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        results = [future.result() for future in futures]
        elapsed = time.perf_counter() - start
        snapshot = scheduler.telemetry.snapshot()

    references = serial_reference(factory("reference"), workload)
    gap = max_coefficient_gap(results, references)
    latency = snapshot["histograms"]["latency_seconds"]
    counters = snapshot["counters"]
    rows = [
        ["requests", float(REQUESTS)],
        ["wall ms", elapsed * 1e3],
        ["throughput rps", REQUESTS / elapsed],
        ["batches", float(counters.get("batches", 0))],
        ["coalescing factor", snapshot["coalescing_factor"]],
        ["cache hits + dedup", float(counters.get("cache_hits", 0) + counters.get("deduplicated", 0))],
        ["p95 latency ms", latency["p95"] * 1e3],
        ["max |coef gap|", gap],
    ]
    print(format_table(["metric", "value"], rows))
    assert gap <= 1e-10, f"service responses deviate from direct fits ({gap:.2e})"
    print("every response matches its one-shot Deconvolver.fit to 1e-10")


if __name__ == "__main__":
    main()
