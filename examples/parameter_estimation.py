"""Single-cell parameter estimation: population fit vs deconvolved fit (Sec. 5).

Differential-equation models of gene regulation describe single cells but are
usually fitted to population data.  This example quantifies the resulting bias
on the Lotka-Volterra oscillator and shows that fitting to deconvolved data
recovers the true single-cell rates much more accurately — the paper's
"ongoing work" claim.

Run with:  python examples/parameter_estimation.py
(The two Nelder-Mead fits take a minute or two.)
"""

from repro.experiments.parameter_estimation import run_parameter_estimation_experiment
from repro.experiments.reporting import format_table


def main() -> None:
    print("Generating population data and running both fits (this takes a minute) ...")
    result = run_parameter_estimation_experiment(
        noise_fraction=0.05,
        num_times=19,
        t_end=180.0,
        num_cells=6000,
        phase_bins=80,
        max_iterations=500,
        rng=123,
    )

    names = ["a", "b", "c", "d"]
    print(format_table(
        ["rate", "true value", "fit to population", "fit to deconvolved"],
        [
            [
                names[i],
                result.true_parameters[i],
                result.population_fit.parameters[i],
                result.deconvolved_fit.parameters[i],
            ]
            for i in range(4)
        ],
    ))
    print()
    print(format_table(
        ["fit target", "mean relative parameter error"],
        [
            ["population data (naive)", result.population_fit.mean_relative_error],
            ["deconvolved data", result.deconvolved_fit.mean_relative_error],
        ],
    ))
    print(f"\nimprovement factor from deconvolution: {result.improvement_factor:.1f}x")


if __name__ == "__main__":
    main()
