"""Benchmark E1 (paper Figure 2): noiseless Lotka-Volterra deconvolution.

Regenerates the three curves of each Figure 2 panel — true single-cell,
population and deconvolved expression for both species — and checks the
qualitative claim: the deconvolved profiles track the synchronous truth far
more closely than the population curves do.
"""

import numpy as np

from repro.experiments.figure2 import run_oscillator_experiment
from repro.experiments.reporting import format_series, format_table


def _run():
    return run_oscillator_experiment(
        noise_fraction=0.0,
        num_times=19,
        t_end=180.0,
        num_cells=8000,
        phase_bins=80,
        num_basis=14,
        rng=42,
    )


def test_figure2_noiseless_oscillator(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== Figure 2: noiseless oscillator deconvolution ===")
    for name in ("x1", "x2"):
        print(format_series(
            f"{name} single cell", result.times, result.single_cell[name],
            x_label="minutes", y_label="concentration",
        ))
        print(format_series(
            f"{name} population", result.times, result.population[name],
            x_label="minutes", y_label="concentration",
        ))
        times, values = result.deconvolved[name].profile_vs_time(19)
        print(format_series(
            f"{name} deconvolved", times, values,
            x_label="minutes", y_label="concentration",
        ))
    rows = [
        [name, comp.nrmse, comp.population_nrmse, comp.improvement_factor, comp.correlation]
        for name, comp in result.comparisons.items()
    ]
    print(format_table(
        ["species", "deconv NRMSE", "population NRMSE", "improvement", "correlation"], rows
    ))

    # Shape claims of the figure: deconvolution recovers the synchronous
    # behaviour; the population curve alone does not.
    for name, comparison in result.comparisons.items():
        assert comparison.nrmse < 0.1, f"{name} deconvolution error too large"
        assert comparison.improvement_factor > 2.0, f"{name} deconvolution should beat population"
        assert comparison.correlation > 0.97

    # The population signal is damped relative to the single cell (the effect
    # is mild early on, while the culture is still nearly synchronous, and
    # grows as the cells dephase).
    for name in ("x1", "x2"):
        single_range = np.ptp(result.single_cell[name])
        population_range = np.ptp(result.population_clean[name])
        assert population_range < 0.95 * single_range
