"""Benchmark E2 (paper Figure 3): oscillator deconvolution with 10% noise.

Gaussian errors with standard deviation equal to 10% of the data magnitude are
added to the population data; the deconvolution must still recover the major
features of the synchronous behaviour.
"""

from repro.experiments.figure3 import run_noisy_oscillator_experiment
from repro.experiments.reporting import format_series, format_table


def _run():
    return run_noisy_oscillator_experiment(
        noise_fraction=0.10,
        num_realisations=3,
        num_times=19,
        t_end=180.0,
        num_cells=6000,
        phase_bins=80,
        num_basis=14,
        rng=7,
    )


def test_figure3_noisy_oscillator(benchmark):
    summary = benchmark.pedantic(_run, rounds=1, iterations=1)
    example = summary.example

    print("\n=== Figure 3: noisy (10%) oscillator deconvolution ===")
    for name in ("x1", "x2"):
        print(format_series(
            f"{name} noisy population", example.times, example.population[name],
            x_label="minutes", y_label="concentration",
        ))
        times, values = example.deconvolved[name].profile_vs_time(19)
        print(format_series(
            f"{name} deconvolved", times, values,
            x_label="minutes", y_label="concentration",
        ))
    rows = [
        [name, summary.mean_nrmse[name], summary.mean_improvement[name]]
        for name in ("x1", "x2")
    ]
    print(format_table(["species", "mean NRMSE", "mean improvement"], rows))
    print(f"realisations aggregated: {summary.num_realisations}")

    # Major features still recovered under 10% noise, and deconvolution still
    # beats the raw population curve on average.
    for name in ("x1", "x2"):
        assert summary.mean_nrmse[name] < 0.3
        assert summary.mean_improvement[name] > 1.0
    # Noise really was added to the example realisation.
    for name in ("x1", "x2"):
        assert not (example.population[name] == example.population_clean[name]).all()
