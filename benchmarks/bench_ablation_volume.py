"""Benchmark A1: cell-volume model ablation (Sec. 3.1 update).

Compares deconvolution accuracy when the population kernel uses the linear
(2009 baseline), piecewise-linear and smooth (eq. 11) volume models.
"""

from repro.experiments.ablations import run_volume_model_ablation
from repro.experiments.reporting import format_table


def _run():
    return run_volume_model_ablation(
        noise_fraction=0.05,
        num_times=16,
        num_cells=6000,
        phase_bins=80,
        lam=1e-3,
        rng=5,
    )


def test_ablation_volume_model(benchmark):
    scores = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== Ablation A1: volume model ===")
    print(format_table(
        ["volume model", "deconvolution NRMSE"],
        [[name, score] for name, score in scores.items()],
    ))

    assert set(scores) == {"linear", "piecewise_linear", "smooth"}
    # All variants deconvolve successfully; the exercise quantifies how much
    # the volume model shifts the recovered profile.
    for name, score in scores.items():
        assert score < 0.3, f"volume model {name} failed to deconvolve"
