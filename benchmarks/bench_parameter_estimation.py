"""Benchmark A5: single-cell parameter estimation (Sec. 5 claim).

Fits the Lotka-Volterra rates to raw population data and to deconvolved data
and compares per-parameter accuracy, checking the paper's claim that the
deconvolution-based fit yields more accurate single-cell parameters.
"""

from repro.experiments.parameter_estimation import run_parameter_estimation_experiment
from repro.experiments.reporting import format_table


def _run():
    return run_parameter_estimation_experiment(
        noise_fraction=0.05,
        num_times=19,
        t_end=180.0,
        num_cells=6000,
        phase_bins=80,
        max_iterations=500,
        rng=123,
    )


def test_parameter_estimation_population_vs_deconvolved(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== Ablation A5: parameter estimation ===")
    names = ["a", "b", "c", "d"]
    rows = []
    for index, name in enumerate(names):
        rows.append([
            name,
            result.true_parameters[index],
            result.population_fit.parameters[index],
            result.deconvolved_fit.parameters[index],
        ])
    print(format_table(["rate", "true", "population fit", "deconvolved fit"], rows))
    print(format_table(
        ["fit target", "mean relative error"],
        [
            ["population data", result.population_fit.mean_relative_error],
            ["deconvolved data", result.deconvolved_fit.mean_relative_error],
        ],
    ))
    print(f"improvement factor: {result.improvement_factor:.2f}")

    # The deconvolution-based fit recovers the true single-cell rates better
    # than fitting the single-cell model to population data directly.
    assert result.deconvolved_fit.mean_relative_error < result.population_fit.mean_relative_error
    assert result.improvement_factor > 1.5
    assert result.deconvolved_fit.mean_relative_error < 0.15
