"""Benchmark A3: smoothing-parameter selection (cross-validation, Sec. 2.3).

Sweeps fixed lambda values and compares the automatic GCV and k-fold choices
against the best fixed value.
"""

import numpy as np

from repro.experiments.ablations import run_lambda_ablation
from repro.experiments.reporting import format_table


def _run():
    return run_lambda_ablation(
        noise_fraction=0.10,
        num_times=16,
        num_cells=6000,
        phase_bins=80,
        lambdas=np.logspace(-5, 1, 7),
        rng=9,
    )


def test_lambda_selection(benchmark):
    scores = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== Ablation A3: lambda selection ===")
    print(format_table(
        ["configuration", "deconvolution NRMSE"],
        [[name, score] for name, score in scores.items()],
    ))

    sweep = [value for key, value in scores.items() if key.startswith("lambda=")]
    best_fixed = min(sweep)
    # The automatic selectors are competitive with the best fixed lambda.
    assert scores["gcv"] <= 2.0 * best_fixed + 0.05
    assert scores["kfold"] <= 2.5 * best_fixed + 0.05
    # Extreme over-smoothing is measurably worse than the best choice.
    assert max(sweep) > best_fixed
