"""Benchmark A6: the in-repo active-set QP solver vs SciPy SLSQP.

Times both backends on a representative deconvolution quadratic program and
verifies they reach the same constrained optimum.  The repeated-solve and
warm-started benchmarks exercise the shared-factorization workspace path used
by the lambda-search / bootstrap / multi-species workloads.
"""

import numpy as np
import pytest

from repro.cellcycle.kernel import KernelBuilder
from repro.cellcycle.parameters import CellCycleParameters
from repro.core.basis import SplineBasis
from repro.core.constraints import default_constraints
from repro.core.forward import ForwardModel
from repro.core.problem import DeconvolutionProblem
from repro.data.synthetic import ftsz_like_profile


@pytest.fixture(scope="module")
def problem():
    parameters = CellCycleParameters()
    times = np.linspace(0.0, 150.0, 16)
    kernel = KernelBuilder(parameters, num_cells=6000, phase_bins=80).build(times, rng=0)
    truth = ftsz_like_profile()
    measurements = kernel.apply_function(truth)
    forward = ForwardModel(kernel, SplineBasis(num_basis=14))
    return DeconvolutionProblem(
        forward, measurements, constraints=default_constraints(), parameters=parameters
    )


def test_qp_active_set_backend(benchmark, problem):
    result = benchmark(lambda: problem.solve(1e-3, backend="active_set"))
    assert result.converged


def test_qp_scipy_backend(benchmark, problem):
    result = benchmark(lambda: problem.solve(1e-3, backend="scipy"))
    assert result.converged


def test_qp_warm_started_resolve(benchmark, problem):
    """Warm-started re-solve through the shared workspace (the bootstrap /
    lambda-sweep inner loop)."""
    base = problem.solve(1e-3, backend="active_set")
    assert base.converged
    result = benchmark(
        lambda: problem.solve(
            1e-3, backend="active_set", x0=base.x, active_set=base.active_set
        )
    )
    assert result.converged
    assert result.objective == pytest.approx(base.objective, abs=1e-8)


def test_qp_backends_reach_same_optimum(problem):
    ours = problem.solve(1e-3, backend="active_set")
    reference = problem.solve(1e-3, backend="scipy")
    assert problem.cost(ours.x, 1e-3) == pytest.approx(
        problem.cost(reference.x, 1e-3), rel=1e-4, abs=1e-6
    )
