"""Benchmark A7: per-stage timings of the shared-factorization solve path.

Wraps :mod:`repro.benchmarks.solvepath` (the same harness behind the
``BENCH_solvepath.json`` baseline and the tier-1 smoke test) at the default
workload sizes and prints the per-stage report.  Refresh the committed
baseline with::

    PYTHONPATH=src python -m repro.benchmarks.solvepath --output BENCH_solvepath.json
"""

from repro.benchmarks.solvepath import (
    DEFAULT_CONFIG,
    format_report,
    run_solvepath_benchmark,
)


def test_solvepath_stages(benchmark):
    config = dict(DEFAULT_CONFIG, repeats=1)
    report = benchmark.pedantic(
        lambda: run_solvepath_benchmark(**config), rounds=1, iterations=1
    )

    print("\n=== Benchmark A7: solve-path stages ===")
    print(format_report(report))

    stages = report["stages_seconds"]
    # The whole point of the workspace: repeated and warm solves must be far
    # cheaper than assembling and solving from scratch.
    assert stages["qp_solve"] < stages["problem_assembly_cold"]
    assert stages["qp_solve_warm"] <= stages["qp_solve"] * 1.5
    assert stages["lambda_gcv"] < stages["lambda_kfold"]
