"""Benchmark E4 (paper Figure 5): population vs deconvolved ftsZ expression.

Regenerates the two panels of Figure 5 — the population-level ftsZ series and
the deconvolved profile against simulated time — and asserts the paper's two
qualitative findings: the transcription delay is resolved only after
deconvolution, and after its mid-cycle maximum the deconvolved profile drops
with no subsequent increase even though the raw population series rises again
late in the experiment.
"""

from repro.experiments.figure5 import run_ftsz_experiment
from repro.experiments.reporting import format_series, format_table


def _run():
    return run_ftsz_experiment(
        noise_fraction=0.05,
        num_times=16,
        num_cells=10_000,
        num_basis=14,
        rng=2011,
    )


def test_figure5_ftsz_deconvolution(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== Figure 5: ftsZ population vs deconvolved expression ===")
    series = result.dataset.series
    print(format_series(
        "population ftsZ expression", series.times, series.values,
        x_label="minutes", y_label="expression",
    ))
    times, values = result.result.profile_vs_time(21)
    print(format_series(
        "deconvolved ftsZ expression", times, values,
        x_label="simulated minutes", y_label="expression",
    ))
    print(format_table(
        ["quantity", "population", "deconvolved", "truth"],
        [
            ["onset phase", result.population_onset_phase, result.deconvolved_onset_phase,
             result.true_onset_phase],
            ["post-peak drop", result.population_post_peak_drop,
             result.deconvolved_post_peak_drop, 1.0 - result.dataset.truth(1.0) / 10.1],
        ],
    ))
    print(f"deconvolved peak phase      : {result.deconvolved_peak_phase:.3f}")
    print(f"post-peak increase (deconv) : {result.deconvolved_has_post_peak_increase}")
    print(f"population still rising late: {result.population_final_trend_up}")
    print(f"NRMSE vs truth              : {result.comparison.nrmse:.3f}")

    # The transcription delay is visible in the deconvolved profile, not in the
    # population data.
    assert abs(result.deconvolved_onset_phase - result.true_onset_phase) < 0.08
    assert result.population_onset_phase < result.deconvolved_onset_phase - 0.05
    # Large post-maximum drop with no subsequent increase, unlike the raw data.
    assert result.deconvolved_post_peak_drop > 0.7
    assert not result.deconvolved_has_post_peak_increase
    assert result.population_final_trend_up
    # Quantitative recovery of the underlying profile.
    assert result.comparison.nrmse < 0.12
    assert result.comparison.improvement_factor > 1.5
