"""Benchmark A2: constraint-stack ablation (Secs. 2.3 and 3.2).

Measures recovery quality and negativity artifacts with the positivity, RNA
conservation and rate-continuity constraints toggled on and off.
"""

from repro.experiments.ablations import run_constraint_ablation
from repro.experiments.reporting import format_table


def _run():
    return run_constraint_ablation(
        noise_fraction=0.08,
        num_times=16,
        num_cells=6000,
        phase_bins=80,
        lam=1e-3,
        rng=6,
    )


def test_ablation_constraints(benchmark):
    scores = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== Ablation A2: constraint stack ===")
    print(format_table(
        ["configuration", "NRMSE", "most negative value"],
        [[name, metrics["nrmse"], metrics["negativity"]] for name, metrics in scores.items()],
    ))

    assert set(scores) == {"none", "positivity_only", "no_rate_continuity", "full"}
    # Positivity removes negative artifacts (up to the constraint-grid resolution).
    assert scores["full"]["negativity"] >= -5e-3
    assert scores["positivity_only"]["negativity"] >= -5e-3
    assert scores["none"]["negativity"] <= scores["full"]["negativity"] + 1e-9
    # Every configuration still recovers the overall profile.
    for metrics in scores.values():
        assert metrics["nrmse"] < 0.4
