"""Benchmark A7: sensitivity to the assumed SW-to-ST transition phase.

Quantifies the Sec. 2.1 update (mu_sst 0.25 -> 0.15): how much does assuming
the wrong transition phase in the asynchrony model cost in recovery accuracy?
"""

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.sensitivity import run_mu_sst_sensitivity


def _run():
    return run_mu_sst_sensitivity(
        assumed_values=np.array([0.10, 0.15, 0.20, 0.25, 0.30]),
        noise_fraction=0.05,
        num_times=16,
        num_cells=6000,
        phase_bins=80,
        rng=17,
    )


def test_mu_sst_sensitivity(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== Ablation A7: sensitivity to the assumed mu_sst ===")
    print(format_table(
        ["assumed mu_sst", "deconvolution NRMSE"],
        [[value, error] for value, error in zip(result.assumed_values, result.errors)],
    ))
    print(f"true mu_sst: {result.true_value}")

    index_true = int(np.argmin(np.abs(result.assumed_values - result.true_value)))
    index_old = int(np.argmin(np.abs(result.assumed_values - 0.25)))
    index_worst = int(np.argmax(np.abs(result.assumed_values - result.true_value)))
    # Using the updated (correct) transition phase is at least as good as the
    # 2009 value and clearly better than a badly wrong assumption.
    assert result.errors[index_true] <= result.errors[index_old] + 0.02
    assert result.errors[index_true] < result.errors[index_worst]
