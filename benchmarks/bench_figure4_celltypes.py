"""Benchmark E3 (paper Figure 4): batch-culture cell-type distribution.

Regenerates the simulated SW / STE / STEPD / STLPD fraction time series between
75 and 150 minutes (with the transition-phase band) and compares it against the
reference distribution, asserting the qualitative agreement the paper reports.
"""

import numpy as np

from repro.cellcycle.celltypes import CellType
from repro.experiments.figure4 import run_celltype_experiment
from repro.experiments.reporting import format_table


def _run():
    return run_celltype_experiment(num_cells=30_000, rng=11)


def test_figure4_celltype_distribution(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== Figure 4: cell-type distribution (simulated vs reference) ===")
    header = ["minutes"] + [f"sim {t.value}" for t in CellType.ordered()] + [
        f"ref {t.value}" for t in CellType.ordered()
    ]
    rows = []
    for index, time in enumerate(result.simulated.times):
        row = [time]
        row += [result.simulated.fractions[t][index] for t in CellType.ordered()]
        row += [result.reference.fractions[t][index] for t in CellType.ordered()]
        rows.append(row)
    print(format_table(header, rows, precision=3))
    print(format_table(
        ["cell type", "max |sim - ref|", "mean |sim - ref|"],
        [
            [t.value, result.per_type_max_error[t], result.per_type_mean_error[t]]
            for t in CellType.ordered()
        ],
    ))
    print(f"mean absolute error  : {result.mean_error:.3f}")
    print(f"within-band fraction : {result.within_band_fraction:.2f}")

    # Agreement claims: "highly similar distributions of each cell type".
    assert result.mean_error < 0.10
    assert result.within_band_fraction > 0.6
    for cell_type in CellType.ordered():
        assert result.per_type_mean_error[cell_type] < 0.15

    # Qualitative shape of the distribution.
    simulated = result.simulated.fractions
    assert simulated[CellType.STE][0] > 0.5
    assert simulated[CellType.SW][-1] > simulated[CellType.SW][0]
    stepd = simulated[CellType.STEPD]
    assert 0 < int(np.argmax(stepd)) < stepd.size - 1
