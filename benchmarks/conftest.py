"""Shared configuration for the benchmark harness.

Every benchmark runs one full experiment per measurement round (the
experiments are Monte-Carlo pipelines, not micro-kernels), so rounds are kept
small via ``benchmark.pedantic``.  Each benchmark also prints the series or
table corresponding to the paper figure it regenerates, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's evaluation outputs alongside the timing numbers.
"""

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _fixed_numpy_print_options():
    """Stable, compact printing of the reported series."""
    with np.printoptions(precision=3, suppress=True):
        yield
