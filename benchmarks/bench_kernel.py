"""Benchmark A4: Monte-Carlo convergence and cost of the Q(phi, t) kernel.

Times kernel construction at the default resolution and checks that the
Monte-Carlo error decreases as the simulated population grows.
"""

import numpy as np

from repro.cellcycle.kernel import KernelBuilder
from repro.cellcycle.parameters import CellCycleParameters
from repro.experiments.ablations import run_kernel_convergence_study
from repro.experiments.reporting import format_table


def test_kernel_build_cost(benchmark):
    """Time to build the default-resolution kernel used by the figure experiments."""
    parameters = CellCycleParameters()
    times = np.linspace(0.0, 180.0, 19)
    builder = KernelBuilder(parameters, num_cells=8000, phase_bins=80)

    kernel = benchmark(lambda: builder.build(times, rng=0))

    assert np.allclose(kernel.row_integrals(), 1.0, atol=1e-9)
    assert kernel.density.shape == (19, 80)


def test_kernel_monte_carlo_convergence(benchmark):
    """Monte-Carlo error decreases with the number of simulated founder cells."""
    scores = benchmark.pedantic(
        lambda: run_kernel_convergence_study(
            cell_counts=(500, 2000, 8000),
            reference_cells=40_000,
            phase_bins=80,
            num_times=6,
            rng=3,
        ),
        rounds=1,
        iterations=1,
    )

    print("\n=== Ablation A4: kernel Monte-Carlo convergence ===")
    print(format_table(
        ["founder cells", "mean |Q - Q_ref|"],
        [[count, error] for count, error in sorted(scores.items())],
    ))

    ordered = [scores[count] for count in sorted(scores)]
    assert ordered[-1] < ordered[0], "error should shrink with more cells"
