"""Tests for repro.estimation (objectives and Nelder-Mead fitting)."""

import numpy as np
import pytest

from repro.dynamics.lotka_volterra import LotkaVolterraModel
from repro.estimation.fitting import fit_parameters
from repro.estimation.objectives import TimeSeriesObjective, model_time_series


def lv_factory(parameters):
    a, b, c, d = parameters
    return LotkaVolterraModel(a=a, b=b, c=c, d=d, x1_0=0.25, x2_0=1.0)


TRUE_PARAMS = np.array([0.8, 0.4, 0.6, 0.5])


@pytest.fixture(scope="module")
def target_data():
    model = lv_factory(TRUE_PARAMS)
    times = np.linspace(0.0, 30.0, 31)
    targets = model_time_series(model, times, ("x1", "x2"))
    return times, targets


class TestModelTimeSeries:
    def test_shape_and_species_selection(self):
        model = lv_factory(TRUE_PARAMS)
        times = np.linspace(0.0, 10.0, 11)
        both = model_time_series(model, times, ("x1", "x2"))
        only_x2 = model_time_series(model, times, ("x2",))
        assert both.shape == (11, 2)
        assert only_x2.shape == (11, 1)
        assert np.allclose(both[:, 1], only_x2[:, 0])

    def test_initial_values(self):
        model = lv_factory(TRUE_PARAMS)
        series = model_time_series(model, np.array([0.0, 5.0]), ("x1", "x2"))
        assert np.allclose(series[0], [0.25, 1.0])

    def test_negative_times_rejected(self):
        model = lv_factory(TRUE_PARAMS)
        with pytest.raises(ValueError):
            model_time_series(model, np.array([-1.0, 1.0]))


class TestTimeSeriesObjective:
    def test_zero_at_true_parameters(self, target_data):
        times, targets = target_data
        objective = TimeSeriesObjective(lv_factory, times, targets, ("x1", "x2"))
        assert objective(TRUE_PARAMS) == pytest.approx(0.0, abs=1e-10)

    def test_positive_away_from_truth(self, target_data):
        times, targets = target_data
        objective = TimeSeriesObjective(lv_factory, times, targets, ("x1", "x2"))
        assert objective(TRUE_PARAMS * 1.3) > 1e-3

    def test_penalty_for_invalid_parameters(self, target_data):
        times, targets = target_data
        objective = TimeSeriesObjective(lv_factory, times, targets, ("x1", "x2"))
        assert objective(np.array([-1.0, 0.4, 0.6, 0.5])) == objective.penalty

    def test_counts_evaluations(self, target_data):
        times, targets = target_data
        objective = TimeSeriesObjective(lv_factory, times, targets, ("x1", "x2"))
        objective(TRUE_PARAMS)
        objective(TRUE_PARAMS * 1.1)
        assert objective.evaluations == 2

    def test_shape_validation(self, target_data):
        times, targets = target_data
        with pytest.raises(ValueError):
            TimeSeriesObjective(lv_factory, times, targets, ("x1",))
        with pytest.raises(ValueError):
            TimeSeriesObjective(lv_factory, times[:-1], targets, ("x1", "x2"))


class TestFitParameters:
    def test_recovers_true_rates_from_clean_data(self, target_data):
        times, targets = target_data
        objective = TimeSeriesObjective(lv_factory, times, targets, ("x1", "x2"))
        result = fit_parameters(
            objective,
            TRUE_PARAMS * 1.25,
            true_parameters=TRUE_PARAMS,
            max_iterations=800,
        )
        assert result.mean_relative_error < 0.05

    def test_log_space_requires_positive_guess(self, target_data):
        times, targets = target_data
        objective = TimeSeriesObjective(lv_factory, times, targets, ("x1", "x2"))
        with pytest.raises(ValueError):
            fit_parameters(objective, np.array([1.0, -1.0, 1.0, 1.0]))

    def test_relative_errors_need_matching_truth(self, target_data):
        times, targets = target_data
        objective = TimeSeriesObjective(lv_factory, times, targets, ("x1", "x2"))
        with pytest.raises(ValueError):
            fit_parameters(objective, TRUE_PARAMS, true_parameters=np.ones(3), max_iterations=5)

    def test_without_truth_errors_empty(self, target_data):
        times, targets = target_data
        objective = TimeSeriesObjective(lv_factory, times, targets, ("x1", "x2"))
        result = fit_parameters(objective, TRUE_PARAMS, max_iterations=5)
        assert result.relative_errors.size == 0
        assert np.isnan(result.mean_relative_error)

    def test_linear_space_fit(self):
        def quadratic(p):
            return float(np.sum((p - np.array([0.3, -0.7])) ** 2))
        result = fit_parameters(quadratic, np.zeros(2), log_space=False)
        assert np.allclose(result.parameters, [0.3, -0.7], atol=1e-3)
