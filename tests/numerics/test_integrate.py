"""Tests for repro.numerics.integrate (RK4 and adaptive RK45)."""

import numpy as np
import pytest

from repro.numerics.integrate import integrate_rk4, integrate_rk45


def exponential_decay(t, y):
    return -0.5 * y


def harmonic_oscillator(t, y):
    return np.array([y[1], -y[0]])


class TestRK4:
    def test_exponential_decay_accuracy(self):
        times = np.linspace(0.0, 4.0, 201)
        solution = integrate_rk4(exponential_decay, [1.0], times)
        assert np.allclose(solution.states[:, 0], np.exp(-0.5 * times), atol=1e-7)

    def test_harmonic_oscillator_energy(self):
        times = np.linspace(0.0, 20.0, 2001)
        solution = integrate_rk4(harmonic_oscillator, [1.0, 0.0], times)
        energy = solution.states[:, 0] ** 2 + solution.states[:, 1] ** 2
        assert np.allclose(energy, 1.0, atol=1e-6)

    def test_fourth_order_convergence(self):
        def solve(n):
            times = np.linspace(0.0, 1.0, n)
            return integrate_rk4(exponential_decay, [1.0], times).states[-1, 0]

        exact = np.exp(-0.5)
        coarse_error = abs(solve(11) - exact)
        fine_error = abs(solve(21) - exact)
        # Halving the step should reduce the error by roughly 2**4.
        assert fine_error < coarse_error / 10.0

    def test_component_and_interpolate(self):
        times = np.linspace(0.0, 1.0, 11)
        solution = integrate_rk4(harmonic_oscillator, [0.0, 1.0], times)
        assert solution.component(1).shape == (11,)
        mid = solution.interpolate([0.05])
        assert mid.shape == (1, 2)

    def test_requires_1d_state(self):
        with pytest.raises(ValueError):
            integrate_rk4(exponential_decay, np.zeros((2, 2)), np.linspace(0, 1, 5))


class TestRK45:
    def test_exponential_decay_accuracy(self):
        solution = integrate_rk45(exponential_decay, [1.0], (0.0, 5.0), rtol=1e-9, atol=1e-12)
        assert solution.states[-1, 0] == pytest.approx(np.exp(-2.5), rel=1e-7)

    def test_dense_output(self):
        query = np.linspace(0.0, 10.0, 101)
        solution = integrate_rk45(
            harmonic_oscillator, [1.0, 0.0], (0.0, 10.0), dense_times=query, rtol=1e-8, atol=1e-10
        )
        assert solution.times.shape == (101,)
        assert np.allclose(solution.states[:, 0], np.cos(query), atol=1e-4)

    def test_adaptivity_uses_fewer_steps_for_loose_tolerance(self):
        tight = integrate_rk45(exponential_decay, [1.0], (0.0, 10.0), rtol=1e-10, atol=1e-12)
        loose = integrate_rk45(exponential_decay, [1.0], (0.0, 10.0), rtol=1e-4, atol=1e-6)
        assert loose.num_steps < tight.num_steps

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            integrate_rk45(exponential_decay, [1.0], (1.0, 1.0))

    def test_dense_times_outside_interval_rejected(self):
        with pytest.raises(ValueError):
            integrate_rk45(exponential_decay, [1.0], (0.0, 1.0), dense_times=[0.0, 2.0])

    def test_step_counter_reported(self):
        solution = integrate_rk45(exponential_decay, [1.0], (0.0, 1.0))
        assert solution.num_steps > 0
        assert solution.num_rejected >= 0

    def test_stiff_like_problem_matches_reference(self):
        # Moderately fast decay plus forcing; compare against the analytic solution.
        def rhs(t, y):
            return np.array([-10.0 * y[0] + 10.0 * np.sin(t)])

        query = np.linspace(0.0, 3.0, 31)
        solution = integrate_rk45(rhs, [0.0], (0.0, 3.0), dense_times=query, rtol=1e-9, atol=1e-11)
        # Analytic solution of y' = -10 y + 10 sin t with y(0) = 0.
        analytic = (10.0 / 101.0) * (10.0 * np.sin(query) - np.cos(query) + np.exp(-10.0 * query))
        assert np.allclose(solution.states[:, 0], analytic, atol=1e-6)
