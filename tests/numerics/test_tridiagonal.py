"""Tests for repro.numerics.tridiagonal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.tridiagonal import solve_tridiagonal


def _dense(lower, diagonal, upper):
    n = diagonal.size
    matrix = np.diag(diagonal)
    for i in range(1, n):
        matrix[i, i - 1] = lower[i]
        matrix[i - 1, i] = upper[i - 1]
    return matrix


class TestSolveTridiagonal:
    def test_identity_system(self):
        n = 6
        x = solve_tridiagonal(np.zeros(n), np.ones(n), np.zeros(n), np.arange(n, dtype=float))
        assert np.allclose(x, np.arange(n))

    def test_matches_dense_solver(self):
        rng = np.random.default_rng(0)
        n = 12
        lower = rng.uniform(-1, 1, n)
        upper = rng.uniform(-1, 1, n)
        diagonal = 4.0 + rng.uniform(0, 1, n)  # diagonally dominant
        rhs = rng.uniform(-2, 2, n)
        expected = np.linalg.solve(_dense(lower, diagonal, upper), rhs)
        assert np.allclose(solve_tridiagonal(lower, diagonal, upper, rhs), expected)

    def test_multiple_right_hand_sides(self):
        rng = np.random.default_rng(1)
        n = 8
        lower = rng.uniform(-1, 1, n)
        upper = rng.uniform(-1, 1, n)
        diagonal = 5.0 + rng.uniform(0, 1, n)
        rhs = rng.uniform(-1, 1, (n, 3))
        solution = solve_tridiagonal(lower, diagonal, upper, rhs)
        assert solution.shape == (n, 3)
        expected = np.linalg.solve(_dense(lower, diagonal, upper), rhs)
        assert np.allclose(solution, expected)

    def test_zero_pivot_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            solve_tridiagonal(np.zeros(3), np.zeros(3), np.zeros(3), np.ones(3))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            solve_tridiagonal(np.zeros(3), np.ones(4), np.zeros(4), np.ones(4))
        with pytest.raises(ValueError):
            solve_tridiagonal(np.zeros(4), np.ones(4), np.zeros(4), np.ones(5))


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_random_diagonally_dominant_systems(n, seed):
    """Property: the Thomas algorithm matches NumPy on diagonally dominant systems."""
    rng = np.random.default_rng(seed)
    lower = rng.uniform(-1, 1, n)
    upper = rng.uniform(-1, 1, n)
    diagonal = 3.0 + rng.uniform(0, 1, n)
    rhs = rng.uniform(-5, 5, n)
    expected = np.linalg.solve(_dense(lower, diagonal, upper), rhs)
    assert np.allclose(solve_tridiagonal(lower, diagonal, upper, rhs), expected, atol=1e-9)
