"""Tests for repro.numerics.quadrature."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.quadrature import (
    gauss_legendre_nodes,
    integrate_function,
    integrate_samples,
    simpson_weights,
    trapezoid_weights,
)


class TestTrapezoidWeights:
    def test_weights_sum_to_interval_length(self):
        grid = np.linspace(0.0, 1.0, 17)
        assert np.isclose(trapezoid_weights(grid).sum(), 1.0)

    def test_exact_for_linear_functions(self):
        grid = np.linspace(0.0, 2.0, 9)
        weights = trapezoid_weights(grid)
        assert np.isclose(weights @ (3.0 * grid + 1.0), 3.0 * 2.0 + 2.0)

    def test_non_uniform_grid(self):
        grid = np.array([0.0, 0.1, 0.5, 1.0])
        weights = trapezoid_weights(grid)
        assert np.isclose(weights.sum(), 1.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            trapezoid_weights(np.array([0.5]))


class TestSimpsonWeights:
    def test_exact_for_cubics_on_even_interval_count(self):
        grid = np.linspace(0.0, 1.0, 11)
        weights = simpson_weights(grid)
        # Simpson integrates cubics exactly.
        assert np.isclose(weights @ grid**3, 0.25, atol=1e-12)

    def test_odd_interval_count_still_reasonable(self):
        grid = np.linspace(0.0, 1.0, 10)
        weights = simpson_weights(grid)
        assert np.isclose(weights @ grid**2, 1.0 / 3.0, atol=1e-3)

    def test_rejects_non_uniform_grid(self):
        with pytest.raises(ValueError):
            simpson_weights(np.array([0.0, 0.1, 0.5, 1.0]))

    def test_two_points_fall_back_to_trapezoid(self):
        grid = np.array([0.0, 1.0])
        assert np.allclose(simpson_weights(grid), [0.5, 0.5])


class TestGaussLegendre:
    def test_exactness_for_high_degree_polynomials(self):
        nodes, weights = gauss_legendre_nodes(5, 0.0, 1.0)
        # 5-point Gauss-Legendre is exact through degree 9.
        assert np.isclose(weights @ nodes**9, 1.0 / 10.0, atol=1e-12)

    def test_interval_mapping(self):
        nodes, weights = gauss_legendre_nodes(8, 2.0, 6.0)
        assert np.all((nodes > 2.0) & (nodes < 6.0))
        assert np.isclose(weights.sum(), 4.0)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            gauss_legendre_nodes(0)


class TestIntegrateSamples:
    def test_trapezoid_rule_by_name(self):
        grid = np.linspace(0.0, np.pi, 201)
        assert np.isclose(integrate_samples(np.sin(grid), grid), 2.0, atol=1e-3)

    def test_simpson_rule_by_name(self):
        grid = np.linspace(0.0, np.pi, 201)
        assert np.isclose(integrate_samples(np.sin(grid), grid, rule="simpson"), 2.0, atol=1e-8)

    def test_unknown_rule(self):
        grid = np.linspace(0.0, 1.0, 5)
        with pytest.raises(ValueError):
            integrate_samples(grid, grid, rule="midpoint")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            integrate_samples(np.ones(3), np.linspace(0, 1, 4))


class TestIntegrateFunction:
    def test_gaussian_density_integrates_to_one(self):
        sigma = 0.02
        def density(x):
            return np.exp(-0.5 * ((x - 0.15) / sigma) ** 2) / (sigma * np.sqrt(2 * np.pi))
        value = integrate_function(density, 0.0, 1.0, order=32, pieces=8)
        assert np.isclose(value, 1.0, atol=1e-6)

    def test_piecewise_refinement_helps_narrow_features(self):
        sigma = 0.005
        def density(x):
            return np.exp(-0.5 * ((x - 0.5) / sigma) ** 2)
        coarse = integrate_function(density, 0.0, 1.0, order=8, pieces=1)
        fine = integrate_function(density, 0.0, 1.0, order=8, pieces=64)
        exact = sigma * np.sqrt(2 * np.pi)
        assert abs(fine - exact) < abs(coarse - exact)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            integrate_function(np.sin, 1.0, 0.0)


@settings(max_examples=50, deadline=None)
@given(
    coefficients=st.lists(st.floats(-5, 5), min_size=3, max_size=3),
    num_points=st.integers(min_value=5, max_value=99),
)
def test_simpson_exact_for_random_quadratics(coefficients, num_points):
    """Property: composite Simpson integrates any quadratic exactly on even grids."""
    if num_points % 2 == 0:
        num_points += 1  # ensure an even number of intervals
    a, b, c = coefficients
    grid = np.linspace(0.0, 1.0, num_points)
    weights = simpson_weights(grid)
    values = a * grid**2 + b * grid + c
    exact = a / 3.0 + b / 2.0 + c
    assert np.isclose(weights @ values, exact, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=30))
def test_trapezoid_weights_are_positive_and_sum_to_span(increments):
    """Property: trapezoid weights are positive and sum to the grid span."""
    grid = np.concatenate([[0.0], np.cumsum(increments)])
    weights = trapezoid_weights(grid)
    assert np.all(weights > 0)
    assert np.isclose(weights.sum(), grid[-1] - grid[0])
