"""Tests for repro.numerics.nelder_mead."""

import numpy as np
import pytest

from repro.numerics.nelder_mead import minimize_nelder_mead


class TestNelderMead:
    def test_quadratic_bowl(self):
        result = minimize_nelder_mead(lambda x: float(np.sum((x - 3.0) ** 2)), np.zeros(3))
        assert result.converged
        assert np.allclose(result.x, 3.0, atol=1e-4)

    def test_rosenbrock_two_dimensional(self):
        def rosenbrock(x):
            return float(100.0 * (x[1] - x[0] ** 2) ** 2 + (1.0 - x[0]) ** 2)

        result = minimize_nelder_mead(rosenbrock, np.array([-1.2, 1.0]), max_iterations=5000)
        assert np.allclose(result.x, [1.0, 1.0], atol=1e-3)

    def test_one_dimensional(self):
        result = minimize_nelder_mead(lambda x: float((x[0] - 2.5) ** 4 + 1.0), np.array([0.0]))
        assert result.x[0] == pytest.approx(2.5, abs=1e-2)
        assert result.fun == pytest.approx(1.0, abs=1e-6)

    def test_respects_iteration_cap(self):
        result = minimize_nelder_mead(
            lambda x: float(np.sum(x**2)), np.full(4, 10.0), max_iterations=3
        )
        assert not result.converged
        assert result.iterations <= 3

    def test_reports_function_evaluations(self):
        calls = {"count": 0}

        def objective(x):
            calls["count"] += 1
            return float(np.sum(x**2))

        result = minimize_nelder_mead(objective, np.ones(2))
        assert result.function_evaluations == calls["count"]

    def test_per_coordinate_initial_step(self):
        result = minimize_nelder_mead(
            lambda x: float((x[0] - 1.0) ** 2 + (x[1] - 100.0) ** 2),
            np.array([0.0, 0.0]),
            initial_step=[0.5, 50.0],
            max_iterations=4000,
        )
        assert np.allclose(result.x, [1.0, 100.0], rtol=1e-3, atol=1e-2)

    def test_zero_step_replaced(self):
        result = minimize_nelder_mead(
            lambda x: float(np.sum((x - 1.0) ** 2)), np.zeros(2), initial_step=0.0
        )
        assert np.allclose(result.x, 1.0, atol=1e-3)
