"""Edge-case tests for the stacked multi-RHS QP engine.

Covers :meth:`repro.numerics.qp.QPWorkspace.solve_batch` (shared
factorization, batched KKT verification, adaptive active-set fallback) and
:func:`repro.numerics.qp.kkt_solve_diagonal_batch` against the serial
active-set solver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.numerics.qp import (
    QPWorkspace,
    QuadraticProgram,
    kkt_solve_diagonal_batch,
)


def make_workspace(rng, n=10, num_eq=2, positivity=True):
    factor = rng.normal(size=(n + 4, n))
    hessian = factor.T @ factor + 0.5 * np.eye(n)
    eq = rng.normal(size=(num_eq, n)) if num_eq else None
    program = QuadraticProgram(
        hessian=hessian,
        gradient=np.zeros(n),
        eq_matrix=eq,
        eq_vector=np.zeros(num_eq) if num_eq else None,
        ineq_matrix=np.eye(n) if positivity else None,
        ineq_vector=np.zeros(n) if positivity else None,
    )
    return QPWorkspace(program)


@pytest.fixture()
def workspace(rng):
    return make_workspace(rng)


class TestSolveBatch:
    def test_matches_serial_solves(self, workspace, rng):
        gradients = rng.normal(size=(25, workspace.num_variables))
        batch = workspace.solve_batch(gradients)
        assert batch.num_problems == 25
        for index in range(25):
            serial = workspace.solve(gradients[index])
            assert serial.converged and batch.converged[index]
            np.testing.assert_allclose(batch.x[index], serial.x, atol=1e-10)
            assert batch.result(index).active_set == serial.active_set

    def test_unconstrained_rows_avoid_fallback(self, rng):
        """Rows whose equality-only optimum is feasible never hit the loop."""
        ws = make_workspace(rng, positivity=False)
        gradients = rng.normal(size=(12, ws.num_variables))
        batch = ws.solve_batch(gradients)
        assert batch.num_fallback == 0
        assert np.all(batch.iterations == 0)
        for index in range(12):
            np.testing.assert_allclose(
                batch.x[index], ws.solve(gradients[index]).x, atol=1e-10
            )

    def test_all_rows_active_fallback(self, workspace, rng):
        """Every row violating positivity still converges via the fallback."""
        # Strongly positive gradients push the unconstrained optimum negative,
        # so the equality-only candidate fails verification on every row.
        gradients = np.abs(rng.normal(size=(8, workspace.num_variables))) + 1.0
        batch = workspace.solve_batch(gradients)
        assert np.all(batch.converged)
        # At least the first row fell back (the rest may verify against the
        # first row's discovered set — the adaptive re-batching).
        assert batch.num_fallback >= 1
        for index in range(8):
            serial = workspace.solve(gradients[index])
            np.testing.assert_allclose(batch.x[index], serial.x, atol=1e-10)
            assert len(batch.active_sets[index]) > 0

    def test_shared_active_set_short_circuits(self, workspace, rng):
        gradient = np.abs(rng.normal(size=workspace.num_variables)) + 1.0
        base = workspace.solve(gradient)
        perturbed = gradient[None, :] + 1e-4 * rng.normal(
            size=(20, workspace.num_variables)
        )
        batch = workspace.solve_batch(perturbed, shared_active_set=base.active_set)
        # Nearby gradients keep the base active set: verification accepts
        # (nearly) every row without entering the active-set loop.
        assert batch.num_fallback <= 2
        for index in range(20):
            np.testing.assert_allclose(
                batch.x[index], workspace.solve(perturbed[index]).x, atol=1e-10
            )

    def test_bogus_shared_set_is_harmless(self, workspace, rng):
        gradients = rng.normal(size=(5, workspace.num_variables))
        reference = workspace.solve_batch(gradients)
        batch = workspace.solve_batch(
            gradients, shared_active_set=[-3, 99, 0, 0, 1]
        )
        np.testing.assert_allclose(batch.x, reference.x, atol=1e-10)
        assert np.all(batch.converged)

    def test_empty_batch(self, workspace):
        batch = workspace.solve_batch(np.zeros((0, workspace.num_variables)))
        assert batch.num_problems == 0
        assert batch.num_fallback == 0
        assert batch.active_sets == []

    def test_single_row_batch(self, workspace, rng):
        gradient = rng.normal(size=workspace.num_variables)
        batch = workspace.solve_batch(gradient[None, :])
        serial = workspace.solve(gradient)
        np.testing.assert_allclose(batch.x[0], serial.x, atol=1e-10)
        assert batch.result(0).converged

    def test_objectives_match_problem_objective(self, workspace, rng):
        gradients = rng.normal(size=(6, workspace.num_variables))
        batch = workspace.solve_batch(gradients)
        for index in range(6):
            expected = 0.5 * batch.x[index] @ workspace.hessian @ batch.x[index]
            expected += gradients[index] @ batch.x[index]
            assert batch.objectives[index] == pytest.approx(expected, rel=1e-12)

    def test_bad_shapes_rejected(self, workspace):
        with pytest.raises(ValueError):
            workspace.solve_batch(np.zeros(workspace.num_variables))
        with pytest.raises(ValueError):
            workspace.solve_batch(np.zeros((3, workspace.num_variables + 1)))

    def test_workspace_still_solves_serially_after_batch(self, workspace, rng):
        """The batch pass does not corrupt the workspace's incremental QR."""
        gradients = rng.normal(size=(4, workspace.num_variables))
        workspace.solve_batch(gradients)
        serial = workspace.solve(gradients[0])
        assert serial.converged
        fresh = make_workspace(np.random.default_rng(0))
        # Not comparable numerically (different rng), just exercising state.
        assert fresh.solve_batch(gradients[:1]).num_problems == 1


class TestDiagonalKKTBatch:
    def test_matches_equality_pinned_workspace_solves(self, rng):
        n, num_problems = 9, 7
        diagonals = rng.uniform(0.5, 4.0, size=(num_problems, n))
        gradient = rng.normal(size=n)
        columns = rng.normal(size=(3, n))
        rhs = np.zeros(3)
        solutions, multipliers = kkt_solve_diagonal_batch(
            diagonals, gradient, columns, rhs, 1
        )
        assert multipliers.shape == (num_problems, 2)
        for row in range(num_problems):
            reference = QPWorkspace(
                QuadraticProgram(
                    hessian=np.diag(diagonals[row]),
                    gradient=gradient,
                    eq_matrix=columns,
                    eq_vector=rhs,
                )
            ).solve(gradient)
            np.testing.assert_allclose(solutions[row], reference.x, atol=1e-10)

    def test_no_constraints_is_elementwise(self, rng):
        diagonals = rng.uniform(1.0, 2.0, size=(4, 6))
        gradient = rng.normal(size=6)
        solutions, multipliers = kkt_solve_diagonal_batch(
            diagonals, gradient, np.zeros((0, 6)), np.zeros(0), 0
        )
        np.testing.assert_allclose(solutions, -gradient[None, :] / diagonals)
        assert multipliers.shape == (4, 0)

    def test_singular_working_set_raises(self, rng):
        diagonals = rng.uniform(1.0, 2.0, size=(2, 5))
        row = rng.normal(size=5)
        columns = np.vstack([row, row])  # dependent rows -> singular Schur
        with pytest.raises(np.linalg.LinAlgError):
            kkt_solve_diagonal_batch(
                diagonals, rng.normal(size=5), columns, np.zeros(2), 0
            )
