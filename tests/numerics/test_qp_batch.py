"""Edge-case tests for the stacked multi-RHS QP engine.

Covers :meth:`repro.numerics.qp.QPWorkspace.solve_batch` (shared
factorization, batched KKT verification, adaptive active-set fallback) and
:func:`repro.numerics.qp.kkt_solve_diagonal_batch` against the serial
active-set solver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.numerics.qp import (
    MixedLambdaEigPlan,
    QPWorkspace,
    QuadraticProgram,
    kkt_solve_diagonal_batch,
)


def make_workspace(rng, n=10, num_eq=2, positivity=True):
    factor = rng.normal(size=(n + 4, n))
    hessian = factor.T @ factor + 0.5 * np.eye(n)
    eq = rng.normal(size=(num_eq, n)) if num_eq else None
    program = QuadraticProgram(
        hessian=hessian,
        gradient=np.zeros(n),
        eq_matrix=eq,
        eq_vector=np.zeros(num_eq) if num_eq else None,
        ineq_matrix=np.eye(n) if positivity else None,
        ineq_vector=np.zeros(n) if positivity else None,
    )
    return QPWorkspace(program)


@pytest.fixture()
def workspace(rng):
    return make_workspace(rng)


class TestSolveBatch:
    def test_matches_serial_solves(self, workspace, rng):
        gradients = rng.normal(size=(25, workspace.num_variables))
        batch = workspace.solve_batch(gradients)
        assert batch.num_problems == 25
        for index in range(25):
            serial = workspace.solve(gradients[index])
            assert serial.converged and batch.converged[index]
            np.testing.assert_allclose(batch.x[index], serial.x, atol=1e-10)
            assert batch.result(index).active_set == serial.active_set

    def test_unconstrained_rows_avoid_fallback(self, rng):
        """Rows whose equality-only optimum is feasible never hit the loop."""
        ws = make_workspace(rng, positivity=False)
        gradients = rng.normal(size=(12, ws.num_variables))
        batch = ws.solve_batch(gradients)
        assert batch.num_fallback == 0
        assert np.all(batch.iterations == 0)
        for index in range(12):
            np.testing.assert_allclose(
                batch.x[index], ws.solve(gradients[index]).x, atol=1e-10
            )

    def test_all_rows_active_fallback(self, workspace, rng):
        """Every row violating positivity still converges via the fallback."""
        # Strongly positive gradients push the unconstrained optimum negative,
        # so the equality-only candidate fails verification on every row.
        gradients = np.abs(rng.normal(size=(8, workspace.num_variables))) + 1.0
        batch = workspace.solve_batch(gradients)
        assert np.all(batch.converged)
        # At least the first row fell back (the rest may verify against the
        # first row's discovered set — the adaptive re-batching).
        assert batch.num_fallback >= 1
        for index in range(8):
            serial = workspace.solve(gradients[index])
            np.testing.assert_allclose(batch.x[index], serial.x, atol=1e-10)
            assert len(batch.active_sets[index]) > 0

    def test_shared_active_set_short_circuits(self, workspace, rng):
        gradient = np.abs(rng.normal(size=workspace.num_variables)) + 1.0
        base = workspace.solve(gradient)
        perturbed = gradient[None, :] + 1e-4 * rng.normal(
            size=(20, workspace.num_variables)
        )
        batch = workspace.solve_batch(perturbed, shared_active_set=base.active_set)
        # Nearby gradients keep the base active set: verification accepts
        # (nearly) every row without entering the active-set loop.
        assert batch.num_fallback <= 2
        for index in range(20):
            np.testing.assert_allclose(
                batch.x[index], workspace.solve(perturbed[index]).x, atol=1e-10
            )

    def test_bogus_shared_set_is_harmless(self, workspace, rng):
        gradients = rng.normal(size=(5, workspace.num_variables))
        reference = workspace.solve_batch(gradients)
        batch = workspace.solve_batch(
            gradients, shared_active_set=[-3, 99, 0, 0, 1]
        )
        np.testing.assert_allclose(batch.x, reference.x, atol=1e-10)
        assert np.all(batch.converged)

    def test_empty_batch(self, workspace):
        batch = workspace.solve_batch(np.zeros((0, workspace.num_variables)))
        assert batch.num_problems == 0
        assert batch.num_fallback == 0
        assert batch.active_sets == []

    def test_single_row_batch(self, workspace, rng):
        gradient = rng.normal(size=workspace.num_variables)
        batch = workspace.solve_batch(gradient[None, :])
        serial = workspace.solve(gradient)
        np.testing.assert_allclose(batch.x[0], serial.x, atol=1e-10)
        assert batch.result(0).converged

    def test_objectives_match_problem_objective(self, workspace, rng):
        gradients = rng.normal(size=(6, workspace.num_variables))
        batch = workspace.solve_batch(gradients)
        for index in range(6):
            expected = 0.5 * batch.x[index] @ workspace.hessian @ batch.x[index]
            expected += gradients[index] @ batch.x[index]
            assert batch.objectives[index] == pytest.approx(expected, rel=1e-12)

    def test_bad_shapes_rejected(self, workspace):
        with pytest.raises(ValueError):
            workspace.solve_batch(np.zeros(workspace.num_variables))
        with pytest.raises(ValueError):
            workspace.solve_batch(np.zeros((3, workspace.num_variables + 1)))

    def test_workspace_still_solves_serially_after_batch(self, workspace, rng):
        """The batch pass does not corrupt the workspace's incremental QR."""
        gradients = rng.normal(size=(4, workspace.num_variables))
        workspace.solve_batch(gradients)
        serial = workspace.solve(gradients[0])
        assert serial.converged
        fresh = make_workspace(np.random.default_rng(0))
        # Not comparable numerically (different rng), just exercising state.
        assert fresh.solve_batch(gradients[:1]).num_problems == 1


class TestDiagonalKKTBatch:
    def test_matches_equality_pinned_workspace_solves(self, rng):
        n, num_problems = 9, 7
        diagonals = rng.uniform(0.5, 4.0, size=(num_problems, n))
        gradient = rng.normal(size=n)
        columns = rng.normal(size=(3, n))
        rhs = np.zeros(3)
        solutions, multipliers = kkt_solve_diagonal_batch(
            diagonals, gradient, columns, rhs, 1
        )
        assert multipliers.shape == (num_problems, 2)
        for row in range(num_problems):
            reference = QPWorkspace(
                QuadraticProgram(
                    hessian=np.diag(diagonals[row]),
                    gradient=gradient,
                    eq_matrix=columns,
                    eq_vector=rhs,
                )
            ).solve(gradient)
            np.testing.assert_allclose(solutions[row], reference.x, atol=1e-10)

    def test_no_constraints_is_elementwise(self, rng):
        diagonals = rng.uniform(1.0, 2.0, size=(4, 6))
        gradient = rng.normal(size=6)
        solutions, multipliers = kkt_solve_diagonal_batch(
            diagonals, gradient, np.zeros((0, 6)), np.zeros(0), 0
        )
        np.testing.assert_allclose(solutions, -gradient[None, :] / diagonals)
        assert multipliers.shape == (4, 0)

    def test_singular_working_set_raises(self, rng):
        diagonals = rng.uniform(1.0, 2.0, size=(2, 5))
        row = rng.normal(size=5)
        columns = np.vstack([row, row])  # dependent rows -> singular Schur
        with pytest.raises(np.linalg.LinAlgError):
            kkt_solve_diagonal_batch(
                diagonals, rng.normal(size=5), columns, np.zeros(2), 0
            )


def make_pencil(rng, n=9, ridge=1e-8):
    """A deconvolution-shaped (gram, penalty) pair: PD gram, PSD penalty."""
    factor = rng.normal(size=(n + 5, n))
    gram = factor.T @ factor + 0.5 * np.eye(n)
    differences = np.diff(np.eye(n), 2, axis=0)
    penalty = differences.T @ differences
    return gram, penalty, ridge


def full_hessian(gram, penalty, ridge, lam):
    return 2.0 * gram + float(ridge) * np.eye(gram.shape[0]) + 2.0 * lam * penalty


class TestMixedLambdaEigPlan:
    def test_unconstrained_rows_match_dense_solves(self, rng):
        gram, penalty, ridge = make_pencil(rng)
        lams = np.array([0.03, 0.3, 1.0, 7.0])
        plan = MixedLambdaEigPlan(gram, penalty, ridge, 1.0)
        gradients = rng.normal(size=(lams.size, gram.shape[0]))
        solutions, objectives, active_sets = plan.solve(lams, gradients)
        for row, lam in enumerate(lams):
            assert active_sets[row] == []
            hessian = full_hessian(gram, penalty, ridge, lam)
            expected = np.linalg.solve(hessian, -gradients[row])
            np.testing.assert_allclose(solutions[row], expected, atol=1e-10)
            assert objectives[row] == pytest.approx(
                0.5 * expected @ hessian @ expected + gradients[row] @ expected,
                rel=1e-10,
                abs=1e-12,
            )

    def test_constrained_rows_match_active_set_solver(self, rng):
        from repro.numerics.qp import solve_qp_active_set

        gram, penalty, ridge = make_pencil(rng)
        n = gram.shape[0]
        eq = np.ones((1, n))
        ineq = np.eye(n)
        lams = np.array([0.2, 0.5, 2.0, 5.0])
        plan = MixedLambdaEigPlan(
            gram,
            penalty,
            ridge,
            1.0,
            eq_matrix=eq,
            eq_vector=np.ones(1),
            ineq_matrix=ineq,
            ineq_vector=np.zeros(n),
        )
        # Push some unconstrained optima negative so positivity binds.
        gradients = np.abs(rng.normal(size=(lams.size, n))) + 0.5
        gradients[0] = rng.normal(size=n)  # likely interior row
        references = []
        for row, lam in enumerate(lams):
            program = QuadraticProgram(
                hessian=full_hessian(gram, penalty, ridge, lam),
                gradient=gradients[row],
                eq_matrix=eq,
                eq_vector=np.ones(1),
                ineq_matrix=ineq,
                ineq_vector=np.zeros(n),
            )
            references.append(solve_qp_active_set(program, x0=np.ones(n) / n))
        # Seed the candidate queue with the reference working sets, then a
        # second pass must confirm every row in the stacked path.
        for reference in references:
            plan.remember(reference.active_set)
        solutions, _objectives, active_sets = plan.solve(lams, gradients)
        for row, reference in enumerate(references):
            assert active_sets[row] is not None
            assert sorted(active_sets[row]) == sorted(reference.active_set)
            np.testing.assert_allclose(solutions[row], reference.x, atol=1e-9)

    def test_unmatched_rows_are_rejected_not_guessed(self, rng):
        gram, penalty, ridge = make_pencil(rng)
        n = gram.shape[0]
        plan = MixedLambdaEigPlan(
            gram,
            penalty,
            ridge,
            1.0,
            ineq_matrix=np.eye(n),
            ineq_vector=np.zeros(n),
        )
        # Positivity binds (positive gradients push the optimum negative)
        # and only the empty candidate set is known: every binding row must
        # come back rejected rather than silently infeasible.
        gradients = np.abs(rng.normal(size=(3, n))) + 1.0
        _solutions, _objectives, active_sets = plan.solve(
            np.array([0.5, 1.0, 2.0]), gradients
        )
        assert all(active is None for active in active_sets)

    def test_remember_is_deduplicated_and_bounded(self, rng):
        gram, penalty, ridge = make_pencil(rng)
        plan = MixedLambdaEigPlan(gram, penalty, ridge, 1.0)
        for index in range(2 * plan.MAX_REMEMBERED):
            plan.remember((index % (plan.MAX_REMEMBERED + 1),))
            plan.remember((index % (plan.MAX_REMEMBERED + 1),))
        assert len(plan._remembered) <= plan.MAX_REMEMBERED
        assert len(set(plan._remembered)) == len(plan._remembered)
        # Candidate order: guess first, then remembered, then the empty set.
        candidates = plan.candidate_sets((3, 1))
        assert candidates[0] == (1, 3)
        assert candidates[-1] == ()

    def test_negative_lambda_raises(self, rng):
        gram, penalty, ridge = make_pencil(rng)
        plan = MixedLambdaEigPlan(gram, penalty, ridge, 1.0)
        with pytest.raises(np.linalg.LinAlgError):
            plan.diagonals(np.array([1.0, -50.0]))

    def test_wide_lambda_spread_trips_conditioning_guard(self, rng):
        """Lambdas decades below the shift fall back instead of losing digits.

        The diagonal ``2 (1 + (lam - c) mu)`` cancels toward zero when
        ``lam << c`` on the stiffest eigenmodes, so those rows must be
        rejected for the exact per-group path rather than solved with lost
        digits.
        """
        gram, penalty, ridge = make_pencil(rng)
        plan = MixedLambdaEigPlan(gram, penalty, ridge, 1e4)
        lams = np.array([1e4, 1e-7])
        gradients = rng.normal(size=(2, gram.shape[0]))
        _solutions, _objectives, active_sets = plan.solve(lams, gradients)
        assert active_sets[0] == []  # on-shift row stays stacked
        assert active_sets[1] is None  # cancelling row is rejected for accuracy
