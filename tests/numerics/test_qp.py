"""Tests for repro.numerics.qp (active-set quadratic programming)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.qp import QuadraticProgram, solve_qp, solve_qp_active_set


def _simple_problem(**kwargs):
    """min 0.5 (x0^2 + x1^2) - x0 - 2 x1 -> unconstrained optimum (1, 2)."""
    return QuadraticProgram(
        hessian=np.eye(2),
        gradient=np.array([-1.0, -2.0]),
        **kwargs,
    )


class TestQuadraticProgram:
    def test_objective_value(self):
        problem = _simple_problem()
        assert problem.objective(np.array([1.0, 2.0])) == pytest.approx(-2.5)

    def test_rejects_asymmetric_hessian(self):
        with pytest.raises(ValueError):
            QuadraticProgram(hessian=np.array([[1.0, 2.0], [0.0, 1.0]]), gradient=np.zeros(2))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            QuadraticProgram(hessian=np.eye(3), gradient=np.zeros(2))

    def test_constraint_pairing_enforced(self):
        with pytest.raises(ValueError):
            QuadraticProgram(hessian=np.eye(2), gradient=np.zeros(2), eq_matrix=np.eye(2))

    def test_feasibility_check(self):
        problem = _simple_problem(ineq_matrix=np.array([[1.0, 0.0]]), ineq_vector=np.array([0.0]))
        assert problem.is_feasible(np.array([1.0, 0.0]))
        assert not problem.is_feasible(np.array([-1.0, 0.0]))


class TestActiveSetSolver:
    def test_unconstrained_optimum(self):
        result = solve_qp_active_set(_simple_problem())
        assert result.converged
        assert np.allclose(result.x, [1.0, 2.0], atol=1e-8)

    def test_equality_constrained(self):
        # min 0.5||x||^2 - [1,2].x  s.t. x0 + x1 = 1 -> x = (0, 1)
        problem = _simple_problem(
            eq_matrix=np.array([[1.0, 1.0]]), eq_vector=np.array([1.0])
        )
        result = solve_qp_active_set(problem, x0=np.array([0.5, 0.5]))
        assert result.converged
        assert np.allclose(result.x, [0.0, 1.0], atol=1e-8)

    def test_inactive_inequality_ignored(self):
        problem = _simple_problem(
            ineq_matrix=np.array([[1.0, 0.0]]), ineq_vector=np.array([-10.0])
        )
        result = solve_qp_active_set(problem)
        assert np.allclose(result.x, [1.0, 2.0], atol=1e-8)

    def test_active_inequality_binds(self):
        # Constrain x1 <= 1 via -x1 >= -1; optimum moves to (1, 1).
        problem = _simple_problem(
            ineq_matrix=np.array([[0.0, -1.0]]), ineq_vector=np.array([-1.0])
        )
        result = solve_qp_active_set(problem)
        assert result.converged
        assert np.allclose(result.x, [1.0, 1.0], atol=1e-8)
        assert result.active_set == [0]

    def test_box_constrained_corner(self):
        # min 0.5||x - (2, 3)||^2 subject to x <= 1 componentwise -> (1, 1).
        problem = QuadraticProgram(
            hessian=np.eye(2),
            gradient=np.array([-2.0, -3.0]),
            ineq_matrix=-np.eye(2),
            ineq_vector=-np.ones(2),
        )
        result = solve_qp_active_set(problem)
        assert result.converged
        assert np.allclose(result.x, [1.0, 1.0], atol=1e-8)

    def test_infeasible_start_rejected(self):
        problem = _simple_problem(
            ineq_matrix=np.array([[1.0, 0.0]]), ineq_vector=np.array([5.0])
        )
        with pytest.raises(ValueError):
            solve_qp_active_set(problem, x0=np.zeros(2))

    def test_degenerate_start_with_many_active_rows(self):
        # Positivity on many coordinates starting from zero (all rows active):
        # the solver must still reach the clipped optimum.
        n = 8
        target = np.array([1.0, -2.0, 3.0, -0.5, 0.7, -1.2, 0.0, 2.5])
        problem = QuadraticProgram(
            hessian=np.eye(n),
            gradient=-target,
            ineq_matrix=np.eye(n),
            ineq_vector=np.zeros(n),
        )
        result = solve_qp_active_set(problem, x0=np.zeros(n))
        assert result.converged
        assert np.allclose(result.x, np.maximum(target, 0.0), atol=1e-7)

    def test_matches_scipy_backend_on_mixed_problem(self):
        rng = np.random.default_rng(3)
        n = 6
        root = rng.normal(size=(n, n))
        hessian = root @ root.T + n * np.eye(n)
        gradient = rng.normal(size=n)
        problem = QuadraticProgram(
            hessian=hessian,
            gradient=gradient,
            eq_matrix=np.ones((1, n)),
            eq_vector=np.zeros(1),
            ineq_matrix=np.eye(n),
            ineq_vector=-np.ones(n),
        )
        ours = solve_qp(problem, backend="active_set", x0=np.zeros(n))
        scipy_result = solve_qp(problem, backend="scipy", x0=np.zeros(n))
        assert ours.converged and scipy_result.converged
        assert ours.objective == pytest.approx(scipy_result.objective, rel=1e-5, abs=1e-8)

    def test_auto_backend_returns_feasible_solution(self):
        problem = _simple_problem(
            ineq_matrix=np.array([[0.0, -1.0]]), ineq_vector=np.array([-1.0])
        )
        result = solve_qp(problem, backend="auto")
        assert problem.is_feasible(result.x)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            solve_qp(_simple_problem(), backend="cvxpy")


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), n=st.integers(min_value=2, max_value=8))
def test_active_set_never_beats_unconstrained_and_stays_feasible(seed, n):
    """Property: the constrained optimum is feasible and no better than unconstrained."""
    rng = np.random.default_rng(seed)
    root = rng.normal(size=(n, n))
    hessian = root @ root.T + n * np.eye(n)
    gradient = rng.normal(size=n)
    problem = QuadraticProgram(
        hessian=hessian,
        gradient=gradient,
        ineq_matrix=np.eye(n),
        ineq_vector=np.zeros(n),
    )
    result = solve_qp_active_set(problem, x0=np.full(n, 1.0))
    assert result.converged
    assert problem.is_feasible(result.x, tol=1e-6)
    unconstrained = np.linalg.solve(hessian, -gradient)
    assert problem.objective(result.x) >= problem.objective(unconstrained) - 1e-8
