"""Tests for repro.numerics.interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.interpolate import CubicSpline

from repro.numerics.interpolation import LinearInterpolator, NaturalCubicSpline


class TestLinearInterpolator:
    def test_reproduces_nodes(self):
        x = np.array([0.0, 0.5, 1.0])
        y = np.array([1.0, 3.0, 2.0])
        interp = LinearInterpolator(x, y)
        assert np.allclose(interp(x), y)

    def test_midpoint_value(self):
        interp = LinearInterpolator([0.0, 1.0], [0.0, 2.0])
        assert interp(0.5) == pytest.approx(1.0)

    def test_scalar_in_scalar_out(self):
        interp = LinearInterpolator([0.0, 1.0], [0.0, 2.0])
        assert isinstance(interp(0.25), float)

    def test_clamped_extrapolation(self):
        interp = LinearInterpolator([0.0, 1.0], [1.0, 2.0])
        assert interp(-1.0) == pytest.approx(1.0)
        assert interp(2.0) == pytest.approx(2.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearInterpolator([0.0, 1.0], [1.0, 2.0, 3.0])


class TestNaturalCubicSpline:
    def test_interpolates_knot_values(self):
        knots = np.linspace(0.0, 1.0, 7)
        values = np.sin(2 * np.pi * knots)
        spline = NaturalCubicSpline(knots, values)
        assert np.allclose(spline(knots), values, atol=1e-12)

    def test_matches_scipy_natural_spline(self):
        knots = np.linspace(0.0, 1.0, 9)
        values = np.cos(3 * knots) + knots**2
        ours = NaturalCubicSpline(knots, values)
        reference = CubicSpline(knots, values, bc_type="natural")
        query = np.linspace(0.0, 1.0, 101)
        assert np.allclose(ours(query), reference(query), atol=1e-10)
        assert np.allclose(ours.derivative(query), reference(query, 1), atol=1e-8)
        assert np.allclose(ours.second_derivative(query), reference(query, 2), atol=1e-8)

    def test_natural_boundary_conditions(self):
        knots = np.linspace(0.0, 1.0, 8)
        values = np.exp(knots)
        spline = NaturalCubicSpline(knots, values)
        assert spline.second_derivative(0.0) == pytest.approx(0.0, abs=1e-10)
        assert spline.second_derivative(1.0) == pytest.approx(0.0, abs=1e-10)

    def test_linear_data_reproduced_exactly(self):
        knots = np.linspace(0.0, 2.0, 6)
        values = 3.0 * knots - 1.0
        spline = NaturalCubicSpline(knots, values)
        query = np.linspace(0.0, 2.0, 41)
        assert np.allclose(spline(query), 3.0 * query - 1.0, atol=1e-12)
        assert np.allclose(spline.derivative(query), 3.0, atol=1e-10)

    def test_integrate_matches_quadrature(self):
        knots = np.linspace(0.0, 1.0, 11)
        values = knots**2
        spline = NaturalCubicSpline(knots, values)
        fine = np.linspace(0.0, 1.0, 5001)
        assert spline.integrate() == pytest.approx(np.trapezoid(spline(fine), fine), abs=1e-6)

    def test_roughness_cross_symmetry_and_consistency(self):
        knots = np.linspace(0.0, 1.0, 6)
        spline_a = NaturalCubicSpline(knots, np.array([0.0, 1.0, 0.0, 2.0, 0.5, 0.0]))
        spline_b = NaturalCubicSpline(knots, np.array([1.0, 0.0, 3.0, 0.0, 1.0, 2.0]))
        ab = spline_a.roughness_cross(spline_b)
        ba = spline_b.roughness_cross(spline_a)
        assert ab == pytest.approx(ba)
        # Compare against brute-force quadrature of the product of second derivatives.
        fine = np.linspace(0.0, 1.0, 20001)
        product = spline_a.second_derivative(fine) * spline_b.second_derivative(fine)
        assert ab == pytest.approx(np.trapezoid(product, fine), rel=1e-4)

    def test_roughness_requires_same_knots(self):
        a = NaturalCubicSpline(np.linspace(0, 1, 5), np.zeros(5))
        b = NaturalCubicSpline(np.linspace(0, 1, 6), np.zeros(6))
        with pytest.raises(ValueError):
            a.roughness_cross(b)

    def test_too_few_knots_rejected(self):
        with pytest.raises(ValueError):
            NaturalCubicSpline(np.array([0.0, 1.0]), np.array([0.0, 1.0]))

    def test_invalid_derivative_order(self):
        spline = NaturalCubicSpline(np.linspace(0, 1, 4), np.zeros(4))
        with pytest.raises(ValueError):
            spline._evaluate(0.5, derivative=3)

    def test_scalar_evaluation_returns_float(self):
        spline = NaturalCubicSpline(np.linspace(0, 1, 4), np.arange(4.0))
        assert isinstance(spline(0.3), float)
        assert isinstance(spline.derivative(0.3), float)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.floats(-10, 10), min_size=4, max_size=12),
)
def test_spline_always_interpolates(values):
    """Property: a natural cubic spline reproduces its knot values exactly."""
    knots = np.linspace(0.0, 1.0, len(values))
    spline = NaturalCubicSpline(knots, np.asarray(values))
    assert np.allclose(spline(knots), values, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    slope=st.floats(-5, 5),
    intercept=st.floats(-5, 5),
    num_knots=st.integers(min_value=3, max_value=10),
)
def test_spline_roughness_zero_for_linear_data(slope, intercept, num_knots):
    """Property: linear data has exactly zero roughness (f'' == 0 everywhere)."""
    knots = np.linspace(0.0, 1.0, num_knots)
    spline = NaturalCubicSpline(knots, slope * knots + intercept)
    assert spline.roughness_cross(spline) == pytest.approx(0.0, abs=1e-9)
