"""Equivalence tests for the null-space QP workspace and warm-start path.

The warm-started, shared-factorization solver must agree with both the cold
active-set solve and SciPy's SLSQP on randomized convex QPs with equality and
inequality constraints (objectives within 1e-8).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.qp import (
    QPWorkspace,
    QuadraticProgram,
    solve_qp,
    solve_qp_active_set,
)


def _random_problem(rng, n, *, num_eq=0, num_ineq=None):
    """Random strictly convex QP with ``x = ones`` strictly feasible."""
    root = rng.normal(size=(n, n))
    hessian = root @ root.T + n * np.eye(n)
    gradient = 3.0 * rng.normal(size=n)
    feasible = np.ones(n)
    eq = rng.normal(size=(num_eq, n)) if num_eq else None
    eq_vector = eq @ feasible if num_eq else None
    num_ineq = 2 * n if num_ineq is None else num_ineq
    ineq = rng.normal(size=(num_ineq, n))
    ineq_vector = ineq @ feasible - rng.uniform(0.1, 2.0, size=num_ineq)
    return (
        QuadraticProgram(
            hessian=hessian,
            gradient=gradient,
            eq_matrix=eq,
            eq_vector=eq_vector,
            ineq_matrix=ineq,
            ineq_vector=ineq_vector,
        ),
        feasible,
    )


class TestHessianSymmetrization:
    def test_tolerable_asymmetry_is_repaired(self):
        hessian = np.eye(3)
        hessian[0, 1] = 1e-10
        program = QuadraticProgram(hessian=hessian, gradient=np.zeros(3))
        assert np.array_equal(program.hessian, program.hessian.T)
        assert program.hessian[0, 1] == pytest.approx(5e-11)

    def test_gross_asymmetry_still_rejected(self):
        hessian = np.eye(3)
        hessian[0, 1] = 1e-3
        with pytest.raises(ValueError):
            QuadraticProgram(hessian=hessian, gradient=np.zeros(3))

    def test_exactly_symmetric_hessian_kept_by_reference(self):
        hessian = np.eye(4)
        program = QuadraticProgram(hessian=hessian, gradient=np.zeros(4))
        assert program.hessian is hessian


class TestWarmStartEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_warm_matches_cold_and_scipy(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 10))
        problem, feasible = _random_problem(rng, n, num_eq=int(rng.integers(0, 2)))
        cold = solve_qp_active_set(problem, x0=feasible)
        reference = solve_qp(problem, feasible, backend="scipy")
        assert cold.converged
        warm = solve_qp_active_set(
            problem, x0=cold.x, active_set=cold.active_set
        )
        assert warm.converged
        assert problem.is_feasible(warm.x, tol=1e-7)
        assert warm.objective == pytest.approx(cold.objective, abs=1e-8)
        assert cold.objective == pytest.approx(reference.objective, rel=1e-6, abs=1e-8)

    def test_workspace_reused_across_gradients(self):
        rng = np.random.default_rng(11)
        problem, feasible = _random_problem(rng, 7, num_eq=1)
        workspace = QPWorkspace(problem)
        base = workspace.solve(x0=feasible)
        assert base.converged
        for _ in range(5):
            gradient = problem.gradient + 0.2 * rng.normal(size=7)
            warm = workspace.solve(gradient, x0=base.x, active_set=base.active_set)
            perturbed = QuadraticProgram(
                hessian=problem.hessian,
                gradient=gradient,
                eq_matrix=problem.eq_matrix,
                eq_vector=problem.eq_vector,
                ineq_matrix=problem.ineq_matrix,
                ineq_vector=problem.ineq_vector,
            )
            cold = solve_qp_active_set(perturbed, x0=feasible)
            assert warm.converged and cold.converged
            assert warm.objective == pytest.approx(cold.objective, abs=1e-8)

    def test_stale_active_set_is_filtered(self):
        """Warm-start indices that are inactive (or invalid) at x0 are dropped."""
        problem = QuadraticProgram(
            hessian=np.eye(3),
            gradient=np.array([-1.0, -2.0, -3.0]),
            ineq_matrix=np.eye(3),
            ineq_vector=np.zeros(3),
        )
        result = solve_qp_active_set(
            problem, x0=np.ones(3), active_set=[0, 1, 2, 99, -1]
        )
        assert result.converged
        assert np.allclose(result.x, [1.0, 2.0, 3.0], atol=1e-8)
        assert result.active_set == []

    def test_warm_start_from_other_lambda_like_hessian(self):
        """Warm starts remain correct when the Hessian changes between solves."""
        rng = np.random.default_rng(21)
        problem_a, feasible = _random_problem(rng, 6)
        hessian_b = problem_a.hessian + 0.5 * np.eye(6)
        problem_b = QuadraticProgram(
            hessian=hessian_b,
            gradient=problem_a.gradient,
            ineq_matrix=problem_a.ineq_matrix,
            ineq_vector=problem_a.ineq_vector,
        )
        first = solve_qp_active_set(problem_a, x0=feasible)
        warm = solve_qp_active_set(problem_b, x0=first.x, active_set=first.active_set)
        cold = solve_qp_active_set(problem_b, x0=feasible)
        assert warm.converged and cold.converged
        assert warm.objective == pytest.approx(cold.objective, abs=1e-8)

    def test_infeasible_warm_start_degrades_to_cold(self):
        """Best-effort warm starts: an infeasible (x0, active_set) pair from
        a fallback backend must not abort the sweep — the solve restarts
        cold from zero and still reaches the optimum."""
        problem = QuadraticProgram(
            hessian=np.eye(2),
            gradient=np.array([-1.0, -2.0]),
            ineq_matrix=np.eye(2),
            ineq_vector=np.zeros(2),
        )
        result = solve_qp_active_set(
            problem, x0=np.array([-1.0, 0.0]), active_set=[0]
        )
        assert result.converged
        assert np.allclose(result.x, [1.0, 2.0], atol=1e-8)

    def test_infeasible_bare_x0_still_rejected(self):
        problem = QuadraticProgram(
            hessian=np.eye(2),
            gradient=np.zeros(2),
            ineq_matrix=np.eye(2),
            ineq_vector=np.zeros(2),
        )
        with pytest.raises(ValueError):
            solve_qp_active_set(problem, x0=np.array([-1.0, 0.0]))


class TestDegenerateProblems:
    def test_degenerate_ties_do_not_cycle(self):
        """Duplicated constraint rows create degenerate pivots; the Bland
        safeguard must still reach the optimum."""
        rng = np.random.default_rng(5)
        n = 6
        root = rng.normal(size=(n, n))
        hessian = root @ root.T + n * np.eye(n)
        gradient = rng.normal(size=n)
        base_rows = rng.normal(size=(2 * n, n))
        rows = np.vstack([base_rows, base_rows, base_rows])  # exact duplicates
        feasible = np.ones(n)
        vector = rows @ feasible - np.tile(rng.uniform(0.0, 0.5, size=2 * n), 3)
        problem = QuadraticProgram(
            hessian=hessian, gradient=gradient, ineq_matrix=rows, ineq_vector=vector
        )
        result = solve_qp(problem, feasible, backend="auto")
        reference = solve_qp(problem, feasible, backend="scipy")
        assert problem.is_feasible(result.x, tol=1e-6)
        assert result.objective == pytest.approx(reference.objective, rel=1e-6, abs=1e-7)

    def test_redundant_equality_rows_tolerated(self):
        eq = np.array([[1.0, 1.0, 0.0], [2.0, 2.0, 0.0]])  # dependent rows
        problem = QuadraticProgram(
            hessian=np.eye(3),
            gradient=np.array([-1.0, -1.0, -1.0]),
            eq_matrix=eq,
            eq_vector=np.array([1.0, 2.0]),
        )
        result = solve_qp_active_set(problem, x0=np.array([0.5, 0.5, 0.0]))
        assert result.converged
        assert np.allclose(eq @ result.x, [1.0, 2.0], atol=1e-8)

    def test_dependent_equality_rows_keep_multiplier_bookkeeping_aligned(self):
        """With a skipped (dependent) equality row, inequality multipliers
        must still be examined against the factored equality count — the
        working-set inequality below must be released at the optimum."""
        problem = QuadraticProgram(
            hessian=np.eye(3),
            gradient=np.array([-1.0, -1.0, -1.0]),
            eq_matrix=np.array([[1.0, 0.0, 0.0], [2.0, 0.0, 0.0]]),
            eq_vector=np.zeros(2),
            ineq_matrix=np.array([[0.0, 1.0, 0.0]]),
            ineq_vector=np.array([0.5]),
        )
        start = np.array([0.0, 0.5, 0.0])
        for active_set in (None, [0]):
            result = solve_qp_active_set(problem, x0=start, active_set=active_set)
            assert result.converged
            assert np.allclose(result.x, [0.0, 1.0, 1.0], atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000), n=st.integers(min_value=2, max_value=9))
def test_warm_start_objective_never_worse_than_cold(seed, n):
    """Property: warm starts land on the same optimum as cold solves."""
    rng = np.random.default_rng(seed)
    problem, feasible = _random_problem(rng, n)
    cold = solve_qp_active_set(problem, x0=feasible)
    warm = solve_qp_active_set(problem, x0=cold.x, active_set=cold.active_set)
    assert cold.converged and warm.converged
    assert warm.objective == pytest.approx(cold.objective, abs=1e-8)
    assert warm.iterations <= cold.iterations
