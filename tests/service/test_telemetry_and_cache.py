"""Unit tests for the service telemetry hub and the content-addressed cache."""

import numpy as np
import pytest

from repro.service import Histogram, ResultCache, Telemetry, request_fingerprint


class TestHistogram:
    def test_summary_percentiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["max"] == 100.0

    def test_empty_summary(self):
        summary = Histogram().summary()
        assert summary == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}

    def test_decimation_keeps_counts(self):
        from repro.service import telemetry

        histogram = Histogram()
        for value in range(telemetry.MAX_OBSERVATIONS + 10):
            histogram.observe(float(value))
        assert histogram.count == telemetry.MAX_OBSERVATIONS + 10
        assert len(histogram._values) <= telemetry.MAX_OBSERVATIONS


class TestTelemetry:
    def test_counters_and_snapshot(self):
        telemetry = Telemetry()
        telemetry.increment("requests", 3)
        telemetry.increment("completed", 3)
        telemetry.increment("batches")
        telemetry.increment("batched_requests", 3)
        telemetry.observe("latency_seconds", 0.5)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["requests"] == 3
        assert snapshot["coalescing_factor"] == pytest.approx(3.0)
        assert snapshot["histograms"]["latency_seconds"]["count"] == 1

    def test_record_batch_matches_individual_calls(self):
        bulk, loop = Telemetry(), Telemetry()
        bulk.record_batch({"a": 2, "b": 1}, {"h": [1.0, 2.0, 3.0]})
        loop.increment("a", 2)
        loop.increment("b")
        for value in (1.0, 2.0, 3.0):
            loop.observe("h", value)
        assert bulk.snapshot()["counters"] == loop.snapshot()["counters"]
        assert bulk.snapshot()["histograms"] == loop.snapshot()["histograms"]

    def test_reset_clears_everything(self):
        telemetry = Telemetry()
        telemetry.increment("requests")
        telemetry.observe("h", 1.0)
        telemetry.set_gauge("net_connections", 2.0)
        telemetry.reset()
        snapshot = telemetry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["elapsed_seconds"] == 0.0

    def test_gauges_set_adjust_and_snapshot(self):
        telemetry = Telemetry()
        assert telemetry.gauge("net_connections") == 0.0
        telemetry.set_gauge("net_connections", 3.0)
        assert telemetry.gauge("net_connections") == 3.0
        assert telemetry.adjust_gauge("net_connections", -1.0) == 2.0
        assert telemetry.adjust_gauge("net_ws_inflight", 5.0) == 5.0
        snapshot = telemetry.snapshot()
        assert snapshot["gauges"] == {"net_connections": 2.0, "net_ws_inflight": 5.0}

    def test_gauges_are_levels_not_counters(self):
        telemetry = Telemetry()
        telemetry.adjust_gauge("net_connections", 1.0)
        telemetry.adjust_gauge("net_connections", 1.0)
        telemetry.adjust_gauge("net_connections", -2.0)
        # A gauge returns to zero when every open is matched by a close —
        # unlike a counter, which only ever grows.
        assert telemetry.gauge("net_connections") == 0.0
        assert telemetry.counter("net_connections") == 0

    def test_gauge_writes_are_thread_safe(self):
        import threading

        telemetry = Telemetry()

        def churn():
            for _ in range(500):
                telemetry.adjust_gauge("g", 1.0)
                telemetry.adjust_gauge("g", -1.0)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.gauge("g") == 0.0


class TestRequestFingerprint:
    def test_content_addressing(self):
        times = np.linspace(0.0, 10.0, 5)
        values = np.arange(5.0)
        base = request_fingerprint("cfg", times, values, lam=1e-3)
        # Equal content in fresh arrays -> same fingerprint.
        assert request_fingerprint("cfg", times.copy(), values.copy(), lam=1e-3) == base
        # Any ingredient changing -> different fingerprint.
        assert request_fingerprint("other", times, values, lam=1e-3) != base
        assert request_fingerprint("cfg", times, values + 1.0, lam=1e-3) != base
        assert request_fingerprint("cfg", times, values, lam=1e-2) != base
        assert request_fingerprint("cfg", times, values) != base
        assert request_fingerprint("cfg", times, values, lam=1e-3, rng=1) != base
        assert request_fingerprint("cfg", times, values, lam=1e-3, sigma=0.1) != base


class TestResultCache:
    def test_hit_miss_eviction_lru(self):
        cache = ResultCache(max_entries=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes recency: b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None  # evicted
        assert cache.get("a") == 1 and cache.get("c") == 3
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 3 and stats["misses"] == 2
        assert stats["entries"] == 2

    def test_zero_budget_disables(self):
        cache = ResultCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = ResultCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.get("a") is None
        assert cache.stats()["hits"] == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=-1)


class TestSeedFingerprint:
    def test_generator_seeds_do_not_collide(self):
        from repro.service import request_fingerprint
        from repro.service.cache import seed_fingerprint

        times = np.linspace(0.0, 10.0, 5)
        values = np.arange(5.0)
        one = request_fingerprint("cfg", times, values, rng=np.random.default_rng(1))
        two = request_fingerprint("cfg", times, values, rng=np.random.default_rng(2))
        assert one != two
        # Generators at the identical state produce identical fits and match.
        assert seed_fingerprint(np.random.default_rng(3)) == seed_fingerprint(
            np.random.default_rng(3)
        )
        spent = np.random.default_rng(3)
        spent.random()
        assert seed_fingerprint(spent) != seed_fingerprint(np.random.default_rng(3))

    def test_none_seed_never_matches(self):
        from repro.service.cache import seed_fingerprint

        assert seed_fingerprint(None) != seed_fingerprint(None)

    def test_int_and_seedsequence_are_stable(self):
        from repro.service.cache import seed_fingerprint

        assert seed_fingerprint(7) == seed_fingerprint(np.int64(7))
        assert seed_fingerprint(np.random.SeedSequence(5)) == seed_fingerprint(
            np.random.SeedSequence(5)
        )
        assert seed_fingerprint(np.random.SeedSequence(5)) != seed_fingerprint(
            np.random.SeedSequence(6)
        )
