"""Tests for the process execution engine: shm rings, worker pool, runner.

The process runner must be a drop-in for the thread runner: bit-exact
results (≤ 1e-10 against a direct serial ``fit``), the same lambda
selections, and the same failure contract — a dead worker surfaces as
``WorkerCrashed`` (transient), the pool respawns the slot, and repeated
failures trip the shard's breaker over to the parent's in-process degraded
path.  Worker processes are real (spawned) in the pool/scheduler classes,
so assertions stay core-count-agnostic: correctness and lifecycle, never
wall-clock scaling.
"""

import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

from repro import backends
from repro.core.deconvolver import Deconvolver
from repro.service import (
    MicroBatchScheduler,
    SessionFactory,
    SessionPool,
    ShardWorkerPool,
    ShmRing,
    WorkerCrashed,
    WorkloadSpec,
    build_workload,
    ensure_picklable,
    max_coefficient_gap,
    serial_reference,
)
from repro.service.robustness import RetryPolicy


@pytest.fixture(scope="module")
def kernels(paper_parameters, small_kernel):
    from repro.cellcycle.kernel import KernelBuilder

    builder = KernelBuilder(paper_parameters, num_cells=1200, phase_bins=30)
    second = builder.build(np.linspace(0.0, 120.0, 9), rng=5)
    return [small_kernel, second]


@pytest.fixture(scope="module")
def factory(paper_parameters, kernels):
    return SessionFactory(parameters=paper_parameters, num_basis=8, kernels=kernels)


@pytest.fixture(scope="module")
def workload(kernels):
    return build_workload(
        kernels,
        WorkloadSpec(num_requests=16, repeat_ratio=0.0, selection_fraction=0.2, seed=11),
    )


# ---------------------------------------------------------------------------
# ShmRing
# ---------------------------------------------------------------------------


class TestShmRing:
    def test_array_roundtrip_and_release(self):
        ring = ShmRing.create(1024)
        try:
            payload = np.arange(24.0).reshape(4, 6)
            offset = ring.write(payload)
            assert offset == 0
            assert ring.used() == payload.nbytes
            # Copy out of the zero-copy view before closing: a live view
            # keeps the segment's pages pinned.
            assert np.array_equal(np.array(ring.array(offset, payload.shape)), payload)
            ring.release(offset, payload.nbytes)
            assert ring.used() == 0
        finally:
            ring.close()

    def test_bytes_roundtrip(self):
        ring = ShmRing.create(64)
        try:
            offset = ring.write(b"hello")
            assert bytes(ring.view(offset, 5)) == b"hello"
        finally:
            ring.close()

    def test_blocks_are_eight_byte_aligned(self):
        ring = ShmRing.create(64)
        try:
            first = ring.write(b"abc")  # 3 bytes, padded to 8
            second = ring.write(b"defgh")
            assert first == 0
            assert second == 8
            assert ring.used() == 16
        finally:
            ring.close()

    def test_blocks_never_wrap_and_survive_tail_skip(self):
        ring = ShmRing.create(64)
        try:
            a = np.arange(3.0)  # 24 bytes each
            b = np.arange(3.0, 6.0)
            c = np.arange(6.0, 9.0)
            off_a = ring.write(a)
            off_b = ring.write(b)
            # 48 of 64 bytes used: a third block would cross the end, and
            # the tail padding cannot be claimed until `a` is released.
            assert ring.try_claim(24) is None
            ring.release(off_a, a.nbytes)
            off_c = ring.write(c)
            # The block starts at the wrap boundary (absolute 64 → physical
            # 0), never straddling it, and `b` is untouched.
            assert off_c == 64
            assert off_c % ring.capacity == 0
            assert np.array_equal(ring.array(off_c, (3,)), c)
            assert np.array_equal(ring.array(off_b, (3,)), b)
        finally:
            ring.close()

    def test_full_ring_times_out_to_none(self):
        ring = ShmRing.create(64)
        try:
            first = ring.write(np.zeros(4))  # 32 bytes
            ring.write(np.zeros(4))
            assert ring.write(np.zeros(4), timeout=0.0) is None
            ring.release(first, 32)
            assert ring.write(np.zeros(4), timeout=0.0) is not None
        finally:
            ring.close()

    def test_oversize_payload_returns_none(self):
        ring = ShmRing.create(64)
        try:
            assert ring.write(np.zeros(16), timeout=0.0) is None  # 128 bytes
            assert ring.try_claim(65) is None
        finally:
            ring.close()

    def test_attach_sees_producer_writes(self):
        ring = ShmRing.create(256)
        try:
            payload = np.linspace(0.0, 1.0, 8)
            offset = ring.write(payload)
            attached = ShmRing.attach(ring.name, ring.capacity)
            try:
                assert np.array_equal(attached.array(offset, (8,)), payload)
                attached.release(offset, payload.nbytes)
                # Cursor updates are visible back on the producer side.
                assert ring.used() == 0
            finally:
                attached.close()
        finally:
            ring.close()


# ---------------------------------------------------------------------------
# Factory portability
# ---------------------------------------------------------------------------


class TestFactoryPortability:
    def test_session_factory_pickles_and_rebuilds(self, factory, kernels):
        clone = pickle.loads(pickle.dumps(factory))
        deconvolver = clone("any-key")
        assert isinstance(deconvolver, Deconvolver)
        values = kernels[0].apply_function(lambda v: np.full_like(v, 1.0))
        direct = factory("any-key").fit(kernels[0].times, values, lam=1e-3)
        rebuilt = deconvolver.fit(kernels[0].times, values, lam=1e-3)
        assert np.max(np.abs(direct.coefficients - rebuilt.coefficients)) <= 1e-12

    def test_ensure_picklable_rejects_closures(self, factory):
        ensure_picklable(factory)  # no raise
        with pytest.raises(ValueError, match="picklable session factory"):
            ensure_picklable(lambda key: factory(key))


# ---------------------------------------------------------------------------
# ShardWorkerPool
# ---------------------------------------------------------------------------


def _first_bucket(workload):
    """Largest single-(grid, sigma) bucket of the workload, fixed lambdas."""
    groups = {}
    for request in workload:
        if request.lam is None:
            continue
        groups.setdefault(request.times.shape, []).append(request)
    return max(groups.values(), key=len)


class TestShardWorkerPool:
    def test_solve_batch_matches_in_process_and_reports_backend(
        self, factory, workload
    ):
        bucket = _first_bucket(workload)
        matrix = np.column_stack([request.measurements for request in bucket])
        lams = [request.lam for request in bucket]
        first = bucket[0]
        with ShardWorkerPool(factory, workers=1) as pool:
            results = pool.solve_batch(
                "shard-a",
                times=first.times,
                matrix=matrix,
                sigma=first.sigma,
                lams=lams,
                lambda_method=first.lambda_method,
                lambda_grid=first.lambda_grid,
                rng=first.rng,
            )
            # Satellite: backend selection must survive the spawn — the
            # worker replays the parent's active backend explicitly instead
            # of re-reading REPRO_BACKEND at import.
            health = pool.ping(0)
            assert health["requested_backend"] == backends.active_backend().name
            assert health["active_backend"] == backends.active_backend().name
            assert health["pid"] != os.getpid()
            assert health["batches"] == 1
            assert health["requests"] == len(bucket)
            stats = pool.stats()
        reference = factory("shard-a").fit_many(
            first.times, matrix, sigma=first.sigma, lam=lams, engine="batch"
        )
        assert max_coefficient_gap(results, reference) <= 1e-10
        assert [r.lam for r in results] == [r.lam for r in reference]
        assert stats["per_worker"][0]["batches"] == 1
        assert stats["per_worker"][0]["restarts"] == 0

    def test_inline_fallback_when_ring_is_too_small(self, factory, workload):
        bucket = _first_bucket(workload)[:3]
        matrix = np.column_stack([request.measurements for request in bucket])
        first = bucket[0]
        # 64-byte rings cannot carry the matrix or the result block, so both
        # directions degrade to inline pickles — same numbers, slower path.
        with ShardWorkerPool(factory, workers=1, ring_bytes=64) as pool:
            results = pool.solve_batch(
                "shard-a",
                times=first.times,
                matrix=matrix,
                sigma=first.sigma,
                lams=[request.lam for request in bucket],
                lambda_method=first.lambda_method,
                lambda_grid=first.lambda_grid,
                rng=first.rng,
            )
        reference = factory("shard-a").fit_many(
            first.times,
            matrix,
            sigma=first.sigma,
            lam=[request.lam for request in bucket],
            engine="batch",
        )
        assert max_coefficient_gap(results, reference) <= 1e-10

    def test_unresponsive_worker_times_out_then_respawns(self, factory, workload):
        bucket = _first_bucket(workload)[:2]
        matrix = np.column_stack([request.measurements for request in bucket])
        first = bucket[0]
        kwargs = dict(
            times=first.times,
            matrix=matrix,
            sigma=first.sigma,
            lams=[request.lam for request in bucket],
            lambda_method=first.lambda_method,
            lambda_grid=first.lambda_grid,
            rng=first.rng,
        )
        with ShardWorkerPool(factory, workers=1) as pool:
            warm = pool.solve_batch("shard-a", **kwargs)
            worker = pool._slots[0]
            pid = worker.process.pid
            # Freeze the worker: it stays alive but stops answering, which
            # is the deterministic stand-in for a wedged solve.
            os.kill(pid, signal.SIGSTOP)
            try:
                with pytest.raises(WorkerCrashed) as excinfo:
                    pool.solve_batch("shard-a", timeout=0.5, **kwargs)
                assert excinfo.value.transient is True
            finally:
                os.kill(pid, signal.SIGKILL)
            worker.process.join(timeout=5.0)
            # The next dispatch notices the dead slot, respawns it, and
            # serves the batch on the fresh replica.
            again = pool.solve_batch("shard-a", **kwargs)
            assert pool.stats()["per_worker"][0]["restarts"] == 1
            assert pool._slots[0].process.pid != pid
        assert max_coefficient_gap(again, warm) <= 1e-12

    def test_close_leaves_no_orphans_and_is_idempotent(self, factory):
        pool = ShardWorkerPool(factory, workers=2)
        pids = [pool.ping(index)["pid"] for index in range(2)]
        processes = [pool._slots[index].process for index in range(2)]
        pool.close()
        for process in processes:
            assert not process.is_alive()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        pool.close()  # idempotent
        with pytest.raises(WorkerCrashed):
            pool.ping(0)


# ---------------------------------------------------------------------------
# MicroBatchScheduler with runner="process"
# ---------------------------------------------------------------------------


class TestSchedulerProcessRunner:
    def test_process_runner_matches_serial_reference(self, factory, workload):
        pool = SessionPool(factory)
        with MicroBatchScheduler(
            pool, max_batch=8, max_wait_ms=1.0, runner="process", workers=2
        ) as scheduler:
            assert scheduler.runner == "process"
            results = scheduler.map(workload)
            stats = scheduler.stats()
        references = serial_reference(factory("reference"), workload)
        assert max_coefficient_gap(results, references) <= 1e-10
        assert [r.lam for r in results] == [r.lam for r in references]
        assert stats["runner"] == "process"
        assert stats["worker_pool"]["workers"] == 2
        assert sum(w["batches"] for w in stats["worker_pool"]["per_worker"]) >= 1

    def test_env_default_fallback_and_explicit_validation(
        self, factory, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RUNNER", "process")
        with MicroBatchScheduler(SessionPool(factory)) as scheduler:
            assert scheduler.runner == "process"
        # An env-selected process runner with an unpicklable factory falls
        # back to threads (counted), but asking for it explicitly is an
        # error — silent degradation is only acceptable for defaults.
        closure_pool = SessionPool(lambda key: factory(key))
        with MicroBatchScheduler(closure_pool) as scheduler:
            assert scheduler.runner == "thread"
            assert scheduler.telemetry.counter("runner_fallbacks") == 1
        with pytest.raises(ValueError, match="picklable session factory"):
            MicroBatchScheduler(closure_pool, runner="process")
        monkeypatch.setenv("REPRO_RUNNER", "carrier-pigeon")
        with pytest.raises(ValueError, match="runner must be"):
            MicroBatchScheduler(SessionPool(factory))

    def test_worker_failure_fails_over_to_degraded_path(
        self, factory, workload, monkeypatch
    ):
        pool = SessionPool(factory)
        with MicroBatchScheduler(
            pool,
            max_batch=8,
            max_wait_ms=1.0,
            runner="process",
            workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay_ms=0.1),
            breaker_threshold=1,
        ) as scheduler:

            def crash(*_args, **_kwargs):
                raise WorkerCrashed(0, "injected")

            monkeypatch.setattr(scheduler._worker_pool, "solve_batch", crash)
            results = scheduler.map(workload[:6])
            snapshot = scheduler.telemetry.snapshot()
        references = serial_reference(factory("reference"), workload[:6])
        # The breaker tripped over to the parent's in-process serial path:
        # every request still resolves bit-exactly.
        assert max_coefficient_gap(results, references) <= 1e-10
        assert [r.lam for r in results] == [r.lam for r in references]
        assert snapshot["counters"]["degraded_requests"] >= 6
        assert snapshot["counters"]["retries"] >= 1
        assert snapshot["counters"]["breaker_trips"] >= 1

    def test_queue_accounting_and_graceful_drain_with_live_workers(
        self, factory, workload
    ):
        pool = SessionPool(factory)
        scheduler = MicroBatchScheduler(
            pool, max_batch=4, max_wait_ms=10.0, runner="process", workers=2
        )
        futures = []
        samples = []

        def produce(offset):
            for index in range(offset, len(workload), 2):
                futures.append(scheduler.submit(workload[index]))
                samples.append((scheduler.queue_depth(), scheduler.outstanding()))

        threads = [threading.Thread(target=produce, args=(offset,)) for offset in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Sampled while submissions raced the drain: queued is a subset of
        # outstanding, and outstanding never exceeds what was accepted.
        for queued, outstanding in samples:
            assert 0 <= queued <= outstanding <= len(workload)
        worker_processes = [
            worker.process for worker in scheduler._worker_pool._slots.values()
        ]
        scheduler.shutdown(drain=True)
        # Graceful drain: every accepted future resolved (no cancellations),
        # the accounting returns to zero, and no worker process survives.
        assert all(future.done() for future in futures)
        results = [future.result() for future in futures]
        assert len(results) == len(workload)
        assert scheduler.outstanding() == 0
        assert scheduler.queue_depth() == 0
        deadline = time.monotonic() + 10.0
        for process in worker_processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            assert not process.is_alive()
