"""Chaos-facing tests: fault injection, scenarios, and SLO scheduling.

This file covers the composition the unit tests in ``test_robustness.py``
leave out: the scheduler's admission control (shedding), deadline drops,
retry of transient faults, circuit-breaker fallback to the degraded serial
path (bit-exact), session-build containment, the batcher-crash supervisor,
the ``submit_many`` overflow split, the shutdown/submit race, and the
deterministic workload scenarios that drive all of it in
``repro serve-bench --scenario``.
"""

import concurrent.futures
import queue
import threading
import time

import numpy as np
import pytest

from repro.core.deconvolver import Deconvolver
from repro.service import (
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    FitRequest,
    InjectedFault,
    IntakeOverflow,
    MicroBatchScheduler,
    RequestShed,
    ResultCache,
    RetryPolicy,
    SchedulerCrashed,
    SessionPool,
    WorkloadSpec,
    build_workload,
    max_coefficient_gap,
    serial_reference,
)
from repro.service.loadgen import (
    SCENARIOS,
    SLOTarget,
    apply_scenario,
    arrival_offsets,
    evaluate_slo,
)


@pytest.fixture(scope="module")
def kernels(paper_parameters, small_kernel):
    from repro.cellcycle.kernel import KernelBuilder

    builder = KernelBuilder(paper_parameters, num_cells=1200, phase_bins=30)
    second = builder.build(np.linspace(0.0, 120.0, 9), rng=5)
    return [small_kernel, second]


@pytest.fixture()
def factory(paper_parameters, kernels):
    def build(_key):
        deconvolver = Deconvolver(parameters=paper_parameters, num_basis=8)
        session = deconvolver.session()
        for kernel in kernels:
            session.register_kernel(kernel)
        return deconvolver

    return build


@pytest.fixture()
def workload(kernels):
    return build_workload(
        kernels,
        WorkloadSpec(num_requests=24, repeat_ratio=0.25, selection_fraction=0.15, seed=11),
    )


class _ScriptedPlan:
    """Duck-typed fault plan raising a scripted number of solver faults."""

    def __init__(self, failures: int, sleep_first_ms: float = 0.0):
        self.failures = failures
        self.sleep_first_ms = sleep_first_ms
        self.calls = 0
        self._lock = threading.Lock()

    def before_solve(self, shard, batch_size):
        with self._lock:
            self.calls += 1
            call = self.calls
        if call == 1 and self.sleep_first_ms:
            time.sleep(self.sleep_first_ms / 1e3)
        if call <= self.failures:
            raise InjectedFault("solver")

    def on_cache_store(self, cache):
        pass


class TestFaultPlan:
    def test_decision_stream_is_deterministic(self):
        spec = FaultSpec(solver_error_rate=0.5, slow_solve_rate=0.3, seed=9)
        plans = [FaultPlan(spec, record=True) for _ in range(2)]
        for plan in plans:
            for index in range(50):
                try:
                    plan.before_solve(f"shard-{index % 3}", 4)
                except InjectedFault:
                    pass
        assert plans[0].history == plans[1].history
        assert plans[0].injected == plans[1].injected
        assert plans[0].injected["solver"] > 0

    def test_zero_rate_plan_is_a_pure_observer(self):
        plan = FaultPlan(FaultSpec(), record=True)
        for _ in range(20):
            plan.before_solve("shard", 1)  # never raises, never sleeps
        assert plan.injected == {
            "solver": 0, "slow_solve": 0, "session_build": 0, "cache_eviction": 0,
        }
        assert len(plan.history) == 40  # slow_solve + solver draw per call

    def test_wrap_factory_arms_session_build_failures(self):
        plan = FaultPlan(FaultSpec(session_build_error_rate=1.0))
        wrapped = plan.wrap_factory(lambda key: "built")
        with pytest.raises(InjectedFault):
            wrapped("config")
        assert plan.injected["session_build"] == 1

    def test_cache_eviction_hook_is_seeded(self):
        def filled():
            cache = ResultCache(16)
            for index in range(8):
                cache.put(f"key-{index}", index)
            return cache

        evicted = []
        for _ in range(2):
            cache = filled()
            FaultPlan(FaultSpec(cache_eviction_rate=1.0, cache_eviction_count=3, seed=3)
                      ).on_cache_store(cache)
            evicted.append(sorted(cache._entries))
        assert evicted[0] == evicted[1]
        assert len(evicted[0]) == 5


class TestScenarios:
    def test_apply_scenario_keeps_repeats_bit_exact(self, workload):
        scenario = SCENARIOS["hotkey"]
        stamped = apply_scenario(workload, scenario, seed=11)
        fingerprints = {}
        for before, after in zip(workload, stamped):
            # identical content before stamping -> identical content after
            key = before.fingerprint()
            if key in fingerprints:
                assert after.fingerprint() == fingerprints[key]
            else:
                fingerprints[key] = after.fingerprint()
        # The base workload is untouched (new request objects).
        assert all(r.priority == 0 and r.deadline_ms is None for r in workload)

    def test_apply_scenario_is_deterministic(self, workload):
        scenario = SCENARIOS["heavy_tail"]
        one = apply_scenario(workload, scenario, seed=3)
        two = apply_scenario(workload, scenario, seed=3)
        assert [r.fingerprint() for r in one] == [r.fingerprint() for r in two]
        assert [r.priority for r in one] == [r.priority for r in two]
        assert [r.deadline_ms for r in one] == [r.deadline_ms for r in two]
        heavy = [r for r in one if r.lambda_grid is not None]
        assert heavy and all(r.lam is None for r in heavy)

    def test_hotkey_scenario_skews_traffic(self, workload):
        stamped = apply_scenario(workload, SCENARIOS["hotkey"], seed=0)
        configs = [r.config for r in stamped]
        assert set(configs) <= {f"shard-{i}" for i in range(4)}
        assert configs.count("shard-0") > len(configs) / 2

    def test_arrival_offsets(self):
        steady = arrival_offsets(SCENARIOS["steady"], 10, seed=0)
        assert np.all(steady == 0.0)
        bursty = arrival_offsets(SCENARIOS["bursty"], 64, seed=0)
        assert np.all(np.diff(bursty) >= 0.0)
        assert bursty[-1] > 0.0  # at least one inter-burst pause happened
        again = arrival_offsets(SCENARIOS["bursty"], 64, seed=0)
        assert np.array_equal(bursty, again)

    def test_evaluate_slo_pass_and_fail(self):
        snapshot = {
            "counters": {"requests": 10, "errors": 1},
            "histograms": {"latency_seconds": {"p95": 0.05}},
            "shed_rate": 0.2,
            "deadline_miss_rate": 0.0,
        }
        strict = evaluate_slo(snapshot, SLOTarget(p95_latency_ms=10.0))
        assert not strict["passed"]
        assert not strict["checks"]["p95_latency_ms"][2]
        loose = evaluate_slo(
            snapshot,
            SLOTarget(p95_latency_ms=100.0, max_shed_rate=0.5, max_error_rate=0.2),
        )
        assert loose["passed"]


class TestSLOScheduling:
    def test_infeasible_deadline_is_shed_at_admission(self, factory, workload):
        pool = SessionPool(factory)
        with MicroBatchScheduler(
            pool, max_wait_ms=50.0, adaptive_wait=False
        ) as scheduler:
            request = workload[0]
            shed = scheduler.submit(
                FitRequest(
                    times=request.times.copy(),
                    measurements=request.measurements.copy(),
                    lam=request.lam,
                    deadline_ms=0.01,  # far below the 50 ms window
                )
            )
            assert shed.done()
            with pytest.raises(RequestShed) as info:
                shed.result()
            assert info.value.projected_wait_ms > info.value.deadline_ms
            assert scheduler.telemetry.counter("shed") == 1
            # No deadline -> never shed, same window.
            assert scheduler.submit(request).result() is not None

    def test_stale_queued_request_misses_deadline_instead_of_solving(
        self, factory, workload
    ):
        pool = SessionPool(factory)
        scheduler = MicroBatchScheduler(pool, max_wait_ms=0.1, adaptive_wait=False)
        try:
            request = workload[0]
            with_deadline = FitRequest(
                times=request.times.copy(),
                measurements=request.measurements.copy(),
                lam=request.lam,
                deadline_ms=30.0,
            )
            # Stall the runner deterministically, then let the request age out.
            scheduler._shard_lock.acquire()
            try:
                future = scheduler.submit(with_deadline)
                time.sleep(0.08)
            finally:
                scheduler._shard_lock.release()
            with pytest.raises(DeadlineExceeded) as info:
                future.result(timeout=10)
            assert info.value.waited_ms >= 30.0
            assert scheduler.telemetry.counter("deadline_missed") == 1
        finally:
            scheduler.shutdown()

    def test_priority_orders_batches_within_a_shard_drain(self, factory, kernels):
        plan = _ScriptedPlan(failures=0, sleep_first_ms=120.0)
        pool = SessionPool(factory)
        order = []
        with MicroBatchScheduler(
            pool, max_batch=8, max_wait_ms=0.1, workers=1, fault_plan=plan
        ) as scheduler:
            from repro.data.synthetic import single_pulse_profile

            blocker_values = kernels[0].apply_function(single_pulse_profile())
            blocker = scheduler.submit(
                FitRequest(
                    times=np.asarray(kernels[0].times, float).copy(),
                    measurements=blocker_values,
                    lam=1e-3,
                )
            )
            time.sleep(0.02)  # the runner is now asleep inside its solve
            low = FitRequest(
                times=np.asarray(kernels[1].times, float).copy(),
                measurements=kernels[1].apply_function(single_pulse_profile()),
                lam=1e-3,
                priority=0,
            )
            high = FitRequest(
                times=np.asarray(kernels[0].times, float).copy(),
                measurements=blocker_values * 1.1,
                lam=1e-2,
                lambda_method="kfold",  # distinct bucket from the blocker
                priority=5,
            )
            low_future = scheduler.submit(low)
            high_future = scheduler.submit(high)
            low_future.add_done_callback(lambda _f: order.append("low"))
            high_future.add_done_callback(lambda _f: order.append("high"))
            blocker.result(timeout=30)
            low_future.result(timeout=30)
            high_future.result(timeout=30)
        assert order == ["high", "low"]


class TestFailureContainment:
    def test_transient_faults_are_retried_to_success(self, factory, workload):
        plan = _ScriptedPlan(failures=2)
        pool = SessionPool(factory)
        with MicroBatchScheduler(
            pool,
            max_wait_ms=0.5,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=3, base_delay_ms=0.1),
        ) as scheduler:
            result = scheduler.submit(workload[0]).result(timeout=30)
            assert scheduler.telemetry.counter("retries") == 2
            assert scheduler.telemetry.counter("errors") == 0
        reference = serial_reference(factory("reference"), [workload[0]])[0]
        assert np.max(np.abs(result.coefficients - reference.coefficients)) <= 1e-10

    def test_exhausted_retries_fail_with_the_injected_fault(self, factory, workload):
        plan = _ScriptedPlan(failures=100)
        pool = SessionPool(factory)
        with MicroBatchScheduler(
            pool,
            max_wait_ms=0.5,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, base_delay_ms=0.1),
            breaker_threshold=50,  # keep the breaker out of this test
        ) as scheduler:
            future = scheduler.submit(workload[0])
            with pytest.raises(InjectedFault):
                future.result(timeout=30)
            assert scheduler.telemetry.counter("retries") == 1
            assert scheduler.telemetry.counter("errors") == 1

    def test_tripped_breaker_routes_to_bit_exact_degraded_path(
        self, factory, workload
    ):
        plan = _ScriptedPlan(failures=100)  # the batched engine never recovers
        pool = SessionPool(factory)
        with MicroBatchScheduler(
            pool,
            max_wait_ms=0.5,
            cache=ResultCache(0),  # force every request through a solve path
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=1),
            breaker_threshold=1,
            breaker_reset_s=3600.0,
        ) as scheduler:
            results = [scheduler.submit(r).result(timeout=30) for r in workload[:4]]
            assert scheduler.telemetry.counter("breaker_trips") == 1
            assert scheduler.telemetry.counter("degraded_requests") == 4
            assert scheduler.telemetry.counter("errors") == 0
        references = serial_reference(factory("reference"), workload[:4])
        assert max_coefficient_gap(results, references) <= 1e-10

    def test_session_build_failures_fail_futures_not_the_service(
        self, factory, workload
    ):
        calls = {"n": 0}

        def flaky_factory(key):
            calls["n"] += 1
            if calls["n"] == 1:
                raise InjectedFault("session_build")
            return factory(key)

        pool = SessionPool(flaky_factory)
        with MicroBatchScheduler(
            pool, max_wait_ms=0.5, retry=RetryPolicy(max_attempts=3, base_delay_ms=0.1)
        ) as scheduler:
            # First build fails transiently, the retry succeeds.
            result = scheduler.submit(workload[0]).result(timeout=30)
            assert result is not None
            assert scheduler.telemetry.counter("retries") == 1
        assert pool.build_failures == 1

    def test_persistent_build_failure_terminates_every_future(self, workload):
        def broken_factory(key):
            raise ValueError("no such configuration")

        pool = SessionPool(broken_factory)
        with MicroBatchScheduler(pool, max_wait_ms=0.5) as scheduler:
            futures = [scheduler.submit(r) for r in workload[:3]]
            for future in futures:
                with pytest.raises(ValueError):
                    future.result(timeout=30)
            assert scheduler.telemetry.counter("errors") == 3


class TestSupervisor:
    @pytest.mark.filterwarnings(
        # The batcher re-raises after its crash cleanup (so the failure is
        # visible in thread dumps); pytest reports that as an unhandled
        # thread exception, which is exactly what this test provokes.
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_batcher_crash_fails_pending_and_poisons_submit(
        self, factory, workload
    ):
        pool = SessionPool(factory)
        # A huge window keeps everything pending in the batcher when it dies.
        scheduler = MicroBatchScheduler(pool, max_batch=4, max_wait_ms=60_000.0)
        try:
            pending = scheduler.submit(workload[0])
            # Poison the batcher: comparing the bucket length against a
            # non-integer raises inside the batch loop.
            scheduler.max_batch = "boom"
            victim = scheduler.submit(workload[1])
            with pytest.raises(SchedulerCrashed):
                victim.result(timeout=30)
            # The request accepted *before* the crash is failed too, not
            # stranded — the hang-forever bug this supervisor exists to kill.
            with pytest.raises(SchedulerCrashed):
                pending.result(timeout=30)
            deadline = time.perf_counter() + 10.0
            while scheduler._crashed is None and time.perf_counter() < deadline:
                time.sleep(0.005)
            # Later submits fail immediately with the typed error.
            with pytest.raises(SchedulerCrashed):
                scheduler.submit(workload[0])
            with pytest.raises(SchedulerCrashed):
                scheduler.submit_many([workload[2]])
            assert scheduler.telemetry.counter("scheduler_crashes") == 1
            assert scheduler.stats()["crashed"]
        finally:
            scheduler.max_batch = 4
            scheduler.shutdown()  # must not hang after the crash

    def test_submit_many_overflow_reports_the_split(self, factory, workload):
        pool = SessionPool(factory)
        scheduler = MicroBatchScheduler(
            pool, max_batch=1, max_queue=1, max_wait_ms=60_000.0
        )
        scheduler._shard_lock.acquire()
        try:
            first = scheduler.submit(workload[0])
            deadline = time.perf_counter() + 5.0
            while scheduler._queue.qsize() > 0 and time.perf_counter() < deadline:
                time.sleep(0.001)  # the batcher blocks inside its dispatch
            with pytest.raises(IntakeOverflow) as info:
                scheduler.submit_many(workload[1:4], timeout=0.05)
            overflow = info.value
            # One request fit in the queue slot; two never entered.
            assert len(overflow.accepted) == 1
            assert [r.fingerprint() for r in overflow.rejected] == [
                r.fingerprint() for r in workload[2:4]
            ]
            # Rejected futures are failed, not dropped: nothing hangs.
            rejected_futures = []
        finally:
            scheduler._shard_lock.release()
        scheduler.shutdown(drain=True)
        assert first.result(timeout=30) is not None
        for future in overflow.accepted:
            assert future.result(timeout=30) is not None
        assert scheduler.telemetry.counter("rejected") == 2

    def test_shutdown_submit_race_leaks_nothing(self, factory, workload):
        pool = SessionPool(factory)
        scheduler = MicroBatchScheduler(pool, max_batch=8, max_wait_ms=0.2, workers=2)
        futures = []
        futures_lock = threading.Lock()
        stop = threading.Event()

        def produce(offset):
            index = offset
            while not stop.is_set():
                try:
                    future = scheduler.submit(workload[index % len(workload)])
                except (RuntimeError, queue.Full):
                    return  # the scheduler closed underneath us: expected
                with futures_lock:
                    futures.append(future)
                index += 4

        threads = [
            threading.Thread(target=produce, args=(offset,)) for offset in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let the race build up real traffic
        scheduler.shutdown(drain=True, timeout=60.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        with futures_lock:
            raced = list(futures)
        assert raced  # the race actually submitted something
        done, not_done = concurrent.futures.wait(raced, timeout=60.0)
        assert not not_done  # zero leaked futures, zero deadlocks
        for future in done:
            assert future.result(timeout=0) is not None
