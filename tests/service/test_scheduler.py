"""Tests for the micro-batching scheduler: equivalence, caching, lifecycle.

The load-bearing guarantee is that the service layer changes *when* and
*with what company* each request is solved, never the numbers: every
response must match a direct one-shot ``Deconvolver.fit`` to 1e-10 — under
concurrent producers, coalescing, dedup, cache hits and drain.
"""

import queue
import threading
import time

import numpy as np
import pytest

from repro.core.deconvolver import Deconvolver
from repro.data.synthetic import single_pulse_profile
from repro.service import (
    FitRequest,
    MicroBatchScheduler,
    ResultCache,
    SessionPool,
    WorkloadSpec,
    build_workload,
    max_coefficient_gap,
    serial_reference,
)


@pytest.fixture(scope="module")
def kernels(paper_parameters, small_kernel):
    from repro.cellcycle.kernel import KernelBuilder

    builder = KernelBuilder(paper_parameters, num_cells=1200, phase_bins=30)
    second = builder.build(np.linspace(0.0, 120.0, 9), rng=5)
    return [small_kernel, second]


@pytest.fixture()
def factory(paper_parameters, kernels):
    def build(_key):
        deconvolver = Deconvolver(parameters=paper_parameters, num_basis=8)
        session = deconvolver.session()
        for kernel in kernels:
            session.register_kernel(kernel)
        return deconvolver

    return build


@pytest.fixture()
def workload(kernels):
    return build_workload(
        kernels,
        WorkloadSpec(num_requests=24, repeat_ratio=0.25, selection_fraction=0.15, seed=11),
    )


class TestEquivalence:
    def test_concurrent_producers_match_serial_fit(self, factory, workload):
        pool = SessionPool(factory)
        futures = [None] * len(workload)
        with MicroBatchScheduler(pool, max_batch=8, max_wait_ms=1.0, workers=2) as scheduler:

            def produce(offset):
                for index in range(offset, len(workload), 4):
                    futures[index] = scheduler.submit(workload[index])

            threads = [threading.Thread(target=produce, args=(offset,)) for offset in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [future.result() for future in futures]
            snapshot = scheduler.telemetry.snapshot()
        references = serial_reference(factory("reference"), workload)
        assert max_coefficient_gap(results, references) <= 1e-10
        # Selections must agree exactly, not just approximately.
        assert [r.lam for r in results] == [r.lam for r in references]
        assert snapshot["counters"]["completed"] == len(workload)

    def test_map_preserves_input_order_and_coalesces(self, factory, workload):
        pool = SessionPool(factory)
        with MicroBatchScheduler(pool, max_batch=32, max_wait_ms=0.5) as scheduler:
            results = scheduler.map(workload)
            snapshot = scheduler.telemetry.snapshot()
        references = serial_reference(factory("reference"), workload)
        for result, reference in zip(results, references):
            assert np.max(np.abs(result.coefficients - reference.coefficients)) <= 1e-10
        assert snapshot["counters"]["batches"] < len(workload)
        assert snapshot["coalescing_factor"] > 1.0

    def test_mixed_lambda_requests_share_one_batch(self, factory, kernels):
        values = kernels[0].apply_function(single_pulse_profile())
        requests = [
            FitRequest(times=kernels[0].times.copy(), measurements=values * scale, lam=lam)
            for scale, lam in ((1.0, 1e-3), (1.1, 1e-2), (1.2, 1e-3))
        ]
        pool = SessionPool(factory)
        with MicroBatchScheduler(pool, max_batch=8, max_wait_ms=5.0) as scheduler:
            results = scheduler.map(requests)
            snapshot = scheduler.telemetry.snapshot()
        # One (grid, sigma) bucket despite two lambda values.
        assert snapshot["counters"]["batches"] == 1
        reference = factory("reference")
        for request, result in zip(requests, results):
            expected = reference.fit(request.times, request.measurements, lam=request.lam)
            assert np.max(np.abs(result.coefficients - expected.coefficients)) <= 1e-10
            assert result.lam == expected.lam


class TestCacheAndDedup:
    def test_cache_hit_short_circuits_resolved_future(self, factory, workload):
        pool = SessionPool(factory)
        with MicroBatchScheduler(pool, max_batch=8, max_wait_ms=0.5) as scheduler:
            first = scheduler.submit(workload[0]).result()
            batches_before = scheduler.telemetry.counter("batches")
            repeat = FitRequest(
                times=workload[0].times.copy(),
                measurements=workload[0].measurements.copy(),
                lam=workload[0].lam,
            )
            future = scheduler.submit(repeat)
            # Resolved synchronously from the cache: no queueing, no batch.
            assert future.done()
            assert scheduler.telemetry.counter("cache_hits") == 1
            assert scheduler.telemetry.counter("batches") == batches_before
            assert np.array_equal(future.result().coefficients, first.coefficients)

    def test_in_batch_dedup_solves_repeats_once(self, factory, workload):
        pool = SessionPool(factory)
        request = workload[0]
        repeat = FitRequest(
            times=request.times.copy(),
            measurements=request.measurements.copy(),
            lam=request.lam,
        )
        with MicroBatchScheduler(pool, max_batch=8, max_wait_ms=5.0) as scheduler:
            results = scheduler.map([request, repeat])
            assert scheduler.telemetry.counter("deduplicated") == 1
        assert np.array_equal(results[0].coefficients, results[1].coefficients)

    def test_disabled_cache_still_correct(self, factory, workload):
        pool = SessionPool(factory)
        with MicroBatchScheduler(pool, cache=ResultCache(0), max_wait_ms=0.5) as scheduler:
            results = scheduler.map(workload[:6])
            assert scheduler.telemetry.counter("cache_hits") == 0
        references = serial_reference(factory("reference"), workload[:6])
        assert max_coefficient_gap(results, references) <= 1e-10


class TestLifecycle:
    def test_shutdown_drains_nonempty_queue(self, factory, workload):
        pool = SessionPool(factory)
        # A very long batching window: nothing dispatches on its own, so the
        # queue is guaranteed non-empty when shutdown arrives.
        scheduler = MicroBatchScheduler(pool, max_batch=64, max_wait_ms=60_000.0)
        futures = [scheduler.submit(request) for request in workload[:5]]
        scheduler.shutdown(drain=True)
        results = [future.result(timeout=0) for future in futures]
        references = serial_reference(factory("reference"), workload[:5])
        assert max_coefficient_gap(results, references) <= 1e-10

    def test_shutdown_discard_cancels_pending(self, factory, workload):
        pool = SessionPool(factory)
        scheduler = MicroBatchScheduler(pool, max_batch=64, max_wait_ms=60_000.0)
        futures = [scheduler.submit(request) for request in workload[:3]]
        scheduler.shutdown(drain=False)
        assert all(future.cancelled() for future in futures)
        assert scheduler.telemetry.counter("cancelled") == 3

    def test_submit_after_shutdown_raises(self, factory, workload):
        scheduler = MicroBatchScheduler(SessionPool(factory))
        scheduler.submit(workload[0]).result()  # populate the cache
        scheduler.shutdown()
        with pytest.raises(RuntimeError):
            scheduler.submit(workload[0])  # cached content must not bypass
        with pytest.raises(RuntimeError):
            scheduler.submit_many([workload[1]])
        scheduler.shutdown()  # idempotent

    def test_backpressure_timeout(self, factory, workload):
        pool = SessionPool(factory)
        scheduler = MicroBatchScheduler(pool, max_batch=1, max_queue=1, max_wait_ms=60_000.0)
        # Stall the pipeline deterministically: holding the shard-queue lock
        # blocks the batcher inside its first dispatch, so the one-slot
        # intake queue stays full and the third submit hits the bound.
        scheduler._shard_lock.acquire()
        try:
            futures = [scheduler.submit(workload[0])]
            deadline = time.perf_counter() + 5.0
            while scheduler._queue.qsize() > 0 and time.perf_counter() < deadline:
                time.sleep(0.001)  # batcher takes the first item, then blocks
            futures.append(scheduler.submit(workload[1]))  # fills the slot
            with pytest.raises(queue.Full):
                scheduler.submit(workload[2], timeout=0.05)
        finally:
            scheduler._shard_lock.release()
        scheduler.shutdown(drain=True)
        assert all(future.done() and not future.cancelled() for future in futures)

    def test_solver_errors_propagate_to_futures(self, factory, kernels):
        pool = SessionPool(factory)
        bad = FitRequest(
            times=kernels[0].times.copy(),
            measurements=np.ones(kernels[0].times.size + 3),  # wrong length
            lam=1e-3,
        )
        with MicroBatchScheduler(pool, max_wait_ms=0.5) as scheduler:
            future = scheduler.submit(bad)
            with pytest.raises(Exception):
                future.result(timeout=10)
            assert scheduler.telemetry.counter("errors") == 1

    def test_validation(self, factory):
        pool = SessionPool(factory)
        with pytest.raises(ValueError):
            MicroBatchScheduler(pool, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(pool, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(pool, max_queue=0)

    def test_stats_shape(self, factory, workload):
        with MicroBatchScheduler(SessionPool(factory), max_wait_ms=0.5) as scheduler:
            scheduler.map(workload[:4])
            stats = scheduler.stats()
        assert {"queued", "outstanding", "workers", "pool", "cache", "telemetry"} <= set(stats)
        assert stats["outstanding"] == 0


class TestReviewRegressions:
    def test_generator_seeded_requests_do_not_coalesce_or_cache_alias(self, factory, kernels):
        values = kernels[0].apply_function(single_pulse_profile())
        one = FitRequest(
            times=kernels[0].times.copy(), measurements=values.copy(),
            lambda_method="kfold", rng=np.random.default_rng(1),
        )
        two = FitRequest(
            times=kernels[0].times.copy(), measurements=values.copy(),
            lambda_method="kfold", rng=np.random.default_rng(2),
        )
        assert one.batch_key() != two.batch_key()
        assert one.fingerprint() != two.fingerprint()

    def test_batch_key_matches_session_bucket(self, kernels):
        from repro.core.session import fit_options_bucket

        request = FitRequest(times=kernels[0].times.copy(), measurements=np.ones(13), lam=1e-3)
        assert request.batch_key()[2:] == fit_options_bucket(
            request.times, None, 1e-3, "gcv", None
        )

    def test_cached_results_release_solver_caches(self, factory, workload):
        pool = SessionPool(factory)
        with MicroBatchScheduler(pool, max_wait_ms=0.5) as scheduler:
            returned = scheduler.submit(workload[0]).result()
            (cached,) = scheduler.cache._entries.values()
        # The cached result no longer pins the shard's factorizations ...
        assert cached._problem._hessians == {}
        assert cached._problem._workspaces == {}
        assert cached._problem._selection_caches == {}
        # ... but its lazy diagnostics still work and match a direct fit.
        reference = factory("reference").fit(
            workload[0].times, workload[0].measurements, lam=workload[0].lam
        )
        assert cached.data_misfit == pytest.approx(reference.data_misfit, rel=1e-10)
        assert np.allclose(returned.fitted, reference.fitted)
