"""Property-based tests of the versioned wire protocol.

Every wire message type must round-trip encode→decode to an identical
value, tolerate unknown fields at both the envelope and payload level,
reject unsupported schema versions, and map the service error taxonomy
onto typed error frames and back.  Floats must survive the wire
*bit-exactly* — that is what makes the 1e-10 end-to-end gate meaningful.
"""

import json
import queue
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import FitRequest
from repro.service.errors import (
    DeadlineExceeded,
    IntakeOverflow,
    RequestShed,
    SchedulerCrashed,
    ServiceError,
)
from repro.service.net import (
    FRAME_KINDS,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Frame,
    ProtocolError,
    RemoteError,
    VersionMismatch,
    WireError,
    WireFit,
    WireHello,
    WireResult,
    decode_frame,
    error_to_frame,
    frame_to_error,
)

# Finite, JSON-representable floats (NaN/inf are not valid JSON).
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
positive = st.floats(min_value=1e-12, max_value=1e12, allow_nan=False)
names = st.text(st.characters(codec="utf-8", exclude_categories=("Cs",)), max_size=30)


@st.composite
def wire_fits(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    grid = draw(st.lists(finite, min_size=n, max_size=n))
    sigma = draw(
        st.one_of(st.none(), positive, st.lists(positive, min_size=n, max_size=n))
    )
    return WireFit(
        times=grid,
        measurements=draw(st.lists(finite, min_size=n, max_size=n)),
        sigma=sigma,
        lam=draw(st.one_of(st.none(), positive)),
        lambda_method=draw(st.sampled_from(["gcv", "discrepancy", "grid"])),
        lambda_grid=draw(st.one_of(st.none(), st.lists(positive, min_size=1, max_size=5))),
        seed=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=2**31))),
        config=draw(st.sampled_from(["default", "shard-a", "shard-b"])),
        priority=draw(st.integers(min_value=-10, max_value=10)),
        deadline_ms=draw(st.one_of(st.none(), positive)),
        tag=draw(names),
        include_diagnostics=draw(st.booleans()),
    )


@st.composite
def wire_results(draw):
    return WireResult(
        coefficients=draw(st.lists(finite, min_size=1, max_size=16)),
        lam=draw(positive),
        solver_converged=draw(st.booleans()),
        solver_iterations=draw(st.integers(min_value=0, max_value=10_000)),
        mean_cycle_time=draw(positive),
        tag=draw(names),
        diagnostics=draw(
            st.one_of(st.none(), st.dictionaries(st.sampled_from(["data_misfit", "roughness"]), finite))
        ),
    )


@st.composite
def wire_errors(draw):
    return WireError(
        code=draw(st.sampled_from(
            ["shed", "deadline_exceeded", "intake_overflow", "scheduler_crashed",
             "bad_request", "version_mismatch", "service_error", "internal", "custom_code"]
        )),
        message=draw(names),
        http_status=draw(st.sampled_from([400, 429, 500, 503, 504])),
        transient=draw(st.booleans()),
        details=draw(st.dictionaries(
            st.sampled_from(["projected_wait_ms", "deadline_ms", "waited_ms",
                             "accepted", "rejected", "requested"]),
            st.integers(min_value=0, max_value=1000),
        )),
        tag=draw(names),
    )


@st.composite
def wire_hellos(draw):
    return WireHello(
        versions=draw(st.lists(st.integers(min_value=1, max_value=99), min_size=1, max_size=4)),
        server=draw(names),
        max_inflight=draw(st.integers(min_value=0, max_value=1024)),
    )


def roundtrip(kind, payload_obj, decode):
    """Encode a frame, decode it, and rebuild the typed payload."""
    frame = Frame(kind, payload_obj.to_payload(), id="x1")
    decoded = decode_frame(frame.encode())
    assert decoded.kind == kind
    assert decoded.version == PROTOCOL_VERSION
    assert decoded.id == "x1"
    return decode(decoded.payload)


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(wire=wire_fits())
    def test_fit_roundtrip_identity(self, wire):
        assert roundtrip("fit", wire, WireFit.from_payload) == wire

    @settings(max_examples=80, deadline=None)
    @given(wire=wire_results())
    def test_result_roundtrip_identity(self, wire):
        assert roundtrip("result", wire, WireResult.from_payload) == wire

    @settings(max_examples=60, deadline=None)
    @given(wire=wire_errors())
    def test_error_roundtrip_identity(self, wire):
        assert roundtrip("error", wire, WireError.from_payload) == wire

    @settings(max_examples=60, deadline=None)
    @given(wire=wire_hellos())
    def test_hello_roundtrip_identity(self, wire):
        assert roundtrip("hello", wire, WireHello.from_payload) == wire

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(finite, min_size=1, max_size=32))
    def test_floats_survive_the_wire_bit_exactly(self, values):
        # The whole 1e-10 equivalence gate rests on this: JSON repr floats
        # round-trip to the very same bits, not merely "close".
        wire = WireResult(coefficients=values, lam=1.0)
        back = roundtrip("result", wire, WireResult.from_payload)
        assert all(
            struct.pack("<d", a) == struct.pack("<d", b)
            for a, b in zip(back.coefficients, values)
        )

    @settings(max_examples=40, deadline=None)
    @given(wire=wire_fits())
    def test_fit_request_bridge_roundtrip(self, wire):
        # WireFit -> FitRequest -> WireFit preserves every wire field.
        assert WireFit.from_request(
            wire.to_request(), tag=wire.tag, include_diagnostics=wire.include_diagnostics
        ) == wire


class TestUnknownFieldTolerance:
    @settings(max_examples=40, deadline=None)
    @given(
        wire=wire_fits(),
        extra_key=st.text(min_size=1, max_size=12).filter(
            lambda k: k not in WireFit.__dataclass_fields__
        ),
        extra_value=st.one_of(st.integers(), st.text(max_size=8), st.booleans()),
    )
    def test_unknown_payload_fields_are_ignored(self, wire, extra_key, extra_value):
        payload = wire.to_payload()
        payload[extra_key] = extra_value
        assert WireFit.from_payload(payload) == wire

    @settings(max_examples=40, deadline=None)
    @given(wire=wire_fits(), extra=st.integers())
    def test_unknown_envelope_fields_are_ignored(self, wire, extra):
        envelope = json.loads(Frame("fit", wire.to_payload()).encode())
        envelope["x_future_extension"] = extra
        decoded = decode_frame(json.dumps(envelope))
        assert WireFit.from_payload(decoded.payload) == wire


class TestVersionNegotiation:
    @settings(max_examples=60, deadline=None)
    @given(version=st.integers())
    def test_unsupported_versions_are_rejected(self, version):
        envelope = json.dumps({"v": version, "kind": "fit", "payload": {}})
        if version in SUPPORTED_VERSIONS:
            assert decode_frame(envelope).version == version
        else:
            with pytest.raises(VersionMismatch) as excinfo:
                decode_frame(envelope)
            assert excinfo.value.requested == version
            assert excinfo.value.supported == sorted(SUPPORTED_VERSIONS)

    @settings(max_examples=30, deadline=None)
    @given(version=st.one_of(st.none(), st.text(max_size=4), st.booleans(), finite))
    def test_non_integer_versions_are_protocol_errors(self, version):
        envelope = json.dumps({"v": version, "kind": "fit", "payload": {}})
        with pytest.raises(ProtocolError):
            decode_frame(envelope)

    @settings(max_examples=30, deadline=None)
    @given(kind=st.text(max_size=16).filter(lambda k: k not in FRAME_KINDS))
    def test_unknown_kinds_are_rejected(self, kind):
        envelope = json.dumps({"v": PROTOCOL_VERSION, "kind": kind, "payload": {}})
        with pytest.raises(ProtocolError):
            decode_frame(envelope)

    def test_malformed_json_is_a_protocol_error(self):
        for garbage in (b"", b"{", b"[1,2]", b'"text"', b"\xff\xfe"):
            with pytest.raises(ProtocolError):
                decode_frame(garbage)


class TestErrorTaxonomyMapping:
    TAXONOMY = [
        (RequestShed(12.5, 10.0), "shed", 503, True),
        (DeadlineExceeded(40.0, 25.0), "deadline_exceeded", 504, False),
        (IntakeOverflow([object()], [object(), object()]), "intake_overflow", 429, True),
        (SchedulerCrashed("batcher died"), "scheduler_crashed", 503, False),
        (queue.Full(), "intake_overflow", 429, True),
        (ProtocolError("bad bytes"), "bad_request", 400, False),
        (VersionMismatch(7), "version_mismatch", 400, False),
        (ServiceError("something typed"), "service_error", 500, False),
        (ValueError("sigma must be positive"), "bad_request", 400, False),
        (RuntimeError("boom"), "internal", 500, False),
    ]

    @pytest.mark.parametrize(
        "exc, code, status, transient",
        TAXONOMY,
        ids=[type(case[0]).__name__ + "-" + case[1] for case in TAXONOMY],
    )
    def test_error_to_frame_statuses(self, exc, code, status, transient):
        frame = error_to_frame(exc, tag="t-9")
        assert frame.code == code
        assert frame.http_status == status
        assert frame.transient is transient
        assert frame.tag == "t-9"

    @pytest.mark.parametrize(
        "exc",
        [case[0] for case in TAXONOMY],
        ids=[type(case[0]).__name__ for case in TAXONOMY],
    )
    def test_frame_to_error_reconstructs_taxonomy(self, exc):
        frame = error_to_frame(exc)
        rebuilt = frame_to_error(frame)
        if isinstance(exc, queue.Full) and not isinstance(exc, IntakeOverflow):
            assert isinstance(rebuilt, IntakeOverflow)  # plain Full upgrades
        elif isinstance(exc, ServiceError):
            assert type(rebuilt) is type(exc)
        else:
            # Outside the taxonomy only the code/status survive, by design.
            assert isinstance(rebuilt, (ProtocolError, RemoteError))
        # The frame's retry hint is authoritative for the rebuilt instance.
        assert bool(getattr(rebuilt, "transient", False)) == frame.transient

    def test_overflow_split_counts_survive(self):
        exc = IntakeOverflow([object()] * 3, [object()] * 2)
        rebuilt = frame_to_error(error_to_frame(exc))
        assert isinstance(rebuilt, IntakeOverflow)
        assert len(rebuilt.accepted) == 3
        assert len(rebuilt.rejected) == 2

    def test_shed_projection_survives(self):
        rebuilt = frame_to_error(error_to_frame(RequestShed(123.5, 50.0)))
        assert isinstance(rebuilt, RequestShed)
        assert rebuilt.projected_wait_ms == 123.5
        assert rebuilt.deadline_ms == 50.0

    def test_version_mismatch_supported_versions_survive(self):
        rebuilt = frame_to_error(error_to_frame(VersionMismatch(42)))
        assert isinstance(rebuilt, VersionMismatch)
        assert rebuilt.supported == sorted(SUPPORTED_VERSIONS)

    def test_unknown_codes_become_remote_errors(self):
        frame = WireError(code="weird_new_code", message="hm", http_status=418)
        rebuilt = frame_to_error(frame)
        assert isinstance(rebuilt, RemoteError)
        assert rebuilt.code == "weird_new_code"
        assert rebuilt.http_status == 418


class TestFitValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            WireFit.from_payload({"times": [1.0, 2.0], "measurements": [1.0]})

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ProtocolError):
            WireFit.from_payload({"times": [1.0]})
        with pytest.raises(ProtocolError):
            WireFit.from_payload({"measurements": [1.0]})

    def test_non_numeric_arrays_rejected(self):
        with pytest.raises(ProtocolError):
            WireFit.from_payload({"times": [1.0, "x"], "measurements": [1.0, 2.0]})
        with pytest.raises(ProtocolError):
            WireFit.from_payload({"times": [1.0, True], "measurements": [1.0, 2.0]})

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ProtocolError):
            WireFit.from_payload(
                {"times": [1.0], "measurements": [1.0], "seed": 1.5}
            )

    def test_request_bridge_rejects_unencodable_seeds(self):
        request = FitRequest(
            times=np.array([1.0]), measurements=np.array([1.0]),
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ProtocolError):
            WireFit.from_request(request)
