"""CLI tests of the network-edge commands (``serve``, ``serve-bench --http``).

``serve-bench --http`` is the acceptance gate of the network layer: the
seeded workload travels over real sockets through concurrent HTTP clients
and every wire response must match its one-shot fit to 1e-10 with exact
lambda agreement, while the ops routes answer live data under load.
"""

import pytest

from repro.cli import main


class TestServeBenchHTTP:
    def test_http_bench_passes_equivalence_gate(self, capsys):
        exit_code = main([
            "serve-bench", "--http", "--requests", "12", "--cells", "600",
            "--grids", "1", "--max-wait-ms", "1.0", "--http-clients", "3",
            "--verbose",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Serving on 127.0.0.1:" in captured.out
        assert "max |coef gap|" in captured.out
        assert "/healthz during load" in captured.out
        assert "'status': 'ok'" in captured.out
        assert "ok: every wire response matches its one-shot fit to 1e-10" in captured.out

    def test_http_bench_leaves_no_threads(self, capsys):
        import threading

        before = set(threading.enumerate())
        assert main([
            "serve-bench", "--http", "--requests", "6", "--cells", "600",
            "--grids", "1", "--max-wait-ms", "1.0", "--http-clients", "2",
        ]) == 0
        capsys.readouterr()
        leaked = [
            thread.name
            for thread in threading.enumerate()
            if thread not in before and thread.is_alive() and thread.name.startswith("repro-")
        ]
        assert not leaked, f"CLI bench leaked threads: {leaked}"


class TestServeParser:
    def test_serve_subcommand_is_registered(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["serve", "--port", "0", "--cells", "700"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.cells == 700
        assert args.host == "127.0.0.1"
        assert args.max_inflight >= 1

    def test_http_flags_default_off(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["serve-bench"])
        assert args.http is False
        assert args.http_clients == 4

    def test_unknown_serve_flag_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--no-such-flag"])
