"""End-to-end HTTP integration tests against a live server on real sockets.

The load-bearing property: results fetched over the wire by concurrent
clients are *identical* (to 1e-10, with exact lambda agreement) to direct
one-shot fits — the network edge, like the scheduler under it, changes how
requests travel, never the numbers.  The ops routes must answer with live
data while fit traffic is in flight.
"""

import concurrent.futures
import threading

import pytest

from repro.service import IntakeOverflow, max_coefficient_gap, serial_reference
from repro.service.net import (
    FitHTTPClient,
    ProtocolError,
    WireFit,
    WireResult,
)

NUM_CLIENTS = 4


class TestEquivalenceOverTheWire:
    def test_concurrent_clients_match_serial_reference(
        self, live_server, net_factory, net_workload
    ):
        wires = [WireFit.from_request(request) for request in net_workload]
        slots: list = [None] * len(wires)

        def run_client(offset):
            with FitHTTPClient(live_server.host, live_server.port) as client:
                for index in range(offset, len(wires), NUM_CLIENTS):
                    slots[index] = client.fit(wires[index])

        with concurrent.futures.ThreadPoolExecutor(NUM_CLIENTS) as executor:
            list(executor.map(run_client, range(NUM_CLIENTS)))

        assert all(isinstance(result, WireResult) for result in slots)
        references = serial_reference(net_factory("reference"), net_workload)
        assert max_coefficient_gap(slots, references) <= 1e-10
        # Lambda selections agree exactly — not approximately — across the
        # wire: JSON repr floats round-trip bit-exactly.
        assert [r.lam for r in slots] == [r.lam for r in references]

    def test_batch_route_matches_serial_reference(
        self, live_server, net_factory, net_workload
    ):
        wires = [WireFit.from_request(request) for request in net_workload[:8]]
        with FitHTTPClient(live_server.host, live_server.port) as client:
            results = client.fit_batch(wires)
        assert all(isinstance(result, WireResult) for result in results)
        references = serial_reference(net_factory("reference"), net_workload[:8])
        assert max_coefficient_gap(results, references) <= 1e-10
        assert [r.lam for r in results] == [r.lam for r in references]

    def test_diagnostics_travel_on_request(self, live_server, net_workload):
        wire = WireFit.from_request(net_workload[0], include_diagnostics=True, tag="diag")
        with FitHTTPClient(live_server.host, live_server.port) as client:
            result = client.fit(wire)
        assert result.tag == "diag"
        assert result.diagnostics is not None
        assert set(result.diagnostics) == {"data_misfit", "roughness"}


class TestOpsRoutesUnderLoad:
    def test_healthz_and_metrics_are_live_during_traffic(
        self, live_server, net_workload
    ):
        wires = [WireFit.from_request(request) for request in net_workload]
        stop = threading.Event()
        first_done = threading.Event()
        errors: list = []

        def hammer():
            try:
                with FitHTTPClient(live_server.host, live_server.port) as client:
                    index = 0
                    while not stop.is_set():
                        client.fit(wires[index % len(wires)])
                        first_done.set()
                        index += 1
            except Exception as exc:  # surfaced below, not swallowed
                errors.append(exc)

        worker = threading.Thread(target=hammer)
        worker.start()
        try:
            assert first_done.wait(timeout=60.0), "no fit completed over the wire"
            with FitHTTPClient(live_server.host, live_server.port) as ops:
                health = ops.healthz()
                metrics = ops.metrics()
                pool = ops.pool()
                backends_doc = ops.backends()
        finally:
            stop.set()
            worker.join(timeout=60.0)
        assert not errors
        assert health["status"] == "ok"
        assert health["crashed"] is False
        assert metrics["counters"]["net_http_requests"] > 0
        assert metrics["counters"]["net_route_fit"] > 0
        assert metrics["counters"]["completed"] > 0
        assert metrics["gauges"]["net_connections"] >= 1
        assert "server" in metrics and metrics["server"]["port"] == live_server.port
        assert "queue_depth" in pool or "pool" in pool
        assert any(entry["active"] for entry in backends_doc["backends"])

    def test_route_counters_increment_per_route(self, live_server):
        telemetry = live_server.server.telemetry
        with FitHTTPClient(live_server.host, live_server.port) as client:
            before = telemetry.counter("net_route_healthz")
            client.healthz()
            client.healthz()
            assert telemetry.counter("net_route_healthz") == before + 2
            client.metrics()
            assert telemetry.counter("net_route_metrics") >= 1

    def test_index_lists_routes(self, live_server):
        with FitHTTPClient(live_server.host, live_server.port) as client:
            index = client.get_json("/")
        assert index["protocol_versions"] == [1]
        assert any("fit" in route for route in index["routes"])


class TestTypedErrorsOverTheWire:
    def test_malformed_fit_raises_protocol_error(self, live_server):
        with FitHTTPClient(live_server.host, live_server.port) as client:
            with pytest.raises(ProtocolError):
                client.fit(WireFit(times=[1.0, 2.0], measurements=[1.0]))

    def test_unknown_route_raises_protocol_error(self, live_server):
        with FitHTTPClient(live_server.host, live_server.port) as client:
            status, data = client._round_trip("GET", "/no/such/route")
        assert status == 404

    def test_solver_rejection_maps_to_bad_request(self, live_server, net_workload):
        # A structurally valid frame the solver itself rejects (unknown
        # lambda selection method → ValueError): the edge answers a typed
        # bad_request frame and the client re-raises ProtocolError.
        wire = WireFit.from_request(net_workload[0])
        wire.lambda_method = "no-such-method"
        wire.lam = None
        with FitHTTPClient(live_server.host, live_server.port) as client:
            with pytest.raises(ProtocolError):
                client.fit(wire)

    def test_partial_batch_overflow_contract(self, live_server, net_workload):
        # An empty batch stays a valid (trivially complete) batch.
        with FitHTTPClient(live_server.host, live_server.port) as client:
            assert client.fit_batch([]) == []

    def test_overflow_errors_reconstruct_client_side(self):
        # The client-side reconstruction the batch route relies on.
        from repro.service.net import WireError, frame_to_error

        frame = WireError(
            code="intake_overflow", message="full", http_status=429,
            transient=True, details={"accepted": 2, "rejected": 1},
        )
        exc = frame_to_error(frame)
        assert isinstance(exc, IntakeOverflow)
        assert exc.transient
