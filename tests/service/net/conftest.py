"""Shared fixtures of the network-edge test layer.

Provides the ``live_server`` fixture every integration test drives: a real
:class:`~repro.service.net.server.FitServer` on an ephemeral loopback port,
backed by a scheduler over the small test kernels, with clean teardown and
a thread-leak check (no ``repro-*`` thread may survive a test).

A per-test hang watchdog backs up the CI ``pytest-timeout`` plugin when it
is not installed locally: a stuck socket test dumps tracebacks and kills
the process instead of wedging the whole suite.
"""

import faulthandler
import threading

import numpy as np
import pytest

from repro.core.deconvolver import Deconvolver
from repro.service import (
    MicroBatchScheduler,
    SessionPool,
    WorkloadSpec,
    build_workload,
)
from repro.service.net import serve_in_thread

#: Local watchdog budget per test (CI uses pytest-timeout instead).
LOCAL_TIMEOUT_S = 180.0


@pytest.fixture(autouse=True)
def _hang_guard(request):
    """Kill a wedged test with tracebacks when pytest-timeout is absent."""
    if request.config.pluginmanager.hasplugin("timeout"):
        yield
        return
    faulthandler.dump_traceback_later(LOCAL_TIMEOUT_S, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()


@pytest.fixture(scope="package")
def net_kernels(paper_parameters, small_kernel):
    from repro.cellcycle.kernel import KernelBuilder

    builder = KernelBuilder(paper_parameters, num_cells=1200, phase_bins=30)
    second = builder.build(np.linspace(0.0, 120.0, 9), rng=5)
    return [small_kernel, second]


@pytest.fixture(scope="package")
def net_factory(paper_parameters, net_kernels):
    def build(_key):
        deconvolver = Deconvolver(parameters=paper_parameters, num_basis=8)
        session = deconvolver.session()
        for kernel in net_kernels:
            session.register_kernel(kernel)
        return deconvolver

    return build


@pytest.fixture()
def net_workload(net_kernels):
    return build_workload(
        net_kernels,
        WorkloadSpec(num_requests=18, repeat_ratio=0.2, selection_fraction=0.1, seed=23),
    )


@pytest.fixture()
def live_server(net_factory):
    """A running network edge on an ephemeral port, leak-checked.

    Yields the :class:`~repro.service.net.server.ServerHandle`; its
    ``scheduler`` attribute (via ``handle.server.scheduler``) is the live
    scheduler for telemetry assertions.  Teardown closes the server, shuts
    the scheduler down and asserts that no service/server thread leaked.
    """
    threads_before = set(threading.enumerate())
    scheduler = MicroBatchScheduler(
        SessionPool(net_factory), max_batch=8, max_wait_ms=1.0, workers=2
    )
    handle = serve_in_thread(scheduler, max_inflight=4, submit_timeout_s=10.0)
    try:
        yield handle
    finally:
        handle.close()
        scheduler.shutdown()
    leaked = [
        thread.name
        for thread in threading.enumerate()
        if thread not in threads_before
        and thread.is_alive()
        and thread.name.startswith("repro-")
    ]
    assert not leaked, f"threads leaked past server teardown: {leaked}"
