"""WebSocket streaming tests: round-trips, negotiation, backpressure.

The backpressure regression is the load-bearing one: a stalled consumer
must not grow unbounded server-side buffers (its in-flight work is capped
at the advertised window) and must not stall *other* connections — and
once the slow reader resumes, every response it was owed still arrives.
"""

import threading
import time

import pytest

from repro.service import max_coefficient_gap, serial_reference
from repro.service.net import Frame, ProtocolError, StreamClient, WireFit, WireResult


class TestStreamRoundTrip:
    def test_hello_advertises_versions_and_window(self, live_server):
        with StreamClient(live_server.host, live_server.port) as stream:
            assert stream.hello.versions == [1]
            assert stream.hello.max_inflight == live_server.server.max_inflight

    def test_streamed_fits_match_serial_reference(
        self, live_server, net_factory, net_workload
    ):
        wires = [WireFit.from_request(request) for request in net_workload]
        with StreamClient(live_server.host, live_server.port) as stream:
            ids = [stream.submit(wire) for wire in wires]
            responses = stream.collect(ids)
        assert all(isinstance(responses[i], WireResult) for i in ids)
        results = [responses[i] for i in ids]
        references = serial_reference(net_factory("reference"), net_workload)
        assert max_coefficient_gap(results, references) <= 1e-10
        assert [r.lam for r in results] == [r.lam for r in references]

    def test_malformed_fit_answers_typed_error_and_stream_survives(
        self, live_server, net_workload
    ):
        with StreamClient(live_server.host, live_server.port) as stream:
            bad_id = stream.submit(WireFit(times=[1.0, 2.0], measurements=[1.0]))
            good_id = stream.submit(WireFit.from_request(net_workload[0]))
            responses = stream.collect([bad_id, good_id])
        assert isinstance(responses[bad_id], ProtocolError)
        assert isinstance(responses[good_id], WireResult)

    def test_version_mismatch_answers_error_then_close(self, live_server):
        with StreamClient(live_server.host, live_server.port) as stream:
            stream.send_frame(Frame("fit", {}, version=99))
            reply = stream.recv_frame()
            assert reply.kind == "error"
            assert reply.payload["code"] == "version_mismatch"
            with pytest.raises(ConnectionError):
                stream.recv_frame()  # server closes after a version breach


class TestSlowConsumerBackpressure:
    def test_stalled_reader_is_window_capped_and_recovers(
        self, live_server, net_workload
    ):
        """The regression: a reader that stops consuming must not let the
        server buffer more than the in-flight window for its connection,
        and must still receive everything once it resumes."""
        window = live_server.server.max_inflight
        wires = [WireFit.from_request(request) for request in net_workload]
        submitted = 3 * window + 2
        with StreamClient(live_server.host, live_server.port) as slow:
            ids = [
                slow.submit(wires[index % len(wires)], frame_id=f"slow-{index}")
                for index in range(submitted)
            ]
            # Stall: submit everything, read nothing, let the server work.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                stats = live_server.stats()["streams"]
                if stats and any(s["resolved"] + s["inflight"] >= window for s in stats.values()):
                    break
                time.sleep(0.05)
            stream_stats = list(live_server.stats()["streams"].values())
            assert stream_stats, "stream connection not tracked"
            state = stream_stats[0]
            # The structural invariant: in-flight work (and the outbox
            # behind it) never exceeded the advertised window even though
            # 3x+2 requests were submitted and none were read.
            assert state["peak_inflight"] <= window
            assert state["peak_outbox"] <= window + 1
            # Resume reading: every submitted request still gets its answer.
            responses = slow.collect(ids)
        assert len(responses) == submitted
        assert all(isinstance(responses[i], WireResult) for i in ids)
        assert live_server.stats()["peak_stream_inflight"] <= window

    def test_stalled_reader_does_not_stall_other_connections(
        self, live_server, net_workload
    ):
        window = live_server.server.max_inflight
        wires = [WireFit.from_request(request) for request in net_workload]
        fast_done = threading.Event()
        fast_results: dict = {}
        errors: list = []

        def fast_consumer():
            try:
                with StreamClient(live_server.host, live_server.port) as fast:
                    ids = [fast.submit(wire) for wire in wires[:6]]
                    fast_results.update(fast.collect(ids))
                fast_done.set()
            except Exception as exc:
                errors.append(exc)

        with StreamClient(live_server.host, live_server.port) as slow:
            # Saturate the slow connection's window and beyond, then stall.
            slow_ids = [
                slow.submit(wires[index % len(wires)], frame_id=f"s{index}")
                for index in range(2 * window + 1)
            ]
            worker = threading.Thread(target=fast_consumer)
            worker.start()
            # The fast consumer must finish while the slow one is stalled.
            assert fast_done.wait(timeout=120.0), (
                f"fast connection stalled behind a slow consumer; errors={errors}"
            )
            worker.join(timeout=10.0)
            assert not errors
            assert len(fast_results) == 6
            assert all(isinstance(v, WireResult) for v in fast_results.values())
            # The slow connection still drains completely afterwards.
            slow_responses = slow.collect(slow_ids)
        assert all(isinstance(v, WireResult) for v in slow_responses.values())

    def test_inflight_gauge_settles_to_zero(self, live_server, net_workload):
        telemetry = live_server.server.telemetry
        wires = [WireFit.from_request(request) for request in net_workload[:5]]
        with StreamClient(live_server.host, live_server.port) as stream:
            ids = [stream.submit(wire) for wire in wires]
            stream.collect(ids)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and telemetry.gauge("net_ws_inflight") != 0:
            time.sleep(0.02)
        assert telemetry.gauge("net_ws_inflight") == 0
        assert telemetry.counter("net_ws_results") >= len(wires)


class TestPingPong:
    def test_ping_is_answered_transparently(self, live_server):
        from repro.service.net import ws

        with StreamClient(live_server.host, live_server.port) as stream:
            with stream._send_lock:
                stream._sock.sendall(ws.build_frame(ws.OP_PING, b"hb", mask=True))
            opcode, payload = ws.read_message_sync(stream._recv_exactly)
            assert opcode == ws.OP_PONG
            assert payload == b"hb"
