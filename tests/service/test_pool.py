"""Tests for the sharded, LRU-bounded session pool."""

import pytest

from repro.core.deconvolver import Deconvolver
from repro.service import SessionPool


class CountingFactory:
    """Deconvolver factory that records every build, per key."""

    def __init__(self, parameters, kernel=None):
        self.parameters = parameters
        self.kernel = kernel
        self.builds = []

    def __call__(self, key):
        self.builds.append(key)
        deconvolver = Deconvolver(parameters=self.parameters, num_basis=8)
        if self.kernel is not None:
            deconvolver.session().register_kernel(self.kernel)
        return deconvolver


@pytest.fixture()
def factory(paper_parameters):
    return CountingFactory(paper_parameters)


class TestSessionPool:
    def test_lease_builds_once_per_key(self, factory):
        pool = SessionPool(factory)
        with pool.lease("a") as first:
            pass
        with pool.lease("a") as second:
            pass
        assert first is second
        assert factory.builds == ["a"]
        assert pool.stats()["hits"] == 1 and pool.stats()["misses"] == 1

    def test_lru_eviction_order_respects_recency(self, factory):
        pool = SessionPool(factory, max_entries=2)
        for key in ("a", "b"):
            with pool.lease(key):
                pass
        with pool.lease("a"):  # refresh a: b becomes LRU
            pass
        with pool.lease("c"):
            pass
        assert "b" not in pool
        assert "a" in pool and "c" in pool
        assert pool.stats()["evictions"] == 1

    def test_rebuild_after_evict(self, factory):
        pool = SessionPool(factory, max_entries=1)
        with pool.lease("a"):
            pass
        with pool.lease("b"):
            pass
        assert "a" not in pool
        with pool.lease("a") as rebuilt:
            assert rebuilt.session.num_grids == 0
        assert factory.builds == ["a", "b", "a"]

    def test_leased_entries_survive_budget_pressure(self, factory):
        pool = SessionPool(factory, max_entries=1)
        with pool.lease("a") as held:
            with pool.lease("b"):
                # Over budget, but "a" is leased and "b" is MRU: both stay.
                assert "a" in pool and "b" in pool
                assert held.leases == 1
        # Once the leases are back, the budget is enforced again.
        assert len(pool) == 1

    def test_max_bytes_budget_evicts_lru(self, paper_parameters, small_kernel):
        factory = CountingFactory(paper_parameters, kernel=small_kernel)
        per_session = factory(None).session().approx_bytes()
        assert per_session > 0
        pool = SessionPool(factory, max_entries=8, max_bytes=per_session)
        with pool.lease("a") as entry:
            entry.deconvolver.fit_workspace(small_kernel.times)
        with pool.lease("b") as entry:
            entry.deconvolver.fit_workspace(small_kernel.times)
        # Two kernel-bearing sessions exceed the one-session byte budget.
        assert len(pool) == 1
        assert "b" in pool and "a" not in pool

    def test_stats_shape(self, factory):
        pool = SessionPool(factory, max_entries=3)
        with pool.lease("a"):
            pass
        stats = pool.stats()
        assert stats["entries"] == 1
        assert "'a'" in stats["sessions"]
        session_stats = stats["sessions"]["'a'"]
        assert {"grids", "workspaces", "pending", "approx_bytes"} <= set(session_stats)

    def test_clear_skips_leased(self, factory):
        pool = SessionPool(factory)
        with pool.lease("a"):
            with pool.lease("b"):
                pass
            pool.clear()
            assert "a" in pool and "b" not in pool

    def test_budget_validation(self, factory):
        with pytest.raises(ValueError):
            SessionPool(factory, max_entries=0)
        with pytest.raises(ValueError):
            SessionPool(factory, max_bytes=-1)
