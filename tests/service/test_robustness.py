"""Unit tests for the failure-containment primitives and error taxonomy.

RetryPolicy / CircuitBreaker / AdaptiveWindow are tested in isolation here
(deterministically — injected clocks, seeded jitter); their composition into
the scheduler's solve path is covered by ``test_scenarios.py``.
"""

import queue

import pytest

from repro.service import (
    AdaptiveWindow,
    CircuitBreaker,
    DeadlineExceeded,
    InjectedFault,
    IntakeOverflow,
    RequestShed,
    RetryPolicy,
    SchedulerCrashed,
    ServiceError,
)


class TestRetryPolicy:
    def test_retries_only_transient_failures_by_default(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(InjectedFault("solver"), attempt=0)
        assert policy.should_retry(InjectedFault("solver"), attempt=1)
        # Deterministic failures (wrong shapes, bad inputs) fail fast.
        assert not policy.should_retry(ValueError("wrong shape"), attempt=0)

    def test_attempt_budget_is_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        # attempt is 0-based: the third attempt (index 2) is the last one.
        assert not policy.should_retry(InjectedFault("solver"), attempt=2)
        assert not RetryPolicy(max_attempts=1).should_retry(InjectedFault("x"), 0)

    def test_custom_predicate_overrides_transient_flag(self):
        policy = RetryPolicy(retryable=lambda exc: isinstance(exc, ValueError))
        assert policy.should_retry(ValueError(), attempt=0)
        assert not policy.should_retry(InjectedFault("solver"), attempt=0)

    def test_backoff_grows_and_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay_ms=1.0, multiplier=2.0, jitter=0.5, seed=7)
        first, second = policy.delay_seconds(0), policy.delay_seconds(1)
        # Jitter draws at most halve the delay, so doubling still dominates.
        assert second > first
        # Pure function of (seed, attempt): same schedule run to run.
        assert policy.delay_seconds(0) == first
        assert RetryPolicy(base_delay_ms=1.0, jitter=0.5, seed=7).delay_seconds(0) == first
        # Bounds: delay in [base * (1 - jitter), base] for attempt 0.
        assert 0.5e-3 <= first <= 1.0e-3

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(base_delay_ms=2.0, multiplier=3.0, jitter=0.0)
        assert policy.delay_seconds(0) == pytest.approx(2e-3)
        assert policy.delay_seconds(2) == pytest.approx(18e-3)


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(threshold, reset, clock=lambda: clock["now"])
        return breaker, clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        assert breaker.record_failure()  # third failure trips
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()  # count restarted
        assert breaker.state == "closed"

    def test_half_open_probe_single_admission_and_heal(self):
        breaker, clock = self.make(threshold=1, reset=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock["now"] = 5.0
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # concurrent callers refused mid-probe
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_probe_failure_reopens_immediately(self):
        breaker, clock = self.make(threshold=3, reset=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 5.0
        assert breaker.allow()
        assert breaker.record_failure()  # one probe failure re-trips
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.trips == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0)


class TestAdaptiveWindow:
    def test_starts_at_base_and_never_exceeds_it(self):
        window = AdaptiveWindow(0.002)
        assert window.current() == pytest.approx(0.002)
        window.observe(10.0)  # slow solves: coalescing while solving is free
        assert window.current() == pytest.approx(0.002)

    def test_fast_solves_shrink_the_window(self):
        window = AdaptiveWindow(0.002, fraction=0.5)
        for _ in range(10):
            window.observe(0.0005)
        assert window.current() == pytest.approx(0.00025, rel=1e-6)

    def test_floor_clamps_from_below(self):
        window = AdaptiveWindow(0.002, fraction=0.5, floor_seconds=0.001)
        for _ in range(10):
            window.observe(1e-6)
        assert window.current() == pytest.approx(0.001)


class TestErrorTaxonomy:
    def test_every_error_derives_from_service_error(self):
        for exc in (
            RequestShed(5.0, 1.0),
            DeadlineExceeded(7.0, 2.0),
            SchedulerCrashed("down"),
            IntakeOverflow([], []),
            InjectedFault("solver"),
        ):
            assert isinstance(exc, ServiceError)
            assert isinstance(exc, RuntimeError)

    def test_intake_overflow_is_a_queue_full_for_legacy_callers(self):
        overflow = IntakeOverflow(["f1"], ["r2", "r3"])
        assert isinstance(overflow, queue.Full)
        assert overflow.accepted == ["f1"]
        assert overflow.rejected == ["r2", "r3"]

    def test_structured_attributes(self):
        shed = RequestShed(12.5, 10.0)
        assert shed.projected_wait_ms == 12.5 and shed.deadline_ms == 10.0
        missed = DeadlineExceeded(30.0, 20.0)
        assert missed.waited_ms == 30.0 and missed.deadline_ms == 20.0
        assert not ServiceError.transient and InjectedFault("x").transient
