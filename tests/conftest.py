"""Shared fixtures for the test suite.

Monte-Carlo kernels are moderately expensive to build, so a couple of
session-scoped kernels are shared across the tests that only need *a*
realistic kernel rather than a specific one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cellcycle.kernel import KernelBuilder, VolumeKernel
from repro.cellcycle.parameters import CellCycleParameters
from repro.core.basis import SplineBasis
from repro.data.synthetic import ftsz_like_profile, single_pulse_profile


@pytest.fixture(scope="session")
def paper_parameters() -> CellCycleParameters:
    """The paper's default Caulobacter cell-cycle parameters."""
    return CellCycleParameters()


@pytest.fixture(scope="session")
def measurement_times() -> np.ndarray:
    """A typical set of measurement times over one average cell cycle."""
    return np.linspace(0.0, 150.0, 13)


@pytest.fixture(scope="session")
def small_kernel(paper_parameters, measurement_times) -> VolumeKernel:
    """A modest-resolution kernel shared by tests that just need one."""
    builder = KernelBuilder(paper_parameters, num_cells=4000, phase_bins=60)
    return builder.build(measurement_times, rng=12345)

@pytest.fixture(scope="session")
def fine_kernel(paper_parameters, measurement_times) -> VolumeKernel:
    """A higher-resolution kernel for accuracy-sensitive tests."""
    builder = KernelBuilder(paper_parameters, num_cells=12000, phase_bins=80)
    return builder.build(measurement_times, rng=99)


@pytest.fixture(scope="session")
def basis12() -> SplineBasis:
    """A twelve-function spline basis."""
    return SplineBasis(num_basis=12)


@pytest.fixture(scope="session")
def ftsz_truth():
    """The ftsZ-like ground-truth profile."""
    return ftsz_like_profile()


@pytest.fixture(scope="session")
def pulse_truth():
    """A single mid-cycle pulse profile."""
    return single_pulse_profile(center=0.5, width=0.12, amplitude=2.0, baseline=0.1)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(2024)
