"""Tests for the ASCII visualisation helpers and the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.viz.ascii import ascii_compare, ascii_plot


class TestAsciiPlot:
    def test_basic_dimensions(self):
        x = np.linspace(0, 1, 50)
        text = ascii_plot(x, np.sin(2 * np.pi * x), width=40, height=10, name="sine")
        lines = text.splitlines()
        # header + height rows + axis + x range + legend
        assert len(lines) == 1 + 10 + 1 + 1 + 1
        assert all(len(line) <= 42 for line in lines[1:11])
        assert "sine" in lines[-1]

    def test_contains_markers(self):
        x = np.linspace(0, 1, 20)
        text = ascii_plot(x, x, width=30, height=8)
        assert "*" in text

    def test_constant_series_handled(self):
        x = np.linspace(0, 1, 10)
        text = ascii_plot(x, np.ones(10))
        assert "1" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            ascii_plot(np.ones(3), np.ones(3), width=4)

    def test_compare_multiple_series(self):
        x = np.linspace(0, 1, 30)
        text = ascii_compare(
            {"up": (x, x), "down": (x, 1 - x)}, width=40, height=8,
            x_label="phase", y_label="expression",
        )
        assert "up" in text and "down" in text
        assert "*" in text and "o" in text

    def test_compare_requires_series(self):
        with pytest.raises(ValueError):
            ascii_compare({})


class TestCLI:
    def test_figure2_command_runs(self, capsys):
        exit_code = main(["figure2", "--cells", "1500", "--seed", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "deconv NRMSE" in captured.out
        assert "x1 deconvolved" in captured.out

    def test_figure2_with_plot(self, capsys):
        exit_code = main(["figure2", "--cells", "1200", "--seed", "2", "--plot"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "single cell" in captured.out

    def test_figure5_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "ftsz.csv"
        exit_code = main(["figure5", "--cells", "1500", "--seed", "3", "--output", str(output)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert output.exists()
        assert "deconvolved ftsZ" in captured.out

    def test_sensitivity_command(self, capsys):
        exit_code = main(["sensitivity", "--cells", "1200", "--seed", "4"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "assumed mu_sst" in captured.out

    def test_figure3_command_runs(self, capsys):
        exit_code = main(["figure3", "--cells", "1200", "--realisations", "1", "--seed", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "mean NRMSE" in captured.out
        assert "noise realisation" in captured.out

    def test_ablations_volume_study(self, capsys):
        exit_code = main(["ablations", "--study", "volume", "--cells", "800", "--seed", "6"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "volume model" in captured.out
        assert "smooth" in captured.out

    def test_ablations_lambda_study(self, capsys):
        exit_code = main(["ablations", "--study", "lambda", "--cells", "800", "--seed", "7"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "smoothing" in captured.out
        assert "gcv" in captured.out and "kfold" in captured.out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])


class TestServeBenchCLI:
    def test_serve_bench_command_runs_and_verifies(self, capsys):
        exit_code = main([
            "serve-bench", "--requests", "12", "--cells", "600", "--grids", "1",
            "--max-wait-ms", "1.0", "--verbose",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "coalescing factor" in captured.out
        assert "p95 latency ms" in captured.out
        assert "session 'default'" in captured.out
        assert "ok: every scheduler response matches its one-shot fit to 1e-10" in captured.out

    def test_serve_bench_scenario_with_faults_terminates_and_verifies(self, capsys):
        exit_code = main([
            "serve-bench", "--requests", "10", "--cells", "600", "--grids", "1",
            "--max-wait-ms", "1.0", "--scenario", "hotkey", "--faults", "--verbose",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "scenario hotkey" in captured.out
        assert "injected faults" in captured.out
        assert "SLO pass" in captured.out
        assert "ok: every request terminated" in captured.out
