"""Smoke test for the solve-path benchmark harness (tier-1 wired).

Runs :func:`repro.benchmarks.solvepath.run_solvepath_benchmark` at smoke
sizes so the per-stage timing harness (and the JSON baseline machinery behind
``BENCH_solvepath.json``) is exercised on every tier-1 run without the cost
of the full-size benchmark.
"""

import copy
import json
import pathlib

import pytest

from repro.benchmarks.solvepath import (
    SMOKE_CONFIG,
    compare_reports,
    format_report,
    main,
    run_solvepath_benchmark,
    write_baseline,
)

EXPECTED_STAGES = {
    "kernel_build",
    "kernel_build_compiled",
    "problem_assembly_cold",
    "problem_assembly_compiled",
    "problem_assembly_warm",
    "qp_solve",
    "qp_solve_warm",
    "qp_solve_batch",
    "lambda_gcv",
    "lambda_kfold",
    "bootstrap",
    "fit_many_gcv",
    "fit_many_kfold",
    "session_multi_grid",
    "fit_stream",
    "service_throughput",
    "service_slo",
    "service_scaling",
}


@pytest.fixture(scope="module")
def smoke_report():
    return run_solvepath_benchmark(**SMOKE_CONFIG)


def test_smoke_report_has_all_stages(smoke_report):
    assert set(smoke_report["stages_seconds"]) == EXPECTED_STAGES
    assert all(seconds > 0.0 for seconds in smoke_report["stages_seconds"].values())


def test_backend_section_shape(smoke_report):
    """The report records which kernel backend each stage family ran on."""
    backend = smoke_report["backend"]
    assert backend["active"] in {"numpy", "numba"}
    assert backend["compiled_stages_backend"] in {"numpy", "numba"}
    assert backend["available"]["numpy"] is True
    assert set(backend["available"]) == {"numpy", "numba"}
    text = format_report(smoke_report)
    assert "backend: active" in text
    assert f"[{backend['active']}]" in text


def test_service_slo_section_shape(smoke_report):
    slo = smoke_report["service_slo"]
    assert slo["scenario"] == "hotkey"
    assert slo["requests"] == SMOKE_CONFIG["num_service"]
    assert 0.0 <= slo["shed_rate"] <= 1.0
    assert 0.0 <= slo["deadline_miss_rate"] <= 1.0
    assert isinstance(slo["slo_passed"], bool)


def test_smoke_config_recorded(smoke_report):
    assert smoke_report["config"]["num_cells"] == SMOKE_CONFIG["num_cells"]
    # Smoke sizes are not the default sizes, so no seed comparison is claimed.
    assert smoke_report["seed_baseline_seconds"] is None


def test_warm_solve_not_slower_than_cold(smoke_report):
    stages = smoke_report["stages_seconds"]
    assert stages["qp_solve_warm"] <= stages["problem_assembly_cold"]


def test_baseline_round_trips_as_json(smoke_report, tmp_path):
    path = tmp_path / "BENCH_solvepath.json"
    write_baseline(smoke_report, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["benchmark"] == "solvepath"
    assert set(loaded["stages_seconds"]) == EXPECTED_STAGES


def test_report_formats(smoke_report):
    text = format_report(smoke_report)
    assert "solvepath benchmark" in text
    assert "qp_solve_warm" in text
    assert "fit_many_kfold" in text


class TestCompareReports:
    """Baseline comparisons always carry the per-stage diff table.

    Every assertion on the ``ok`` flag passes the formatted ``table`` as the
    assertion message, so a failing comparison prints the same readable
    per-stage diff the CI bench gate prints instead of a bare boolean.
    """

    def test_identical_reports_pass(self, smoke_report):
        ok, table = compare_reports(smoke_report, smoke_report, tolerance=3.0)
        assert ok, f"unexpected regression in identical reports:\n{table}"
        assert "REGRESSION" not in table

    def test_regression_detected_with_readable_diff(self, smoke_report):
        baseline = copy.deepcopy(smoke_report)
        baseline["stages_seconds"]["qp_solve"] /= 10.0
        ok, table = compare_reports(smoke_report, baseline, tolerance=3.0, min_seconds=0.0)
        assert not ok, f"regression not detected:\n{table}"
        regression_lines = [line for line in table.splitlines() if "REGRESSION" in line]
        assert len(regression_lines) == 1, table
        assert regression_lines[0].startswith("qp_solve"), table

    def test_floor_shields_microsecond_stages(self, smoke_report):
        """A micro-stage over the ratio but under the absolute floor passes."""
        baseline = copy.deepcopy(smoke_report)
        baseline["stages_seconds"]["qp_solve"] = 1e-9
        ok, table = compare_reports(smoke_report, baseline, tolerance=3.0, min_seconds=1.0)
        assert ok, f"floor did not shield the micro-stage:\n{table}"
        assert "ok (below floor)" in table, table

    def test_stage_missing_from_baseline_is_ignored(self, smoke_report):
        baseline = copy.deepcopy(smoke_report)
        del baseline["stages_seconds"]["fit_many_kfold"]
        ok, table = compare_reports(smoke_report, baseline, tolerance=3.0)
        assert ok, f"new stage tripped the gate:\n{table}"
        assert "missing in baseline (ignored)" in table, table

    def test_stage_missing_from_current_run_fails(self, smoke_report):
        """A stage silently dropping out of the benchmark is a regression."""
        baseline = copy.deepcopy(smoke_report)
        baseline["stages_seconds"]["retired_stage"] = 1.0
        ok, table = compare_reports(smoke_report, baseline, tolerance=3.0)
        assert not ok, f"dropped stage not flagged:\n{table}"
        assert "missing from current run" in table, table

    def test_config_mismatch_noted(self, smoke_report):
        baseline = copy.deepcopy(smoke_report)
        baseline["config"]["num_cells"] = 1
        ok, table = compare_reports(smoke_report, baseline, tolerance=3.0)
        assert ok, f"config mismatch failed the gate:\n{table}"
        assert "config differs" in table, table

    def test_tolerance_must_exceed_one(self, smoke_report):
        with pytest.raises(ValueError):
            compare_reports(smoke_report, smoke_report, tolerance=1.0)


def test_committed_baseline_covers_all_stages(smoke_report):
    """The committed baseline's stages all still exist in the harness.

    Runs the same comparison as the CI bench gate with an effectively
    infinite tolerance, so only coverage losses (a stage present in
    ``BENCH_solvepath.json`` but gone from the benchmark) fail — and the
    failure message is the gate's own per-stage diff table.
    """
    baseline_path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_solvepath.json"
    baseline = json.loads(baseline_path.read_text())
    ok, table = compare_reports(smoke_report, baseline, tolerance=1e12)
    assert ok, f"stage coverage regressed vs the committed baseline:\n{table}"


def test_cli_compare_gate_round_trip(smoke_report, tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    write_baseline(smoke_report, str(baseline_path))
    code = main(["--smoke", "--compare", str(baseline_path), "--tolerance", "1000"])
    out = capsys.readouterr().out
    assert code == 0
    assert "bench regression gate" in out
