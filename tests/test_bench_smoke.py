"""Smoke test for the solve-path benchmark harness (tier-1 wired).

Runs :func:`repro.benchmarks.solvepath.run_solvepath_benchmark` at smoke
sizes so the per-stage timing harness (and the JSON baseline machinery behind
``BENCH_solvepath.json``) is exercised on every tier-1 run without the cost
of the full-size benchmark.
"""

import json

import pytest

from repro.benchmarks.solvepath import (
    SMOKE_CONFIG,
    format_report,
    run_solvepath_benchmark,
    write_baseline,
)

EXPECTED_STAGES = {
    "kernel_build",
    "problem_assembly_cold",
    "qp_solve",
    "qp_solve_warm",
    "lambda_gcv",
    "lambda_kfold",
    "bootstrap",
}


@pytest.fixture(scope="module")
def smoke_report():
    return run_solvepath_benchmark(**SMOKE_CONFIG)


def test_smoke_report_has_all_stages(smoke_report):
    assert set(smoke_report["stages_seconds"]) == EXPECTED_STAGES
    assert all(seconds > 0.0 for seconds in smoke_report["stages_seconds"].values())


def test_smoke_config_recorded(smoke_report):
    assert smoke_report["config"]["num_cells"] == SMOKE_CONFIG["num_cells"]
    # Smoke sizes are not the default sizes, so no seed comparison is claimed.
    assert smoke_report["seed_baseline_seconds"] is None


def test_warm_solve_not_slower_than_cold(smoke_report):
    stages = smoke_report["stages_seconds"]
    assert stages["qp_solve_warm"] <= stages["problem_assembly_cold"]


def test_baseline_round_trips_as_json(smoke_report, tmp_path):
    path = tmp_path / "BENCH_solvepath.json"
    write_baseline(smoke_report, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["benchmark"] == "solvepath"
    assert set(loaded["stages_seconds"]) == EXPECTED_STAGES


def test_report_formats(smoke_report):
    text = format_report(smoke_report)
    assert "solvepath benchmark" in text
    assert "qp_solve_warm" in text
