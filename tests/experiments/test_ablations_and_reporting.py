"""Integration tests for the ablation drivers and the reporting helpers."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_constraint_ablation,
    run_kernel_convergence_study,
    run_lambda_ablation,
    run_volume_model_ablation,
)
from repro.experiments.reporting import format_series, format_table


class TestVolumeAblation:
    def test_all_models_recover_reasonably(self):
        scores = run_volume_model_ablation(
            num_cells=2500, phase_bins=50, num_times=12, lam=1e-3, rng=1
        )
        assert set(scores) == {"linear", "piecewise_linear", "smooth"}
        for score in scores.values():
            assert score < 0.4


class TestConstraintAblation:
    def test_configurations_and_positivity_effect(self):
        scores = run_constraint_ablation(
            num_cells=2500, phase_bins=50, num_times=12, lam=1e-3, noise_fraction=0.08, rng=2
        )
        assert set(scores) == {"none", "positivity_only", "no_rate_continuity", "full"}
        # With positivity enforced the estimate cannot dip (appreciably) negative.
        assert scores["full"]["negativity"] >= -5e-3
        assert scores["positivity_only"]["negativity"] >= -5e-3
        # The unconstrained configuration is allowed to dip negative (and with
        # noise it typically does at least slightly).
        assert scores["none"]["negativity"] <= 0.0
        for metrics in scores.values():
            assert metrics["nrmse"] < 0.5


class TestLambdaAblation:
    def test_sweep_and_automatic_choices(self):
        scores = run_lambda_ablation(
            num_cells=2500, phase_bins=50, num_times=12, noise_fraction=0.1, rng=3,
            lambdas=np.array([1e-4, 1e-2, 1e0]),
        )
        assert "gcv" in scores and "kfold" in scores
        sweep_scores = [v for k, v in scores.items() if k.startswith("lambda=")]
        assert len(sweep_scores) == 3
        # The automatic selectors should be competitive with the best fixed lambda.
        assert scores["gcv"] <= 2.0 * min(sweep_scores) + 0.05


class TestKernelConvergence:
    def test_error_decreases_with_population_size(self):
        scores = run_kernel_convergence_study(
            cell_counts=(200, 2000), reference_cells=10_000, phase_bins=50, num_times=4, rng=4
        )
        assert scores[2000] < scores[200]


class TestReporting:
    def test_format_table_alignment_and_rows(self):
        text = format_table(["name", "value"], [["alpha", 1.23456], ["b", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "alpha" in lines[2]

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1.0]])

    def test_format_series_subsamples(self):
        x = np.linspace(0, 1, 1000)
        text = format_series("curve", x, x**2, max_points=10)
        assert len(text.splitlines()) == 13  # title + header + separator + 10 rows

    def test_format_series_length_check(self):
        with pytest.raises(ValueError):
            format_series("bad", np.ones(3), np.ones(4))
