"""Tests for the asynchrony-parameter sensitivity studies."""

import numpy as np
import pytest

from repro.experiments.sensitivity import run_cycle_time_sensitivity, run_mu_sst_sensitivity


class TestMuSstSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return run_mu_sst_sensitivity(
            assumed_values=np.array([0.15, 0.25, 0.35]),
            num_cells=2500,
            phase_bins=50,
            num_times=12,
            rng=17,
        )

    def test_result_structure(self, result):
        assert result.parameter_name == "mu_sst"
        assert result.true_value == pytest.approx(0.15)
        assert result.errors.shape == result.assumed_values.shape

    def test_correct_assumption_is_best_or_near_best(self, result):
        """Assuming the true transition phase beats a badly wrong assumption."""
        error_at_truth = result.error_at_truth()
        worst = float(np.max(result.errors))
        assert error_at_truth <= worst
        assert result.best_assumed_value() in (0.15, 0.25)

    def test_large_mismatch_degrades_recovery(self, result):
        index_true = int(np.argmin(np.abs(result.assumed_values - 0.15)))
        index_far = int(np.argmin(np.abs(result.assumed_values - 0.35)))
        assert result.errors[index_far] > result.errors[index_true]


class TestCycleTimeSensitivity:
    def test_wrong_cycle_time_degrades_recovery(self):
        result = run_cycle_time_sensitivity(
            assumed_values=np.array([105.0, 150.0, 210.0]),
            num_cells=2500,
            phase_bins=50,
            num_times=12,
            rng=19,
        )
        assert result.parameter_name == "mean_cycle_time"
        index_true = int(np.argmin(np.abs(result.assumed_values - 150.0)))
        assert result.errors[index_true] <= float(np.max(result.errors))
        assert result.error_at_truth() < 0.3
