"""Integration tests: the figure experiments reproduce the paper's claims.

These use reduced Monte-Carlo sizes so the whole module runs in tens of
seconds; the benchmarks run the full-size versions.
"""

import numpy as np
import pytest

from repro.cellcycle.celltypes import CellType
from repro.experiments.figure2 import run_oscillator_experiment
from repro.experiments.figure3 import run_noisy_oscillator_experiment
from repro.experiments.figure4 import run_celltype_experiment
from repro.experiments.figure5 import run_ftsz_experiment


@pytest.fixture(scope="module")
def figure2_result():
    return run_oscillator_experiment(num_cells=3000, phase_bins=60, num_times=16, rng=1)


class TestFigure2:
    def test_deconvolution_recovers_both_species(self, figure2_result):
        for name in ("x1", "x2"):
            comparison = figure2_result.comparisons[name]
            assert comparison.nrmse < 0.1
            assert comparison.correlation > 0.95

    def test_deconvolution_beats_population_curves(self, figure2_result):
        for factor in figure2_result.improvement_factors().values():
            assert factor > 2.0

    def test_population_is_damped_relative_to_single_cell(self, figure2_result):
        """Asynchronous averaging shrinks the oscillation amplitude."""
        for name in ("x1", "x2"):
            single = figure2_result.single_cell[name]
            population = figure2_result.population_clean[name]
            assert population.max() - population.min() < single.max() - single.min()

    def test_series_shapes(self, figure2_result):
        assert figure2_result.times.shape == (16,)
        for series in figure2_result.population.values():
            assert series.shape == (16,)

    def test_noiseless_population_equals_clean(self, figure2_result):
        for name in ("x1", "x2"):
            assert np.allclose(
                figure2_result.population[name], figure2_result.population_clean[name]
            )


class TestFigure3:
    def test_noisy_recovery_still_captures_major_features(self):
        summary = run_noisy_oscillator_experiment(
            num_realisations=2, num_cells=3000, phase_bins=60, num_times=16, rng=5
        )
        assert summary.num_realisations == 2
        for name in ("x1", "x2"):
            assert summary.mean_nrmse[name] < 0.3
            assert summary.mean_improvement[name] > 1.0
        assert summary.example.noise_fraction == pytest.approx(0.10)

    def test_noise_actually_added(self):
        summary = run_noisy_oscillator_experiment(
            num_realisations=1, num_cells=2000, phase_bins=50, num_times=12, rng=6
        )
        example = summary.example
        for name in ("x1", "x2"):
            assert not np.allclose(example.population[name], example.population_clean[name])


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_celltype_experiment(num_cells=10_000, rng=3)

    def test_simulated_distribution_matches_reference(self, result):
        assert result.mean_error < 0.12
        assert result.within_band_fraction > 0.6

    def test_all_types_reported(self, result):
        assert set(result.per_type_max_error) == set(CellType.ordered())
        assert set(result.per_type_mean_error) == set(CellType.ordered())

    def test_simulated_fractions_normalised(self, result):
        assert result.simulated.check_normalised(tol=1e-9)

    def test_qualitative_shape(self, result):
        simulated = result.simulated.fractions
        assert simulated[CellType.STE][0] > 0.5          # mostly early-stalked at 75 min
        assert simulated[CellType.SW][-1] > simulated[CellType.SW][0]  # swarmers reappear
        stepd = simulated[CellType.STEPD]
        assert np.argmax(stepd) not in (0, stepd.size - 1)  # predivisional peak mid-way


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ftsz_experiment(num_cells=4000, num_times=14, rng=7)

    def test_delay_visible_only_after_deconvolution(self, result):
        assert result.deconvolved_onset_phase == pytest.approx(result.true_onset_phase, abs=0.08)
        assert result.population_onset_phase < result.deconvolved_onset_phase - 0.05

    def test_post_peak_drop_without_subsequent_increase(self, result):
        assert result.deconvolved_post_peak_drop > 0.7
        assert not result.deconvolved_has_post_peak_increase

    def test_population_data_misleading_at_late_times(self, result):
        """The raw population series rises again late in the experiment."""
        assert result.population_final_trend_up

    def test_peak_phase_near_biology(self, result):
        assert result.deconvolved_peak_phase == pytest.approx(0.4, abs=0.1)

    def test_quantitative_recovery(self, result):
        assert result.comparison.nrmse < 0.15
        assert result.comparison.improvement_factor > 1.5
