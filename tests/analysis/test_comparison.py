"""Tests for repro.analysis.comparison."""

import numpy as np
import pytest

from repro.analysis.comparison import compare_to_truth
from repro.core.deconvolver import Deconvolver
from repro.data.synthetic import single_pulse_profile


@pytest.fixture(scope="module")
def fitted(small_kernel, paper_parameters):
    truth = single_pulse_profile(center=0.45, width=0.12, amplitude=2.0, baseline=0.2)
    values = small_kernel.apply_function(truth)
    deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
    result = deconvolver.fit(small_kernel.times, values, lam=1e-4)
    return result, truth


class TestCompareToTruth:
    def test_metrics_are_consistent(self, fitted):
        result, truth = fitted
        comparison = compare_to_truth(result, truth)
        assert comparison.rmse >= 0
        assert 0 <= comparison.nrmse
        assert comparison.max_error >= comparison.rmse
        assert -1.0 <= comparison.correlation <= 1.0

    def test_deconvolution_beats_population_baseline(self, fitted):
        result, truth = fitted
        comparison = compare_to_truth(result, truth)
        assert comparison.improvement_factor > 1.0
        assert comparison.nrmse < comparison.population_nrmse

    def test_explicit_population_series(self, fitted):
        result, truth = fitted
        comparison = compare_to_truth(
            result,
            truth,
            population_values=result.measurements,
            population_times=result.times,
        )
        default = compare_to_truth(result, truth)
        assert comparison.population_nrmse == pytest.approx(default.population_nrmse)

    def test_length_mismatch_rejected(self, fitted):
        result, truth = fitted
        with pytest.raises(ValueError):
            compare_to_truth(
                result, truth, population_values=np.ones(3), population_times=np.ones(4)
            )
