"""Tests for repro.analysis.metrics and repro.analysis.features."""

import numpy as np
import pytest

from repro.analysis.features import (
    detect_onset_phase,
    detect_peak,
    has_post_peak_increase,
    post_peak_drop_fraction,
)
from repro.analysis.metrics import (
    max_absolute_error,
    mean_absolute_error,
    nrmse,
    pearson_correlation,
    relative_error,
    rmse,
)


class TestMetrics:
    def test_rmse_known_value(self):
        assert rmse(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(np.sqrt(2.5))

    def test_rmse_zero_for_identical(self):
        values = np.linspace(0, 1, 10)
        assert rmse(values, values) == 0.0

    def test_nrmse_normalisation(self):
        truth = np.array([0.0, 2.0])
        estimate = truth + 1.0
        assert nrmse(estimate, truth) == pytest.approx(0.5)

    def test_nrmse_rejects_constant_truth(self):
        with pytest.raises(ValueError):
            nrmse(np.array([1.0, 2.0]), np.array([3.0, 3.0]))

    def test_mae_and_max_error(self):
        estimate = np.array([1.0, 2.0, 5.0])
        truth = np.array([1.0, 1.0, 1.0])
        assert mean_absolute_error(estimate, truth) == pytest.approx(5.0 / 3.0)
        assert max_absolute_error(estimate, truth) == pytest.approx(4.0)

    def test_pearson_correlation(self):
        x = np.linspace(0, 1, 20)
        assert pearson_correlation(2 * x + 1, x) == pytest.approx(1.0)
        assert pearson_correlation(-x, x) == pytest.approx(-1.0)

    def test_pearson_undefined_for_constant(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(5), np.arange(5.0))

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        result = relative_error(np.array([2.0, 0.5]), np.array([1.0, 1.0]))
        assert np.allclose(result, [1.0, 0.5])
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.ones(3), np.ones(4))


class TestOnsetDetection:
    def test_delayed_profile_onset(self):
        phases = np.linspace(0, 1, 201)
        values = np.where(phases < 0.3, 0.0, phases - 0.3)
        onset = detect_onset_phase(phases, values, threshold_fraction=0.1)
        assert onset == pytest.approx(0.37, abs=0.02)

    def test_profile_starting_high_has_zero_onset(self):
        """A profile already above threshold at phase zero reports onset zero."""
        phases = np.linspace(0, 1, 101)
        values = np.exp(-2.0 * phases)
        assert detect_onset_phase(phases, values) == 0.0

    def test_constant_profile_rejected(self):
        phases = np.linspace(0, 1, 11)
        with pytest.raises(ValueError):
            detect_onset_phase(phases, np.ones(11))

    def test_threshold_validation(self):
        phases = np.linspace(0, 1, 11)
        with pytest.raises(ValueError):
            detect_onset_phase(phases, phases, threshold_fraction=0.0)


class TestPeakAndDrop:
    def test_detect_peak(self):
        phases = np.linspace(0, 1, 101)
        values = np.exp(-((phases - 0.35) ** 2) / 0.01)
        peak_phase, peak_value = detect_peak(phases, values)
        assert peak_phase == pytest.approx(0.35, abs=0.01)
        assert peak_value == pytest.approx(1.0, abs=1e-6)

    def test_post_peak_drop_fraction(self):
        phases = np.linspace(0, 1, 101)
        values = np.where(phases < 0.4, phases / 0.4, 1.0 - 0.9 * (phases - 0.4) / 0.6)
        assert post_peak_drop_fraction(phases, values) == pytest.approx(0.9, abs=0.02)

    def test_post_peak_increase_detection(self):
        phases = np.linspace(0, 1, 201)
        monotone_decline = np.where(phases < 0.4, phases, 0.4 - 0.3 * (phases - 0.4))
        rebounding = monotone_decline + np.where(phases > 0.8, 0.8 * (phases - 0.8), 0.0)
        assert not has_post_peak_increase(phases, monotone_decline)
        assert has_post_peak_increase(phases, rebounding)

    def test_small_wiggles_ignored(self):
        phases = np.linspace(0, 1, 201)
        values = np.where(phases < 0.4, phases, 0.4 - 0.3 * (phases - 0.4))
        wiggly = values + 0.002 * np.sin(40 * phases)
        assert not has_post_peak_increase(phases, wiggly, tolerance_fraction=0.05)

    def test_peak_at_end_means_no_increase(self):
        phases = np.linspace(0, 1, 51)
        assert not has_post_peak_increase(phases, phases.copy())

    def test_drop_undefined_for_zero_profile(self):
        phases = np.linspace(0, 1, 11)
        with pytest.raises(ValueError):
            post_peak_drop_fraction(phases, np.zeros(11))
