"""Tests for synthetic gene profiles and the reference datasets."""

import numpy as np
import pytest

from repro.cellcycle.celltypes import CellType
from repro.data.judd2003 import JUDD_TIMES_MINUTES, judd_reference_distribution
from repro.data.mcgrath2007 import ftsz_population_dataset
from repro.data.synthetic import (
    constant_profile,
    double_pulse_profile,
    ftsz_like_profile,
    linear_profile,
    single_pulse_profile,
)


class TestSyntheticProfiles:
    def test_constant(self):
        profile = constant_profile(2.5)
        assert np.allclose(profile.values, 2.5)

    def test_linear(self):
        profile = linear_profile(1.0, 3.0)
        assert profile(0.0) == pytest.approx(1.0)
        assert profile(1.0) == pytest.approx(3.0)

    def test_single_pulse_peak_location(self):
        profile = single_pulse_profile(center=0.6, width=0.1, amplitude=2.0, baseline=0.1)
        assert profile.peak_phase() == pytest.approx(0.6, abs=0.01)
        assert profile.values.max() == pytest.approx(2.1, abs=0.01)

    def test_double_pulse_has_two_local_maxima(self):
        profile = double_pulse_profile()
        values = profile.values
        interior = (values[1:-1] > values[:-2]) & (values[1:-1] > values[2:])
        assert np.count_nonzero(interior) >= 2

    def test_all_profiles_nonnegative(self):
        for profile in (
            constant_profile(),
            single_pulse_profile(),
            double_pulse_profile(),
            ftsz_like_profile(),
        ):
            assert np.all(profile.values >= 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            single_pulse_profile(center=1.5)
        with pytest.raises(ValueError):
            ftsz_like_profile(onset=0.5, peak=0.3)


class TestFtsZProfile:
    def test_delay_before_onset(self):
        profile = ftsz_like_profile(onset=0.15, baseline=0.1)
        early = profile(np.linspace(0.0, 0.14, 20))
        assert np.allclose(early, 0.1, atol=1e-9)

    def test_peak_at_requested_phase(self):
        profile = ftsz_like_profile(onset=0.15, peak=0.4, amplitude=10.0)
        assert profile.peak_phase() == pytest.approx(0.4, abs=0.01)
        assert profile.values.max() == pytest.approx(10.1, abs=0.05)

    def test_monotone_decline_after_peak(self):
        profile = ftsz_like_profile()
        peak_index = int(np.argmax(profile.values))
        tail = profile.values[peak_index:]
        assert np.all(np.diff(tail) <= 1e-12)


class TestJuddReference:
    def test_times_and_types(self):
        distribution = judd_reference_distribution()
        assert np.allclose(distribution.times, JUDD_TIMES_MINUTES)
        assert set(distribution.fractions) == set(CellType.ordered())

    def test_fractions_normalised(self):
        distribution = judd_reference_distribution()
        assert distribution.check_normalised(tol=1e-9)

    def test_qualitative_shape(self):
        """Stalked cells dominate early; swarmers reappear by 150 minutes."""
        distribution = judd_reference_distribution()
        assert distribution.fractions[CellType.STE][0] > 0.5
        assert distribution.fractions[CellType.SW][0] < 0.1
        assert distribution.fractions[CellType.SW][-1] > 0.2

    def test_returns_copies(self):
        a = judd_reference_distribution()
        a.fractions[CellType.SW][0] = 99.0
        b = judd_reference_distribution()
        assert b.fractions[CellType.SW][0] != 99.0


class TestFtsZDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return ftsz_population_dataset(num_times=10, num_cells=2000, phase_bins=50, rng=1)

    def test_components_consistent(self, dataset):
        assert dataset.series.num_measurements == 10
        assert dataset.noiseless.num_measurements == 10
        assert dataset.kernel.num_measurements == 10
        assert dataset.series.sigma is not None

    def test_noise_level_matches_request(self, dataset):
        residual = dataset.series.values - dataset.noiseless.values
        assert np.std(residual) < 3 * dataset.series.sigma.max()
        assert np.any(residual != 0.0)

    def test_noiseless_option(self):
        clean = ftsz_population_dataset(
            num_times=6, num_cells=1000, phase_bins=40, noise_fraction=0.0, rng=2
        )
        assert clean.series.sigma is None
        assert np.allclose(clean.series.values, clean.noiseless.values)

    def test_truth_has_delayed_onset(self, dataset):
        assert dataset.truth(0.05) == pytest.approx(0.1, abs=1e-6)
        assert dataset.truth(0.4) > 5.0

    def test_deterministic_for_seed(self):
        a = ftsz_population_dataset(num_times=6, num_cells=800, phase_bins=40, rng=7)
        b = ftsz_population_dataset(num_times=6, num_cells=800, phase_bins=40, rng=7)
        assert np.allclose(a.series.values, b.series.values)

    def test_validation(self):
        with pytest.raises(ValueError):
            ftsz_population_dataset(num_times=2)
