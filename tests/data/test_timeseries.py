"""Tests for repro.data.timeseries containers."""

import numpy as np
import pytest

from repro.data.timeseries import ExpressionTimeSeries, PhaseProfile


class TestPhaseProfile:
    def test_construction_and_call(self):
        phases = np.linspace(0, 1, 11)
        profile = PhaseProfile(phases, phases**2, name="quadratic")
        assert profile(0.5) == pytest.approx(0.25, abs=0.01)
        assert profile.name == "quadratic"

    def test_vector_evaluation(self):
        profile = PhaseProfile(np.linspace(0, 1, 5), np.arange(5.0))
        values = profile(np.array([0.0, 0.5, 1.0]))
        assert values.shape == (3,)
        assert values[0] == 0.0 and values[-1] == 4.0

    def test_from_callable(self):
        profile = PhaseProfile.from_callable(lambda p: np.sin(np.pi * p), num_points=101)
        assert profile(0.5) == pytest.approx(1.0, abs=1e-3)

    def test_mean_matches_integral(self):
        profile = PhaseProfile.from_callable(lambda p: 2.0 * p, num_points=1001)
        assert profile.mean() == pytest.approx(1.0, abs=1e-4)

    def test_peak_phase(self):
        profile = PhaseProfile.from_callable(lambda p: np.exp(-((p - 0.3) ** 2) / 0.01))
        assert profile.peak_phase() == pytest.approx(0.3, abs=0.01)

    def test_rescale(self):
        profile = PhaseProfile.from_callable(lambda p: p)
        doubled = profile.rescale(2.0)
        assert doubled(0.5) == pytest.approx(1.0, abs=1e-6)

    def test_to_time(self):
        profile = PhaseProfile.from_callable(lambda p: p, num_points=11)
        times, values = profile.to_time(150.0)
        assert times[-1] == pytest.approx(150.0)
        assert np.allclose(values, profile.values)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseProfile(np.array([0.0, 0.5, 1.5]), np.zeros(3))
        with pytest.raises(ValueError):
            PhaseProfile(np.array([0.0, 0.5, 1.0]), np.zeros(2))
        with pytest.raises(ValueError):
            PhaseProfile(np.array([0.5, 0.2, 1.0]), np.zeros(3))


class TestExpressionTimeSeries:
    def test_construction(self):
        series = ExpressionTimeSeries(np.array([0.0, 10.0]), np.array([1.0, 2.0]), name="geneA")
        assert series.num_measurements == 2
        assert series.magnitude() == pytest.approx(2.0)

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            ExpressionTimeSeries(np.array([0.0, 1.0]), np.ones(2), sigma=np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            ExpressionTimeSeries(np.array([0.0, 1.0]), np.ones(2), sigma=np.ones(3))

    def test_times_must_increase(self):
        with pytest.raises(ValueError):
            ExpressionTimeSeries(np.array([10.0, 0.0]), np.ones(2))

    def test_with_values(self):
        series = ExpressionTimeSeries(np.array([0.0, 10.0]), np.array([1.0, 2.0]), metadata={"k": 1})
        noisy = series.with_values(np.array([1.5, 2.5]), name="noisy")
        assert noisy.name == "noisy"
        assert noisy.metadata == {"k": 1}
        assert np.allclose(series.values, [1.0, 2.0])  # original untouched

    def test_subsample(self):
        series = ExpressionTimeSeries(
            np.linspace(0, 30, 4), np.arange(4.0), sigma=np.ones(4)
        )
        subset = series.subsample(np.array([0, 2]))
        assert subset.num_measurements == 2
        assert np.allclose(subset.times, [0.0, 20.0])
        assert subset.sigma.shape == (2,)
