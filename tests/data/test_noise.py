"""Tests for repro.data.noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.noise import (
    GaussianAdditiveNoise,
    GaussianMagnitudeNoise,
    GaussianProportionalNoise,
    LogNormalNoise,
    make_noise_model,
)


class TestStandardDeviations:
    def test_additive_constant_sigma(self):
        noise = GaussianAdditiveNoise(0.5)
        assert np.allclose(noise.standard_deviations(np.array([1.0, 10.0])), 0.5)

    def test_proportional_scales_with_each_point(self):
        noise = GaussianProportionalNoise(0.1)
        sigma = noise.standard_deviations(np.array([1.0, 10.0]))
        assert np.allclose(sigma, [0.1, 1.0])

    def test_proportional_floor(self):
        noise = GaussianProportionalNoise(0.1, floor=2.0)
        sigma = noise.standard_deviations(np.array([0.0, 10.0]))
        assert np.allclose(sigma, [0.2, 1.0])

    def test_magnitude_uses_series_maximum(self):
        noise = GaussianMagnitudeNoise(0.1)
        sigma = noise.standard_deviations(np.array([1.0, -10.0, 5.0]))
        assert np.allclose(sigma, 1.0)

    def test_lognormal_first_order_sigma(self):
        noise = LogNormalNoise(0.2)
        assert np.allclose(noise.standard_deviations(np.array([5.0])), 1.0)


class TestApply:
    def test_additive_statistics(self):
        noise = GaussianAdditiveNoise(0.3)
        values = np.full(20_000, 2.0)
        noisy = noise.apply(values, rng=0)
        assert np.mean(noisy) == pytest.approx(2.0, abs=0.01)
        assert np.std(noisy) == pytest.approx(0.3, rel=0.05)

    def test_magnitude_statistics_match_paper_recipe(self):
        """Ten percent of the data magnitude, as in the paper's Figure 3."""
        values = np.linspace(0.0, 10.0, 10_000)
        noise = GaussianMagnitudeNoise(0.10)
        noisy = noise.apply(values, rng=1)
        residual = noisy - values
        assert np.std(residual) == pytest.approx(1.0, rel=0.05)

    def test_deterministic_with_seed(self):
        noise = GaussianProportionalNoise(0.2)
        values = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(noise.apply(values, rng=9), noise.apply(values, rng=9))

    def test_lognormal_preserves_positivity(self):
        noise = LogNormalNoise(0.5)
        noisy = noise.apply(np.full(1000, 3.0), rng=2)
        assert np.all(noisy > 0)

    def test_lognormal_rejects_negative_data(self):
        with pytest.raises(ValueError):
            LogNormalNoise(0.2).apply(np.array([-1.0, 1.0]), rng=0)

    def test_zero_magnitude_series_handled(self):
        noise = GaussianMagnitudeNoise(0.1)
        sigma = noise.standard_deviations(np.zeros(4))
        assert np.all(sigma > 0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("gaussian_additive", GaussianAdditiveNoise),
            ("gaussian_proportional", GaussianProportionalNoise),
            ("gaussian_magnitude", GaussianMagnitudeNoise),
            ("lognormal", LogNormalNoise),
        ],
    )
    def test_known_models(self, name, cls):
        assert isinstance(make_noise_model(name, 0.1), cls)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            make_noise_model("poisson", 0.1)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            GaussianAdditiveNoise(0.0)


@settings(max_examples=30, deadline=None)
@given(
    fraction=st.floats(0.01, 0.5),
    seed=st.integers(0, 1000),
)
def test_noise_bias_is_small(fraction, seed):
    """Property: all Gaussian noise models are unbiased."""
    values = np.linspace(1.0, 5.0, 2000)
    noise = GaussianProportionalNoise(fraction)
    noisy = noise.apply(values, rng=seed)
    assert np.mean(noisy - values) == pytest.approx(0.0, abs=0.25 * fraction * 5.0)
