"""Tests for repro.data.io (CSV persistence)."""

import numpy as np
import pytest

from repro.data.io import (
    load_profile_csv,
    load_timeseries_csv,
    save_profile_csv,
    save_timeseries_csv,
)
from repro.data.synthetic import single_pulse_profile
from repro.data.timeseries import ExpressionTimeSeries


class TestTimeSeriesRoundTrip:
    def test_round_trip_without_sigma(self, tmp_path):
        series = ExpressionTimeSeries(np.linspace(0, 150, 6), np.arange(6.0), name="geneA")
        path = save_timeseries_csv(series, tmp_path / "series.csv")
        loaded = load_timeseries_csv(path)
        assert np.allclose(loaded.times, series.times)
        assert np.allclose(loaded.values, series.values)
        assert loaded.sigma is None
        assert loaded.name == "series"

    def test_round_trip_with_sigma_and_name(self, tmp_path):
        series = ExpressionTimeSeries(
            np.linspace(0, 30, 4), np.array([1.0, 2.0, 3.0, 2.5]), sigma=np.full(4, 0.1)
        )
        path = save_timeseries_csv(series, tmp_path / "noisy.csv")
        loaded = load_timeseries_csv(path, name="ftsZ")
        assert loaded.name == "ftsZ"
        assert np.allclose(loaded.sigma, 0.1)

    def test_rejects_foreign_csv(self, tmp_path):
        path = tmp_path / "foreign.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_timeseries_csv(path)


class TestProfileRoundTrip:
    def test_round_trip(self, tmp_path):
        profile = single_pulse_profile(num_points=51)
        path = save_profile_csv(profile, tmp_path / "profile.csv")
        loaded = load_profile_csv(path, name="pulse")
        assert np.allclose(loaded.phases, profile.phases)
        assert np.allclose(loaded.values, profile.values)
        assert loaded.name == "pulse"

    def test_rejects_foreign_csv(self, tmp_path):
        path = tmp_path / "foreign.csv"
        path.write_text("x,y\n0,1\n")
        with pytest.raises(ValueError):
            load_profile_csv(path)
