"""Tests for shared configuration helpers (worker-pool sizing)."""

import pytest

from repro import config


class TestDefaultPoolSize:
    def test_thread_cap(self):
        assert config.default_pool_size(1) == 1
        assert config.default_pool_size(3) == 3
        assert config.default_pool_size(100) == config.DEFAULT_THREAD_POOL_CAP

    def test_process_cap(self):
        assert config.default_pool_size(100, kind="process") == config.DEFAULT_PROCESS_POOL_CAP
        assert config.default_pool_size(2, kind="process") == 2

    def test_unbounded_gets_full_cap(self):
        assert config.default_pool_size(None) == config.DEFAULT_THREAD_POOL_CAP
        assert config.default_pool_size(None, kind="process") == config.DEFAULT_PROCESS_POOL_CAP

    def test_at_least_one_worker(self):
        assert config.default_pool_size(0) == 1
        assert config.default_pool_size(-3) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            config.default_pool_size(4, kind="fiber")
