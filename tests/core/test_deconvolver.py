"""Tests for the Deconvolver facade — end-to-end recovery on known profiles."""

import numpy as np
import pytest

from repro.analysis.metrics import nrmse, pearson_correlation
from repro.cellcycle.kernel import KernelBuilder
from repro.core.constraints import default_constraints
from repro.core.deconvolver import Deconvolver
from repro.data.noise import GaussianMagnitudeNoise
from repro.data.synthetic import (
    double_pulse_profile,
    ftsz_like_profile,
    linear_profile,
    single_pulse_profile,
)


def _recovery_error(kernel, parameters, truth, *, lam=None, noise=None, rng=0, **kwargs):
    """Forward-convolve ``truth``, optionally add noise, deconvolve and score."""
    clean = kernel.apply_function(truth)
    sigma = None
    values = clean
    if noise is not None:
        values = noise.apply(clean, rng)
        sigma = noise.standard_deviations(clean)
    deconvolver = Deconvolver(kernel, parameters=parameters, **kwargs)
    result = deconvolver.fit(kernel.times, values, sigma=sigma, lam=lam)
    phases = np.linspace(0.0, 1.0, 201)
    return result, nrmse(result.profile(phases), truth(phases))


class TestNoiselessRecovery:
    @pytest.mark.parametrize(
        "truth_factory",
        [
            lambda: single_pulse_profile(center=0.45, width=0.12, amplitude=2.0, baseline=0.2),
            lambda: ftsz_like_profile(),
        ],
        ids=["pulse", "ftsz"],
    )
    def test_recovers_profile_shape(self, fine_kernel, paper_parameters, truth_factory):
        truth = truth_factory()
        result, error = _recovery_error(fine_kernel, paper_parameters, truth, lam=1e-4)
        assert result.solver_converged
        assert error < 0.15

    def test_ramp_recovers_without_division_constraints(self, fine_kernel, paper_parameters):
        """A monotone ramp violates RNA conservation across division, so it is only
        recoverable when the division constraints are dropped."""
        truth = linear_profile(0.5, 2.0)
        result, error = _recovery_error(
            fine_kernel, paper_parameters, truth, lam=1e-4,
            constraints=default_constraints(rna_conservation=False, rate_continuity=False),
        )
        assert result.solver_converged
        assert error < 0.1

    def test_recovered_profile_is_nonnegative(self, fine_kernel, paper_parameters):
        truth = single_pulse_profile(center=0.3, width=0.08, amplitude=1.0, baseline=0.0)
        result, _ = _recovery_error(fine_kernel, paper_parameters, truth, lam=1e-4)
        # Positivity is enforced on a finite grid, so allow a tiny dip between
        # constraint points.
        phases = np.linspace(0, 1, 301)
        assert np.min(result.profile(phases)) >= -1e-4

    def test_double_pulse_harder_but_correlated(self, fine_kernel, paper_parameters):
        truth = double_pulse_profile()
        result, _ = _recovery_error(fine_kernel, paper_parameters, truth, lam=1e-4)
        phases = np.linspace(0, 1, 201)
        assert pearson_correlation(result.profile(phases), truth(phases)) > 0.8

    def test_fit_reproduces_measurements(self, fine_kernel, paper_parameters):
        truth = single_pulse_profile(amplitude=2.0, baseline=0.3)
        result, _ = _recovery_error(fine_kernel, paper_parameters, truth, lam=1e-5)
        assert np.max(np.abs(result.residuals)) < 0.05 * np.max(result.measurements)


class TestNoisyRecovery:
    def test_ten_percent_noise_still_recovers_features(self, fine_kernel, paper_parameters):
        truth = ftsz_like_profile()
        noise = GaussianMagnitudeNoise(0.10)
        result, error = _recovery_error(
            fine_kernel, paper_parameters, truth, lam=None, noise=noise, rng=3
        )
        assert error < 0.25
        phases = np.linspace(0, 1, 201)
        peak_phase = phases[int(np.argmax(result.profile(phases)))]
        assert peak_phase == pytest.approx(0.4, abs=0.1)

    def test_smoothing_selected_automatically_under_noise(self, fine_kernel, paper_parameters):
        truth = single_pulse_profile(amplitude=2.0, baseline=0.2)
        noise = GaussianMagnitudeNoise(0.10)
        noisy_result, noisy_error = _recovery_error(
            fine_kernel, paper_parameters, truth, lam=None, noise=noise, rng=11
        )
        assert noisy_result.lam > 0
        assert noisy_error < 0.3


class TestFacadeBehaviour:
    def test_kernel_built_on_demand(self, paper_parameters):
        times = np.linspace(0.0, 150.0, 8)
        builder = KernelBuilder(paper_parameters, num_cells=1500, phase_bins=40)
        deconvolver = Deconvolver(parameters=paper_parameters, kernel_builder=builder, num_basis=8)
        truth = single_pulse_profile(amplitude=1.0, baseline=0.2)
        kernel = deconvolver.ensure_kernel(times, rng=0)
        values = kernel.apply_function(truth)
        result = deconvolver.fit(times, values, lam=1e-3)
        assert result.solver_converged
        assert deconvolver.kernel is kernel

    def test_mismatched_kernel_times_rejected(self, small_kernel, paper_parameters):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters)
        wrong_times = small_kernel.times + 1.0
        with pytest.raises(ValueError):
            deconvolver.fit(wrong_times, np.ones_like(wrong_times), lam=1e-3)

    def test_fit_many_shares_kernel(self, small_kernel, paper_parameters):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        profiles = [
            single_pulse_profile(center=0.3, amplitude=1.0, baseline=0.1),
            single_pulse_profile(center=0.6, amplitude=2.0, baseline=0.1),
        ]
        matrix = np.column_stack([small_kernel.apply_function(p) for p in profiles])
        results = deconvolver.fit_many(small_kernel.times, matrix, lam=1e-3)
        assert len(results) == 2
        assert results[0].profile(0.3) > results[0].profile(0.8)

    def test_fit_many_requires_matrix(self, small_kernel, paper_parameters):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters)
        with pytest.raises(ValueError):
            deconvolver.fit_many(small_kernel.times, np.ones(small_kernel.num_measurements))

    def test_constraint_violations_reported_near_zero(self, small_kernel, paper_parameters):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        truth = single_pulse_profile(amplitude=1.5, baseline=0.2)
        values = small_kernel.apply_function(truth)
        result = deconvolver.fit(small_kernel.times, values, lam=1e-3)
        assert result.constraint_violations["equality"] < 1e-6
        assert result.constraint_violations["inequality"] < 1e-6

    def test_lambda_methods(self, small_kernel, paper_parameters):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        truth = single_pulse_profile(amplitude=1.5, baseline=0.2)
        values = small_kernel.apply_function(truth)
        gcv = deconvolver.fit(small_kernel.times, values, lambda_method="gcv")
        kfold = deconvolver.fit(
            small_kernel.times, values, lambda_method="kfold",
            lambda_grid=np.array([1e-4, 1e-2, 1.0]),
        )
        assert gcv.lambda_path and kfold.lambda_path
        assert gcv.lam > 0 and kfold.lam > 0

    def test_constraints_matter_for_negative_artifacts(self, small_kernel, paper_parameters):
        """Without positivity the estimate can dip negative; with it, it cannot."""
        truth = ftsz_like_profile(baseline=0.0)
        values = GaussianMagnitudeNoise(0.1).apply(small_kernel.apply_function(truth), 5)
        phases = np.linspace(0, 1, 301)
        unconstrained = Deconvolver(
            small_kernel, parameters=paper_parameters, num_basis=12, constraints=[]
        ).fit(small_kernel.times, values, lam=1e-5)
        constrained = Deconvolver(
            small_kernel, parameters=paper_parameters, num_basis=12,
            constraints=default_constraints(),
        ).fit(small_kernel.times, values, lam=1e-5)
        # Positivity is enforced on a 201-point grid; between grid points a dip
        # of order 1e-3 (0.01% of the profile amplitude) can remain.
        assert np.min(constrained.profile(phases)) >= -5e-3
        assert np.min(constrained.profile(phases)) >= np.min(unconstrained.profile(phases)) - 1e-9


class TestLazyResultDiagnostics:
    """Result diagnostics are computed on demand and match the eager values."""

    def test_lazy_fields_match_problem(self, small_kernel, paper_parameters):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        truth = single_pulse_profile(amplitude=1.5, baseline=0.2)
        values = small_kernel.apply_function(truth)
        result = deconvolver.fit(small_kernel.times, values, lam=1e-3)
        problem = deconvolver.build_problem(small_kernel.times, values)
        assert np.allclose(result.fitted, problem.forward.predict(result.coefficients))
        assert result.data_misfit == pytest.approx(problem.data_misfit(result.coefficients))
        assert result.roughness == pytest.approx(problem.roughness(result.coefficients))
        assert {"equality", "inequality"} <= set(result.constraint_violations)
        assert np.array_equal(result.sigma, problem.sigma)

    def test_pickle_materializes_and_detaches(self, small_kernel, paper_parameters):
        import pickle

        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        values = small_kernel.apply_function(single_pulse_profile())
        result = deconvolver.fit(small_kernel.times, values, lam=1e-3)
        clone = pickle.loads(pickle.dumps(result))
        assert clone._problem is None
        assert np.array_equal(clone.fitted, result.fitted)
        assert clone.data_misfit == result.data_misfit
        assert clone.constraint_violations == result.constraint_violations

    def test_detached_result_raises_clearly(self, basis12):
        from repro.core.result import DeconvolutionResult

        bare = DeconvolutionResult(
            coefficients=np.ones(12),
            basis=basis12,
            lam=1e-3,
            times=np.linspace(0, 1, 5),
            measurements=np.ones(5),
        )
        with pytest.raises(AttributeError):
            _ = bare.fitted
        assert bare.constraint_violations == {}
