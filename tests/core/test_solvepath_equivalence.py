"""Equivalence tests for the shared-factorization solve path.

The PR-level guarantee: warm-started / cache-sharing solves across the QP,
lambda-search, bootstrap and kernel layers must reproduce the results of the
corresponding cold, from-scratch computations (scores and profiles within
1e-6, objectives within 1e-8).
"""

import numpy as np
import pytest

from repro.cellcycle.kernel import KernelBuilder
from repro.cellcycle.population import PopulationSimulator
from repro.core.basis import SplineBasis
from repro.core.constraints import default_constraints
from repro.core.deconvolver import Deconvolver
from repro.core.forward import ForwardModel
from repro.core.lambda_selection import (
    _gcv_scores_dense,
    _gcv_scores_eig,
    default_lambda_grid,
    k_fold_cross_validation,
)
from repro.core.problem import DeconvolutionProblem
from repro.core.uncertainty import bootstrap_deconvolution
from repro.data.noise import GaussianMagnitudeNoise
from repro.data.synthetic import single_pulse_profile
from repro.utils.gridding import bin_edges


@pytest.fixture(scope="module")
def noisy_problem(small_kernel, paper_parameters):
    truth = single_pulse_profile(center=0.45, width=0.12, amplitude=2.0, baseline=0.3)
    clean = small_kernel.apply_function(truth)
    noise = GaussianMagnitudeNoise(0.08)
    values = noise.apply(clean, 17)
    sigma = noise.standard_deviations(clean)
    forward = ForwardModel(small_kernel, SplineBasis(num_basis=12))
    return DeconvolutionProblem(
        forward,
        values,
        sigma=sigma,
        constraints=default_constraints(),
        parameters=paper_parameters,
    )


class TestGCVEquivalence:
    def test_eig_scores_match_dense_scores(self, noisy_problem):
        lambdas = default_lambda_grid(9, 1e-6, 1e2)
        dense = _gcv_scores_dense(noisy_problem, lambdas)
        eig = _gcv_scores_eig(noisy_problem, lambdas)
        assert set(dense) == set(eig)
        for lam, score in dense.items():
            assert eig[lam] == pytest.approx(score, rel=1e-8, abs=1e-10)

    def test_eig_path_handles_unweighted_problem(self, small_kernel, paper_parameters):
        forward = ForwardModel(small_kernel, SplineBasis(num_basis=10))
        values = small_kernel.apply_function(
            single_pulse_profile(amplitude=1.0, baseline=0.2)
        )
        problem = DeconvolutionProblem(forward, values, parameters=paper_parameters)
        lambdas = default_lambda_grid(5, 1e-4, 1e1)
        dense = _gcv_scores_dense(problem, lambdas)
        eig = _gcv_scores_eig(problem, lambdas)
        for lam, score in dense.items():
            assert eig[lam] == pytest.approx(score, rel=1e-8, abs=1e-10)


class TestKFoldEquivalence:
    def test_warm_sweep_matches_cold_per_lambda_solves(self, noisy_problem):
        """The warm-started descending sweep scores equal per-(fold, lambda)
        cold solves to well within the solver tolerance."""
        lambdas = default_lambda_grid(6, 1e-5, 1e1)
        warm = k_fold_cross_validation(noisy_problem, lambdas, num_folds=4, rng=3)

        from repro.utils.rng import as_generator

        generator = as_generator(3)
        permutation = generator.permutation(noisy_problem.measurements.size)
        folds = np.array_split(permutation, 4)
        cold_scores = {float(lam): 0.0 for lam in lambdas}
        for fold in folds:
            train = np.setdiff1d(permutation, fold)
            train_problem = noisy_problem.restrict(train)
            held_out = noisy_problem.forward.restrict(fold)
            for lam in lambdas:
                result = train_problem.solve(float(lam), backend="auto")
                assert result.converged
                residual = noisy_problem.measurements[fold] - held_out.predict(result.x)
                cold_scores[float(lam)] += float(
                    np.sum((residual / noisy_problem.sigma[fold]) ** 2)
                )
        for lam, score in cold_scores.items():
            assert warm.scores[lam] == pytest.approx(score, rel=1e-6, abs=1e-6)


class TestBootstrapEquivalence:
    def test_warm_replicates_match_cold_refits(self, small_kernel, paper_parameters):
        truth = single_pulse_profile(center=0.45, width=0.1, amplitude=2.0, baseline=0.3)
        clean = small_kernel.apply_function(truth)
        noise = GaussianMagnitudeNoise(0.06)
        values = noise.apply(clean, 4)
        sigma = noise.standard_deviations(clean)
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        band = bootstrap_deconvolution(
            deconvolver,
            small_kernel.times,
            values,
            sigma=sigma,
            lam=1e-3,
            num_replicates=6,
            num_phase_points=61,
            rng=0,
        )
        # Re-generate the replicate data streams and refit each one from
        # scratch with a fresh deconvolver (no shared caches, no warm start).
        from repro.utils.rng import as_generator

        generator = as_generator(0)
        base = deconvolver.fit(
            small_kernel.times, values, sigma=sigma, lam=1e-3, rng=generator
        )
        phases = np.linspace(0.0, 1.0, 61)
        for index in range(6):
            noise_draw = generator.normal(0.0, base.sigma)
            synthetic = base.fitted + noise_draw
            cold = Deconvolver(
                small_kernel, parameters=paper_parameters, num_basis=12
            ).fit(small_kernel.times, synthetic, sigma=sigma, lam=1e-3)
            assert band.replicates[index] == pytest.approx(
                cold.profile(phases), abs=1e-6
            )


class TestFitManyEquivalence:
    def test_batch_matches_individual_fits(self, small_kernel, paper_parameters):
        truths = [
            single_pulse_profile(center=c, width=0.1, amplitude=2.0, baseline=0.3)
            for c in (0.3, 0.5, 0.7)
        ]
        matrix = np.column_stack([small_kernel.apply_function(t) for t in truths])
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        batch = deconvolver.fit_many(small_kernel.times, matrix, lam=1e-3)
        phases = np.linspace(0.0, 1.0, 101)
        for column, result in enumerate(batch):
            solo = Deconvolver(
                small_kernel, parameters=paper_parameters, num_basis=12
            ).fit(small_kernel.times, matrix[:, column], lam=1e-3)
            assert result.profile(phases) == pytest.approx(solo.profile(phases), abs=1e-6)

    def test_replacing_kernel_invalidates_workspace(self, small_kernel, paper_parameters):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        values = small_kernel.apply_function(single_pulse_profile(amplitude=1.0))
        first = deconvolver.fit(small_kernel.times, values, lam=1e-3)
        other_kernel = KernelBuilder(
            paper_parameters, num_cells=1500, phase_bins=small_kernel.num_bins
        ).build(small_kernel.times, rng=77)
        deconvolver.kernel = other_kernel
        second = deconvolver.fit(small_kernel.times, values, lam=1e-3)
        assert deconvolver.fit_workspace(small_kernel.times).kernel is other_kernel
        # Different kernel, same data -> a genuinely different fit.
        assert not np.allclose(first.coefficients, second.coefficients)

    def test_replacing_constraints_invalidates_workspace(self, small_kernel, paper_parameters):
        values = small_kernel.apply_function(single_pulse_profile(amplitude=1.5, baseline=0.0))
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        constrained = deconvolver.fit(small_kernel.times, values, lam=1e-4)
        deconvolver.constraints = []
        unconstrained = deconvolver.fit(small_kernel.times, values, lam=1e-4)
        # The new (empty) constraint stack must actually take effect.
        assert deconvolver.fit_workspace(small_kernel.times).template.constraints == []
        assert not np.array_equal(constrained.coefficients, unconstrained.coefficients)

    def test_siblings_share_computed_matrices(self, noisy_problem):
        sibling = noisy_problem.with_measurements(noisy_problem.measurements + 1.0)
        assert sibling._weighted_design is not None
        assert sibling._weighted_design is noisy_problem._weighted_design
        assert sibling._gram is noisy_problem._gram

    def test_workspace_shared_across_batch(self, small_kernel, paper_parameters):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        matrix = np.column_stack(
            [small_kernel.apply_function(single_pulse_profile(amplitude=a)) for a in (1.0, 2.0)]
        )
        deconvolver.fit_many(small_kernel.times, matrix, lam=1e-3)
        workspace = deconvolver.fit_workspace(small_kernel.times)
        # Same grid -> same cached workspace object with its factorizations.
        assert deconvolver.fit_workspace(small_kernel.times) is workspace
        assert 1e-3 in workspace.template._workspaces


class TestWithMeasurements:
    def test_sibling_problem_matches_fresh_problem(self, noisy_problem, rng):
        new_values = noisy_problem.measurements + 0.01 * rng.normal(
            size=noisy_problem.measurements.size
        )
        sibling = noisy_problem.with_measurements(new_values)
        fresh = DeconvolutionProblem(
            noisy_problem.forward,
            new_values,
            sigma=noisy_problem.sigma,
            constraints=noisy_problem.constraints,
            parameters=noisy_problem.parameters,
        )
        warm = sibling.solve(1e-3, backend="active_set")
        cold = fresh.solve(1e-3, backend="active_set")
        assert warm.converged and cold.converged
        assert warm.objective == pytest.approx(cold.objective, abs=1e-8)
        # The Hessian/workspace caches are shared by reference.
        assert sibling._hessians is noisy_problem._hessians
        assert sibling._workspaces is noisy_problem._workspaces

    def test_length_mismatch_rejected(self, noisy_problem):
        with pytest.raises(ValueError):
            noisy_problem.with_measurements(np.ones(3))


class TestKernelBuildEquivalence:
    def test_vectorized_build_matches_per_time_reference(self, paper_parameters):
        times = np.array([0.0, 30.0, 75.0, 120.0, 150.0])
        builder = KernelBuilder(paper_parameters, num_cells=2500, phase_bins=50)
        simulator = PopulationSimulator(
            paper_parameters, builder.volume_model, builder.initial_condition
        )
        history = simulator.run(2500, 150.0, 8)
        kernel = builder.build_from_history(history, times, simulator)

        edges = bin_edges(builder.phase_bins)
        widths = np.diff(edges)
        for m, time in enumerate(times):
            snapshot = simulator.snapshot(history, float(time))
            hist, _ = np.histogram(snapshot.phases, bins=edges, weights=snapshot.volumes)
            row = builder._smooth_row(hist / (snapshot.total_volume * widths), widths)
            assert kernel.density[m] == pytest.approx(row, abs=1e-10)
            assert kernel.num_cells[m] == snapshot.num_cells

    def test_caller_supplied_simulator_volume_model_honored(self, paper_parameters):
        """build_from_history weights volumes with the *simulator's* model
        (the pre-vectorization behaviour), not the builder's."""
        from repro.cellcycle.volume import LinearVolumeModel

        times = np.linspace(0.0, 150.0, 4)
        builder = KernelBuilder(paper_parameters, num_cells=1000, phase_bins=30)
        linear_sim = PopulationSimulator(
            paper_parameters, LinearVolumeModel(), builder.initial_condition
        )
        history = linear_sim.run(1000, 150.0, 6)
        via_linear = builder.build_from_history(history, times, linear_sim)
        via_smooth = builder.build_from_history(history, times)
        assert not np.allclose(via_linear.density, via_smooth.density)

    def test_unsorted_times_supported(self, paper_parameters):
        builder = KernelBuilder(paper_parameters, num_cells=1200, phase_bins=30)
        simulator = PopulationSimulator(
            paper_parameters, builder.volume_model, builder.initial_condition
        )
        history = simulator.run(1200, 150.0, 2)
        shuffled = np.array([90.0, 10.0, 150.0, 40.0])
        ordered = np.sort(shuffled)
        a = builder.build_from_history(history, shuffled, simulator)
        b = builder.build_from_history(history, ordered, simulator)
        resort = np.argsort(shuffled)
        assert np.allclose(a.density[resort], b.density)
        assert np.array_equal(a.num_cells[resort], b.num_cells)

    def test_phases_at_many_matches_phases_at(self, paper_parameters):
        simulator = PopulationSimulator(paper_parameters)
        history = simulator.run(800, 150.0, 4)
        times = np.linspace(0.0, 150.0, 7)
        time_idx, cell_idx, phases = history.phases_at_many(times)
        for m, time in enumerate(times):
            expected_phases, expected_cells = history.phases_at(float(time))
            mask = time_idx == m
            assert np.array_equal(cell_idx[mask], expected_cells)
            assert np.array_equal(phases[mask], expected_phases)
