"""Tests for repro.core.constraints."""

import numpy as np
import pytest

from repro.cellcycle.parameters import CellCycleParameters
from repro.core.basis import SplineBasis
from repro.core.constraints import (
    ConstraintSet,
    PositivityConstraint,
    RNAConservationConstraint,
    RateContinuityConstraint,
    build_constraint_set,
    default_constraints,
)


@pytest.fixture(scope="module")
def basis():
    return SplineBasis(num_basis=10)


@pytest.fixture(scope="module")
def params():
    return CellCycleParameters()


class TestConstraintSet:
    def test_empty(self, basis):
        cs = ConstraintSet.empty(basis.num_basis)
        assert not cs.has_equalities and not cs.has_inequalities

    def test_violations_reporting(self, basis):
        cs = ConstraintSet.empty(basis.num_basis)
        cs.add_equalities(np.ones((1, basis.num_basis)), np.zeros(1), "sum_zero")
        cs.add_inequalities(np.eye(basis.num_basis), np.zeros(basis.num_basis), "positive")
        good = np.zeros(basis.num_basis)
        bad = np.full(basis.num_basis, -1.0)
        assert build_violation(cs, good) == (0.0, 0.0)
        eq_violation, ineq_violation = build_violation(cs, bad)
        assert eq_violation == pytest.approx(basis.num_basis)
        assert ineq_violation == pytest.approx(1.0)


def build_violation(constraint_set, coefficients):
    report = constraint_set.violations(coefficients)
    return report["equality"], report["inequality"]


class TestPositivityConstraint:
    def test_rows_are_basis_values(self, basis, params):
        cs = ConstraintSet.empty(basis.num_basis)
        PositivityConstraint(grid_size=51).apply(cs, basis, params)
        assert cs.inequality_matrix.shape == (51, basis.num_basis)
        assert np.allclose(cs.inequality_vector, 0.0)

    def test_negative_profile_violates(self, basis, params):
        cs = ConstraintSet.empty(basis.num_basis)
        PositivityConstraint(grid_size=101).apply(cs, basis, params)
        negative = -np.ones(basis.num_basis)
        assert cs.violations(negative)["inequality"] > 0.9

    def test_positive_profile_satisfies(self, basis, params):
        cs = ConstraintSet.empty(basis.num_basis)
        PositivityConstraint(grid_size=101).apply(cs, basis, params)
        positive = np.full(basis.num_basis, 2.0)
        assert cs.violations(positive)["inequality"] == 0.0

    def test_grid_size_validation(self):
        with pytest.raises(ValueError):
            PositivityConstraint(grid_size=1)


class TestRNAConservation:
    def test_constant_profile_satisfies(self, basis, params):
        """For constant f: f(1) - 0.4 f(0) - 0.6 <f> = c (1 - 0.4 - 0.6) = 0."""
        cs = ConstraintSet.empty(basis.num_basis)
        RNAConservationConstraint().apply(cs, basis, params)
        constant = np.full(basis.num_basis, 3.0)
        assert abs((cs.equality_matrix @ constant)[0]) < 1e-8

    def test_row_matches_manual_evaluation(self, basis, params):
        cs = ConstraintSet.empty(basis.num_basis)
        RNAConservationConstraint().apply(cs, basis, params)
        rng = np.random.default_rng(1)
        alpha = rng.normal(size=basis.num_basis)
        # Manual evaluation of f(1) - 0.4 f(0) - 0.6 E[f(phi_sst)].
        grid = np.linspace(0.0, 1.0, 40001)
        density = params.transition_phase_density(grid)
        density = density / np.trapezoid(density, grid)
        f = basis.profile(alpha, grid)
        expected = (
            basis.profile(alpha, np.array([1.0]))[0]
            - 0.4 * basis.profile(alpha, np.array([0.0]))[0]
            - 0.6 * np.trapezoid(density * f, grid)
        )
        assert float((cs.equality_matrix @ alpha)[0]) == pytest.approx(expected, abs=1e-6)

    def test_single_equality_row(self, basis, params):
        cs = ConstraintSet.empty(basis.num_basis)
        RNAConservationConstraint().apply(cs, basis, params)
        assert cs.equality_matrix.shape == (1, basis.num_basis)


class TestRateContinuity:
    def test_constant_profile_requires_zero_level(self, basis, params):
        """A non-zero constant cannot satisfy rate continuity (see Sec. 3.2)."""
        cs = ConstraintSet.empty(basis.num_basis)
        RateContinuityConstraint().apply(cs, basis, params)
        constant = np.full(basis.num_basis, 2.0)
        zero = np.zeros(basis.num_basis)
        assert abs(float((cs.equality_matrix @ constant)[0])) > 1e-3
        assert abs(float((cs.equality_matrix @ zero)[0])) < 1e-12

    def test_row_is_finite_and_single(self, basis, params):
        cs = ConstraintSet.empty(basis.num_basis)
        RateContinuityConstraint().apply(cs, basis, params)
        assert cs.equality_matrix.shape == (1, basis.num_basis)
        assert np.all(np.isfinite(cs.equality_matrix))

    def test_row_matches_manual_evaluation(self, basis, params):
        cs = ConstraintSet.empty(basis.num_basis)
        RateContinuityConstraint().apply(cs, basis, params)
        rng = np.random.default_rng(2)
        alpha = rng.normal(size=basis.num_basis)
        grid = np.linspace(0.0, 1.0, 40001)
        density = params.transition_phase_density(grid)
        density = density / np.trapezoid(density, grid)
        beta = 0.4 / (1.0 - grid)
        beta_density = np.where(density > 1e-300, beta * density, 0.0)
        beta0 = np.trapezoid(beta_density, grid)
        f = basis.profile(alpha, grid)
        f_prime = basis.profile_derivative(alpha, grid)
        lhs = (
            beta0 * basis.profile(alpha, np.array([1.0]))[0]
            - beta0 * basis.profile(alpha, np.array([0.0]))[0]
            - np.trapezoid(beta_density * f, grid)
        )
        rhs = (
            0.4 * basis.profile_derivative(alpha, np.array([0.0]))[0]
            + 0.6 * np.trapezoid(density * f_prime, grid)
            - basis.profile_derivative(alpha, np.array([1.0]))[0]
        )
        assert float((cs.equality_matrix @ alpha)[0]) == pytest.approx(lhs - rhs, abs=1e-5)


class TestDefaultConstraints:
    def test_full_stack(self):
        constraints = default_constraints()
        names = {type(c).__name__ for c in constraints}
        assert names == {
            "PositivityConstraint",
            "RNAConservationConstraint",
            "RateContinuityConstraint",
        }

    def test_toggles(self):
        assert default_constraints(positivity=False, rna_conservation=False, rate_continuity=False) == []
        only_positivity = default_constraints(rna_conservation=False, rate_continuity=False)
        assert len(only_positivity) == 1

    def test_build_constraint_set_counts_rows(self, basis, params):
        cs = build_constraint_set(default_constraints(positivity_grid=31), basis, params)
        assert cs.inequality_matrix.shape[0] == 31
        assert cs.equality_matrix.shape[0] == 2
