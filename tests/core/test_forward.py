"""Tests for repro.core.forward."""

import numpy as np
import pytest

from repro.core.basis import SplineBasis
from repro.core.forward import ForwardModel, convolve_profile
from repro.data.synthetic import constant_profile, single_pulse_profile


class TestConvolveProfile:
    def test_callable_and_array_agree(self, small_kernel):
        profile = single_pulse_profile()
        from_callable = convolve_profile(small_kernel, profile)
        from_samples = convolve_profile(small_kernel, profile(small_kernel.phase_centers))
        assert np.allclose(from_callable, from_samples)

    def test_constant_profile_passthrough(self, small_kernel):
        values = convolve_profile(small_kernel, constant_profile(2.0))
        assert np.allclose(values, 2.0, atol=1e-9)

    def test_population_is_smoother_than_single_cell(self, small_kernel):
        """Asynchronous averaging reduces the dynamic range of a sharp pulse."""
        pulse = single_pulse_profile(center=0.5, width=0.06, amplitude=5.0, baseline=0.1)
        population = convolve_profile(small_kernel, pulse)
        assert population.max() - population.min() < pulse.values.max() - pulse.values.min()


class TestForwardModel:
    @pytest.fixture(scope="class")
    def forward(self, small_kernel):
        return ForwardModel(small_kernel, SplineBasis(num_basis=10))

    def test_design_matrix_shape(self, forward, small_kernel):
        assert forward.design_matrix.shape == (small_kernel.num_measurements, 10)
        assert forward.num_measurements == small_kernel.num_measurements
        assert forward.num_coefficients == 10

    def test_predict_linear_in_coefficients(self, forward):
        rng = np.random.default_rng(0)
        a = rng.normal(size=10)
        b = rng.normal(size=10)
        combined = forward.predict(a) + 2.0 * forward.predict(b)
        assert np.allclose(combined, forward.predict(a + 2.0 * b))

    def test_predict_constant_profile(self, forward):
        """Coefficients of all ones represent f == 1, so G == 1 at every time."""
        assert np.allclose(forward.predict(np.ones(10)), 1.0, atol=1e-6)

    def test_predict_matches_kernel_apply(self, forward, small_kernel):
        rng = np.random.default_rng(1)
        coefficients = rng.uniform(0, 1, 10)
        profile_values = forward.basis.profile(coefficients, small_kernel.phase_centers)
        assert np.allclose(forward.predict(coefficients), small_kernel.apply(profile_values))

    def test_predict_rejects_wrong_length(self, forward):
        with pytest.raises(ValueError):
            forward.predict(np.ones(11))

    def test_restrict(self, forward):
        subset = forward.restrict(np.array([0, 3, 5]))
        assert subset.design_matrix.shape[0] == 3
        rng = np.random.default_rng(2)
        coefficients = rng.normal(size=10)
        assert np.allclose(subset.predict(coefficients), forward.predict(coefficients)[[0, 3, 5]])
