"""Tests for repro.core.basis (the natural-cubic-spline basis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import SplineBasis


class TestConstruction:
    def test_default_knots_cover_unit_interval(self):
        basis = SplineBasis(num_basis=10)
        assert basis.num_basis == 10
        assert basis.knots[0] == 0.0 and basis.knots[-1] == 1.0

    def test_explicit_knots(self):
        knots = np.array([0.0, 0.2, 0.5, 0.7, 1.0])
        basis = SplineBasis(knots=knots)
        assert basis.num_basis == 5

    def test_explicit_knots_must_span_unit_interval(self):
        with pytest.raises(ValueError):
            SplineBasis(knots=np.array([0.1, 0.5, 0.8, 0.9]))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            SplineBasis(num_basis=3)


class TestCardinalProperty:
    def test_basis_is_cardinal_at_knots(self):
        basis = SplineBasis(num_basis=8)
        matrix = basis.evaluate(basis.knots)
        assert np.allclose(matrix, np.eye(8), atol=1e-10)

    def test_partition_of_unity_at_knots(self):
        """Coefficients of all ones reproduce the constant function exactly at knots."""
        basis = SplineBasis(num_basis=9)
        values = basis.profile(np.ones(9), basis.knots)
        assert np.allclose(values, 1.0, atol=1e-10)

    def test_constant_reproduced_everywhere(self):
        """The cardinal natural splines sum to one everywhere (constant is a natural spline)."""
        basis = SplineBasis(num_basis=7)
        grid = np.linspace(0.0, 1.0, 101)
        assert np.allclose(basis.evaluate(grid).sum(axis=1), 1.0, atol=1e-10)

    def test_linear_function_reproduced(self):
        """Linear functions are natural cubic splines, hence exactly representable."""
        basis = SplineBasis(num_basis=6)
        coefficients = 2.0 * basis.knots - 0.5
        grid = np.linspace(0.0, 1.0, 101)
        assert np.allclose(basis.profile(coefficients, grid), 2.0 * grid - 0.5, atol=1e-10)
        assert np.allclose(basis.profile_derivative(coefficients, grid), 2.0, atol=1e-8)


class TestDerivativesAndPenalty:
    def test_derivative_matrix_matches_finite_differences(self):
        basis = SplineBasis(num_basis=8)
        grid = np.linspace(0.05, 0.95, 19)
        h = 1e-6
        numeric = (basis.evaluate(grid + h) - basis.evaluate(grid - h)) / (2 * h)
        assert np.allclose(basis.evaluate_derivative(grid), numeric, atol=1e-5)

    def test_second_derivative_zero_at_boundaries(self):
        basis = SplineBasis(num_basis=8)
        boundary = basis.evaluate_second_derivative(np.array([0.0, 1.0]))
        assert np.allclose(boundary, 0.0, atol=1e-10)

    def test_penalty_matrix_symmetric_psd(self):
        basis = SplineBasis(num_basis=10)
        omega = basis.penalty_matrix()
        assert np.allclose(omega, omega.T)
        eigenvalues = np.linalg.eigvalsh(omega)
        assert eigenvalues.min() > -1e-10

    def test_penalty_null_space_contains_linear_functions(self):
        basis = SplineBasis(num_basis=9)
        omega = basis.penalty_matrix()
        constant = np.ones(9)
        linear = basis.knots.copy()
        assert constant @ omega @ constant == pytest.approx(0.0, abs=1e-10)
        assert linear @ omega @ linear == pytest.approx(0.0, abs=1e-10)

    def test_roughness_helper_matches_penalty(self):
        basis = SplineBasis(num_basis=7)
        rng = np.random.default_rng(0)
        coefficients = rng.normal(size=7)
        omega = basis.penalty_matrix()
        assert basis.roughness(coefficients) == pytest.approx(
            float(coefficients @ omega @ coefficients)
        )

    def test_penalty_matches_numerical_quadrature(self):
        basis = SplineBasis(num_basis=6)
        omega = basis.penalty_matrix()
        grid = np.linspace(0.0, 1.0, 20001)
        second = basis.evaluate_second_derivative(grid)
        numeric = np.trapezoid(second[:, 2] * second[:, 3], grid)
        assert omega[2, 3] == pytest.approx(numeric, rel=1e-4, abs=1e-8)


class TestInterpolationCoefficients:
    def test_recovers_representable_profile(self):
        basis = SplineBasis(num_basis=8)
        target = np.sin(np.pi * basis.knots)
        grid = np.linspace(0.0, 1.0, 201)
        coefficients = basis.interpolation_coefficients(grid, basis.profile(target, grid))
        assert np.allclose(coefficients, target, atol=1e-8)

    def test_wrong_lengths_rejected(self):
        basis = SplineBasis(num_basis=6)
        with pytest.raises(ValueError):
            basis.interpolation_coefficients(np.linspace(0, 1, 10), np.zeros(11))
        with pytest.raises(ValueError):
            basis.profile(np.zeros(5), np.linspace(0, 1, 10))


@settings(max_examples=30, deadline=None)
@given(
    num_basis=st.integers(min_value=4, max_value=16),
    seed=st.integers(0, 999),
)
def test_profile_bounded_by_coefficient_range_at_knots(num_basis, seed):
    """Property: at the knots the profile equals the coefficients exactly."""
    basis = SplineBasis(num_basis=num_basis)
    rng = np.random.default_rng(seed)
    coefficients = rng.uniform(-5, 5, num_basis)
    assert np.allclose(basis.profile(coefficients, basis.knots), coefficients, atol=1e-9)
