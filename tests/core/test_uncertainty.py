"""Tests for repro.core.uncertainty (bootstrap confidence bands)."""

import numpy as np
import pytest

from repro.core.deconvolver import Deconvolver
from repro.core.uncertainty import bootstrap_deconvolution
from repro.data.noise import GaussianMagnitudeNoise
from repro.data.synthetic import single_pulse_profile


@pytest.fixture(scope="module")
def noisy_data(small_kernel):
    truth = single_pulse_profile(center=0.45, width=0.12, amplitude=2.0, baseline=0.3)
    clean = small_kernel.apply_function(truth)
    noise = GaussianMagnitudeNoise(0.06)
    values = noise.apply(clean, 4)
    sigma = noise.standard_deviations(clean)
    return truth, values, sigma


@pytest.fixture(scope="module")
def band(small_kernel, paper_parameters, noisy_data):
    truth, values, sigma = noisy_data
    deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
    return bootstrap_deconvolution(
        deconvolver,
        small_kernel.times,
        values,
        sigma=sigma,
        lam=1e-3,
        num_replicates=12,
        coverage=0.9,
        num_phase_points=101,
        rng=0,
    )


class TestBootstrapBand:
    def test_shapes(self, band):
        assert band.phases.shape == band.estimate.shape == band.lower.shape == band.upper.shape
        assert band.replicates.shape == (12, band.phases.size)
        assert band.num_replicates == 12

    def test_band_ordering(self, band):
        assert np.all(band.lower <= band.upper + 1e-12)
        assert np.all(band.band_width() >= -1e-12)

    def test_band_roughly_brackets_estimate(self, band):
        inside = (band.estimate >= band.lower - 1e-9) & (band.estimate <= band.upper + 1e-9)
        assert np.mean(inside) > 0.7

    def test_band_mostly_covers_truth(self, band, noisy_data):
        truth, _, _ = noisy_data
        assert band.contains(truth(band.phases)) > 0.5

    def test_contains_validates_length(self, band):
        with pytest.raises(ValueError):
            band.contains(np.ones(7))

    def test_replicates_nonnegative(self, band):
        assert np.min(band.replicates) >= -5e-3


class TestBootstrapOptions:
    def test_nonparametric_resampling(self, small_kernel, paper_parameters, noisy_data):
        _, values, sigma = noisy_data
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        result = bootstrap_deconvolution(
            deconvolver, small_kernel.times, values, sigma=sigma,
            lam=1e-3, num_replicates=6, parametric=False, num_phase_points=61, rng=1,
        )
        assert result.replicates.shape == (6, 61)

    def test_deterministic_for_seed(self, small_kernel, paper_parameters, noisy_data):
        _, values, sigma = noisy_data
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        kwargs = dict(sigma=sigma, lam=1e-3, num_replicates=5, num_phase_points=41)
        a = bootstrap_deconvolution(deconvolver, small_kernel.times, values, rng=7, **kwargs)
        b = bootstrap_deconvolution(deconvolver, small_kernel.times, values, rng=7, **kwargs)
        assert np.allclose(a.replicates, b.replicates)

    def test_validation(self, small_kernel, paper_parameters, noisy_data):
        _, values, sigma = noisy_data
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        with pytest.raises(ValueError):
            bootstrap_deconvolution(
                deconvolver, small_kernel.times, values, sigma=sigma, num_replicates=1
            )
        with pytest.raises(ValueError):
            bootstrap_deconvolution(
                deconvolver, small_kernel.times, values, sigma=sigma, coverage=1.5
            )
        with pytest.raises(ValueError):
            bootstrap_deconvolution(
                deconvolver, small_kernel.times, values, sigma=sigma, engine="warp"
            )


class TestBootstrapEngines:
    @pytest.mark.parametrize("parametric", [True, False])
    def test_batch_equals_serial_replicates(
        self, small_kernel, paper_parameters, noisy_data, parametric
    ):
        """Batch and serial engines resample identical data sets and agree.

        Both engines draw the replicate noise in the same generator order, so
        the synthetic measurement matrices are identical; the stacked
        multi-RHS solve then matches the warm-started per-replicate solves to
        solver precision.
        """
        _, values, sigma = noisy_data
        kwargs = dict(
            sigma=sigma,
            lam=1e-3,
            num_replicates=12,
            parametric=parametric,
            num_phase_points=61,
            rng=3,
        )
        batch = bootstrap_deconvolution(
            Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10),
            small_kernel.times,
            values,
            engine="batch",
            **kwargs,
        )
        serial = bootstrap_deconvolution(
            Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10),
            small_kernel.times,
            values,
            engine="serial",
            **kwargs,
        )
        np.testing.assert_allclose(batch.replicates, serial.replicates, atol=1e-10)
        np.testing.assert_allclose(batch.lower, serial.lower, atol=1e-10)
        np.testing.assert_allclose(batch.upper, serial.upper, atol=1e-10)

    def test_auto_engine_is_batch(self, small_kernel, paper_parameters, noisy_data):
        _, values, sigma = noisy_data
        kwargs = dict(sigma=sigma, lam=1e-3, num_replicates=6, num_phase_points=41, rng=5)
        auto = bootstrap_deconvolution(
            Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10),
            small_kernel.times,
            values,
            **kwargs,
        )
        batch = bootstrap_deconvolution(
            Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10),
            small_kernel.times,
            values,
            engine="batch",
            **kwargs,
        )
        np.testing.assert_array_equal(auto.replicates, batch.replicates)
