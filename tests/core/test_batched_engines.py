"""Equivalence tests for the batched CV / volume-kernel / multi-species paths.

The batched layers must be drop-in replacements: the fold-eigendecomposition
CV engine against the per-(fold, lambda) solve engine, the Horner volume pass
against the generic per-pair evaluation, and the parallel ``fit_many`` against
its serial execution (bit-for-bit).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cellcycle.volume import SmoothVolumeModel
from repro.core.basis import SplineBasis
from repro.core.constraints import default_constraints
from repro.core.deconvolver import Deconvolver
from repro.core.forward import ForwardModel
from repro.core.lambda_selection import (
    KFoldEigPlan,
    default_lambda_grid,
    k_fold_cross_validation,
)
from repro.core.problem import DeconvolutionProblem
from repro.data.noise import GaussianMagnitudeNoise
from repro.data.synthetic import single_pulse_profile


@pytest.fixture()
def seeded_problem(small_kernel, paper_parameters):
    truth = single_pulse_profile(center=0.45, width=0.12, amplitude=2.0, baseline=0.3)
    clean = small_kernel.apply_function(truth)
    noise = GaussianMagnitudeNoise(0.08)
    values = noise.apply(clean, 17)
    sigma = noise.standard_deviations(clean)
    forward = ForwardModel(small_kernel, SplineBasis(num_basis=12))
    return DeconvolutionProblem(
        forward,
        values,
        sigma=sigma,
        constraints=default_constraints(),
        parameters=paper_parameters,
    )


@pytest.fixture()
def species_matrix(small_kernel, rng):
    truth = single_pulse_profile(center=0.45, width=0.12, amplitude=2.0, baseline=0.3)
    clean = small_kernel.apply_function(truth)
    return np.column_stack(
        [
            clean * (1.0 + 0.25 * species) + 0.02 * rng.normal(size=clean.size)
            for species in range(5)
        ]
    )


class TestKFoldEigEngine:
    def test_scores_match_solve_engine(self, seeded_problem):
        """Fold-eig CV scores match the dense per-fold Cholesky scores to 1e-8."""
        lambdas = default_lambda_grid(11, 1e-6, 1e2)
        reference = k_fold_cross_validation(
            seeded_problem, lambdas, num_folds=4, rng=3, engine="solve"
        )
        eig = k_fold_cross_validation(
            seeded_problem, lambdas, num_folds=4, rng=3, engine="eig"
        )
        assert eig.best_lambda == reference.best_lambda
        assert set(eig.scores) == set(reference.scores)
        for lam, expected in reference.scores.items():
            assert eig.scores[lam] == pytest.approx(expected, rel=1e-8, abs=1e-8)

    def test_auto_engine_matches_eig(self, seeded_problem):
        lambdas = default_lambda_grid(7)
        auto = k_fold_cross_validation(seeded_problem, lambdas, rng=0, engine="auto")
        eig = k_fold_cross_validation(seeded_problem, lambdas, rng=0, engine="eig")
        assert set(auto.scores) == set(eig.scores)
        for lam, expected in auto.scores.items():
            assert eig.scores[lam] == pytest.approx(expected, rel=1e-12)

    def test_unknown_engine_rejected(self, seeded_problem):
        with pytest.raises(ValueError):
            k_fold_cross_validation(
                seeded_problem, default_lambda_grid(5), engine="nope"
            )

    @staticmethod
    def _cached_plans(problem):
        return [
            entry[1]
            for entry in problem._selection_caches.values()
            if isinstance(entry[1], KFoldEigPlan)
        ]

    def test_plan_cached_and_shared_with_siblings(self, seeded_problem):
        lambdas = default_lambda_grid(7)
        k_fold_cross_validation(seeded_problem, lambdas, rng=0, engine="eig")
        assert len(self._cached_plans(seeded_problem)) == 1
        sibling = seeded_problem.with_measurements(seeded_problem.measurements * 1.1)
        k_fold_cross_validation(sibling, lambdas, rng=0, engine="eig")
        assert sibling._selection_caches is seeded_problem._selection_caches
        assert len(self._cached_plans(sibling)) == 1

    def test_plan_cache_stays_bounded_under_generator_rng(self, seeded_problem):
        """A shared Generator draws fresh folds per call; the one-slot plan
        cache replaces the entry instead of accumulating one plan per call."""
        lambdas = default_lambda_grid(5)
        generator = np.random.default_rng(9)
        for _ in range(4):
            k_fold_cross_validation(
                seeded_problem, lambdas, rng=generator, engine="eig"
            )
        assert len(self._cached_plans(seeded_problem)) == 1

    def test_sibling_scores_match_fresh_problem(self, seeded_problem, paper_parameters):
        """Scoring through a cached plan equals scoring from a cold problem."""
        lambdas = default_lambda_grid(7)
        k_fold_cross_validation(seeded_problem, lambdas, rng=0, engine="eig")
        new_values = seeded_problem.measurements * 1.1
        via_plan = k_fold_cross_validation(
            seeded_problem.with_measurements(new_values), lambdas, rng=0, engine="eig"
        )
        fresh = DeconvolutionProblem(
            seeded_problem.forward,
            new_values,
            sigma=seeded_problem.sigma,
            constraints=seeded_problem.constraints,
            parameters=paper_parameters,
        )
        cold = k_fold_cross_validation(fresh, lambdas, rng=0, engine="eig")
        for lam, expected in cold.scores.items():
            assert via_plan.scores[lam] == pytest.approx(expected, rel=1e-10)


class TestKFoldPlanEdgeCases:
    def test_empty_test_fold_contributes_zero(self, seeded_problem):
        """A fold with no held-out points scores zero instead of crashing."""
        lambdas = default_lambda_grid(5)
        num = seeded_problem.measurements.size
        permutation = np.arange(num)
        folds = [
            np.arange(num // 2),
            np.arange(num // 2, num),
            np.arange(0),  # empty held-out fold
        ]
        plan = KFoldEigPlan(seeded_problem, lambdas, folds, permutation)
        totals, valid = plan.score(seeded_problem.measurements)
        assert np.all(np.isfinite(totals))
        reference = KFoldEigPlan(seeded_problem, lambdas, folds[:2], permutation)
        ref_totals, ref_valid = reference.score(seeded_problem.measurements)
        np.testing.assert_allclose(totals, ref_totals, rtol=1e-12)
        np.testing.assert_array_equal(valid, ref_valid)

    def test_single_candidate_grid(self, seeded_problem):
        result = k_fold_cross_validation(
            seeded_problem, np.array([1e-3]), num_folds=3, rng=0, engine="eig"
        )
        assert result.best_lambda == 1e-3
        assert set(result.scores) == {1e-3}
        reference = k_fold_cross_validation(
            seeded_problem, np.array([1e-3]), num_folds=3, rng=0, engine="solve"
        )
        assert result.scores[1e-3] == pytest.approx(reference.scores[1e-3], rel=1e-8)

    def test_warm_rescoring_is_deterministic(self, seeded_problem):
        """Repeated scoring through the cached plan reproduces the scores.

        The second call verifies the remembered active sets through the
        batched KKT path; because cold fallback solves are snapped onto the
        same KKT systems, the warm scores agree to the last float rounding
        (stacking candidates with a shared active set may permute rounding
        at the ulp level).
        """
        lambdas = default_lambda_grid(9, 1e-6, 1e2)
        first = k_fold_cross_validation(seeded_problem, lambdas, rng=1, engine="eig")
        second = k_fold_cross_validation(seeded_problem, lambdas, rng=1, engine="eig")
        assert set(first.scores) == set(second.scores)
        for lam, expected in first.scores.items():
            assert second.scores[lam] == pytest.approx(expected, rel=1e-12)


class TestBatchedVolumeKernel:
    def test_pair_evaluation_matches_generic_path(self, rng):
        """Horner pair pass matches per-pair ``volume`` to machine precision."""
        model = SmoothVolumeModel(v0=1.7)
        num_cells = 300
        transition = rng.uniform(0.35, 0.75, size=num_cells)
        cell_idx = rng.integers(0, num_cells, size=4000)
        phi = rng.uniform(0.0, 1.0, size=cell_idx.size)
        batched = model.volume_for_cells(phi, transition, cell_idx)
        generic = model.volume(phi, transition[cell_idx])
        np.testing.assert_allclose(batched, generic, rtol=1e-14, atol=1e-14)

    def test_boundary_phases_and_coefficient_reuse(self, rng):
        model = SmoothVolumeModel()
        transition = rng.uniform(0.4, 0.7, size=8)
        cell_idx = np.arange(8)
        phi = np.concatenate([np.zeros(4), np.ones(4)])
        first = model.volume_for_cells(phi, transition, cell_idx)
        # Second call hits the memoised coefficients; results are identical.
        second = model.volume_for_cells(phi, transition, cell_idx)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_allclose(first, model.volume(phi, transition[cell_idx]), rtol=1e-14)

    def test_invalid_inputs_still_rejected(self):
        model = SmoothVolumeModel()
        with pytest.raises(ValueError):
            model.volume_for_cells(np.array([1.5]), np.array([0.5]), np.array([0]))
        with pytest.raises(ValueError):
            model.volume_for_cells(np.array([0.5]), np.array([1.0]), np.array([0]))


class TestFitManyBatched:
    @pytest.mark.parametrize("method", ["gcv", "kfold"])
    def test_thread_bit_for_bit_equals_serial(
        self, small_kernel, paper_parameters, measurement_times, species_matrix, method
    ):
        serial = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        serial_results = serial.fit_many(
            measurement_times,
            species_matrix,
            lambda_method=method,
            engine="serial",
            warm_start_chain=False,
        )
        parallel = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        parallel_results = parallel.fit_many(
            measurement_times,
            species_matrix,
            lambda_method=method,
            engine="thread",
            workers=3,
        )
        assert len(serial_results) == len(parallel_results) == species_matrix.shape[1]
        for a, b in zip(serial_results, parallel_results):
            assert a.lam == b.lam
            assert np.array_equal(a.coefficients, b.coefficients)
            assert np.array_equal(a.fitted, b.fitted)

    @pytest.mark.parametrize("method", ["gcv", "kfold"])
    def test_batch_engine_matches_serial_solve_results(
        self, small_kernel, paper_parameters, measurement_times, species_matrix, method
    ):
        """Default batched engine agrees with per-species solves to 1e-10."""
        batched = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        batched_results = batched.fit_many(
            measurement_times, species_matrix, lambda_method=method
        )
        serial = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        serial_results = serial.fit_many(
            measurement_times,
            species_matrix,
            lambda_method=method,
            engine="serial",
            warm_start_chain=False,
        )
        for a, b in zip(batched_results, serial_results):
            assert a.lam == b.lam
            np.testing.assert_allclose(a.coefficients, b.coefficients, atol=1e-10)
            np.testing.assert_allclose(a.fitted, b.fitted, atol=1e-10)

    def test_single_lambda_grid(
        self, small_kernel, paper_parameters, measurement_times, species_matrix
    ):
        """A one-candidate grid flows through selection and the batch engine."""
        grid = np.array([1e-3])
        batched = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        results = batched.fit_many(
            measurement_times, species_matrix, lambda_method="kfold", lambda_grid=grid
        )
        assert all(result.lam == 1e-3 for result in results)
        assert all(result.solver_converged for result in results)
        serial = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        reference = serial.fit_many(
            measurement_times,
            species_matrix,
            lambda_method="kfold",
            lambda_grid=grid,
            engine="serial",
            warm_start_chain=False,
        )
        for a, b in zip(results, reference):
            np.testing.assert_allclose(a.coefficients, b.coefficients, atol=1e-10)

    def test_process_engine_smoke(
        self, small_kernel, paper_parameters, measurement_times, species_matrix
    ):
        """The process-pool escape hatch reproduces the serial results."""
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        results = deconvolver.fit_many(
            measurement_times,
            species_matrix[:, :2],
            lam=1e-3,
            engine="process",
            workers=2,
        )
        reference = Deconvolver(
            small_kernel, parameters=paper_parameters, num_basis=12
        ).fit_many(
            measurement_times,
            species_matrix[:, :2],
            lam=1e-3,
            engine="serial",
            warm_start_chain=False,
        )
        for a, b in zip(results, reference):
            np.testing.assert_allclose(a.coefficients, b.coefficients, atol=1e-12)

    def test_unknown_engine_rejected(
        self, small_kernel, paper_parameters, measurement_times, species_matrix
    ):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        with pytest.raises(ValueError):
            deconvolver.fit_many(measurement_times, species_matrix, engine="warp")

    def test_chained_default_close_to_independent(
        self, small_kernel, paper_parameters, measurement_times, species_matrix
    ):
        chained = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        chained_results = chained.fit_many(measurement_times, species_matrix)
        independent = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        independent_results = independent.fit_many(
            measurement_times, species_matrix, warm_start_chain=False
        )
        for a, b in zip(chained_results, independent_results):
            assert a.lam == b.lam
            np.testing.assert_allclose(a.coefficients, b.coefficients, atol=1e-7)

    def test_fixed_lambda_parallel(
        self, small_kernel, paper_parameters, measurement_times, species_matrix
    ):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        results = deconvolver.fit_many(
            measurement_times, species_matrix, lam=1e-3, workers=2
        )
        assert all(result.lam == 1e-3 for result in results)
        assert all(result.solver_converged for result in results)

    def test_matrix_shape_validated(self, small_kernel, paper_parameters, measurement_times):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        with pytest.raises(ValueError):
            deconvolver.fit_many(measurement_times, np.zeros(measurement_times.size))


class TestPerSpeciesLambda:
    """fit_many accepts one lambda per column (the service layer's bucket merge)."""

    def test_lam_sequence_matches_per_species_fits(
        self, small_kernel, paper_parameters, species_matrix
    ):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        lams = [1e-3, 1e-2, 1e-3, 1e-1, 1e-2]
        batch = deconvolver.fit_many(small_kernel.times, species_matrix, lam=lams)
        for column, (lam, result) in enumerate(zip(lams, batch)):
            reference = deconvolver.fit(
                small_kernel.times, species_matrix[:, column], lam=lam
            )
            assert result.lam == lam
            assert np.max(np.abs(result.coefficients - reference.coefficients)) <= 1e-10

    def test_lam_sequence_none_entries_select_automatically(
        self, small_kernel, paper_parameters, species_matrix
    ):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        lams = [1e-3, None, None, 1e-2, None]
        batch = deconvolver.fit_many(small_kernel.times, species_matrix, lam=lams)
        for column, (lam, result) in enumerate(zip(lams, batch)):
            reference = deconvolver.fit(
                small_kernel.times, species_matrix[:, column], lam=lam
            )
            assert result.lam == reference.lam
            assert np.max(np.abs(result.coefficients - reference.coefficients)) <= 1e-10

    def test_lam_sequence_serial_engine_matches_batch(
        self, small_kernel, paper_parameters, species_matrix
    ):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        lams = [1e-3, 1e-2, 1e-3, 1e-2, 1e-3]
        batch = deconvolver.fit_many(small_kernel.times, species_matrix, lam=lams)
        serial = deconvolver.fit_many(
            small_kernel.times, species_matrix, lam=lams, engine="serial",
            warm_start_chain=False,
        )
        for a, b in zip(batch, serial):
            assert np.max(np.abs(a.coefficients - b.coefficients)) <= 1e-10

    def test_lam_sequence_length_validated(
        self, small_kernel, paper_parameters, species_matrix
    ):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        with pytest.raises(ValueError):
            deconvolver.fit_many(small_kernel.times, species_matrix, lam=[1e-3, 1e-2])


class TestBatchedGCVSelection:
    """The matrix GCV scorer must select exactly like the per-species scorer."""

    def test_selected_lambdas_and_scores_match(self, seeded_problem, species_matrix):
        from repro.core.lambda_selection import (
            generalized_cross_validation,
            generalized_cross_validation_batch,
        )

        lambdas = default_lambda_grid(11)
        batch = generalized_cross_validation_batch(seeded_problem, species_matrix, lambdas)
        for column, selection in enumerate(batch):
            reference = generalized_cross_validation(
                seeded_problem.with_measurements(species_matrix[:, column]), lambdas
            )
            assert selection.best_lambda == reference.best_lambda
            for lam, score in reference.scores.items():
                assert selection.scores[lam] == pytest.approx(score, rel=1e-9)

    def test_rejects_vector_input(self, seeded_problem):
        from repro.core.lambda_selection import generalized_cross_validation_batch

        with pytest.raises(ValueError):
            generalized_cross_validation_batch(
                seeded_problem, seeded_problem.measurements, default_lambda_grid(5)
            )


class TestSolveMixed:
    """The stacked mixed-lambda pass must return verified per-group optima."""

    LAMS = [1e-3, 1e-2, 1e-3, 3e-2, 1e-2]

    def test_matches_per_column_solves(self, seeded_problem, species_matrix):
        mixed = seeded_problem.solve_mixed(self.LAMS, species_matrix)
        assert mixed.num_problems == species_matrix.shape[1]
        for column, lam in enumerate(self.LAMS):
            sibling = seeded_problem.with_measurements(species_matrix[:, column])
            reference = sibling.solve(lam)
            assert np.max(np.abs(mixed.x[column] - reference.x)) <= 1e-10
            assert mixed.objectives[column] == pytest.approx(
                reference.objective, rel=1e-9, abs=1e-12
            )
            assert mixed.converged[column]

    def test_stacked_rows_exist_and_plan_is_cached(self, seeded_problem, species_matrix):
        """The eig plan solves at least part of the batch and is reused."""
        first = seeded_problem.solve_mixed(self.LAMS, species_matrix)
        assert first.num_fallback < first.num_problems
        second = seeded_problem.solve_mixed(self.LAMS, species_matrix)
        # Remembered working sets can only grow coverage, never shrink it.
        assert second.num_fallback <= first.num_fallback
        assert np.max(np.abs(second.x - first.x)) <= 1e-12

    def test_single_distinct_lambda_delegates_to_solve_batch(
        self, seeded_problem, species_matrix
    ):
        lam = 1e-2
        mixed = seeded_problem.solve_mixed([lam] * 5, species_matrix)
        batch = seeded_problem.solve_batch(lam, species_matrix)
        assert np.max(np.abs(mixed.x - batch.x)) == 0.0
        assert list(mixed.fallback) == list(batch.fallback)

    def test_scipy_backend_disables_stacked_pass(self, seeded_problem, species_matrix):
        mixed = seeded_problem.solve_mixed(self.LAMS, species_matrix, backend="scipy")
        assert all(mixed.fallback)
        for column, lam in enumerate(self.LAMS):
            sibling = seeded_problem.with_measurements(species_matrix[:, column])
            reference = sibling.solve(lam)
            # scipy's iterative backend only promises ~1e-6 agreement with
            # the exact active-set optimum; this test checks routing.
            assert np.max(np.abs(mixed.x[column] - reference.x)) <= 1e-6

    def test_shape_validation(self, seeded_problem, species_matrix):
        with pytest.raises(ValueError):
            seeded_problem.solve_mixed([1e-3, 1e-2], species_matrix)
        with pytest.raises(ValueError):
            seeded_problem.solve_mixed(self.LAMS, species_matrix[:, 0])


class TestCrossLambdaFitMany:
    """fit_many's mixed-lambda batches route through one stacked eig pass."""

    LAMS = [1e-3, 1e-2, 1e-3, 3e-2, 1e-2]

    def test_stacked_pass_matches_per_group_sweep(
        self, small_kernel, paper_parameters, species_matrix
    ):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        stacked = deconvolver.fit_many(
            small_kernel.times, species_matrix, lam=self.LAMS
        )
        grouped = deconvolver.fit_many(
            small_kernel.times, species_matrix, lam=self.LAMS, cross_lambda=False
        )
        for a, b in zip(stacked, grouped):
            assert a.lam == b.lam
            assert np.max(np.abs(a.coefficients - b.coefficients)) <= 1e-10

    def test_stacked_pass_matches_individual_fits(
        self, small_kernel, paper_parameters, species_matrix
    ):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        batch = deconvolver.fit_many(small_kernel.times, species_matrix, lam=self.LAMS)
        for column, (lam, result) in enumerate(zip(self.LAMS, batch)):
            reference = deconvolver.fit(
                small_kernel.times, species_matrix[:, column], lam=lam
            )
            assert result.lam == lam
            assert np.max(np.abs(result.coefficients - reference.coefficients)) <= 1e-10
