"""Tests for repro.core.problem and repro.core.result."""

import numpy as np
import pytest

from repro.core.basis import SplineBasis
from repro.core.constraints import default_constraints
from repro.core.forward import ForwardModel
from repro.core.problem import DeconvolutionProblem
from repro.core.result import DeconvolutionResult
from repro.data.synthetic import single_pulse_profile


@pytest.fixture(scope="module")
def forward(small_kernel):
    return ForwardModel(small_kernel, SplineBasis(num_basis=12))


@pytest.fixture(scope="module")
def measurements(small_kernel):
    return small_kernel.apply_function(single_pulse_profile(amplitude=3.0, baseline=0.2))


class TestProblemAssembly:
    def test_cost_decomposition(self, forward, measurements):
        problem = DeconvolutionProblem(forward, measurements)
        rng = np.random.default_rng(0)
        alpha = rng.normal(size=12)
        lam = 0.3
        assert problem.cost(alpha, lam) == pytest.approx(
            problem.data_misfit(alpha) + lam * problem.roughness(alpha)
        )

    def test_misfit_zero_for_exact_fit(self, forward, measurements):
        problem = DeconvolutionProblem(forward, measurements)
        # Use the unconstrained least-squares solution restricted to the basis.
        alpha, *_ = np.linalg.lstsq(forward.design_matrix, measurements, rcond=None)
        assert problem.data_misfit(alpha) < 1e-4

    def test_sigma_weighting(self, forward, measurements):
        uniform = DeconvolutionProblem(forward, measurements, sigma=1.0)
        scaled = DeconvolutionProblem(forward, measurements, sigma=2.0)
        alpha = np.zeros(12)
        assert scaled.data_misfit(alpha) == pytest.approx(uniform.data_misfit(alpha) / 4.0)

    def test_invalid_sigma(self, forward, measurements):
        with pytest.raises(ValueError):
            DeconvolutionProblem(forward, measurements, sigma=0.0)

    def test_measurement_length_checked(self, forward):
        with pytest.raises(ValueError):
            DeconvolutionProblem(forward, np.ones(3))

    def test_quadratic_program_hessian_properties(self, forward, measurements):
        problem = DeconvolutionProblem(forward, measurements, constraints=default_constraints())
        program = problem.quadratic_program(0.1)
        assert np.allclose(program.hessian, program.hessian.T)
        eigenvalues = np.linalg.eigvalsh(program.hessian)
        assert eigenvalues.min() > 0
        assert program.ineq_matrix is not None
        assert program.eq_matrix is not None and program.eq_matrix.shape[0] == 2

    def test_solution_cost_increases_with_lambda_roughness_decreases(self, forward, measurements):
        problem = DeconvolutionProblem(forward, measurements, constraints=default_constraints())
        small_lam = problem.solve(1e-5)
        large_lam = problem.solve(1e1)
        assert problem.roughness(large_lam.x) <= problem.roughness(small_lam.x) + 1e-9
        assert problem.data_misfit(large_lam.x) >= problem.data_misfit(small_lam.x) - 1e-9

    def test_solver_backends_agree(self, forward, measurements):
        problem = DeconvolutionProblem(forward, measurements, constraints=default_constraints())
        ours = problem.solve(1e-3, backend="active_set")
        scipy_result = problem.solve(1e-3, backend="scipy")
        assert ours.converged and scipy_result.converged
        assert problem.cost(ours.x, 1e-3) == pytest.approx(
            problem.cost(scipy_result.x, 1e-3), rel=1e-4, abs=1e-6
        )

    def test_restrict_preserves_structure(self, forward, measurements):
        problem = DeconvolutionProblem(forward, measurements, constraints=default_constraints())
        subset = problem.restrict(np.array([0, 2, 4, 6]))
        assert subset.measurements.size == 4
        assert subset.constraint_set is problem.constraint_set
        rng = np.random.default_rng(1)
        alpha = rng.normal(size=12)
        assert subset.roughness(alpha) == pytest.approx(problem.roughness(alpha))

    def test_negative_lambda_rejected(self, forward, measurements):
        problem = DeconvolutionProblem(forward, measurements)
        with pytest.raises(ValueError):
            problem.quadratic_program(-1.0)


class TestDeconvolutionResult:
    @pytest.fixture(scope="class")
    def result(self, forward, measurements):
        problem = DeconvolutionProblem(forward, measurements, constraints=default_constraints())
        qp = problem.solve(1e-3)
        return DeconvolutionResult(
            coefficients=qp.x,
            basis=forward.basis,
            lam=1e-3,
            times=forward.kernel.times,
            measurements=measurements,
            fitted=forward.predict(qp.x),
            sigma=np.ones_like(measurements),
            data_misfit=problem.data_misfit(qp.x),
            roughness=problem.roughness(qp.x),
            solver_converged=qp.converged,
            solver_iterations=qp.iterations,
            mean_cycle_time=150.0,
        )

    def test_profile_evaluation(self, result):
        phases, values = result.profile_on_grid(101)
        assert phases.shape == values.shape == (101,)
        assert isinstance(result.profile(0.5), float)
        assert np.all(values >= -1e-6)

    def test_profile_vs_time_scaling(self, result):
        times, values = result.profile_vs_time(51)
        assert times[-1] == pytest.approx(150.0)
        assert np.allclose(values, result.profile(times / 150.0))

    def test_residuals_and_cost(self, result):
        assert np.allclose(result.residuals, result.measurements - result.fitted)
        assert result.cost() == pytest.approx(result.data_misfit + result.lam * result.roughness)

    def test_rmse_against_truth(self, result):
        phases = np.linspace(0, 1, 51)
        truth = result.profile(phases)
        assert result.rmse_against(phases, truth) == pytest.approx(0.0, abs=1e-12)
        assert result.rmse_against(phases, truth + 1.0) == pytest.approx(1.0)

    def test_summary_mentions_key_fields(self, result):
        text = result.summary()
        assert "lambda" in text
        assert "data misfit" in text

    def test_derivative_consistent_with_finite_difference(self, result):
        phase = 0.4
        h = 1e-5
        numeric = (result.profile(phase + h) - result.profile(phase - h)) / (2 * h)
        assert result.profile_derivative(phase) == pytest.approx(numeric, rel=1e-3, abs=1e-4)
