"""Tests for the experiment-scoped FitSession: cross-grid caching + streaming.

Covers the session-layer guarantees the architecture relies on:

* same-grid fits share one assembled problem and one kernel (identity);
* different grids coexist in one session without colliding or evicting
  each other (the pre-session cache held a single slot);
* ``with_measurements`` / ``restrict`` siblings still share the
  measurement-independent ``selection_cache``;
* streaming ``submit``/``flush``/``fit_stream`` results match one-shot
  ``fit`` to 1e-10;
* the shared assembly pipeline (AssemblyContext, penalty memo, shared
  constraint rows) reproduces the per-constraint assembly exactly.
"""

import numpy as np
import pytest

from repro.cellcycle.kernel import KernelBuilder
from repro.cellcycle.parameters import CellCycleParameters
from repro.core.basis import SplineBasis
from repro.core.constraints import (
    assembly_context,
    build_constraint_set,
    clear_assembly_caches,
    default_constraints,
)
from repro.core.deconvolver import Deconvolver
from repro.core.session import FitSession
from repro.data.synthetic import ftsz_like_profile, single_pulse_profile


@pytest.fixture(scope="module")
def parameters():
    return CellCycleParameters()


@pytest.fixture(scope="module")
def builder(parameters):
    return KernelBuilder(parameters, num_cells=1500, phase_bins=40)


@pytest.fixture(scope="module")
def grids():
    return np.linspace(0.0, 150.0, 10), np.linspace(0.0, 120.0, 8)


@pytest.fixture(scope="module")
def kernels(builder, grids):
    return tuple(builder.build(times, rng=index) for index, times in enumerate(grids))


@pytest.fixture()
def deconvolver(parameters, builder):
    return Deconvolver(parameters=parameters, kernel_builder=builder, num_basis=10)


def _measurements(kernel, scale=1.0):
    return scale * kernel.apply_function(single_pulse_profile(amplitude=1.5, baseline=0.2))


class TestCrossGridCaching:
    def test_same_grid_shares_problem_and_kernel(self, deconvolver, grids, kernels):
        times, _ = grids
        session = deconvolver.session()
        session.register_kernel(kernels[0])
        values = _measurements(kernels[0])
        deconvolver.fit(times, values, lam=1e-3)
        workspace = deconvolver.fit_workspace(times)
        # Identity: repeated fits on the grid reuse the same template problem
        # and kernel objects, not equal copies.
        assert deconvolver.fit_workspace(times) is workspace
        assert deconvolver.fit_workspace(times).template is workspace.template
        assert workspace.kernel is kernels[0]
        deconvolver.fit(times, values * 1.1, lam=1e-3)
        assert deconvolver.fit_workspace(times) is workspace

    def test_different_grids_do_not_collide(self, deconvolver, grids, kernels):
        session = deconvolver.session()
        for kernel in kernels:
            session.register_kernel(kernel)
        first = deconvolver.fit_workspace(grids[0])
        second = deconvolver.fit_workspace(grids[1])
        assert first is not second
        assert first.kernel is kernels[0] and second.kernel is kernels[1]
        # Returning to an earlier grid must hand back the original workspace
        # (the pre-session single-slot cache would have evicted it).
        assert deconvolver.fit_workspace(grids[0]) is first
        assert deconvolver.fit_workspace(grids[1]) is second
        assert session.num_grids == 2 and session.num_workspaces == 2

    def test_sigma_variants_share_kernel_and_forward(self, deconvolver, grids, kernels):
        times, _ = grids
        deconvolver.session().register_kernel(kernels[0])
        uniform = deconvolver.fit_workspace(times)
        weighted = deconvolver.fit_workspace(times, sigma=0.05)
        assert uniform is not weighted
        assert weighted.kernel is uniform.kernel
        assert weighted.forward is uniform.forward
        assert weighted.template is not uniform.template

    def test_config_change_starts_fresh_session(self, deconvolver, grids, kernels):
        times, _ = grids
        deconvolver.session().register_kernel(kernels[0])
        session = deconvolver.session()
        deconvolver.fit(times, _measurements(kernels[0]), lam=1e-3)
        deconvolver.constraints = []
        assert deconvolver.session() is not session
        assert deconvolver.fit_workspace(times, rng=5).template.constraints == []

    def test_mismatched_explicit_kernel_still_rejected(self, parameters, kernels, grids):
        deconvolver = Deconvolver(kernels[0], parameters=parameters, num_basis=10)
        with pytest.raises(ValueError):
            deconvolver.session().kernel_for(grids[0] + 1.0)

    def test_siblings_share_selection_cache(self, deconvolver, grids, kernels):
        times, _ = grids
        deconvolver.session().register_kernel(kernels[0])
        workspace = deconvolver.fit_workspace(times)
        template = workspace.template
        sibling = template.with_measurements(_measurements(kernels[0]))
        restricted = template.restrict(np.arange(times.size - 2))
        sentinel = object()
        assert template.selection_cache("probe", lambda: sentinel) is sentinel
        # with_measurements shares the cache dict itself; restrict starts a
        # fresh problem family with its own caches.
        assert sibling.selection_cache("probe", lambda: None) is sentinel
        assert sibling._selection_caches is template._selection_caches
        assert restricted._selection_caches is not template._selection_caches
        restricted_sibling = restricted.with_measurements(restricted.measurements)
        assert restricted_sibling._selection_caches is restricted._selection_caches

    def test_shared_constraint_set_across_grids(self, deconvolver, grids, kernels):
        session = deconvolver.session()
        for kernel in kernels:
            session.register_kernel(kernel)
        first = deconvolver.fit_workspace(grids[0])
        second = deconvolver.fit_workspace(grids[1])
        assert first.template.constraint_set is second.template.constraint_set
        assert first.template.constraint_set is session.constraint_set


class TestStreamingAPI:
    def test_flush_matches_one_shot_fit(self, deconvolver, grids, kernels):
        session = deconvolver.session()
        for kernel in kernels:
            session.register_kernel(kernel)
        requests = [
            (grids[0], _measurements(kernels[0]), 1e-3),
            (grids[1], _measurements(kernels[1]), 1e-3),
            (grids[0], _measurements(kernels[0], scale=1.2), 1e-3),
            (grids[0], _measurements(kernels[0], scale=0.8), 1e-2),
        ]
        for times, values, lam in requests:
            session.submit(times, values, lam=lam)
        streamed = session.flush()
        assert session.num_pending == 0
        for (times, values, lam), result in zip(requests, streamed):
            reference = deconvolver.fit(times, values, lam=lam)
            assert np.max(np.abs(result.coefficients - reference.coefficients)) <= 1e-10
            assert result.lam == reference.lam

    def test_flush_matches_fit_with_lambda_selection(self, deconvolver, grids, kernels):
        times, _ = grids
        session = deconvolver.session()
        session.register_kernel(kernels[0])
        values = _measurements(kernels[0])
        session.submit(times, values)
        session.submit(times, values * 1.3)
        streamed = session.flush()
        for scale, result in zip((1.0, 1.3), streamed):
            reference = deconvolver.fit(times, values * scale)
            assert result.lam == pytest.approx(reference.lam, rel=1e-12)
            assert np.max(np.abs(result.coefficients - reference.coefficients)) <= 1e-10

    def test_fit_stream_preserves_input_order(self, deconvolver, grids, kernels):
        session = deconvolver.session()
        for kernel in kernels:
            session.register_kernel(kernel)
        stream = [
            (grids[index % 2], _measurements(kernels[index % 2], scale=1.0 + 0.1 * index))
            for index in range(5)
        ]
        streamed = list(session.fit_stream(stream, flush_every=2, lam=1e-3))
        assert len(streamed) == len(stream)
        for (times, values), result in zip(stream, streamed):
            reference = deconvolver.fit(times, values, lam=1e-3)
            assert np.max(np.abs(result.coefficients - reference.coefficients)) <= 1e-10

    def test_flush_empty_queue_is_noop(self, deconvolver):
        assert deconvolver.session().flush() == []

    def test_fit_stream_validates_flush_every(self, deconvolver, grids, kernels):
        session = deconvolver.session()
        session.register_kernel(kernels[0])
        with pytest.raises(ValueError):
            list(session.fit_stream([(grids[0], _measurements(kernels[0]))], flush_every=0))

    def test_submitted_measurements_are_snapshotted(self, deconvolver, grids, kernels):
        times, _ = grids
        session = deconvolver.session()
        session.register_kernel(kernels[0])
        values = _measurements(kernels[0])
        session.submit(times, values, lam=1e-3)
        reference = deconvolver.fit(times, values.copy(), lam=1e-3)
        values *= 10.0  # mutate after submit; the queued fit must not see it
        (streamed,) = session.flush()
        assert np.max(np.abs(streamed.coefficients - reference.coefficients)) <= 1e-10


class TestAssemblyPipeline:
    def test_shared_context_matches_per_constraint_assembly(self, parameters):
        basis = SplineBasis(num_basis=9)
        constraints = default_constraints()
        shared = build_constraint_set(constraints, basis, parameters)
        clear_assembly_caches()
        reference = build_constraint_set(constraints, basis, parameters)
        assert np.array_equal(shared.equality_matrix, reference.equality_matrix)
        assert np.array_equal(shared.inequality_matrix, reference.inequality_matrix)
        assert shared.names == reference.names

    def test_context_memoised_per_configuration(self, parameters):
        clear_assembly_caches()
        basis = SplineBasis(num_basis=8)
        twin = SplineBasis(num_basis=8)
        other = SplineBasis(num_basis=9)
        context = assembly_context(basis, parameters)
        assert assembly_context(basis, parameters) is context
        # Same knot fingerprint -> same context even for a distinct instance.
        assert assembly_context(twin, parameters) is context
        assert assembly_context(other, parameters) is not context
        changed = CellCycleParameters(mu_sst=0.2)
        assert assembly_context(basis, changed) is not context

    def test_context_tables_cached_per_grid_size(self, parameters):
        context = assembly_context(SplineBasis(num_basis=8), parameters)
        table = context.basis_values(101)
        assert context.basis_values(101) is table
        assert context.basis_values(51) is not table
        quadrature = context.density_quadrature(501)
        assert context.density_quadrature(501) is quadrature

    def test_penalty_memo_shared_across_instances(self, parameters):
        clear_assembly_caches()
        first = SplineBasis(num_basis=11)
        second = SplineBasis(num_basis=11)
        assert first.penalty_matrix() is second.penalty_matrix()
        assert SplineBasis(num_basis=12).penalty_matrix() is not first.penalty_matrix()

    def test_explicit_session_constructor_is_adopted(self, deconvolver, grids, kernels):
        session = FitSession(deconvolver)
        session.register_kernel(kernels[0])
        # The facade routes through the explicitly constructed session, so
        # the registered kernel (not a fresh Monte-Carlo build) is used.
        assert deconvolver.session() is session
        result = session.fit(grids[0], _measurements(kernels[0]), lam=1e-3)
        assert result.solver_converged
        assert deconvolver.fit_workspace(grids[0]).kernel is kernels[0]


class TestSessionStats:
    def test_stats_counters_track_usage(self, deconvolver, grids, kernels):
        session = deconvolver.session()
        session.register_kernel(kernels[0])
        stats = session.stats()
        assert stats["grids"] == 1 and stats["workspaces"] == 0
        assert stats["approx_bytes"] > 0
        deconvolver.fit(grids[0], _measurements(kernels[0]), lam=1e-3)
        deconvolver.fit(grids[0], _measurements(kernels[0], 1.2), lam=1e-3)
        stats = session.stats()
        assert stats["workspaces"] == 1
        assert stats["workspace_misses"] == 1
        assert stats["workspace_hits"] >= 1
        assert stats["kernel_builds"] == 0  # registered, never built on demand
        session.submit(grids[0], _measurements(kernels[0], 0.9), lam=1e-3)
        assert session.stats()["pending"] == 1
        session.flush()
        stats = session.stats()
        assert stats["pending"] == 0
        assert stats["flushes"] == 1 and stats["fits_flushed"] == 1

    def test_mixed_lambda_submissions_share_a_bucket(self, deconvolver, grids, kernels):
        session = deconvolver.session()
        session.register_kernel(kernels[0])
        values = _measurements(kernels[0])
        session.submit(grids[0], values, lam=1e-3)
        session.submit(grids[0], values * 1.1, lam=1e-2)
        first, second = session._pending
        assert first.bucket() == second.bucket()
        results = session.flush()
        for scale, lam, result in ((1.0, 1e-3, results[0]), (1.1, 1e-2, results[1])):
            reference = deconvolver.fit(grids[0], values * scale, lam=lam)
            assert result.lam == reference.lam
            assert np.max(np.abs(result.coefficients - reference.coefficients)) <= 1e-10

    def test_submit_copy_false_keeps_references(self, deconvolver, grids, kernels):
        session = deconvolver.session()
        session.register_kernel(kernels[0])
        values = _measurements(kernels[0])
        session.submit(grids[0], values, lam=1e-3, copy=False)
        assert session._pending[0].measurements is values
