"""Tests for repro.core.lambda_selection and repro.core.diagnostics."""

import numpy as np
import pytest

from repro.core.basis import SplineBasis
from repro.core.constraints import default_constraints
from repro.core.diagnostics import compute_diagnostics, effective_degrees_of_freedom
from repro.core.forward import ForwardModel
from repro.core.lambda_selection import (
    default_lambda_grid,
    generalized_cross_validation,
    k_fold_cross_validation,
    select_lambda,
)
from repro.core.problem import DeconvolutionProblem
from repro.core.deconvolver import Deconvolver
from repro.data.noise import GaussianMagnitudeNoise
from repro.data.synthetic import single_pulse_profile


@pytest.fixture(scope="module")
def noisy_problem(small_kernel, paper_parameters):
    truth = single_pulse_profile(amplitude=2.0, baseline=0.3)
    clean = small_kernel.apply_function(truth)
    noise = GaussianMagnitudeNoise(0.08)
    values = noise.apply(clean, 7)
    sigma = noise.standard_deviations(clean)
    forward = ForwardModel(small_kernel, SplineBasis(num_basis=12))
    return DeconvolutionProblem(
        forward, values, sigma=sigma, constraints=default_constraints(), parameters=paper_parameters
    )


class TestLambdaGrid:
    def test_default_grid_is_logarithmic(self):
        grid = default_lambda_grid(5, 1e-4, 1.0)
        assert grid.size == 5
        assert np.allclose(np.diff(np.log10(grid)), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            default_lambda_grid(1)
        with pytest.raises(ValueError):
            default_lambda_grid(5, 1.0, 0.1)


class TestGCV:
    def test_scores_all_candidates(self, noisy_problem):
        lambdas = default_lambda_grid(6, 1e-5, 1e1)
        selection = generalized_cross_validation(noisy_problem, lambdas)
        assert len(selection.scores) == 6
        assert selection.best_lambda in selection.scores
        assert selection.method == "gcv"

    def test_best_lambda_minimises_score(self, noisy_problem):
        selection = generalized_cross_validation(noisy_problem, default_lambda_grid(7, 1e-5, 1e1))
        best_score = selection.scores[selection.best_lambda]
        assert all(best_score <= score for score in selection.scores.values())

    def test_huge_lambda_penalised_for_underfitting(self, noisy_problem):
        """A very large lambda forces a nearly-flat fit and a worse GCV score."""
        selection = generalized_cross_validation(
            noisy_problem, np.array([1e-4, 1e6])
        )
        assert selection.scores[1e-4] < selection.scores[1e6]


class TestKFoldCV:
    def test_scores_and_selection(self, noisy_problem):
        lambdas = np.array([1e-4, 1e-2, 1e0])
        selection = k_fold_cross_validation(noisy_problem, lambdas, num_folds=4, rng=0)
        assert selection.method == "kfold"
        assert set(selection.scores) == {1e-4, 1e-2, 1e0}
        assert np.isfinite(selection.scores[selection.best_lambda])

    def test_fold_assignment_deterministic(self, noisy_problem):
        lambdas = np.array([1e-3, 1e-1])
        a = k_fold_cross_validation(noisy_problem, lambdas, num_folds=3, rng=5)
        b = k_fold_cross_validation(noisy_problem, lambdas, num_folds=3, rng=5)
        assert a.scores == b.scores

    def test_select_lambda_dispatch(self, noisy_problem):
        assert select_lambda(noisy_problem, method="gcv").method == "gcv"
        assert select_lambda(noisy_problem, np.array([1e-3, 1e-1]), method="kfold").method == "kfold"
        with pytest.raises(ValueError):
            select_lambda(noisy_problem, method="aic")


class TestDiagnostics:
    def test_effective_dof_decreases_with_lambda(self, noisy_problem):
        low = effective_degrees_of_freedom(noisy_problem, 1e-6)
        high = effective_degrees_of_freedom(noisy_problem, 1e2)
        assert high < low
        assert 0 < high and low <= noisy_problem.num_coefficients + 1e-9

    def test_compute_diagnostics_fields(self, small_kernel, paper_parameters, noisy_problem):
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        result = deconvolver.fit(
            small_kernel.times, noisy_problem.measurements, sigma=noisy_problem.sigma, lam=1e-3
        )
        diagnostics = compute_diagnostics(noisy_problem, result)
        assert diagnostics.effective_degrees_of_freedom > 0
        assert diagnostics.residual_norm >= 0
        assert diagnostics.max_absolute_residual >= 0
        assert diagnostics.negativity <= 0
        assert diagnostics.negativity >= -1e-6  # positivity enforced
