"""Tests for the single-cell ODE models (Lotka-Volterra, Goodwin, repressilator)."""

import numpy as np
import pytest

from repro.dynamics.goodwin import GoodwinOscillator
from repro.dynamics.lotka_volterra import LotkaVolterraModel
from repro.dynamics.repressilator import Repressilator


class TestLotkaVolterra:
    def test_equilibrium_is_stationary(self):
        model = LotkaVolterraModel(a=1.0, b=0.5, c=0.5, d=1.0)
        derivative = model.rhs(0.0, model.equilibrium)
        assert np.allclose(derivative, 0.0, atol=1e-12)

    def test_conserved_quantity_along_trajectory(self):
        model = LotkaVolterraModel(a=0.8, b=0.4, c=0.6, d=0.5, x1_0=0.4, x2_0=1.0)
        solution = model.simulate(60.0, num_points=1201)
        invariants = [model.conserved_quantity(state) for state in solution.states]
        assert np.max(np.abs(np.asarray(invariants) - invariants[0])) < 1e-4

    def test_positive_states_preserved(self):
        model = LotkaVolterraModel.paper_oscillator()
        solution = model.simulate(400.0, num_points=2001)
        assert np.all(solution.states > 0)

    def test_rate_scaling_preserves_orbit_shape(self):
        base = LotkaVolterraModel(a=1.0, b=0.4, c=0.8, d=0.5, x1_0=0.25, x2_0=1.0)
        scaled = base.with_rates_scaled(0.5)
        base_solution = base.simulate(20.0, num_points=401)
        scaled_solution = scaled.simulate(40.0, num_points=401)
        # Same orbit traversed at half speed.
        assert np.allclose(base_solution.states, scaled_solution.states, atol=1e-3)

    def test_paper_oscillator_has_150_minute_period(self):
        from repro.dynamics.tuning import estimate_period

        model = LotkaVolterraModel.paper_oscillator()
        assert estimate_period(model) == pytest.approx(150.0, rel=0.01)

    def test_species_lookup(self):
        model = LotkaVolterraModel()
        assert model.species_index("x2") == 1
        assert model.num_species == 2
        with pytest.raises(KeyError):
            model.species_index("x3")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LotkaVolterraModel(a=-1.0)
        with pytest.raises(ValueError):
            LotkaVolterraModel(x1_0=0.0)


class TestGoodwin:
    def test_oscillates_with_steep_hill(self):
        model = GoodwinOscillator()
        solution = model.simulate(600.0, num_points=3001)
        tail = solution.states[1500:, 0]
        assert tail.max() - tail.min() > 0.1 * tail.mean()

    def test_states_remain_positive(self):
        model = GoodwinOscillator()
        solution = model.simulate(400.0, num_points=2001)
        assert np.all(solution.states > -1e-9)

    def test_rate_scaling(self):
        model = GoodwinOscillator()
        scaled = model.with_rates_scaled(2.0)
        assert scaled.a == pytest.approx(2.0 * model.a)
        assert scaled.n == model.n


class TestRepressilator:
    def test_six_species(self):
        model = Repressilator()
        assert model.num_species == 6
        assert model.default_initial_state().shape == (6,)

    def test_sustained_oscillation(self):
        model = Repressilator()
        solution = model.simulate(400.0, num_points=2001)
        protein = solution.states[1000:, 1]
        assert protein.max() > 2.0 * protein.min() + 1.0

    def test_symmetric_under_gene_relabelling(self):
        """The three genes are equivalent, so their long-run ranges match."""
        model = Repressilator()
        solution = model.simulate(900.0, num_points=4501)
        tails = [solution.states[3000:, 2 * i] for i in range(3)]
        ranges = [tail.max() - tail.min() for tail in tails]
        assert max(ranges) < 1.5 * min(ranges)

    def test_rate_scale_speeds_up_dynamics(self):
        from repro.dynamics.tuning import estimate_period

        slow = Repressilator(rate_scale=1.0)
        fast = Repressilator(rate_scale=2.0)
        slow_period = estimate_period(slow, species=1, t_max=600.0)
        fast_period = estimate_period(fast, species=1, t_max=600.0)
        assert fast_period == pytest.approx(slow_period / 2.0, rel=0.05)


class TestBaseSimulate:
    def test_rk4_and_rk45_agree(self):
        model = LotkaVolterraModel.paper_oscillator()
        rk4 = model.simulate(150.0, num_points=301, method="rk4")
        rk45 = model.simulate(150.0, num_points=301, method="rk45")
        assert np.allclose(rk4.states, rk45.states, atol=5e-3)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            LotkaVolterraModel().simulate(10.0, method="euler")

    def test_custom_initial_state(self):
        model = LotkaVolterraModel()
        solution = model.simulate(10.0, num_points=11, initial_state=[1.0, 2.0])
        assert np.allclose(solution.states[0], [1.0, 2.0])
