"""Tests for period estimation, period tuning and phase-profile extraction."""

import numpy as np
import pytest

from repro.data.timeseries import PhaseProfile
from repro.dynamics.goodwin import GoodwinOscillator
from repro.dynamics.lotka_volterra import LotkaVolterraModel
from repro.dynamics.phase_profiles import extract_phase_profiles
from repro.dynamics.tuning import estimate_period, scale_to_period, tune_to_period


class TestEstimatePeriod:
    def test_known_harmonic_period(self):
        """A pure harmonic oscillator disguised as an ODEModel has period 2*pi/omega."""

        class Harmonic(LotkaVolterraModel):
            def rhs(self, t, state):
                return np.array([state[1], -0.04 * state[0]])

            def default_initial_state(self):
                return np.array([1.0, 0.0])

        period = estimate_period(Harmonic(), t_max=400.0)
        assert period == pytest.approx(2 * np.pi / 0.2, rel=0.01)

    def test_lotka_volterra_period_scales_inversely_with_rates(self):
        base = LotkaVolterraModel(a=1.0, b=0.4, c=0.8, d=0.5, x1_0=0.25, x2_0=1.0)
        period = estimate_period(base, t_max=200.0)
        doubled = estimate_period(base.with_rates_scaled(2.0), t_max=200.0)
        assert doubled == pytest.approx(period / 2.0, rel=0.02)

    def test_needs_enough_cycles(self):
        model = LotkaVolterraModel.paper_oscillator()  # 150-minute period
        with pytest.raises(RuntimeError):
            estimate_period(model, t_max=200.0)  # barely one cycle


class TestTuning:
    def test_scale_to_period(self):
        base = LotkaVolterraModel(a=1.0, b=0.4, c=0.8, d=0.5, x1_0=0.25, x2_0=1.0)
        measured = estimate_period(base, t_max=200.0)
        tuned = scale_to_period(base, measured, 150.0)
        assert estimate_period(tuned) == pytest.approx(150.0, rel=0.01)

    def test_tune_to_period_goodwin(self):
        tuned = tune_to_period(GoodwinOscillator(), 150.0, t_max=4000.0)
        assert estimate_period(tuned, t_max=2000.0) == pytest.approx(150.0, rel=0.02)

    def test_scale_requires_support(self):
        class NoScaling(LotkaVolterraModel):
            with_rates_scaled = None

        model = NoScaling()
        model.with_rates_scaled = None
        with pytest.raises(TypeError):
            scale_to_period(model, 100.0, 50.0)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            tune_to_period(LotkaVolterraModel(), -10.0)


class TestExtractPhaseProfiles:
    @pytest.fixture(scope="class")
    def model(self):
        return LotkaVolterraModel.paper_oscillator()

    def test_profiles_for_all_species(self, model):
        profiles = extract_phase_profiles(model, 150.0, num_points=201)
        assert set(profiles) == {"x1", "x2"}
        for profile in profiles.values():
            assert isinstance(profile, PhaseProfile)
            assert profile.phases[0] == 0.0 and profile.phases[-1] == 1.0

    def test_profile_matches_direct_simulation(self, model):
        profiles = extract_phase_profiles(model, 150.0, num_points=301)
        solution = model.simulate(150.0, num_points=301)
        assert np.allclose(profiles["x1"].values, solution.states[:, 0], atol=1e-6)

    def test_periodicity_of_limit_cycle(self, model):
        """After one full period the state returns close to its start."""
        profiles = extract_phase_profiles(model, 150.0, num_points=401)
        for profile in profiles.values():
            scale = profile.values.max() - profile.values.min()
            assert abs(profile.values[0] - profile.values[-1]) < 0.05 * scale

    def test_transient_periods_discarded(self, model):
        with_transient = extract_phase_profiles(model, 150.0, num_points=101, transient_periods=1)
        without = extract_phase_profiles(model, 150.0, num_points=101)
        # The Lotka-Volterra orbit is closed, so one period later the cycle repeats.
        assert np.allclose(with_transient["x1"].values, without["x1"].values, atol=0.05)

    def test_align_to_minimum(self, model):
        aligned = extract_phase_profiles(model, 150.0, num_points=201, align_to_minimum=True)
        values = aligned["x1"].values
        assert int(np.argmin(values[:-1])) == 0

    def test_species_subset(self, model):
        profiles = extract_phase_profiles(model, 150.0, species=("x2",))
        assert list(profiles) == ["x2"]

    def test_invalid_arguments(self, model):
        with pytest.raises(ValueError):
            extract_phase_profiles(model, -1.0)
        with pytest.raises(ValueError):
            extract_phase_profiles(model, 150.0, num_points=2)
        with pytest.raises(ValueError):
            extract_phase_profiles(model, 150.0, transient_periods=-1)
