"""Machine-precision equivalence of every ported kernel across backends.

Each hot-path kernel behind :class:`repro.backends.base.KernelBackend` is
checked two ways:

* the **numpy reference backend** against an independent straightforward
  implementation written here (``np.where`` volume evaluation, per-row
  ``np.convolve`` smoothing, ``searchsorted`` binning, plain loops) — so the
  reference cannot silently drift from its documented semantics;
* the **numba compiled backend** against the numpy reference to the
  ``<= 1e-12`` contract (exact for integer outputs), gated on numba being
  installed — the CI backend matrix runs these on its ``numba`` leg.

End-to-end cross-backend checks cover the kernel build, constraint assembly
and the stacked QP batch solve.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro import backends
from repro.backends.numpy_backend import NumpyBackend

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

TOL = 1e-12


@pytest.fixture(scope="module")
def reference():
    return NumpyBackend()


@pytest.fixture(scope="module")
def compiled():
    if not HAVE_NUMBA:
        pytest.skip("numba not installed ([compiled] extra)")
    return backends.get_backend("numba", fallback=False)


# ---------------------------------------------------------------------------
# Independent reference implementations (deliberately naive).
# ---------------------------------------------------------------------------


def volume_inputs(seed, num_pairs=4096, num_cells=64, transition_range=(0.05, 0.4)):
    gen = np.random.default_rng(seed)
    phi = gen.random(num_pairs)
    transition = gen.uniform(*transition_range, num_cells)
    cell_indices = gen.integers(0, num_cells, num_pairs)
    late_base = gen.uniform(0.4, 0.8, num_cells)
    linear = gen.uniform(0.1, 1.2, num_cells)
    quad = gen.normal(size=num_cells)
    cubic = gen.normal(size=num_cells)
    return phi, transition, cell_indices, late_base, linear, quad, cubic


def volume_where_reference(phi, transition, cell_indices, late_base, linear,
                           quad, cubic, v0):
    early = (0.4 + linear[cell_indices] * phi + quad[cell_indices] * phi ** 2
             + cubic[cell_indices] * phi ** 3)
    late = late_base[cell_indices] + linear[cell_indices] * phi
    return v0 * np.where(phi < transition[cell_indices], early, late)


def smooth_rows_reference(rows, widths, window):
    half = window // 2
    out = np.empty_like(rows)
    for index, row in enumerate(rows):
        padded = np.pad(row, half, mode="edge")
        averaged = np.convolve(padded, np.ones(window), mode="valid") / window
        integral = averaged @ widths
        out[index] = averaged / integral if integral > 0 else row
    return out


def binning_inputs(seed, num_values=2048, num_bins=40):
    gen = np.random.default_rng(seed)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    values = np.concatenate([
        gen.random(num_values),
        edges,                       # every exact edge, both endpoints
        edges[:-1] + 1e-15,          # just inside each bin
    ])
    return values, edges


# ---------------------------------------------------------------------------
# numpy reference backend vs the naive implementations.
# ---------------------------------------------------------------------------


class TestNumpyReferenceSemantics:
    @pytest.mark.parametrize("transition_range", [(0.05, 0.4), (0.7, 0.95)])
    def test_smooth_volume_matches_where_reference(self, reference, transition_range):
        """Both dominance branches of the masked Horner pass agree."""
        inputs = volume_inputs(11, transition_range=transition_range)
        out = np.empty_like(inputs[0])
        result = reference.smooth_volume_into(*inputs, 1.7, out)
        assert result is out
        expected = volume_where_reference(*inputs, 1.7)
        np.testing.assert_allclose(result, expected, rtol=0, atol=TOL)

    def test_uniform_bin_indices_match_searchsorted(self, reference):
        values, edges = binning_inputs(3)
        result = reference.uniform_bin_indices(values, edges)
        expected = np.clip(
            np.searchsorted(edges, values, side="right") - 1, 0, edges.size - 2
        )
        np.testing.assert_array_equal(result, expected)
        assert result.dtype == np.intp

    def test_weighted_bincount_matches_numpy(self, reference):
        gen = np.random.default_rng(5)
        keys = gen.integers(0, 37, 1000)
        weights = gen.normal(size=1000)
        result = reference.weighted_bincount(keys, weights, 50)
        np.testing.assert_array_equal(
            result, np.bincount(keys, weights=weights, minlength=50)
        )

    def test_smooth_rows_matches_convolve_reference(self, reference):
        gen = np.random.default_rng(7)
        rows = gen.random((6, 33)) + 0.01
        rows[3] = 0.0  # degenerate row: returned unsmoothed
        widths = np.full(33, 1.0 / 33)
        result = reference.smooth_rows(rows, widths, 5)
        expected = smooth_rows_reference(rows, widths, 5)
        np.testing.assert_allclose(result, expected, rtol=0, atol=TOL)
        np.testing.assert_array_equal(result[3], rows[3])

    def test_weighted_dot_matches_loop(self, reference):
        gen = np.random.default_rng(9)
        weights = gen.random(101)
        density = gen.random(101)
        density[::7] = 0.0
        matrix = gen.normal(size=(101, 12))
        result = reference.weighted_dot(weights, density, matrix)
        expected = np.array([
            sum(weights[g] * density[g] * matrix[g, c] for g in range(101))
            for c in range(12)
        ])
        np.testing.assert_allclose(result, expected, rtol=TOL, atol=TOL)

    def test_partition_accepted_scatters_and_splits(self, reference):
        gen = np.random.default_rng(13)
        solutions = np.zeros((10, 4))
        rows = np.array([9, 2, 5, 0, 7])
        candidates = gen.normal(size=(5, 4))
        accepted = np.array([True, False, True, True, False])
        accepted_rows, pending_rows = reference.partition_accepted(
            solutions, rows, candidates, accepted
        )
        np.testing.assert_array_equal(accepted_rows, [9, 5, 0])
        np.testing.assert_array_equal(pending_rows, [2, 7])
        np.testing.assert_array_equal(solutions[9], candidates[0])
        np.testing.assert_array_equal(solutions[5], candidates[2])
        np.testing.assert_array_equal(solutions[0], candidates[3])
        np.testing.assert_array_equal(solutions[[2, 7]], 0.0)

    def test_batch_objectives_match_loop(self, reference):
        gen = np.random.default_rng(17)
        factor = gen.normal(size=(10, 8))
        hessian = factor.T @ factor + np.eye(8)
        solutions = gen.normal(size=(6, 8))
        gradients = gen.normal(size=(6, 8))
        result = reference.batch_objectives(solutions, hessian, gradients)
        expected = np.array([
            0.5 * x @ hessian @ x + g @ x
            for x, g in zip(solutions, gradients)
        ])
        np.testing.assert_allclose(result, expected, rtol=TOL, atol=TOL)


# ---------------------------------------------------------------------------
# numba compiled backend vs the numpy reference (gated on the extra).
# ---------------------------------------------------------------------------


class TestCompiledMatchesReference:
    @pytest.mark.parametrize("transition_range", [(0.05, 0.4), (0.7, 0.95)])
    def test_smooth_volume(self, reference, compiled, transition_range):
        inputs = volume_inputs(21, transition_range=transition_range)
        expected = reference.smooth_volume_into(
            *inputs, 1.7, np.empty_like(inputs[0])
        )
        result = compiled.smooth_volume_into(*inputs, 1.7, np.empty_like(inputs[0]))
        np.testing.assert_allclose(result, expected, rtol=0, atol=TOL)

    def test_uniform_bin_indices(self, reference, compiled):
        values, edges = binning_inputs(23)
        np.testing.assert_array_equal(
            compiled.uniform_bin_indices(values, edges),
            reference.uniform_bin_indices(values, edges),
        )

    def test_weighted_bincount(self, reference, compiled):
        gen = np.random.default_rng(25)
        keys = gen.integers(0, 37, 1000)
        weights = gen.normal(size=1000)
        np.testing.assert_allclose(
            compiled.weighted_bincount(keys, weights, 50),
            reference.weighted_bincount(keys, weights, 50),
            rtol=0, atol=TOL,
        )

    def test_smooth_rows(self, reference, compiled):
        gen = np.random.default_rng(27)
        rows = gen.random((6, 33)) + 0.01
        rows[2] = 0.0
        widths = np.full(33, 1.0 / 33)
        np.testing.assert_allclose(
            compiled.smooth_rows(rows, widths, 5),
            reference.smooth_rows(rows, widths, 5),
            rtol=0, atol=TOL,
        )

    def test_weighted_dot(self, reference, compiled):
        gen = np.random.default_rng(29)
        weights = gen.random(101)
        density = gen.random(101)
        density[::5] = 0.0
        matrix = gen.normal(size=(101, 14))
        np.testing.assert_allclose(
            compiled.weighted_dot(weights, density, matrix),
            reference.weighted_dot(weights, density, matrix),
            rtol=TOL, atol=TOL,
        )

    def test_partition_accepted(self, reference, compiled):
        gen = np.random.default_rng(31)
        rows = np.array([4, 1, 6, 0, 3, 8])
        candidates = gen.normal(size=(6, 5))
        accepted = np.array([True, False, True, False, True, True])
        ref_solutions = np.zeros((9, 5))
        cmp_solutions = np.zeros((9, 5))
        ref_acc, ref_pend = reference.partition_accepted(
            ref_solutions, rows, candidates, accepted
        )
        cmp_acc, cmp_pend = compiled.partition_accepted(
            cmp_solutions, rows, candidates, accepted
        )
        np.testing.assert_array_equal(cmp_acc, ref_acc)
        np.testing.assert_array_equal(cmp_pend, ref_pend)
        np.testing.assert_array_equal(cmp_solutions, ref_solutions)

    def test_batch_objectives(self, reference, compiled):
        gen = np.random.default_rng(33)
        factor = gen.normal(size=(12, 9))
        hessian = factor.T @ factor + np.eye(9)
        solutions = gen.normal(size=(7, 9))
        gradients = gen.normal(size=(7, 9))
        np.testing.assert_allclose(
            compiled.batch_objectives(solutions, hessian, gradients),
            reference.batch_objectives(solutions, hessian, gradients),
            rtol=TOL, atol=TOL,
        )


# ---------------------------------------------------------------------------
# End-to-end cross-backend equivalence through the public entry points.
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def test_kernel_builder_explicit_numpy_is_byte_identical(
        self, paper_parameters, measurement_times
    ):
        from repro.cellcycle.kernel import KernelBuilder

        default = KernelBuilder(
            paper_parameters, num_cells=1500, phase_bins=40
        ).build(measurement_times, rng=3)
        explicit = KernelBuilder(
            paper_parameters, num_cells=1500, phase_bins=40, backend="numpy"
        ).build(measurement_times, rng=3)
        np.testing.assert_array_equal(explicit.density, default.density)

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_kernel_builder_compiled_matches_reference(
        self, paper_parameters, measurement_times
    ):
        from repro.cellcycle.kernel import KernelBuilder

        reference_kernel = KernelBuilder(
            paper_parameters, num_cells=1500, phase_bins=40
        ).build(measurement_times, rng=3)
        compiled_kernel = KernelBuilder(
            paper_parameters, num_cells=1500, phase_bins=40, backend="numba"
        ).build(measurement_times, rng=3)
        np.testing.assert_allclose(
            compiled_kernel.density, reference_kernel.density, rtol=0, atol=TOL
        )

    def test_constraint_assembly_explicit_numpy_is_identical(self, basis12,
                                                             paper_parameters):
        from repro.core.constraints import build_constraint_set, default_constraints

        default = build_constraint_set(
            default_constraints(), basis12, paper_parameters
        )
        explicit = build_constraint_set(
            default_constraints(), basis12, paper_parameters, backend="numpy"
        )
        np.testing.assert_array_equal(
            explicit.equality_matrix, default.equality_matrix
        )
        np.testing.assert_array_equal(
            explicit.equality_vector, default.equality_vector
        )

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_constraint_assembly_compiled_matches_reference(self, basis12,
                                                            paper_parameters):
        from repro.core.constraints import build_constraint_set, default_constraints

        reference_set = build_constraint_set(
            default_constraints(), basis12, paper_parameters, backend="numpy"
        )
        compiled_set = build_constraint_set(
            default_constraints(), basis12, paper_parameters, backend="numba"
        )
        np.testing.assert_allclose(
            compiled_set.equality_matrix, reference_set.equality_matrix,
            rtol=0, atol=TOL,
        )
        np.testing.assert_allclose(
            compiled_set.equality_vector, reference_set.equality_vector,
            rtol=0, atol=TOL,
        )

    def _batch_workspace(self, seed=41, n=10):
        from repro.numerics.qp import QPWorkspace, QuadraticProgram

        gen = np.random.default_rng(seed)
        factor = gen.normal(size=(n + 4, n))
        program = QuadraticProgram(
            hessian=factor.T @ factor + 0.5 * np.eye(n),
            gradient=np.zeros(n),
            eq_matrix=gen.normal(size=(2, n)),
            eq_vector=np.zeros(2),
            ineq_matrix=np.eye(n),
            ineq_vector=np.zeros(n),
        )
        gradients = gen.normal(size=(25, n))
        return QPWorkspace(program), gradients

    def test_solve_batch_explicit_numpy_is_identical(self):
        workspace, gradients = self._batch_workspace()
        default = workspace.solve_batch(gradients)
        explicit = workspace.solve_batch(gradients, kernel_backend="numpy")
        np.testing.assert_array_equal(explicit.x, default.x)
        np.testing.assert_array_equal(explicit.objectives, default.objectives)
        assert explicit.active_sets == default.active_sets

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_solve_batch_compiled_matches_reference(self):
        workspace, gradients = self._batch_workspace()
        reference_batch = workspace.solve_batch(gradients, kernel_backend="numpy")
        compiled_batch = workspace.solve_batch(gradients, kernel_backend="numba")
        np.testing.assert_allclose(
            compiled_batch.x, reference_batch.x, rtol=0, atol=TOL
        )
        np.testing.assert_allclose(
            compiled_batch.objectives, reference_batch.objectives,
            rtol=TOL, atol=TOL,
        )
        assert compiled_batch.active_sets == reference_batch.active_sets
