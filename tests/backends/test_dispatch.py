"""Backend selection, fallback and registry behaviour of ``repro.backends``.

Covers the selection precedence (config default < ``REPRO_BACKEND`` env var
< process-wide ``set_active_backend`` / ``use_backend`` < per-call
``backend=`` via ``resolve``), the unknown-backend error, the graceful
numpy fallback when the numba dependency is missing (simulated through an
import hook so the test works whether or not numba is installed), and the
``repro backends`` CLI listing.
"""

from __future__ import annotations

import importlib.util
import logging
import os
import subprocess
import sys

import pytest

from repro import backends, config
from repro.backends.base import KernelBackend
from repro.backends.numpy_backend import NumpyBackend

HAVE_NUMBA = importlib.util.find_spec("numba") is not None


@pytest.fixture(autouse=True)
def restore_backend_state():
    """Reset memoised instances and the active selection after every test."""
    yield
    backends.clear_backend_cache()


class TestSelectionPrecedence:
    def test_config_default_is_numpy(self):
        assert config.DEFAULT_BACKEND == "numpy"
        assert config.BACKEND_ENV_VAR == "REPRO_BACKEND"

    def test_import_time_selection_resolves(self):
        assert backends.requested_backend() in backends.registered_backends()
        assert isinstance(backends.active_backend(), KernelBackend)

    def test_env_var_selects_backend_at_import(self):
        code = (
            "from repro import backends; "
            "print(backends.requested_backend(), backends.active_backend().name)"
        )
        env = {**os.environ, "REPRO_BACKEND": "numpy"}
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True, check=True,
        )
        assert result.stdout.split() == ["numpy", "numpy"]

    def test_env_var_unknown_name_warns_and_uses_default(self):
        code = (
            "import logging; logging.basicConfig(level=logging.WARNING); "
            "from repro import backends; "
            "print(backends.requested_backend(), backends.active_backend().name)"
        )
        env = {**os.environ, "REPRO_BACKEND": "definitely-not-a-backend"}
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True, check=True,
        )
        assert result.stdout.split() == ["numpy", "numpy"]
        assert "does not name a registered kernel backend" in result.stderr

    def test_set_active_backend_overrides_import_selection(self):
        instance = backends.set_active_backend("numpy")
        assert backends.active_backend() is instance

    def test_use_backend_scopes_the_override(self):
        before = backends.active_backend()
        with backends.use_backend("numpy") as selected:
            assert backends.active_backend() is selected
        assert backends.active_backend() is before

    def test_resolve_per_call_wins_over_active(self):
        assert backends.resolve(None) is backends.active_backend()
        assert backends.resolve("numpy").name == "numpy"
        instance = NumpyBackend()
        assert backends.resolve(instance) is instance

    def test_get_backend_memoises_instances(self):
        assert backends.get_backend("numpy") is backends.get_backend("numpy")


class TestRegistry:
    def test_both_backends_registered(self):
        assert backends.registered_backends() == ("numba", "numpy")

    def test_availability(self):
        availability = backends.available_backends()
        assert availability["numpy"] is True
        assert availability["numba"] is HAVE_NUMBA

    def test_unknown_backend_error_lists_registered(self):
        with pytest.raises(ValueError, match="unknown kernel backend 'gpu'"):
            backends.get_backend("gpu")
        with pytest.raises(ValueError, match="numba, numpy"):
            backends.resolve("gpu")

    def test_backend_table_shape(self):
        rows = {row["name"]: row for row in backends.backend_table()}
        assert set(rows) == {"numpy", "numba"}
        assert rows["numpy"]["available"] is True
        assert rows["numpy"]["compiled"] is False
        assert rows["numba"]["compiled"] is True
        assert sum(row["active"] for row in rows.values()) == 1


class _BlockNumbaFinder:
    """Meta-path finder making ``import numba`` fail with ImportError."""

    def find_spec(self, name, path=None, target=None):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba import blocked by test hook")
        return None


@pytest.fixture()
def numba_blocked():
    """Simulate a numpy-only install regardless of what is really present."""
    blocked_prefixes = ("numba", "repro.backends.numba_backend")
    saved = {
        name: sys.modules.pop(name)
        for name in list(sys.modules)
        if name.split(".")[0] == "numba" or name in blocked_prefixes
    }
    finder = _BlockNumbaFinder()
    sys.meta_path.insert(0, finder)
    backends.clear_backend_cache()
    try:
        yield
    finally:
        sys.meta_path.remove(finder)
        sys.modules.update(saved)
        backends.clear_backend_cache()


class TestFallback:
    def test_missing_numba_falls_back_to_numpy(self, numba_blocked, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.backends"):
            selected = backends.get_backend("numba")
            again = backends.get_backend("numba")
        assert selected.name == "numpy"
        assert again is selected
        fallback_lines = [
            record for record in caplog.records
            if "falling back" in record.getMessage()
        ]
        # The warning is logged exactly once per process, not per call.
        assert len(fallback_lines) == 1
        assert "numba" in fallback_lines[0].getMessage()

    def test_missing_numba_set_active_falls_back(self, numba_blocked):
        active = backends.set_active_backend("numba")
        assert active.name == "numpy"
        assert backends.active_backend() is active

    def test_missing_numba_strict_mode_raises(self, numba_blocked):
        with pytest.raises(ImportError, match="'numba' is unavailable"):
            backends.get_backend("numba", fallback=False)

    def test_missing_numba_reported_unavailable(self, numba_blocked):
        assert backends.available_backends() == {"numba": False, "numpy": True}
        rows = {row["name"]: row for row in backends.backend_table()}
        assert rows["numba"]["available"] is False
        assert rows["numba"]["error"]


class TestCli:
    def test_backends_subcommand_lists_registry(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out
        assert "numba" in out
        assert "requested at import:" in out

    def test_backend_flag_sets_process_selection(self, capsys):
        from repro.cli import main

        assert main(["--backend", "numpy", "backends"]) == 0
        out = capsys.readouterr().out
        assert "active: 'numpy'" in out

    def test_backend_flag_unknown_name_raises(self):
        from repro.cli import main

        with pytest.raises(ValueError, match="unknown kernel backend"):
            main(["--backend", "gpu", "backends"])
