"""Tests for repro.utils.rng and repro.utils.gridding."""

import numpy as np
import pytest

from repro.utils.gridding import bin_centers, bin_edges, phase_grid, time_grid
from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_integer_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        gen = as_generator(np.random.SeedSequence(3))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_seed_rejected(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestSpawnGenerators:
    def test_children_are_independent_and_deterministic(self):
        first = [g.random(3) for g in spawn_generators(5, 3)]
        second = [g.random(3) for g in spawn_generators(5, 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        assert not np.array_equal(first[0], first[1])

    def test_count_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(0, 0)

    def test_spawning_from_generator(self):
        children = spawn_generators(np.random.default_rng(1), 2)
        assert len(children) == 2


class TestGrids:
    def test_phase_grid_endpoints(self):
        grid = phase_grid(11)
        assert grid[0] == 0.0 and grid[-1] == 1.0
        assert grid.size == 11

    def test_phase_grid_needs_two_points(self):
        with pytest.raises(ValueError):
            phase_grid(1)

    def test_time_grid(self):
        grid = time_grid(150.0, 6)
        assert grid[0] == 0.0 and grid[-1] == 150.0

    def test_time_grid_rejects_bad_span(self):
        with pytest.raises(ValueError):
            time_grid(0.0, 5)

    def test_bin_edges_and_centers(self):
        edges = bin_edges(4)
        centers = bin_centers(edges)
        assert edges.size == 5
        assert centers.size == 4
        assert np.allclose(centers, [0.125, 0.375, 0.625, 0.875])

    def test_bin_edges_validation(self):
        with pytest.raises(ValueError):
            bin_edges(0)
        with pytest.raises(ValueError):
            bin_edges(3, 1.0, 0.0)
