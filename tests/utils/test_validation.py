"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_sorted,
    ensure_1d,
    ensure_2d,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")

    def test_returns_python_float(self):
        assert isinstance(check_positive(np.float64(1.0), "x"), float)


class TestCheckInRange:
    def test_accepts_interior_point(self):
        assert check_in_range(0.5, "x", 0.0, 1.0) == 0.5

    def test_inclusive_bounds_accepted(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0.0, 1.0)

    def test_probability_helper(self):
        assert check_probability(0.3, "p") == 0.3
        with pytest.raises(ValueError):
            check_probability(1.2, "p")


class TestEnsure1d:
    def test_accepts_list(self):
        result = ensure_1d([1, 2, 3], "x")
        assert result.shape == (3,)
        assert result.dtype == float

    def test_scalar_becomes_length_one(self):
        assert ensure_1d(5.0, "x").shape == (1,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ensure_1d(np.zeros((2, 2)), "x")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ensure_1d([], "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ensure_1d([1.0, np.nan], "x")


class TestEnsure2d:
    def test_accepts_matrix(self):
        assert ensure_2d([[1.0, 2.0], [3.0, 4.0]], "m").shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ensure_2d([1.0, 2.0], "m")

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            ensure_2d([[1.0, np.inf]], "m")


class TestCheckSorted:
    def test_accepts_strictly_increasing(self):
        result = check_sorted([0.0, 1.0, 2.0], "x")
        assert result.size == 3

    def test_rejects_ties_when_strict(self):
        with pytest.raises(ValueError):
            check_sorted([0.0, 1.0, 1.0], "x")

    def test_allows_ties_when_not_strict(self):
        check_sorted([0.0, 1.0, 1.0], "x", strict=False)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            check_sorted([1.0, 0.5], "x", strict=False)
