"""End-to-end and property-based tests of the full deconvolution pipeline.

These tests exercise the whole chain — single-cell profile, forward
convolution through the Monte-Carlo kernel, constrained regularised inversion —
on randomly generated but physically sensible profiles, checking the
invariants that should hold regardless of the particular profile.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import nrmse, pearson_correlation
from repro.core.deconvolver import Deconvolver
from repro.data.synthetic import single_pulse_profile
from repro.data.timeseries import PhaseProfile


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    center=st.floats(0.25, 0.75),
    width=st.floats(0.08, 0.2),
    amplitude=st.floats(0.5, 5.0),
    baseline=st.floats(0.05, 1.0),
)
def test_pulse_profiles_recovered_within_tolerance(
    small_kernel, paper_parameters, center, width, amplitude, baseline
):
    """Property: any reasonable single-pulse profile is recovered with small error."""
    truth = single_pulse_profile(center=center, width=width, amplitude=amplitude, baseline=baseline)
    values = small_kernel.apply_function(truth)
    deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
    result = deconvolver.fit(small_kernel.times, values, lam=1e-4)
    phases = np.linspace(0.0, 1.0, 151)
    assert result.solver_converged
    assert pearson_correlation(result.profile(phases), truth(phases)) > 0.9
    assert np.min(result.profile(phases)) >= -5e-3 * (amplitude + baseline)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(scale=st.floats(0.1, 20.0))
def test_deconvolution_is_scale_equivariant(small_kernel, paper_parameters, scale):
    """Property: scaling the measurements scales the recovered profile linearly."""
    truth = single_pulse_profile(center=0.5, width=0.12, amplitude=2.0, baseline=0.2)
    values = small_kernel.apply_function(truth)
    deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
    base = deconvolver.fit(small_kernel.times, values, lam=1e-3)
    scaled = deconvolver.fit(small_kernel.times, scale * values, lam=1e-3)
    phases = np.linspace(0.0, 1.0, 101)
    assert np.allclose(scaled.profile(phases), scale * base.profile(phases), rtol=1e-3, atol=1e-6)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=st.integers(0, 10_000))
def test_forward_model_preserves_phase_average_bounds(small_kernel, seed):
    """Property: population values stay within the range of the single-cell profile."""
    rng = np.random.default_rng(seed)
    knots = np.linspace(0.0, 1.0, 12)
    values = rng.uniform(0.0, 5.0, 12)
    truth = PhaseProfile(knots, values)
    population = small_kernel.apply_function(truth)
    assert np.all(population >= truth.values.min() - 1e-9)
    assert np.all(population <= truth.values.max() + 1e-9)


class TestPublicAPI:
    def test_quickstart_snippet_runs(self):
        """The README / package-docstring quickstart works as written."""
        from repro import Deconvolver, KernelBuilder, ftsz_like_profile

        times = np.linspace(0.0, 150.0, 10)
        kernel = KernelBuilder(num_cells=1500, phase_bins=40).build(times, rng=0)
        truth = ftsz_like_profile()
        population = kernel.apply_function(truth)
        result = Deconvolver(kernel).fit(times, population, lam=1e-3)
        phases, estimate = result.profile_on_grid()
        assert phases.shape == estimate.shape
        assert result.solver_converged

    def test_version_exposed(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestEndToEndConsistency:
    def test_deconvolved_then_reconvolved_matches_measurements(
        self, small_kernel, paper_parameters
    ):
        """Pushing the estimate back through the forward model reproduces the data."""
        truth = single_pulse_profile(center=0.4, width=0.15, amplitude=3.0, baseline=0.5)
        values = small_kernel.apply_function(truth)
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=12)
        result = deconvolver.fit(small_kernel.times, values, lam=1e-4)
        reconvolved = small_kernel.apply(result.profile(small_kernel.phase_centers))
        assert nrmse(reconvolved, values) < 0.05

    def test_two_species_deconvolved_independently(self, small_kernel, paper_parameters):
        """fit_many results match per-species fit results exactly."""
        profiles = [
            single_pulse_profile(center=0.3, amplitude=1.0, baseline=0.2),
            single_pulse_profile(center=0.7, amplitude=2.0, baseline=0.2),
        ]
        matrix = np.column_stack([small_kernel.apply_function(p) for p in profiles])
        deconvolver = Deconvolver(small_kernel, parameters=paper_parameters, num_basis=10)
        together = deconvolver.fit_many(small_kernel.times, matrix, lam=1e-3)
        separate = [
            deconvolver.fit(small_kernel.times, matrix[:, i], lam=1e-3) for i in range(2)
        ]
        for joint, single in zip(together, separate):
            assert np.allclose(joint.coefficients, single.coefficients)
