"""Tests for repro.cellcycle.population."""

import numpy as np
import pytest

from repro.cellcycle.parameters import CellCycleParameters
from repro.cellcycle.phase import InitialCondition
from repro.cellcycle.population import PopulationSimulator


@pytest.fixture(scope="module")
def simulator():
    return PopulationSimulator(CellCycleParameters())


@pytest.fixture(scope="module")
def history(simulator):
    return simulator.run(2000, 180.0, rng=0)


class TestRun:
    def test_history_contains_founders_and_daughters(self, history):
        assert history.num_cells > 2000
        assert np.count_nonzero(history.generations == 0) == 2000
        assert np.any(history.generations >= 1)

    def test_daughters_come_in_pairs(self, history):
        """Every division creates exactly two daughters, so later generations are even-sized."""
        for generation in range(1, int(history.generations.max()) + 1):
            count = int(np.count_nonzero(history.generations == generation))
            assert count % 2 == 0

    def test_population_growth_over_time(self, simulator, history):
        early = simulator.snapshot(history, 10.0).num_cells
        late = simulator.snapshot(history, 175.0).num_cells
        assert early == 2000
        assert late > early

    def test_division_times_follow_birth_times(self, history):
        assert np.all(history.division_times > history.birth_times)

    def test_daughter_initial_phases(self, history):
        daughters = history.generations >= 1
        phases = history.initial_phases[daughters]
        transitions = history.transition_phases[daughters]
        # Swarmer daughters start at 0, stalked daughters at their own phi_sst.
        is_swarmer = phases == 0.0
        assert np.any(is_swarmer)
        assert np.allclose(phases[~is_swarmer], transitions[~is_swarmer])

    def test_determinism(self, simulator):
        a = simulator.run(500, 160.0, rng=9)
        b = simulator.run(500, 160.0, rng=9)
        assert a.num_cells == b.num_cells
        assert np.allclose(a.division_times, b.division_times)

    def test_invalid_arguments(self, simulator):
        with pytest.raises(ValueError):
            simulator.run(0, 100.0)
        with pytest.raises(ValueError):
            simulator.run(10, -1.0)


class TestSnapshots:
    def test_phases_within_unit_interval(self, simulator, history):
        for time in (0.0, 40.0, 100.0, 170.0):
            snapshot = simulator.snapshot(history, time)
            assert np.all((snapshot.phases >= 0.0) & (snapshot.phases <= 1.0))

    def test_initial_snapshot_matches_swarmer_synchrony(self, simulator, history):
        snapshot = simulator.snapshot(history, 0.0)
        assert np.all(snapshot.phases <= snapshot.transition_phases + 1e-12)

    def test_volumes_positive_and_bounded(self, simulator, history):
        snapshot = simulator.snapshot(history, 120.0)
        assert np.all(snapshot.volumes > 0)
        assert np.all(snapshot.volumes <= simulator.volume_model.v0 + 1e-12)
        assert snapshot.total_volume == pytest.approx(np.sum(snapshot.volumes))

    def test_total_volume_grows_with_time(self, simulator, history):
        volumes = [simulator.snapshot(history, t).total_volume for t in (0.0, 60.0, 120.0, 175.0)]
        assert all(later > earlier for earlier, later in zip(volumes, volumes[1:]))

    def test_snapshots_helper_matches_single_calls(self, simulator, history):
        times = np.array([10.0, 90.0])
        many = simulator.snapshots(history, times)
        assert len(many) == 2
        assert many[0].num_cells == simulator.snapshot(history, 10.0).num_cells

    def test_negative_time_rejected(self, simulator, history):
        with pytest.raises(ValueError):
            simulator.snapshot(history, -5.0)


class TestMeanPhaseProgression:
    def test_mean_phase_increases_then_resets_on_division_wave(self):
        """Before the first divisions the mean phase advances ~ t / T."""
        params = CellCycleParameters(cv_cycle_time=0.05)
        simulator = PopulationSimulator(params)
        history = simulator.run(4000, 100.0, rng=4)
        mean_early = np.mean(simulator.snapshot(history, 30.0).phases)
        mean_later = np.mean(simulator.snapshot(history, 90.0).phases)
        assert mean_later > mean_early
        assert mean_later == pytest.approx(0.075 + 90.0 / 150.0, abs=0.05)

    def test_asynchronous_culture_keeps_flat_phase_distribution(self):
        simulator = PopulationSimulator(initial_condition=InitialCondition.ASYNCHRONOUS)
        history = simulator.run(8000, 150.0, rng=5)
        snapshot = simulator.snapshot(history, 150.0)
        counts, _ = np.histogram(snapshot.phases, bins=10, range=(0, 1))
        fractions = counts / snapshot.num_cells
        # An asynchronous exponential culture stays broadly spread over phase
        # (younger phases slightly over-represented).
        assert fractions.min() > 0.04
        assert fractions.max() < 0.2


class TestPhasesAtManyMemo:
    def test_repeat_call_returns_memoised_arrays(self):
        simulator = PopulationSimulator(CellCycleParameters())
        history = simulator.run(600, 150.0, rng=11)
        times = np.linspace(0.0, 150.0, 6)
        first = history.phases_at_many(times)
        second = history.phases_at_many(times)
        for a, b in zip(first, second):
            assert a is b
            assert not a.flags.writeable

    def test_different_grid_invalidates_memo(self):
        simulator = PopulationSimulator(CellCycleParameters())
        history = simulator.run(600, 150.0, rng=11)
        first = history.phases_at_many(np.linspace(0.0, 150.0, 6))
        other = history.phases_at_many(np.linspace(0.0, 150.0, 7))
        assert first[0] is not other[0]
        assert other[0].size != first[0].size
