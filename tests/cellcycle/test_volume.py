"""Tests for repro.cellcycle.volume — including the paper's eq. 11 properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellcycle.volume import (
    LinearVolumeModel,
    PiecewiseLinearVolumeModel,
    SmoothVolumeModel,
    make_volume_model,
)

ALL_MODELS = [LinearVolumeModel, PiecewiseLinearVolumeModel, SmoothVolumeModel]


@pytest.mark.parametrize("model_cls", ALL_MODELS)
class TestCommonProperties:
    def test_volume_at_division_is_v0(self, model_cls):
        model = model_cls(v0=2.0)
        assert model.volume(1.0, 0.15) == pytest.approx(2.0)

    def test_newborn_swarmer_volume(self, model_cls):
        model = model_cls(v0=1.0)
        assert model.volume(0.0, 0.15) == pytest.approx(0.4)
        assert model.swarmer_birth_volume() == pytest.approx(0.4)

    def test_volume_monotonically_increases(self, model_cls):
        model = model_cls()
        phases = np.linspace(0.0, 1.0, 301)
        volumes = model.volume(phases, 0.15)
        assert np.all(np.diff(volumes) > -1e-12)

    def test_volume_bounded_between_daughter_and_parent(self, model_cls):
        model = model_cls()
        phases = np.linspace(0.0, 1.0, 301)
        volumes = model.volume(phases, 0.15)
        assert np.all(volumes >= 0.4 - 1e-12)
        assert np.all(volumes <= 1.0 + 1e-12)

    def test_scalar_output_type(self, model_cls):
        model = model_cls()
        assert isinstance(model.volume(0.5, 0.15), float)
        assert isinstance(model.derivative(0.5, 0.15), float)

    def test_invalid_phase_rejected(self, model_cls):
        model = model_cls()
        with pytest.raises(ValueError):
            model.volume(1.5, 0.15)

    def test_invalid_transition_phase_rejected(self, model_cls):
        model = model_cls()
        with pytest.raises(ValueError):
            model.volume(0.5, 0.0)

    def test_invalid_v0_rejected(self, model_cls):
        with pytest.raises(ValueError):
            model_cls(v0=-1.0)


class TestPartitionModels:
    """Models that respect the 40/60 partition hit 0.6 V0 at the transition."""

    @pytest.mark.parametrize("model_cls", [PiecewiseLinearVolumeModel, SmoothVolumeModel])
    @pytest.mark.parametrize("phi_sst", [0.1, 0.15, 0.25, 0.4])
    def test_transition_volume_is_sixty_percent(self, model_cls, phi_sst):
        model = model_cls()
        assert model.volume(phi_sst, phi_sst) == pytest.approx(0.6, abs=1e-10)
        assert model.stalked_birth_volume(phi_sst) == pytest.approx(0.6, abs=1e-10)

    def test_plain_linear_model_ignores_partition(self):
        model = LinearVolumeModel()
        assert model.volume(0.15, 0.15) == pytest.approx(0.4 + 0.6 * 0.15)


class TestSmoothModel:
    """Properties (6)-(10) of the paper's eq. 11."""

    @pytest.mark.parametrize("phi_sst", [0.1, 0.15, 0.2, 0.3])
    def test_growth_rate_continuity_across_division(self, phi_sst):
        model = SmoothVolumeModel()
        rate_at_end = model.derivative(1.0, phi_sst)
        assert model.derivative(0.0, phi_sst) == pytest.approx(rate_at_end, rel=1e-9)
        assert model.derivative(phi_sst, phi_sst) == pytest.approx(rate_at_end, rel=1e-6)

    @pytest.mark.parametrize("phi_sst", [0.1, 0.15, 0.25])
    def test_end_growth_rate_value(self, phi_sst):
        model = SmoothVolumeModel()
        assert model.derivative(1.0, phi_sst) == pytest.approx(0.4 / (1.0 - phi_sst))

    def test_derivative_continuous_at_transition(self):
        model = SmoothVolumeModel()
        phi_sst = 0.15
        below = model.derivative(phi_sst - 1e-9, phi_sst)
        above = model.derivative(phi_sst + 1e-9, phi_sst)
        assert below == pytest.approx(above, rel=1e-4)

    def test_derivative_matches_finite_difference(self):
        model = SmoothVolumeModel()
        phases = np.linspace(0.01, 0.99, 99)
        h = 1e-6
        numeric = (model.volume(phases + h, 0.15) - model.volume(phases - h, 0.15)) / (2 * h)
        assert np.allclose(model.derivative(phases, 0.15), numeric, atol=1e-5)

    def test_volume_conserved_at_division(self):
        """Daughter volumes sum to the parent volume (0.4 + 0.6 = 1.0)."""
        model = SmoothVolumeModel(v0=3.0)
        parent = model.volume(1.0, 0.15)
        daughters = model.swarmer_birth_volume() + model.stalked_birth_volume(0.15)
        assert daughters == pytest.approx(parent)


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_volume_model("linear"), LinearVolumeModel)
        assert isinstance(make_volume_model("piecewise_linear"), PiecewiseLinearVolumeModel)
        assert isinstance(make_volume_model("smooth"), SmoothVolumeModel)

    def test_v0_forwarded(self):
        assert make_volume_model("smooth", v0=2.5).v0 == pytest.approx(2.5)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown volume model"):
            make_volume_model("exponential")


@settings(max_examples=40, deadline=None)
@given(
    phi=st.floats(0.0, 1.0),
    phi_sst=st.floats(0.05, 0.6),
)
def test_smooth_model_between_linear_bounds(phi, phi_sst):
    """Property: the smooth model stays within [0.4, 1.0] V0 and is finite."""
    model = SmoothVolumeModel()
    value = model.volume(phi, phi_sst)
    assert 0.4 - 1e-9 <= value <= 1.0 + 1e-9
    assert np.isfinite(model.derivative(phi, phi_sst))
