"""Tests for repro.cellcycle.celltypes."""

import numpy as np
import pytest

from repro.cellcycle.celltypes import (
    CellType,
    CellTypeBoundaries,
    classify_phases,
    simulate_type_distribution,
    type_fractions,
)
from repro.cellcycle.parameters import CellCycleParameters


class TestBoundaries:
    def test_paper_ranges(self):
        low = CellTypeBoundaries.paper_low()
        mid = CellTypeBoundaries.paper_mid()
        high = CellTypeBoundaries.paper_high()
        assert low.ste_stepd == pytest.approx(0.6)
        assert high.ste_stepd == pytest.approx(0.7)
        assert low.stepd_stlpd == pytest.approx(0.85)
        assert high.stepd_stlpd == pytest.approx(0.9)
        assert low.ste_stepd < mid.ste_stepd < high.ste_stepd

    def test_invalid_ordering(self):
        with pytest.raises(ValueError):
            CellTypeBoundaries(ste_stepd=0.9, stepd_stlpd=0.7)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            CellTypeBoundaries(ste_stepd=0.0, stepd_stlpd=0.5)


class TestClassification:
    def test_each_region_labelled_correctly(self):
        phases = np.array([0.05, 0.3, 0.7, 0.95])
        transitions = np.full(4, 0.15)
        labels = classify_phases(phases, transitions)
        assert list(labels) == [CellType.SW, CellType.STE, CellType.STEPD, CellType.STLPD]

    def test_transition_phase_is_per_cell(self):
        phases = np.array([0.2, 0.2])
        transitions = np.array([0.25, 0.1])
        labels = classify_phases(phases, transitions)
        assert labels[0] == CellType.SW
        assert labels[1] == CellType.STE

    def test_custom_boundaries(self):
        phases = np.array([0.65])
        transitions = np.array([0.15])
        default_label = classify_phases(phases, transitions)[0]
        shifted = classify_phases(
            phases, transitions, CellTypeBoundaries(ste_stepd=0.6, stepd_stlpd=0.9)
        )[0]
        assert default_label == CellType.STEPD
        assert shifted == CellType.STEPD

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            classify_phases(np.array([0.5]), np.array([0.1, 0.2]))

    def test_fractions_sum_to_one(self):
        rng = np.random.default_rng(0)
        phases = rng.uniform(0, 1, 1000)
        transitions = np.full(1000, 0.15)
        fractions = type_fractions(phases, transitions)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert set(fractions) == set(CellType.ordered())


class TestSimulatedDistribution:
    @pytest.fixture(scope="class")
    def distribution(self):
        times = np.array([75.0, 90.0, 105.0, 120.0, 135.0, 150.0])
        return simulate_type_distribution(
            times, CellCycleParameters(), num_cells=8000, include_band=True, rng=0
        )

    def test_fractions_normalised(self, distribution):
        assert distribution.check_normalised(tol=1e-9)

    def test_band_brackets_midpoint(self, distribution):
        for cell_type in CellType.ordered():
            assert np.all(distribution.lower[cell_type] <= distribution.fractions[cell_type] + 1e-12)
            assert np.all(distribution.upper[cell_type] >= distribution.fractions[cell_type] - 1e-12)

    def test_early_culture_is_mostly_stalked_not_swarmer(self, distribution):
        """75 minutes in, the synchronised culture has progressed past the SW stage."""
        assert distribution.fractions[CellType.SW][0] < 0.1
        assert distribution.fractions[CellType.STE][0] > 0.5

    def test_swarmers_reappear_after_division(self, distribution):
        """By 150 minutes divisions have produced a substantial swarmer fraction."""
        sw = distribution.fractions[CellType.SW]
        assert sw[-1] > sw[0] + 0.1

    def test_predivisional_peak_mid_experiment(self, distribution):
        stepd = distribution.fractions[CellType.STEPD]
        assert np.argmax(stepd) not in (0, stepd.size - 1)

    def test_matrix_shape(self, distribution):
        assert distribution.as_matrix().shape == (6, 4)

    def test_without_band(self):
        dist = simulate_type_distribution(
            np.array([80.0, 120.0]), num_cells=1000, include_band=False, rng=1
        )
        assert dist.lower == {} and dist.upper == {}
