"""Tests for repro.cellcycle.kernel (the Q(phi, t) estimator)."""

import numpy as np
import pytest

from repro.cellcycle.kernel import KernelBuilder, VolumeKernel
from repro.cellcycle.volume import LinearVolumeModel
from repro.data.synthetic import linear_profile


class TestVolumeKernelContainer:
    def test_shapes_and_accessors(self, small_kernel, measurement_times):
        assert small_kernel.num_measurements == measurement_times.size
        assert small_kernel.num_bins == 60
        assert small_kernel.phase_centers.shape == (60,)
        assert small_kernel.phase_widths.shape == (60,)
        assert small_kernel.density.shape == (measurement_times.size, 60)

    def test_rows_integrate_to_one(self, small_kernel):
        assert np.allclose(small_kernel.row_integrals(), 1.0, atol=1e-10)

    def test_density_nonnegative(self, small_kernel):
        assert np.all(small_kernel.density >= 0.0)

    def test_apply_constant_profile_gives_constant(self, small_kernel):
        """A phase-independent expression is unchanged by population averaging."""
        values = small_kernel.apply(np.full(small_kernel.num_bins, 3.5))
        assert np.allclose(values, 3.5, atol=1e-9)

    def test_apply_function_matches_apply(self, small_kernel):
        profile = linear_profile(0.0, 2.0)
        via_function = small_kernel.apply_function(profile)
        via_samples = small_kernel.apply(profile(small_kernel.phase_centers))
        assert np.allclose(via_function, via_samples)

    def test_apply_multiple_species(self, small_kernel):
        matrix = np.column_stack(
            [np.ones(small_kernel.num_bins), small_kernel.phase_centers]
        )
        result = small_kernel.apply(matrix)
        assert result.shape == (small_kernel.num_measurements, 2)

    def test_apply_rejects_wrong_length(self, small_kernel):
        with pytest.raises(ValueError):
            small_kernel.apply(np.ones(small_kernel.num_bins + 1))

    def test_design_matrix_shape_and_consistency(self, small_kernel, basis12):
        basis_at_centers = basis12.evaluate(small_kernel.phase_centers)
        design = small_kernel.design_matrix(basis_at_centers)
        assert design.shape == (small_kernel.num_measurements, basis12.num_basis)
        coefficients = np.ones(basis12.num_basis)
        direct = small_kernel.apply(basis_at_centers @ coefficients)
        assert np.allclose(design @ coefficients, direct)

    def test_restrict(self, small_kernel):
        subset = small_kernel.restrict(np.array([0, 2, 4]))
        assert subset.num_measurements == 3
        assert np.allclose(subset.times, small_kernel.times[[0, 2, 4]])
        assert np.allclose(subset.density, small_kernel.density[[0, 2, 4]])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            VolumeKernel(
                times=np.array([0.0, 1.0]),
                phase_edges=np.linspace(0, 1, 5),
                density=np.zeros((3, 4)),
                num_cells=np.array([1, 1, 1]),
            )


class TestKernelBuilder:
    def test_initial_kernel_concentrated_at_low_phases(self, small_kernel):
        """At t=0 the synchronised swarmer culture sits entirely below phi_sst."""
        first_row = small_kernel.density[0]
        centers = small_kernel.phase_centers
        mass_below = np.sum((first_row * small_kernel.phase_widths)[centers < 0.25])
        assert mass_below > 0.99

    def test_kernel_mass_moves_to_later_phases(self, small_kernel):
        """Half-way through the cycle the volume density peaks near mid-phase."""
        centers = small_kernel.phase_centers
        mid_index = small_kernel.num_measurements // 2
        mid_row = small_kernel.density[mid_index]
        mean_phase = np.sum(mid_row * small_kernel.phase_widths * centers)
        assert 0.35 < mean_phase < 0.75

    def test_reproducible_with_seed(self, paper_parameters):
        times = np.linspace(0.0, 150.0, 5)
        builder = KernelBuilder(paper_parameters, num_cells=1000, phase_bins=40)
        a = builder.build(times, rng=7)
        b = builder.build(times, rng=7)
        assert np.allclose(a.density, b.density)

    def test_volume_model_changes_kernel(self, paper_parameters):
        times = np.linspace(0.0, 150.0, 5)
        smooth = KernelBuilder(paper_parameters, num_cells=4000, phase_bins=40).build(times, rng=1)
        linear = KernelBuilder(
            paper_parameters, LinearVolumeModel(), num_cells=4000, phase_bins=40
        ).build(times, rng=1)
        assert not np.allclose(smooth.density, linear.density)

    def test_smoothing_window_reduces_roughness(self, paper_parameters):
        times = np.linspace(0.0, 150.0, 4)
        rough = KernelBuilder(
            paper_parameters, num_cells=2000, phase_bins=60, smoothing_window=1
        ).build(times, rng=2)
        smooth = KernelBuilder(
            paper_parameters, num_cells=2000, phase_bins=60, smoothing_window=5
        ).build(times, rng=2)
        def roughness(kernel):
            return float(np.mean(np.abs(np.diff(kernel.density, axis=1))))
        assert roughness(smooth) < roughness(rough)
        assert np.allclose(smooth.row_integrals(), 1.0, atol=1e-9)

    def test_monte_carlo_convergence(self, paper_parameters):
        """More simulated cells bring the kernel closer to a high-resolution reference."""
        times = np.linspace(0.0, 150.0, 4)
        reference = KernelBuilder(paper_parameters, num_cells=30_000, phase_bins=40).build(
            times, rng=100
        )
        small = KernelBuilder(paper_parameters, num_cells=300, phase_bins=40).build(times, rng=101)
        large = KernelBuilder(paper_parameters, num_cells=8000, phase_bins=40).build(times, rng=102)
        error_small = np.mean(np.abs(small.density - reference.density))
        error_large = np.mean(np.abs(large.density - reference.density))
        assert error_large < error_small

    def test_invalid_configuration(self, paper_parameters):
        with pytest.raises(ValueError):
            KernelBuilder(paper_parameters, num_cells=0)
        with pytest.raises(ValueError):
            KernelBuilder(paper_parameters, phase_bins=1)
        with pytest.raises(ValueError):
            KernelBuilder(paper_parameters, smoothing_window=2)

    def test_negative_times_rejected(self, paper_parameters):
        builder = KernelBuilder(paper_parameters, num_cells=100, phase_bins=20)
        with pytest.raises(ValueError):
            builder.build(np.array([-1.0, 10.0]))

    def test_forward_model_dilution_of_pulse(self, small_kernel):
        """Population averaging damps a sharp mid-cycle pulse (asynchrony blurs it)."""
        from repro.data.synthetic import single_pulse_profile

        pulse = single_pulse_profile(center=0.5, width=0.05, amplitude=1.0, baseline=0.0)
        population = small_kernel.apply_function(pulse)
        assert population.max() < 0.9 * pulse.values.max()


class TestVectorizedSmoothing:
    def test_smooth_rows_matches_per_row_reference(self, paper_parameters):
        builder = KernelBuilder(paper_parameters, num_cells=100, phase_bins=40, smoothing_window=5)
        rng = np.random.default_rng(3)
        rows = rng.uniform(0.0, 2.0, size=(6, 40))
        widths = np.full(40, 1.0 / 40)
        vectorized = builder._smooth_rows(rows, widths)
        reference = np.stack([builder._smooth_row(row, widths) for row in rows])
        np.testing.assert_allclose(vectorized, reference, rtol=1e-12, atol=1e-12)

    def test_smooth_rows_identity_window(self, paper_parameters):
        builder = KernelBuilder(paper_parameters, num_cells=100, phase_bins=20, smoothing_window=1)
        rows = np.ones((3, 20))
        assert builder._smooth_rows(rows, np.full(20, 0.05)) is rows
