"""Tests for repro.cellcycle.parameters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellcycle.parameters import CellCycleParameters


class TestDefaults:
    def test_paper_values(self, paper_parameters):
        assert paper_parameters.mu_sst == pytest.approx(0.15)
        assert paper_parameters.cv_sst == pytest.approx(0.13)
        assert paper_parameters.mean_cycle_time == pytest.approx(150.0)
        assert paper_parameters.swarmer_volume_fraction == pytest.approx(0.4)
        assert paper_parameters.stalked_volume_fraction == pytest.approx(0.6)

    def test_derived_sigmas(self, paper_parameters):
        assert paper_parameters.sigma_sst == pytest.approx(0.15 * 0.13)
        assert paper_parameters.sigma_cycle_time == pytest.approx(15.0)


class TestValidation:
    def test_mu_sst_must_be_interior(self):
        with pytest.raises(ValueError):
            CellCycleParameters(mu_sst=0.0)
        with pytest.raises(ValueError):
            CellCycleParameters(mu_sst=1.0)

    def test_negative_cycle_time_rejected(self):
        with pytest.raises(ValueError):
            CellCycleParameters(mean_cycle_time=-5.0)

    def test_volume_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            CellCycleParameters(swarmer_volume_fraction=0.5, stalked_volume_fraction=0.6)

    def test_frozen(self, paper_parameters):
        with pytest.raises(AttributeError):
            paper_parameters.mu_sst = 0.2


class TestSampling:
    def test_transition_phase_statistics(self, paper_parameters):
        samples = paper_parameters.sample_transition_phase(50_000, rng=0)
        assert samples.shape == (50_000,)
        assert np.all((samples > 0) & (samples < 1))
        assert np.mean(samples) == pytest.approx(0.15, abs=0.002)
        assert np.std(samples) == pytest.approx(0.15 * 0.13, rel=0.05)

    def test_cycle_time_statistics(self, paper_parameters):
        samples = paper_parameters.sample_cycle_time(50_000, rng=1)
        assert np.all(samples > 0)
        assert np.mean(samples) == pytest.approx(150.0, rel=0.01)
        assert np.std(samples) == pytest.approx(15.0, rel=0.05)

    def test_sampling_is_deterministic_for_fixed_seed(self, paper_parameters):
        a = paper_parameters.sample_transition_phase(100, rng=7)
        b = paper_parameters.sample_transition_phase(100, rng=7)
        assert np.array_equal(a, b)

    def test_zero_cv_gives_constant_samples(self):
        params = CellCycleParameters(cv_sst=0.0, cv_cycle_time=0.0)
        assert np.allclose(params.sample_transition_phase(10, rng=0), 0.15)
        assert np.allclose(params.sample_cycle_time(10, rng=0), 150.0)


class TestDensityAndBeta:
    def test_density_integrates_to_one(self, paper_parameters):
        grid = np.linspace(0.0, 1.0, 20001)
        density = paper_parameters.transition_phase_density(grid)
        assert np.trapezoid(density, grid) == pytest.approx(1.0, abs=1e-6)

    def test_density_peaks_at_mu(self, paper_parameters):
        grid = np.linspace(0.0, 1.0, 2001)
        density = paper_parameters.transition_phase_density(grid)
        assert grid[int(np.argmax(density))] == pytest.approx(0.15, abs=0.002)

    def test_density_scalar_output(self, paper_parameters):
        assert isinstance(paper_parameters.transition_phase_density(0.15), float)

    def test_density_undefined_for_zero_cv(self):
        params = CellCycleParameters(cv_sst=0.0)
        with pytest.raises(ValueError):
            params.transition_phase_density(0.15)

    def test_beta_matches_formula(self, paper_parameters):
        assert paper_parameters.beta(0.15) == pytest.approx(0.4 / 0.85)
        values = paper_parameters.beta(np.array([0.1, 0.2]))
        assert np.allclose(values, [0.4 / 0.9, 0.4 / 0.8])


@settings(max_examples=25, deadline=None)
@given(
    mu=st.floats(0.05, 0.5),
    cv=st.floats(0.01, 0.3),
    seed=st.integers(0, 1000),
)
def test_transition_samples_always_in_unit_interval(mu, cv, seed):
    """Property: sampled transition phases always lie strictly inside (0, 1)."""
    params = CellCycleParameters(mu_sst=mu, cv_sst=cv)
    samples = params.sample_transition_phase(500, rng=seed)
    assert np.all((samples > 0.0) & (samples < 1.0))
