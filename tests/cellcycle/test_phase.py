"""Tests for repro.cellcycle.phase."""

import numpy as np
import pytest

from repro.cellcycle.parameters import CellCycleParameters
from repro.cellcycle.phase import (
    InitialCondition,
    draw_cohort,
    phase_at_time,
    sample_initial_phases,
    time_to_division,
)


class TestSampleInitialPhases:
    def test_synchronized_swarmer_below_transition(self, paper_parameters):
        transition = paper_parameters.sample_transition_phase(5000, rng=0)
        phases = sample_initial_phases(transition, InitialCondition.SYNCHRONIZED_SWARMER, rng=1)
        assert np.all(phases >= 0.0)
        assert np.all(phases <= transition)

    def test_all_at_zero(self):
        transition = np.full(100, 0.15)
        phases = sample_initial_phases(transition, InitialCondition.ALL_AT_ZERO, rng=0)
        assert np.all(phases == 0.0)

    def test_asynchronous_spans_unit_interval(self):
        transition = np.full(20_000, 0.15)
        phases = sample_initial_phases(transition, InitialCondition.ASYNCHRONOUS, rng=0)
        assert phases.min() < 0.05
        assert phases.max() > 0.95
        assert np.mean(phases) == pytest.approx(0.5, abs=0.02)

    def test_deterministic_given_seed(self):
        transition = np.full(50, 0.15)
        a = sample_initial_phases(transition, rng=3)
        b = sample_initial_phases(transition, rng=3)
        assert np.array_equal(a, b)


class TestPhaseKinematics:
    def test_phase_advances_at_inverse_cycle_time(self):
        assert phase_at_time(0.1, 150.0, 75.0) == pytest.approx(0.6)

    def test_vectorised_phase_advance(self):
        phases = phase_at_time(np.array([0.0, 0.5]), np.array([100.0, 200.0]), 50.0)
        assert np.allclose(phases, [0.5, 0.75])

    def test_time_to_division(self):
        assert time_to_division(0.4, 150.0) == pytest.approx(90.0)
        assert time_to_division(0.0, 120.0) == pytest.approx(120.0)

    def test_division_time_consistency(self):
        """A cell reaches exactly phase one after time_to_division."""
        phi0, cycle = 0.3, 140.0
        remaining = time_to_division(phi0, cycle)
        assert phase_at_time(phi0, cycle, remaining) == pytest.approx(1.0)


class TestDrawCohort:
    def test_shapes_and_ranges(self, paper_parameters):
        phases, cycles, transitions = draw_cohort(paper_parameters, 1000, rng=0)
        assert phases.shape == cycles.shape == transitions.shape == (1000,)
        assert np.all(phases <= transitions)
        assert np.all(cycles > 0)

    def test_respects_initial_condition(self, paper_parameters):
        phases, _, _ = draw_cohort(
            paper_parameters, 100, condition=InitialCondition.ALL_AT_ZERO, rng=0
        )
        assert np.all(phases == 0.0)

    def test_custom_parameters(self):
        params = CellCycleParameters(mu_sst=0.3, mean_cycle_time=90.0)
        _, cycles, transitions = draw_cohort(params, 5000, rng=2)
        assert np.mean(transitions) == pytest.approx(0.3, abs=0.01)
        assert np.mean(cycles) == pytest.approx(90.0, rel=0.02)
