"""Pluggable compiled-kernel backend dispatch.

The hot inner loops of the package (fused Horner volume pass, uniform
binning, kernel-row smoothing, constraint-quadrature reductions, batch-solve
packaging) live behind a :class:`~repro.backends.base.KernelBackend` object.
Two implementations are registered:

* ``numpy`` — the vectorised reference (always available, the default);
  byte-identical to the pre-dispatch tree.
* ``numba`` — ``@njit(cache=True)`` loop nests (optional ``[compiled]``
  install extra); matches the reference to machine precision, enforced by
  equivalence tests and the two-backend CI matrix.

Selection precedence (lowest to highest):

1. :data:`repro.config.DEFAULT_BACKEND` (``"numpy"``);
2. the ``REPRO_BACKEND`` environment variable, read once at import;
3. a process-wide :func:`set_active_backend` / :func:`use_backend` override
   (the CLI's ``--backend`` flag calls the former);
4. a per-call ``backend=`` argument on the dispatching entry points
   (``KernelBuilder``, ``build_constraint_set``,
   ``QPWorkspace.solve_batch(kernel_backend=...)``), resolved through
   :func:`resolve`.

Requesting a *registered but unavailable* backend (e.g. ``numba`` without
the extra installed) logs one ``repro.backends`` warning per process and
falls back to the numpy reference, so numpy-only installs keep working with
zero behaviour change.  Requesting an *unknown* name raises ``ValueError``.
"""

from __future__ import annotations

import contextlib
import logging
import os
import threading
from typing import Callable, Iterator, Optional, Union

from repro import config
from repro.backends.base import KernelBackend

__all__ = [
    "KernelBackend",
    "BackendSpec",
    "register_backend",
    "registered_backends",
    "available_backends",
    "backend_table",
    "get_backend",
    "resolve",
    "active_backend",
    "requested_backend",
    "set_active_backend",
    "use_backend",
    "clear_backend_cache",
]

#: Accepted by :func:`resolve`: a registry name, an instance, or ``None``
#: (meaning "the active backend").
BackendSpec = Union[str, KernelBackend, None]

_logger = logging.getLogger("repro.backends")

_REGISTRY: dict[str, dict] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_LOAD_ERRORS: dict[str, str] = {}
_FALLBACK_LOGGED: set[str] = set()
_LOCK = threading.Lock()

_requested: str = ""
_active: Optional[KernelBackend] = None


def register_backend(
    name: str,
    loader: Callable[[], KernelBackend],
    *,
    compiled: bool = False,
    description: str = "",
) -> None:
    """Register a backend under ``name``.

    Parameters
    ----------
    name:
        Registry key (also the value accepted by ``REPRO_BACKEND`` and every
        ``backend=`` argument).
    loader:
        Zero-argument callable returning the backend instance.  It may raise
        ``ImportError`` when an optional dependency is missing; the dispatch
        layer treats such backends as unavailable and falls back to the
        reference.
    compiled:
        Whether the backend compiles its kernels (shown by ``repro
        backends``).
    description:
        One-line summary for the registry listing.
    """
    _REGISTRY[str(name)] = {
        "loader": loader,
        "compiled": bool(compiled),
        "description": str(description),
    }


def registered_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def _load(name: str) -> Optional[KernelBackend]:
    """Instantiate (and memoise) backend ``name``; ``None`` when unavailable."""
    with _LOCK:
        instance = _INSTANCES.get(name)
        if instance is not None:
            return instance
        if name in _LOAD_ERRORS:
            return None
        try:
            instance = _REGISTRY[name]["loader"]()
        except ImportError as error:
            _LOAD_ERRORS[name] = str(error)
            return None
        _INSTANCES[name] = instance
        return instance


def available_backends() -> dict[str, bool]:
    """Importability of every registered backend (``name -> available``)."""
    return {name: _load(name) is not None for name in registered_backends()}


def backend_table() -> list[dict]:
    """Registry listing for the ``repro backends`` CLI subcommand.

    One dictionary per registered backend: ``name``, ``compiled``,
    ``available``, ``active`` (whether it is the process-wide selection),
    ``description`` and, for unavailable backends, the load ``error``.
    """
    active_name = active_backend().name
    rows = []
    for name in registered_backends():
        entry = _REGISTRY[name]
        available = _load(name) is not None
        rows.append(
            {
                "name": name,
                "compiled": entry["compiled"],
                "available": available,
                "active": name == active_name and available,
                "description": entry["description"],
                "error": _LOAD_ERRORS.get(name, ""),
            }
        )
    return rows


def get_backend(name: str, *, fallback: bool = True) -> KernelBackend:
    """Backend instance for a registry ``name``.

    Parameters
    ----------
    name:
        Registered backend name.  Unknown names raise ``ValueError`` listing
        the registered ones.
    fallback:
        When the named backend is registered but unavailable (optional
        dependency missing): fall back to the numpy reference with a
        once-per-process log line (``True``, the default), or raise
        ``ImportError`` (``False``).
    """
    name = str(name)
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{', '.join(registered_backends())}"
        )
    instance = _load(name)
    if instance is not None:
        return instance
    if not fallback:
        raise ImportError(
            f"kernel backend {name!r} is unavailable: {_LOAD_ERRORS.get(name, 'import failed')}"
        )
    if name not in _FALLBACK_LOGGED:
        _FALLBACK_LOGGED.add(name)
        _logger.warning(
            "kernel backend %r is unavailable (%s); falling back to the "
            "'numpy' reference backend (install the [compiled] extra for "
            "compiled kernels)",
            name,
            _LOAD_ERRORS.get(name, "import failed"),
        )
    reference = _load("numpy")
    assert reference is not None, "the numpy reference backend must always load"
    return reference


def requested_backend() -> str:
    """Backend name selected at import time (env var over config default)."""
    return _requested


def active_backend() -> KernelBackend:
    """The process-wide backend instance every dispatch site defaults to."""
    global _active
    if _active is None:
        _active = get_backend(_requested)
    return _active


def set_active_backend(name: str) -> KernelBackend:
    """Select the process-wide backend; returns the resolved instance.

    Unavailable compiled backends resolve to the numpy reference (with the
    once-per-process fallback log line), mirroring import-time selection.
    """
    global _active
    _active = get_backend(name)
    return _active


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Context manager scoping a process-wide backend selection.

    The override is process-global (not thread-local): intended for tests,
    benchmarks and CLI paths, not for scoping individual requests inside the
    multi-threaded service runtime — there, pass ``backend=`` per call.
    """
    global _active
    previous = _active
    _active = get_backend(name)
    try:
        yield _active
    finally:
        _active = previous


def resolve(backend: BackendSpec = None) -> KernelBackend:
    """Resolve a per-call ``backend=`` argument to an instance.

    ``None`` means the active process-wide backend; a string is looked up in
    the registry (with the unavailable-backend fallback); an instance passes
    through unchanged.
    """
    if backend is None:
        return active_backend()
    if isinstance(backend, KernelBackend):
        return backend
    return get_backend(backend)


def clear_backend_cache() -> None:
    """Drop memoised instances, load errors and the active selection.

    Test hook: the next :func:`active_backend` call re-resolves the
    import-time request, and availability probes re-run their imports (so an
    import hook installed by a test is actually exercised).  The
    once-per-process fallback-log guard is cleared too.
    """
    global _active
    with _LOCK:
        _INSTANCES.clear()
        _LOAD_ERRORS.clear()
    _FALLBACK_LOGGED.clear()
    _active = None


def _load_numpy() -> KernelBackend:
    """Loader for the always-available numpy reference backend."""
    from repro.backends.numpy_backend import NumpyBackend

    return NumpyBackend()


def _load_numba() -> KernelBackend:
    """Loader for the optional Numba-compiled backend."""
    from repro.backends.numba_backend import NumbaBackend

    return NumbaBackend()


register_backend(
    "numpy",
    _load_numpy,
    compiled=False,
    description="vectorised numpy reference (always available, the default)",
)
register_backend(
    "numba",
    _load_numba,
    compiled=True,
    description="@njit(cache=True) loop nests (optional [compiled] extra)",
)

_requested = os.environ.get(config.BACKEND_ENV_VAR, config.DEFAULT_BACKEND)
if _requested not in _REGISTRY:
    _logger.warning(
        "%s=%r does not name a registered kernel backend (%s); using %r",
        config.BACKEND_ENV_VAR,
        _requested,
        ", ".join(registered_backends()),
        config.DEFAULT_BACKEND,
    )
    _requested = config.DEFAULT_BACKEND
