"""Numba-compiled implementations of the hot-path kernels.

Importing this module requires the optional ``numba`` dependency (install
the package with the ``[compiled]`` extra); the dispatch layer catches the
``ImportError`` and falls back to the numpy reference, so a plain install
never pays for — or breaks on — the compiled path.

Every kernel is an ``@njit(cache=True)`` loop nest performing *the same
floating-point operations in the same order* as the numpy reference
(``repro.backends.numpy_backend``) wherever the reference's order is
sequential, so most kernels are bit-identical; the reductions that the
reference delegates to BLAS (``weighted_dot``, row integrals,
``batch_objectives``) agree to a few ulp.  ``cache=True`` persists the
compiled machine code on disk (honouring ``NUMBA_CACHE_DIR``), so warm
processes — and CI runs restoring the cache directory — skip compilation.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.backends.base import KernelBackend


@njit(cache=True)
def _smooth_volume_into(phi, transition, cell_indices, late_base, linear, quad, cubic, v0, out):
    for i in range(phi.shape[0]):
        cell = cell_indices[i]
        p = phi[i]
        if p < transition[cell]:
            value = ((cubic[cell] * p + quad[cell]) * p + linear[cell]) * p + 0.4
        else:
            value = linear[cell] * p + late_base[cell]
        out[i] = value * v0
    return out


@njit(cache=True)
def _uniform_bin_indices(values, edges):
    num_bins = edges.shape[0] - 1
    scale = num_bins / (edges[num_bins] - edges[0])
    origin = edges[0]
    bins = np.empty(values.shape[0], dtype=np.intp)
    for i in range(values.shape[0]):
        index = np.intp((values[i] - origin) * scale)
        if index < 0:
            index = 0
        elif index > num_bins - 1:
            index = num_bins - 1
        if values[i] < edges[index]:
            index -= 1
        elif index < num_bins - 1 and values[i] >= edges[index + 1]:
            index += 1
        bins[i] = index
    return bins


@njit(cache=True)
def _weighted_bincount(keys, weights, minlength):
    out = np.zeros(minlength, dtype=np.float64)
    for i in range(keys.shape[0]):
        out[keys[i]] += weights[i]
    return out


@njit(cache=True)
def _smooth_rows(rows, widths, window):
    num_rows, num_bins = rows.shape
    half = window // 2
    padded_size = num_bins + 2 * half
    cumulative = np.empty(padded_size, dtype=np.float64)
    smoothed = np.empty_like(rows)
    for r in range(num_rows):
        # Edge-padded cumulative sum of the row (sequential, matching the
        # reference's np.cumsum exactly).
        total = 0.0
        for j in range(padded_size):
            if j < half:
                value = rows[r, 0]
            elif j < half + num_bins:
                value = rows[r, j - half]
            else:
                value = rows[r, num_bins - 1]
            total += value
            cumulative[j] = total
        smoothed[r, 0] = cumulative[window - 1] / window
        for j in range(1, num_bins):
            smoothed[r, j] = (cumulative[window + j - 1] - cumulative[j - 1]) / window
        integral = 0.0
        for j in range(num_bins):
            integral += smoothed[r, j] * widths[j]
        if integral > 0.0:
            for j in range(num_bins):
                smoothed[r, j] /= integral
        else:
            for j in range(num_bins):
                smoothed[r, j] = rows[r, j]
    return smoothed


@njit(cache=True)
def _weighted_dot(weights, density, matrix):
    grid_size, num_columns = matrix.shape
    out = np.zeros(num_columns, dtype=np.float64)
    for i in range(grid_size):
        product = weights[i] * density[i]
        if product != 0.0:
            for j in range(num_columns):
                out[j] += product * matrix[i, j]
    return out


@njit(cache=True)
def _scatter_accepted(solutions, rows, candidates, accepted):
    for position in range(rows.shape[0]):
        if accepted[position]:
            row = rows[position]
            for j in range(candidates.shape[1]):
                solutions[row, j] = candidates[position, j]


@njit(cache=True)
def _batch_objectives(solutions, hessian, gradients):
    num_problems, n = solutions.shape
    out = np.empty(num_problems, dtype=np.float64)
    for r in range(num_problems):
        quadratic = 0.0
        linear = 0.0
        for i in range(n):
            row_product = 0.0
            for j in range(n):
                row_product += hessian[i, j] * solutions[r, j]
            quadratic += solutions[r, i] * row_product
            linear += gradients[r, i] * solutions[r, i]
        out[r] = 0.5 * quadratic + linear
    return out


class NumbaBackend(KernelBackend):
    """JIT-compiled loop-nest backend (optional ``[compiled]`` extra)."""

    name = "numba"
    compiled = True

    def smooth_volume_into(
        self,
        phi: np.ndarray,
        transition: np.ndarray,
        cell_indices: np.ndarray,
        late_base: np.ndarray,
        linear: np.ndarray,
        quad: np.ndarray,
        cubic: np.ndarray,
        v0: float,
        out: np.ndarray,
    ) -> np.ndarray:
        """Single fused Horner loop over the pairs (see base class)."""
        return _smooth_volume_into(
            phi, transition, cell_indices, late_base, linear, quad, cubic, float(v0), out
        )

    def uniform_bin_indices(self, values: np.ndarray, edges: np.ndarray) -> np.ndarray:
        """Per-value index arithmetic with the boundary fix-up (see base class)."""
        return _uniform_bin_indices(values, edges)

    def weighted_bincount(
        self, keys: np.ndarray, weights: np.ndarray, minlength: int
    ) -> np.ndarray:
        """Single accumulation loop in key-occurrence order (see base class)."""
        return _weighted_bincount(keys, weights, int(minlength))

    def smooth_rows(
        self, rows: np.ndarray, widths: np.ndarray, window: int
    ) -> np.ndarray:
        """Per-row sliding-sum smoothing without the padded copies (see base class)."""
        return _smooth_rows(rows, widths, int(window))

    def weighted_dot(
        self, weights: np.ndarray, density: np.ndarray, matrix: np.ndarray
    ) -> np.ndarray:
        """Row-major reduction skipping masked-out (zero) grid points."""
        return _weighted_dot(weights, density, np.ascontiguousarray(matrix))

    def partition_accepted(
        self,
        solutions: np.ndarray,
        rows: np.ndarray,
        candidates: np.ndarray,
        accepted: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compiled scatter of the accepted candidate rows (see base class)."""
        _scatter_accepted(solutions, rows, candidates, accepted)
        return rows[accepted], rows[~accepted]

    def batch_objectives(
        self, solutions: np.ndarray, hessian: np.ndarray, gradients: np.ndarray
    ) -> np.ndarray:
        """Fused per-row quadratic/linear reduction (see base class)."""
        return _batch_objectives(solutions, hessian, gradients)
