"""Abstract interface of a kernel backend.

A :class:`KernelBackend` bundles the hot inner loops of the package — the
fused Horner volume pass, uniform binning, kernel-row smoothing, the
constraint-quadrature reductions and the batch-solve packaging — behind one
object so alternative implementations (the pure-numpy reference, a
Numba-compiled backend, a future GPU/float32 bulk path) can be swapped at
import/config time or per call.

Every method is a pure function of its arguments (no backend state), and the
contract for *every* backend is numerical agreement with the numpy reference
to machine precision (``<= 1e-12`` elementwise; integer outputs must match
exactly).  That contract is enforced by ``tests/backends/test_equivalence.py``
and by the two-backend CI matrix running the whole tier-1 suite under each
backend.
"""

from __future__ import annotations

import abc

import numpy as np


class KernelBackend(abc.ABC):
    """Set of hot-path kernel implementations selected via ``repro.backends``.

    Attributes
    ----------
    name:
        Registry name of the backend (``"numpy"``, ``"numba"``).
    compiled:
        Whether the backend JIT/AOT-compiles its kernels.  Compiled backends
        may be unavailable at runtime (missing optional dependency); the
        dispatch layer then falls back to the numpy reference.
    """

    name: str = "abstract"
    compiled: bool = False

    @abc.abstractmethod
    def smooth_volume_into(
        self,
        phi: np.ndarray,
        transition: np.ndarray,
        cell_indices: np.ndarray,
        late_base: np.ndarray,
        linear: np.ndarray,
        quad: np.ndarray,
        cubic: np.ndarray,
        v0: float,
        out: np.ndarray,
    ) -> np.ndarray:
        """Fused piecewise-Horner volume evaluation into ``out``.

        Evaluates the smooth volume model (eq. 11) for (phase, cell) pairs:
        ``0.4 + linear phi + quad phi^2 + cubic phi^3`` before the per-cell
        transition phase and ``late_base + linear phi`` after it, everything
        scaled by ``v0``.  Inputs are assumed validated (phases in
        ``[0, 1]``, transitions strictly inside ``(0, 1)``).

        Parameters
        ----------
        phi:
            Pair phases, shape ``(P,)``.
        transition:
            Per-cell transition phases, shape ``(C,)``.
        cell_indices:
            Cell index of each pair, shape ``(P,)``.
        late_base, linear, quad, cubic:
            Per-cell polynomial coefficients, each shape ``(C,)``.
        v0:
            Pre-division volume scale.
        out:
            Output buffer, shape ``(P,)``; written in place and returned.
        """

    @abc.abstractmethod
    def uniform_bin_indices(self, values: np.ndarray, edges: np.ndarray) -> np.ndarray:
        """Bin index of each value in a uniform-edge grid.

        Matches ``searchsorted(edges, values, "right") - 1`` clipped to the
        valid range (left-closed bins, last bin right-closed, as in
        ``np.histogram``) via direct index arithmetic with a +/-1 boundary
        fix-up.

        Parameters
        ----------
        values:
            Values to bin, shape ``(P,)``.
        edges:
            Uniform bin edges, shape ``(nb + 1,)``.

        Returns
        -------
        numpy.ndarray
            Integer bin indices, shape ``(P,)``, dtype ``intp``.
        """

    @abc.abstractmethod
    def weighted_bincount(
        self, keys: np.ndarray, weights: np.ndarray, minlength: int
    ) -> np.ndarray:
        """Sum ``weights`` into ``minlength`` buckets addressed by ``keys``.

        Equivalent to ``np.bincount(keys, weights=weights,
        minlength=minlength)`` (weights accumulated in key-occurrence
        order).

        Parameters
        ----------
        keys:
            Non-negative integer bucket index per weight, shape ``(P,)``.
        weights:
            Values to accumulate, shape ``(P,)``.
        minlength:
            Number of output buckets (no key may reach it).
        """

    @abc.abstractmethod
    def smooth_rows(
        self, rows: np.ndarray, widths: np.ndarray, window: int
    ) -> np.ndarray:
        """Edge-padded moving-average smoothing of kernel rows.

        Sliding-sum moving average of width ``window`` (odd, ``>= 3``) per
        row, then per-row renormalisation so each smoothed row keeps its
        integral against ``widths``; rows whose smoothed integral
        degenerates to zero are returned unsmoothed.

        Parameters
        ----------
        rows:
            Kernel rows, shape ``(R, nb)``; not modified.
        widths:
            Bin widths, shape ``(nb,)``.
        window:
            Odd moving-average width in bins, at least 3.

        Returns
        -------
        numpy.ndarray
            Smoothed rows, shape ``(R, nb)`` (a new array).
        """

    @abc.abstractmethod
    def weighted_dot(
        self, weights: np.ndarray, density: np.ndarray, matrix: np.ndarray
    ) -> np.ndarray:
        """Quadrature reduction ``(weights * density) @ matrix``.

        The constraint-assembly inner loop: integrate every basis column of
        ``matrix`` against a density with quadrature ``weights``.

        Parameters
        ----------
        weights:
            Quadrature weights, shape ``(G,)``.
        density:
            Density values on the grid, shape ``(G,)``.
        matrix:
            Basis (or derivative) table, shape ``(G, Nc)``.

        Returns
        -------
        numpy.ndarray
            Integrals per column, shape ``(Nc,)``.
        """

    @abc.abstractmethod
    def partition_accepted(
        self,
        solutions: np.ndarray,
        rows: np.ndarray,
        candidates: np.ndarray,
        accepted: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scatter accepted batch candidates into the solution matrix.

        The packaging step of the stacked multi-RHS QP solve: candidate rows
        that passed KKT verification are written into ``solutions`` at their
        problem row, and the accepted/pending split is returned (order
        preserved).

        Parameters
        ----------
        solutions:
            Solution matrix, shape ``(num_problems, n)``; written in place.
        rows:
            Problem row index per candidate, shape ``(B,)``.
        candidates:
            Candidate solutions, shape ``(B, n)``.
        accepted:
            Boolean verification mask, shape ``(B,)``.

        Returns
        -------
        tuple[numpy.ndarray, numpy.ndarray]
            ``(accepted_rows, pending_rows)``: the problem rows written and
            the rows still pending, both in input order.
        """

    @abc.abstractmethod
    def batch_objectives(
        self, solutions: np.ndarray, hessian: np.ndarray, gradients: np.ndarray
    ) -> np.ndarray:
        """Objective values ``0.5 x^T H x + g^T x`` for stacked solutions.

        Parameters
        ----------
        solutions:
            Solutions, shape ``(B, n)``.
        hessian:
            Shared Hessian, shape ``(n, n)``.
        gradients:
            Per-row linear terms, shape ``(B, n)``.

        Returns
        -------
        numpy.ndarray
            Objective per row, shape ``(B,)``.
        """
