"""Pure-numpy reference implementations of the hot-path kernels.

This backend *is* the package's numerical contract: every kernel here is the
vectorised implementation the solve path shipped with (moved verbatim from
its original call site), so selecting ``backend="numpy"`` — the default —
produces byte-identical results to the pre-dispatch tree.  Compiled backends
must match these reference kernels to machine precision.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend


class NumpyBackend(KernelBackend):
    """Vectorised numpy reference backend (always available, the default)."""

    name = "numpy"
    compiled = False

    def smooth_volume_into(
        self,
        phi: np.ndarray,
        transition: np.ndarray,
        cell_indices: np.ndarray,
        late_base: np.ndarray,
        linear: np.ndarray,
        quad: np.ndarray,
        cubic: np.ndarray,
        v0: float,
        out: np.ndarray,
    ) -> np.ndarray:
        """Majority-piece masked Horner evaluation (see base class).

        The piece covering the majority of the pairs is Horner-evaluated
        over the whole buffer and only the minority piece is recomputed and
        scattered through its boolean mask — no full second-piece array, no
        ``where`` allocation.
        """
        early_mask = phi < transition[cell_indices]
        num_early = int(np.count_nonzero(early_mask))
        if 2 * num_early <= phi.size:
            # Late-dominant (e.g. a culture past its first division wave):
            # the linear piece fills the buffer, the cubic minority is
            # patched in through the mask.
            np.take(linear, cell_indices, out=out)
            out *= phi
            out += late_base[cell_indices]
            if num_early:
                indices = cell_indices[early_mask]
                early_phi = phi[early_mask]
                early = cubic[indices] * early_phi
                early += quad[indices]
                early *= early_phi
                early += linear[indices]
                early *= early_phi
                early += 0.4
                out[early_mask] = early
        else:
            np.take(cubic, cell_indices, out=out)
            out *= phi
            out += quad[cell_indices]
            out *= phi
            out += linear[cell_indices]
            out *= phi
            out += 0.4
            if num_early < phi.size:
                late_mask = ~early_mask
                indices = cell_indices[late_mask]
                late = linear[indices] * phi[late_mask]
                late += late_base[indices]
                out[late_mask] = late
        out *= v0
        return out

    def uniform_bin_indices(self, values: np.ndarray, edges: np.ndarray) -> np.ndarray:
        """Direct index arithmetic with a +/-1 boundary fix-up (see base class)."""
        num_bins = edges.size - 1
        scale = num_bins / (edges[-1] - edges[0])
        bins = ((values - edges[0]) * scale).astype(np.intp)
        np.clip(bins, 0, num_bins - 1, out=bins)
        bins[values < edges[bins]] -= 1
        fixable = bins < num_bins - 1
        bins[fixable & (values >= edges[bins + 1])] += 1
        return bins

    def weighted_bincount(
        self, keys: np.ndarray, weights: np.ndarray, minlength: int
    ) -> np.ndarray:
        """One ``np.bincount`` accumulation pass (see base class)."""
        return np.bincount(keys, weights=weights, minlength=int(minlength))

    def smooth_rows(
        self, rows: np.ndarray, widths: np.ndarray, window: int
    ) -> np.ndarray:
        """Cumulative-sum sliding average with renormalisation (see base class)."""
        half = window // 2
        padded = np.pad(rows, ((0, 0), (half, half)), mode="edge")
        cumulative = np.cumsum(padded, axis=1)
        smoothed = np.empty_like(rows)
        smoothed[:, 0] = cumulative[:, window - 1]
        smoothed[:, 1:] = cumulative[:, window:] - cumulative[:, : rows.shape[1] - 1]
        smoothed /= window
        integrals = smoothed @ widths
        positive = integrals > 0
        smoothed[positive] /= integrals[positive, None]
        smoothed[~positive] = rows[~positive]
        return smoothed

    def weighted_dot(
        self, weights: np.ndarray, density: np.ndarray, matrix: np.ndarray
    ) -> np.ndarray:
        """One elementwise product plus a BLAS matrix-vector reduction."""
        return (weights * density) @ matrix

    def partition_accepted(
        self,
        solutions: np.ndarray,
        rows: np.ndarray,
        candidates: np.ndarray,
        accepted: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fancy-indexed scatter of the accepted candidate rows (see base class)."""
        accepted_rows = rows[accepted]
        if accepted_rows.size:
            solutions[accepted_rows] = candidates[accepted]
        return accepted_rows, rows[~accepted]

    def batch_objectives(
        self, solutions: np.ndarray, hessian: np.ndarray, gradients: np.ndarray
    ) -> np.ndarray:
        """One GEMM plus two ``einsum`` row reductions (see base class)."""
        hx = solutions @ hessian
        objectives = 0.5 * np.einsum("bi,bi->b", solutions, hx)
        objectives += np.einsum("bi,bi->b", gradients, solutions)
        return objectives
