"""Figure 2 experiment: deconvolution of a noiseless Lotka-Volterra population.

A Lotka-Volterra oscillator tuned to a 150-minute period plays the role of the
"true" cell-cycle-regulated single-cell expression.  Its two species are
convolved with the volume-density kernel of an initially synchronous swarmer
culture to produce noiseless population data, which is then deconvolved; the
experiment reports the single-cell, population and deconvolved series for both
species together with recovery metrics (the paper's Figure 2).

The same driver, with ``noise_fraction > 0``, generates the noisy variant used
for Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.comparison import ProfileComparison, compare_to_truth
from repro.cellcycle.kernel import KernelBuilder, VolumeKernel
from repro.cellcycle.parameters import CellCycleParameters
from repro.core.deconvolver import Deconvolver
from repro.core.result import DeconvolutionResult
from repro.data.noise import GaussianMagnitudeNoise
from repro.data.timeseries import PhaseProfile
from repro.dynamics.lotka_volterra import LotkaVolterraModel
from repro.dynamics.phase_profiles import extract_phase_profiles
from repro.utils.rng import SeedLike, as_generator


@dataclass
class OscillatorExperimentResult:
    """Series and metrics of the oscillator deconvolution experiment.

    Attributes
    ----------
    times:
        Population measurement times (minutes).
    single_cell:
        True single-cell series per species, sampled at ``times`` (the
        oscillator solution itself, wrapping past one cycle as in the paper's
        figures).
    population:
        Population series per species (noisy when ``noise_fraction > 0``).
    population_clean:
        Noiseless population series per species.
    deconvolved:
        Deconvolution results per species.
    truth_profiles:
        Ground-truth phase profiles per species.
    comparisons:
        Recovery metrics per species.
    kernel:
        The volume-density kernel used for both convolution and deconvolution.
    noise_fraction:
        Gaussian noise level (fraction of the series magnitude).
    """

    times: np.ndarray
    single_cell: dict[str, np.ndarray]
    population: dict[str, np.ndarray]
    population_clean: dict[str, np.ndarray]
    deconvolved: dict[str, DeconvolutionResult]
    truth_profiles: dict[str, PhaseProfile]
    comparisons: dict[str, ProfileComparison]
    kernel: VolumeKernel
    noise_fraction: float = 0.0
    model: LotkaVolterraModel | None = None
    metadata: dict = field(default_factory=dict)

    def improvement_factors(self) -> dict[str, float]:
        """Per-species factor by which deconvolution beats the raw population curve."""
        return {name: comp.improvement_factor for name, comp in self.comparisons.items()}


def run_oscillator_experiment(
    *,
    noise_fraction: float = 0.0,
    num_times: int = 19,
    t_end: float = 180.0,
    num_cells: int = 8000,
    phase_bins: int = 80,
    num_basis: int = 14,
    lam: float | None = None,
    lambda_method: str = "gcv",
    parameters: CellCycleParameters | None = None,
    model: LotkaVolterraModel | None = None,
    rng: SeedLike = 42,
) -> OscillatorExperimentResult:
    """Run the Figure 2 (noiseless) / Figure 3 (noisy) oscillator experiment.

    Parameters
    ----------
    noise_fraction:
        Standard deviation of the added Gaussian noise as a fraction of each
        series' magnitude (0 reproduces Figure 2, 0.10 reproduces Figure 3).
    num_times:
        Number of population measurements on ``[0, t_end]``.
    t_end:
        Experiment duration in minutes (the paper plots 0-180 minutes).
    num_cells, phase_bins:
        Monte-Carlo kernel resolution.
    num_basis:
        Spline basis size for the deconvolution.
    lam:
        Fixed smoothing parameter; selected by ``lambda_method`` when ``None``.
    lambda_method:
        ``"gcv"`` or ``"kfold"``.
    parameters:
        Cell-cycle parameters; defaults to the paper's Caulobacter values.
    model:
        Oscillator; defaults to the 150-minute-period paper oscillator.
    rng:
        Master seed for kernel simulation and noise.
    """
    generator = as_generator(rng)
    parameters = parameters if parameters is not None else CellCycleParameters()
    if model is None:
        model = LotkaVolterraModel.paper_oscillator()

    period = parameters.mean_cycle_time
    times = np.linspace(0.0, float(t_end), int(num_times))

    # Ground-truth synchronous profiles over one cell cycle.
    truth_profiles = extract_phase_profiles(model, period, num_points=401)

    # The "single cell" curves of the figure: the oscillator solution itself
    # over the full experiment window (it wraps past one cycle after 150 min).
    solution = model.simulate(float(t_end), num_points=721)
    sampled = solution.interpolate(times)
    single_cell = {
        name: sampled[:, model.species_index(name)] for name in model.species_names
    }

    # Forward-convolve the truth with the population kernel.
    builder = KernelBuilder(parameters, num_cells=num_cells, phase_bins=phase_bins)
    kernel = builder.build(times, generator)
    population_clean = {
        name: kernel.apply_function(profile) for name, profile in truth_profiles.items()
    }

    population: dict[str, np.ndarray] = {}
    sigmas: dict[str, np.ndarray | None] = {}
    for name, clean in population_clean.items():
        if noise_fraction > 0:
            noise = GaussianMagnitudeNoise(noise_fraction)
            population[name] = noise.apply(clean, generator)
            sigmas[name] = noise.standard_deviations(clean)
        else:
            population[name] = clean.copy()
            sigmas[name] = None

    # All species run through one experiment-scoped session: submissions
    # sharing a (grid, sigma) bucket are solved as one stacked multi-RHS
    # batch, and every species reuses the same assembled problem and
    # lambda-selection factorizations.
    deconvolver = Deconvolver(kernel, parameters=parameters, num_basis=num_basis)
    session = deconvolver.session()
    for name in model.species_names:
        session.submit(
            times,
            population[name],
            sigma=sigmas[name],
            lam=lam,
            lambda_method=lambda_method,
            rng=generator,
        )
    deconvolved: dict[str, DeconvolutionResult] = {}
    comparisons: dict[str, ProfileComparison] = {}
    for name, result in zip(model.species_names, session.flush()):
        deconvolved[name] = result
        comparisons[name] = compare_to_truth(result, truth_profiles[name])

    return OscillatorExperimentResult(
        times=times,
        single_cell=single_cell,
        population=population,
        population_clean=population_clean,
        deconvolved=deconvolved,
        truth_profiles=truth_profiles,
        comparisons=comparisons,
        kernel=kernel,
        noise_fraction=float(noise_fraction),
        model=model,
        metadata={"num_cells": num_cells, "phase_bins": phase_bins, "num_basis": num_basis},
    )
