"""Figure 4 experiment: simulated vs reference cell-type distribution.

Simulates the time-dependent distribution of swarmer, early-stalked and
predivisional cells in a synchronised batch culture (75-150 minutes) and
compares it against the reference distribution encoded from Judd et al. 2003
(see the substitution note in ``DESIGN.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellcycle.celltypes import CellType, CellTypeDistribution, simulate_type_distribution
from repro.cellcycle.parameters import CellCycleParameters
from repro.data.judd2003 import judd_reference_distribution
from repro.utils.rng import SeedLike


@dataclass
class CellTypeExperimentResult:
    """Simulated and reference cell-type distributions plus agreement metrics.

    Attributes
    ----------
    simulated:
        Simulated distribution (with the boundary-range band).
    reference:
        Reference distribution (approximate Judd et al. shape).
    per_type_max_error:
        Maximum absolute fraction difference per cell type.
    per_type_mean_error:
        Mean absolute fraction difference per cell type.
    mean_error:
        Mean absolute difference across all types and times.
    within_band_fraction:
        Fraction of reference points falling inside the simulated band
        (widened by ``band_slack``).
    """

    simulated: CellTypeDistribution
    reference: CellTypeDistribution
    per_type_max_error: dict[CellType, float]
    per_type_mean_error: dict[CellType, float]
    mean_error: float
    within_band_fraction: float


def run_celltype_experiment(
    *,
    num_cells: int = 30_000,
    parameters: CellCycleParameters | None = None,
    band_slack: float = 0.08,
    rng: SeedLike = 11,
) -> CellTypeExperimentResult:
    """Run the Figure 4 cell-type distribution experiment.

    Parameters
    ----------
    num_cells:
        Founder cells of the Monte-Carlo simulation.
    parameters:
        Cell-cycle parameters; defaults to the paper's values.
    band_slack:
        Absolute widening applied to the simulated band when counting
        reference points "inside" it, accounting for experimental counting
        error.
    rng:
        Seed of the population simulation.
    """
    parameters = parameters if parameters is not None else CellCycleParameters()
    reference = judd_reference_distribution()
    simulated = simulate_type_distribution(
        reference.times, parameters, num_cells=num_cells, include_band=True, rng=rng
    )

    per_type_max: dict[CellType, float] = {}
    per_type_mean: dict[CellType, float] = {}
    all_errors = []
    inside = 0
    total = 0
    for cell_type in CellType.ordered():
        diff = np.abs(simulated.fractions[cell_type] - reference.fractions[cell_type])
        per_type_max[cell_type] = float(np.max(diff))
        per_type_mean[cell_type] = float(np.mean(diff))
        all_errors.append(diff)
        low = simulated.lower[cell_type] - band_slack
        high = simulated.upper[cell_type] + band_slack
        ref = reference.fractions[cell_type]
        inside += int(np.count_nonzero((ref >= low) & (ref <= high)))
        total += ref.size

    return CellTypeExperimentResult(
        simulated=simulated,
        reference=reference,
        per_type_max_error=per_type_max,
        per_type_mean_error=per_type_mean,
        mean_error=float(np.mean(np.concatenate(all_errors))),
        within_band_fraction=float(inside) / float(total),
    )
