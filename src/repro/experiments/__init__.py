"""Experiment drivers reproducing the paper's figures and ablation studies.

Each module exposes a ``run_*`` function returning a plain dataclass with the
series the corresponding figure plots plus quantitative metrics; the
``benchmarks/`` harnesses and the ``examples/`` scripts are thin wrappers
around these drivers.
"""

from repro.experiments.figure2 import OscillatorExperimentResult, run_oscillator_experiment
from repro.experiments.figure3 import NoisyOscillatorSummary, run_noisy_oscillator_experiment
from repro.experiments.figure4 import CellTypeExperimentResult, run_celltype_experiment
from repro.experiments.figure5 import FtsZExperimentResult, run_ftsz_experiment
from repro.experiments.parameter_estimation import (
    ParameterEstimationResult,
    run_parameter_estimation_experiment,
)
from repro.experiments.ablations import (
    run_volume_model_ablation,
    run_constraint_ablation,
    run_lambda_ablation,
    run_kernel_convergence_study,
)
from repro.experiments.reporting import format_table, format_series

__all__ = [
    "OscillatorExperimentResult",
    "run_oscillator_experiment",
    "NoisyOscillatorSummary",
    "run_noisy_oscillator_experiment",
    "CellTypeExperimentResult",
    "run_celltype_experiment",
    "FtsZExperimentResult",
    "run_ftsz_experiment",
    "ParameterEstimationResult",
    "run_parameter_estimation_experiment",
    "run_volume_model_ablation",
    "run_constraint_ablation",
    "run_lambda_ablation",
    "run_kernel_convergence_study",
    "format_table",
    "format_series",
]
