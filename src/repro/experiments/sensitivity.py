"""Sensitivity of the deconvolution to the asynchrony-model parameters.

One of the paper's three updates (Sec. 2.1) is moving the mean
swarmer-to-stalked transition phase from 0.25 to 0.15 in the light of new
experimental evidence.  This study quantifies why that matters: population
data are generated with the *true* asynchrony model and then deconvolved with
kernels built under different assumed ``mu_sst`` values (and, separately,
different assumed mean cycle times), reporting the recovery error as a
function of the model mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import nrmse
from repro.cellcycle.kernel import KernelBuilder
from repro.cellcycle.parameters import CellCycleParameters
from repro.core.deconvolver import Deconvolver
from repro.data.noise import GaussianMagnitudeNoise
from repro.data.synthetic import ftsz_like_profile
from repro.data.timeseries import PhaseProfile
from repro.utils.rng import SeedLike, as_generator


@dataclass
class SensitivityResult:
    """Recovery error as a function of an assumed asynchrony parameter.

    Attributes
    ----------
    parameter_name:
        Name of the varied parameter (``"mu_sst"`` or ``"mean_cycle_time"``).
    true_value:
        The value used to generate the population data.
    assumed_values:
        The values assumed when building the inversion kernel.
    errors:
        Deconvolution NRMSE for each assumed value.
    """

    parameter_name: str
    true_value: float
    assumed_values: np.ndarray
    errors: np.ndarray

    def best_assumed_value(self) -> float:
        """Assumed value with the smallest recovery error."""
        return float(self.assumed_values[int(np.argmin(self.errors))])

    def error_at_truth(self) -> float:
        """Error of the assumed value closest to the truth."""
        index = int(np.argmin(np.abs(self.assumed_values - self.true_value)))
        return float(self.errors[index])


def run_mu_sst_sensitivity(
    *,
    assumed_values: np.ndarray | None = None,
    truth: PhaseProfile | None = None,
    noise_fraction: float = 0.05,
    num_times: int = 16,
    t_end: float = 150.0,
    num_cells: int = 6000,
    phase_bins: int = 80,
    num_basis: int = 14,
    lam: float = 1e-3,
    true_parameters: CellCycleParameters | None = None,
    rng: SeedLike = 17,
) -> SensitivityResult:
    """Deconvolution error when the assumed SW-to-ST transition phase is wrong.

    The paper's original value (0.25) and updated value (0.15) are both in the
    default sweep, so the study directly quantifies the benefit of the Sec. 2.1
    update.
    """
    if assumed_values is None:
        assumed_values = np.array([0.10, 0.15, 0.20, 0.25, 0.30])
    assumed_values = np.asarray(assumed_values, dtype=float)
    true_parameters = true_parameters if true_parameters is not None else CellCycleParameters()
    generator = as_generator(rng)
    if truth is None:
        truth = ftsz_like_profile(onset=true_parameters.mu_sst, peak=0.4, amplitude=10.0, baseline=0.1)

    times = np.linspace(0.0, t_end, num_times)
    true_kernel = KernelBuilder(
        true_parameters, num_cells=num_cells, phase_bins=phase_bins
    ).build(times, generator)
    clean = true_kernel.apply_function(truth)
    if noise_fraction > 0:
        noise = GaussianMagnitudeNoise(noise_fraction)
        values = noise.apply(clean, generator)
        sigma = noise.standard_deviations(clean)
    else:
        values, sigma = clean, None

    phases = np.linspace(0.0, 1.0, 201)
    errors = np.empty(assumed_values.size)
    for index, assumed in enumerate(assumed_values):
        assumed_parameters = CellCycleParameters(
            mu_sst=float(assumed),
            cv_sst=true_parameters.cv_sst,
            mean_cycle_time=true_parameters.mean_cycle_time,
            cv_cycle_time=true_parameters.cv_cycle_time,
        )
        assumed_kernel = KernelBuilder(
            assumed_parameters, num_cells=num_cells, phase_bins=phase_bins
        ).build(times, generator)
        # Each assumed parameter set is its own session configuration (the
        # kernel and division constraints both depend on it).
        deconvolver = Deconvolver(
            assumed_kernel, parameters=assumed_parameters, num_basis=num_basis
        )
        result = deconvolver.session().fit(times, values, sigma=sigma, lam=lam)
        errors[index] = nrmse(result.profile(phases), truth(phases))
    return SensitivityResult(
        parameter_name="mu_sst",
        true_value=true_parameters.mu_sst,
        assumed_values=assumed_values,
        errors=errors,
    )


def run_cycle_time_sensitivity(
    *,
    assumed_values: np.ndarray | None = None,
    truth: PhaseProfile | None = None,
    noise_fraction: float = 0.05,
    num_times: int = 16,
    t_end: float = 150.0,
    num_cells: int = 6000,
    phase_bins: int = 80,
    num_basis: int = 14,
    lam: float = 1e-3,
    true_parameters: CellCycleParameters | None = None,
    rng: SeedLike = 19,
) -> SensitivityResult:
    """Deconvolution error when the assumed mean cycle time is wrong."""
    if assumed_values is None:
        assumed_values = np.array([120.0, 135.0, 150.0, 165.0, 180.0])
    assumed_values = np.asarray(assumed_values, dtype=float)
    true_parameters = true_parameters if true_parameters is not None else CellCycleParameters()
    generator = as_generator(rng)
    if truth is None:
        truth = ftsz_like_profile(onset=true_parameters.mu_sst, peak=0.4, amplitude=10.0, baseline=0.1)

    times = np.linspace(0.0, t_end, num_times)
    true_kernel = KernelBuilder(
        true_parameters, num_cells=num_cells, phase_bins=phase_bins
    ).build(times, generator)
    clean = true_kernel.apply_function(truth)
    if noise_fraction > 0:
        noise = GaussianMagnitudeNoise(noise_fraction)
        values = noise.apply(clean, generator)
        sigma = noise.standard_deviations(clean)
    else:
        values, sigma = clean, None

    phases = np.linspace(0.0, 1.0, 201)
    errors = np.empty(assumed_values.size)
    for index, assumed in enumerate(assumed_values):
        assumed_parameters = CellCycleParameters(
            mu_sst=true_parameters.mu_sst,
            cv_sst=true_parameters.cv_sst,
            mean_cycle_time=float(assumed),
            cv_cycle_time=true_parameters.cv_cycle_time,
        )
        assumed_kernel = KernelBuilder(
            assumed_parameters, num_cells=num_cells, phase_bins=phase_bins
        ).build(times, generator)
        # Each assumed parameter set is its own session configuration (the
        # kernel and division constraints both depend on it).
        deconvolver = Deconvolver(
            assumed_kernel, parameters=assumed_parameters, num_basis=num_basis
        )
        result = deconvolver.session().fit(times, values, sigma=sigma, lam=lam)
        errors[index] = nrmse(result.profile(phases), truth(phases))
    return SensitivityResult(
        parameter_name="mean_cycle_time",
        true_value=true_parameters.mean_cycle_time,
        assumed_values=assumed_values,
        errors=errors,
    )
