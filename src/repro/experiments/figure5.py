"""Figure 5 experiment: population vs deconvolved *ftsZ* expression.

Deconvolves the (synthetic stand-in) *ftsZ* population time course and checks
the two qualitative claims of the paper's Figure 5: the transcription delay
before the swarmer-to-stalked transition is visible in the deconvolved profile
but not in the population data, and after the mid-cycle maximum the
deconvolved profile drops with no subsequent increase (whereas the population
series keeps rising towards the end of the experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.comparison import ProfileComparison, compare_to_truth
from repro.analysis.features import (
    detect_onset_phase,
    detect_peak,
    has_post_peak_increase,
    post_peak_drop_fraction,
)
from repro.core.deconvolver import Deconvolver
from repro.core.result import DeconvolutionResult
from repro.data.mcgrath2007 import FtsZDataset, ftsz_population_dataset
from repro.utils.rng import SeedLike


@dataclass
class FtsZExperimentResult:
    """Outputs and feature metrics of the *ftsZ* deconvolution experiment.

    Attributes
    ----------
    dataset:
        The synthetic population dataset (series, truth, kernel).
    result:
        Deconvolution result.
    deconvolved_onset_phase:
        Onset phase detected in the deconvolved profile.
    population_onset_phase:
        Onset "phase" detected in the raw population series after mapping time
        to phase over one average cycle (the naive reading the paper argues
        against).
    true_onset_phase:
        Onset of the ground-truth profile.
    deconvolved_peak_phase:
        Phase of the deconvolved maximum.
    deconvolved_post_peak_drop:
        Fractional drop from the deconvolved peak to the end of the cycle.
    population_post_peak_drop:
        Same quantity computed on the population series.
    deconvolved_has_post_peak_increase:
        Whether the deconvolved profile rises again after its maximum.
    population_final_trend_up:
        Whether the population series is still rising over its final quarter.
    comparison:
        Quantitative comparison of the deconvolved profile to the truth.
    """

    dataset: FtsZDataset
    result: DeconvolutionResult
    deconvolved_onset_phase: float
    population_onset_phase: float
    true_onset_phase: float
    deconvolved_peak_phase: float
    deconvolved_post_peak_drop: float
    population_post_peak_drop: float
    deconvolved_has_post_peak_increase: bool
    population_final_trend_up: bool
    comparison: ProfileComparison


def run_ftsz_experiment(
    *,
    noise_fraction: float = 0.05,
    num_times: int = 16,
    num_cells: int = 10_000,
    num_basis: int = 14,
    lam: float | None = None,
    lambda_method: str = "gcv",
    rng: SeedLike = 2011,
) -> FtsZExperimentResult:
    """Run the Figure 5 *ftsZ* deconvolution experiment."""
    dataset = ftsz_population_dataset(
        noise_fraction=noise_fraction,
        num_times=num_times,
        num_cells=num_cells,
        rng=rng,
    )
    deconvolver = Deconvolver(
        dataset.kernel, parameters=dataset.parameters, num_basis=num_basis
    )
    result = deconvolver.fit(
        dataset.series.times,
        dataset.series.values,
        sigma=dataset.series.sigma,
        lam=lam,
        lambda_method=lambda_method,
        rng=rng,
    )

    phases, deconvolved_values = result.profile_on_grid(201)
    truth_values = dataset.truth(phases)

    cycle = dataset.parameters.mean_cycle_time
    population_phases = np.clip(dataset.series.times / cycle, 0.0, 1.0)
    population_values = dataset.series.values

    deconvolved_onset = detect_onset_phase(phases, deconvolved_values)
    population_onset = detect_onset_phase(population_phases, population_values)
    true_onset = detect_onset_phase(phases, truth_values)
    peak_phase, _ = detect_peak(phases, deconvolved_values)

    quarter = max(2, population_values.size // 4)
    final_trend_up = bool(population_values[-1] > population_values[-quarter])

    return FtsZExperimentResult(
        dataset=dataset,
        result=result,
        deconvolved_onset_phase=deconvolved_onset,
        population_onset_phase=population_onset,
        true_onset_phase=true_onset,
        deconvolved_peak_phase=peak_phase,
        deconvolved_post_peak_drop=post_peak_drop_fraction(phases, deconvolved_values),
        population_post_peak_drop=post_peak_drop_fraction(population_phases, population_values),
        deconvolved_has_post_peak_increase=has_post_peak_increase(phases, deconvolved_values),
        population_final_trend_up=final_trend_up,
        comparison=compare_to_truth(
            result,
            dataset.truth,
            population_values=population_values,
            population_times=dataset.series.times,
        ),
    )
