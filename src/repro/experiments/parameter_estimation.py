"""Parameter-estimation experiment (the paper's Sec. 5 "ongoing work" claim).

Single-cell ODE models are usually fitted to population data; the paper argues
that fitting to *deconvolved* data instead yields parameters closer to the
true single-cell values.  This experiment quantifies that claim on the
Lotka-Volterra oscillator:

1. generate population data by convolving the true oscillator with the
   volume-density kernel (plus optional noise);
2. fit the oscillator's rates directly to the population series, as if it
   were single-cell data (the naive approach);
3. deconvolve the population series and fit the rates to the deconvolved
   profiles mapped back to time;
4. compare per-parameter relative errors of both fits against the truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.lotka_volterra import LotkaVolterraModel
from repro.estimation.fitting import FitResult, fit_parameters
from repro.estimation.objectives import TimeSeriesObjective
from repro.experiments.figure2 import run_oscillator_experiment
from repro.utils.rng import SeedLike


@dataclass
class ParameterEstimationResult:
    """Relative parameter errors of population-fit vs deconvolved-fit.

    Attributes
    ----------
    true_parameters:
        The oscillator rates used to generate the data, ``(a, b, c, d)``.
    population_fit:
        Fit of the single-cell model directly to population data.
    deconvolved_fit:
        Fit of the single-cell model to the deconvolved profiles.
    improvement_factor:
        Ratio of mean relative errors (population / deconvolved); values
        above one support the paper's claim.
    """

    true_parameters: np.ndarray
    population_fit: FitResult
    deconvolved_fit: FitResult
    improvement_factor: float


def _lotka_volterra_factory(initial_state: np.ndarray):
    """Factory building a Lotka-Volterra model from a rate vector ``(a, b, c, d)``."""

    def factory(parameters: np.ndarray) -> LotkaVolterraModel:
        a, b, c, d = parameters
        return LotkaVolterraModel(
            a=a, b=b, c=c, d=d, x1_0=float(initial_state[0]), x2_0=float(initial_state[1])
        )

    return factory


def run_parameter_estimation_experiment(
    *,
    noise_fraction: float = 0.05,
    num_times: int = 19,
    t_end: float = 180.0,
    num_cells: int = 6000,
    phase_bins: int = 80,
    num_basis: int = 14,
    guess_scale: float = 1.4,
    max_iterations: int = 600,
    rng: SeedLike = 123,
) -> ParameterEstimationResult:
    """Run the population-fit vs deconvolved-fit comparison.

    Parameters
    ----------
    noise_fraction:
        Measurement noise added to the population data.
    num_times, t_end, num_cells, phase_bins, num_basis:
        Forwarded to the oscillator experiment driver.
    guess_scale:
        Multiplicative perturbation of the true rates used as the common
        starting guess for both fits.
    max_iterations:
        Nelder-Mead iteration cap per fit.
    rng:
        Master seed.
    """
    experiment = run_oscillator_experiment(
        noise_fraction=noise_fraction,
        num_times=num_times,
        t_end=t_end,
        num_cells=num_cells,
        phase_bins=phase_bins,
        num_basis=num_basis,
        rng=rng,
    )
    model = experiment.model
    true_parameters = np.array([model.a, model.b, model.c, model.d])
    initial_state = model.default_initial_state()
    factory = _lotka_volterra_factory(initial_state)
    species = list(model.species_names)
    initial_guess = true_parameters * float(guess_scale)

    # Naive approach: treat the population series as if it were single-cell data.
    population_targets = np.column_stack([experiment.population[name] for name in species])
    population_objective = TimeSeriesObjective(
        factory, experiment.times, population_targets, species
    )
    population_fit = fit_parameters(
        population_objective,
        initial_guess,
        true_parameters=true_parameters,
        max_iterations=max_iterations,
    )

    # Deconvolution-based approach: fit to the deconvolved profiles mapped to
    # time over one average cell cycle.
    cycle = experiment.deconvolved[species[0]].mean_cycle_time
    fit_times = np.linspace(0.0, cycle, 31)
    fit_phases = fit_times / cycle
    deconvolved_targets = np.column_stack(
        [experiment.deconvolved[name].profile(fit_phases) for name in species]
    )
    deconvolved_objective = TimeSeriesObjective(factory, fit_times, deconvolved_targets, species)
    deconvolved_fit = fit_parameters(
        deconvolved_objective,
        initial_guess,
        true_parameters=true_parameters,
        max_iterations=max_iterations,
    )

    population_error = population_fit.mean_relative_error
    deconvolved_error = deconvolved_fit.mean_relative_error
    improvement = population_error / deconvolved_error if deconvolved_error > 0 else float("inf")
    return ParameterEstimationResult(
        true_parameters=true_parameters,
        population_fit=population_fit,
        deconvolved_fit=deconvolved_fit,
        improvement_factor=improvement,
    )
