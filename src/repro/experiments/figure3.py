"""Figure 3 experiment: oscillator deconvolution with 10% Gaussian noise.

Reuses the Figure 2 driver with ``noise_fraction = 0.10`` (Gaussian errors
with standard deviation equal to 10% of the data magnitude, as in the paper)
and additionally aggregates recovery quality over several noise realisations,
since a single realisation — the paper shows one — can be lucky or unlucky.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.figure2 import OscillatorExperimentResult, run_oscillator_experiment
from repro.utils.rng import SeedLike, spawn_generators


@dataclass
class NoisyOscillatorSummary:
    """One noisy-realisation result plus aggregate statistics over repeats.

    Attributes
    ----------
    example:
        The single realisation corresponding to the paper's Figure 3 panels.
    nrmse_per_species:
        Per-species list of NRMSE values, one per realisation.
    mean_nrmse:
        Per-species mean NRMSE over realisations.
    mean_improvement:
        Per-species mean improvement factor over the raw population curve.
    num_realisations:
        Number of independent noise realisations aggregated.
    """

    example: OscillatorExperimentResult
    nrmse_per_species: dict[str, list[float]]
    mean_nrmse: dict[str, float]
    mean_improvement: dict[str, float]
    num_realisations: int


def run_noisy_oscillator_experiment(
    *,
    noise_fraction: float = 0.10,
    num_realisations: int = 3,
    rng: SeedLike = 7,
    **experiment_kwargs,
) -> NoisyOscillatorSummary:
    """Run the Figure 3 experiment and aggregate over noise realisations.

    Additional keyword arguments are forwarded to
    :func:`repro.experiments.figure2.run_oscillator_experiment`.
    """
    num_realisations = int(num_realisations)
    if num_realisations < 1:
        raise ValueError("num_realisations must be >= 1")
    generators = spawn_generators(rng, num_realisations)

    results: list[OscillatorExperimentResult] = []
    for generator in generators:
        results.append(
            run_oscillator_experiment(
                noise_fraction=noise_fraction, rng=generator, **experiment_kwargs
            )
        )

    species = list(results[0].comparisons.keys())
    nrmse_per_species = {
        name: [result.comparisons[name].nrmse for result in results] for name in species
    }
    mean_nrmse = {name: float(np.mean(values)) for name, values in nrmse_per_species.items()}
    mean_improvement = {
        name: float(np.mean([result.comparisons[name].improvement_factor for result in results]))
        for name in species
    }
    return NoisyOscillatorSummary(
        example=results[0],
        nrmse_per_species=nrmse_per_species,
        mean_nrmse=mean_nrmse,
        mean_improvement=mean_improvement,
        num_realisations=num_realisations,
    )
