"""Ablation studies of the method's design choices.

These drivers back the A1-A4 benchmarks listed in ``DESIGN.md``:

* volume-model ablation — how much the smooth (eq. 11) volume model matters
  relative to the linear and piecewise-linear baselines;
* constraint ablation — recovery quality with the positivity, RNA-conservation
  and rate-continuity constraints toggled on and off;
* lambda ablation — recovery quality across the smoothing-parameter grid and
  for the automatic selectors;
* kernel convergence — Monte-Carlo convergence of ``Q(phi, t)`` with
  population size and phase resolution.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import nrmse
from repro.cellcycle.kernel import KernelBuilder
from repro.cellcycle.parameters import CellCycleParameters
from repro.cellcycle.volume import make_volume_model
from repro.core.constraints import default_constraints
from repro.core.deconvolver import Deconvolver
from repro.core.lambda_selection import default_lambda_grid
from repro.data.noise import GaussianMagnitudeNoise
from repro.data.synthetic import ftsz_like_profile
from repro.data.timeseries import PhaseProfile
from repro.utils.rng import SeedLike, as_generator


def _standard_setup(
    *,
    truth: PhaseProfile | None,
    num_times: int,
    t_end: float,
    num_cells: int,
    phase_bins: int,
    noise_fraction: float,
    volume_model_name: str,
    parameters: CellCycleParameters,
    rng,
):
    """Generate a (kernel, truth, noisy series, sigma) tuple shared by the ablations."""
    generator = as_generator(rng)
    if truth is None:
        truth = ftsz_like_profile(onset=parameters.mu_sst, peak=0.4, amplitude=10.0, baseline=0.1)
    times = np.linspace(0.0, t_end, num_times)
    builder = KernelBuilder(
        parameters,
        make_volume_model(volume_model_name),
        num_cells=num_cells,
        phase_bins=phase_bins,
    )
    kernel = builder.build(times, generator)
    clean = kernel.apply_function(truth)
    if noise_fraction > 0:
        noise = GaussianMagnitudeNoise(noise_fraction)
        values = noise.apply(clean, generator)
        sigma = noise.standard_deviations(clean)
    else:
        values = clean
        sigma = None
    return kernel, truth, times, values, sigma


def run_volume_model_ablation(
    *,
    truth: PhaseProfile | None = None,
    volume_models: tuple[str, ...] = ("linear", "piecewise_linear", "smooth"),
    noise_fraction: float = 0.05,
    num_times: int = 16,
    t_end: float = 150.0,
    num_cells: int = 6000,
    phase_bins: int = 80,
    num_basis: int = 14,
    lam: float | None = None,
    parameters: CellCycleParameters | None = None,
    rng: SeedLike = 5,
) -> dict[str, float]:
    """NRMSE of the deconvolved profile for each cell-volume model.

    The *same* volume model is used for data generation and inversion in each
    arm, so the comparison isolates how the volume model shapes the
    identifiability of ``f(phi)`` rather than model mismatch.
    """
    parameters = parameters if parameters is not None else CellCycleParameters()
    scores: dict[str, float] = {}
    for name in volume_models:
        kernel, truth_profile, times, values, sigma = _standard_setup(
            truth=truth,
            num_times=num_times,
            t_end=t_end,
            num_cells=num_cells,
            phase_bins=phase_bins,
            noise_fraction=noise_fraction,
            volume_model_name=name,
            parameters=parameters,
            rng=rng,
        )
        deconvolver = Deconvolver(kernel, parameters=parameters, num_basis=num_basis)
        result = deconvolver.session().fit(times, values, sigma=sigma, lam=lam)
        phases = np.linspace(0.0, 1.0, 201)
        scores[name] = nrmse(result.profile(phases), truth_profile(phases))
    return scores


def run_constraint_ablation(
    *,
    truth: PhaseProfile | None = None,
    noise_fraction: float = 0.05,
    num_times: int = 16,
    t_end: float = 150.0,
    num_cells: int = 6000,
    phase_bins: int = 80,
    num_basis: int = 14,
    lam: float | None = None,
    parameters: CellCycleParameters | None = None,
    rng: SeedLike = 6,
) -> dict[str, dict[str, float]]:
    """Recovery metrics with the constraint stack toggled.

    Returns a mapping from configuration name to
    ``{"nrmse": ..., "negativity": ...}`` where negativity is the most
    negative value of the estimate (zero when positivity holds).
    """
    parameters = parameters if parameters is not None else CellCycleParameters()
    kernel, truth_profile, times, values, sigma = _standard_setup(
        truth=truth,
        num_times=num_times,
        t_end=t_end,
        num_cells=num_cells,
        phase_bins=phase_bins,
        noise_fraction=noise_fraction,
        volume_model_name="smooth",
        parameters=parameters,
        rng=rng,
    )
    configurations = {
        "none": dict(positivity=False, rna_conservation=False, rate_continuity=False),
        "positivity_only": dict(positivity=True, rna_conservation=False, rate_continuity=False),
        "no_rate_continuity": dict(positivity=True, rna_conservation=True, rate_continuity=False),
        "full": dict(positivity=True, rna_conservation=True, rate_continuity=True),
    }
    phases = np.linspace(0.0, 1.0, 201)
    scores: dict[str, dict[str, float]] = {}
    for name, toggles in configurations.items():
        # One session per constraint stack (the stack is part of the session
        # configuration); the kernel object itself is shared across arms.
        deconvolver = Deconvolver(
            kernel,
            parameters=parameters,
            num_basis=num_basis,
            constraints=default_constraints(**toggles),
        )
        result = deconvolver.session().fit(times, values, sigma=sigma, lam=lam)
        estimate = result.profile(phases)
        scores[name] = {
            "nrmse": nrmse(estimate, truth_profile(phases)),
            "negativity": float(min(0.0, np.min(estimate))),
        }
    return scores


def run_lambda_ablation(
    *,
    truth: PhaseProfile | None = None,
    lambdas: np.ndarray | None = None,
    noise_fraction: float = 0.10,
    num_times: int = 16,
    t_end: float = 150.0,
    num_cells: int = 6000,
    phase_bins: int = 80,
    num_basis: int = 14,
    parameters: CellCycleParameters | None = None,
    rng: SeedLike = 9,
) -> dict[str, float]:
    """NRMSE across a lambda sweep plus the automatic GCV and k-fold choices.

    Keys are either a formatted lambda value, ``"gcv"`` or ``"kfold"``.
    """
    parameters = parameters if parameters is not None else CellCycleParameters()
    kernel, truth_profile, times, values, sigma = _standard_setup(
        truth=truth,
        num_times=num_times,
        t_end=t_end,
        num_cells=num_cells,
        phase_bins=phase_bins,
        noise_fraction=noise_fraction,
        volume_model_name="smooth",
        parameters=parameters,
        rng=rng,
    )
    if lambdas is None:
        lambdas = default_lambda_grid(num=7, low=1e-5, high=1e1)
    deconvolver = Deconvolver(kernel, parameters=parameters, num_basis=num_basis)
    phases = np.linspace(0.0, 1.0, 201)
    # The whole sweep — every fixed lambda plus both automatic selectors —
    # is submitted to one session and flushed as batched solves against the
    # shared assembled problem; each per-lambda factorization is built once.
    session = deconvolver.session()
    names: list[str] = []
    for lam in lambdas:
        names.append(f"lambda={lam:.3g}")
        session.submit(times, values, sigma=sigma, lam=float(lam))
    for method in ("gcv", "kfold"):
        names.append(method)
        session.submit(times, values, sigma=sigma, lam=None, lambda_method=method)
    results = session.flush()
    truth_values = truth_profile(phases)
    return {
        name: nrmse(result.profile(phases), truth_values)
        for name, result in zip(names, results)
    }


def run_kernel_convergence_study(
    *,
    cell_counts: tuple[int, ...] = (500, 2000, 8000),
    phase_bins: int = 80,
    reference_cells: int = 40_000,
    num_times: int = 6,
    t_end: float = 150.0,
    parameters: CellCycleParameters | None = None,
    rng: SeedLike = 3,
) -> dict[int, float]:
    """Monte-Carlo convergence of the kernel with the number of simulated cells.

    Each kernel is compared to a high-resolution reference built with
    ``reference_cells`` founders; the score is the mean absolute difference of
    the kernel densities, which should decrease as the population grows.
    """
    parameters = parameters if parameters is not None else CellCycleParameters()
    times = np.linspace(0.0, t_end, num_times)
    generator = as_generator(rng)
    reference = KernelBuilder(
        parameters, num_cells=reference_cells, phase_bins=phase_bins
    ).build(times, generator)
    scores: dict[int, float] = {}
    for count in cell_counts:
        kernel = KernelBuilder(parameters, num_cells=int(count), phase_bins=phase_bins).build(
            times, generator
        )
        scores[int(count)] = float(np.mean(np.abs(kernel.density - reference.density)))
    return scores
