"""Plain-text reporting helpers for benchmark and example output."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *, precision: int = 4) -> str:
    """Render a list of rows as an aligned plain-text table.

    Numeric cells are formatted with the given precision; everything else is
    converted with ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, (float, np.floating)):
            return f"{cell:.{precision}g}"
        return str(cell)

    rendered_rows = [[render(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [format_row(headers), format_row(["-" * w for w in widths])]
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    name: str,
    x_values: np.ndarray,
    y_values: np.ndarray,
    *,
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 25,
    precision: int = 4,
) -> str:
    """Render an (x, y) series as a compact two-column listing.

    Long series are subsampled to ``max_points`` evenly spaced entries so the
    output stays readable in benchmark logs.
    """
    x_values = np.asarray(x_values, dtype=float)
    y_values = np.asarray(y_values, dtype=float)
    if x_values.size != y_values.size:
        raise ValueError("x and y must have the same length")
    if x_values.size > max_points:
        indices = np.linspace(0, x_values.size - 1, max_points).astype(int)
        x_values = x_values[indices]
        y_values = y_values[indices]
    rows = [(f"{x:.{precision}g}", f"{y:.{precision}g}") for x, y in zip(x_values, y_values)]
    return f"{name}\n" + format_table([x_label, y_label], rows, precision=precision)
