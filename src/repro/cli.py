"""Command-line interface for running the paper's experiments.

Usage::

    python -m repro.cli figure2 [--noise 0.1] [--cells 8000] [--seed 42]
    python -m repro.cli figure4
    python -m repro.cli figure5 [--output profile.csv]
    python -m repro.cli sensitivity

Each sub-command runs the corresponding experiment driver and prints the
series / metrics that the paper figure reports.  ``figure5`` can additionally
write the deconvolved profile to CSV.
"""

from __future__ import annotations

import argparse
from typing import Sequence

import numpy as np

from repro.cellcycle.celltypes import CellType
from repro.data.io import save_profile_csv
from repro.data.timeseries import PhaseProfile
from repro.experiments.figure2 import run_oscillator_experiment
from repro.experiments.figure4 import run_celltype_experiment
from repro.experiments.figure5 import run_ftsz_experiment
from repro.experiments.reporting import format_series, format_table
from repro.experiments.sensitivity import run_mu_sst_sensitivity
from repro.viz.ascii import ascii_compare


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In silico synchronization of cellular populations (DAC 2011 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    oscillator = subparsers.add_parser("figure2", help="Lotka-Volterra oscillator deconvolution")
    oscillator.add_argument("--noise", type=float, default=0.0, help="noise fraction (0.1 for Figure 3)")
    oscillator.add_argument("--cells", type=int, default=8000, help="Monte-Carlo founder cells")
    oscillator.add_argument("--seed", type=int, default=42, help="random seed")
    oscillator.add_argument("--plot", action="store_true", help="also print an ASCII plot")

    subparsers.add_parser("figure4", help="cell-type distribution vs reference")

    ftsz = subparsers.add_parser("figure5", help="ftsZ population vs deconvolved expression")
    ftsz.add_argument("--cells", type=int, default=10_000, help="Monte-Carlo founder cells")
    ftsz.add_argument("--seed", type=int, default=2011, help="random seed")
    ftsz.add_argument("--output", type=str, default=None, help="write the deconvolved profile to this CSV")

    sensitivity = subparsers.add_parser(
        "sensitivity", help="sensitivity of the recovery to the assumed SW-to-ST transition phase"
    )
    sensitivity.add_argument("--cells", type=int, default=4000, help="Monte-Carlo founder cells")
    sensitivity.add_argument("--seed", type=int, default=17, help="random seed")
    return parser


def _run_figure2(args: argparse.Namespace) -> int:
    result = run_oscillator_experiment(
        noise_fraction=args.noise, num_cells=args.cells, rng=args.seed
    )
    for name in ("x1", "x2"):
        print(format_series(f"{name} population", result.times, result.population[name],
                            x_label="minutes", y_label="concentration"))
        times, values = result.deconvolved[name].profile_vs_time(19)
        print(format_series(f"{name} deconvolved", times, values,
                            x_label="minutes", y_label="concentration"))
        if args.plot:
            print(ascii_compare(
                {
                    "single cell": (result.times, result.single_cell[name]),
                    "population": (result.times, result.population[name]),
                },
                x_label="minutes", y_label=name,
            ))
    print(format_table(
        ["species", "deconv NRMSE", "improvement", "correlation"],
        [[name, comp.nrmse, comp.improvement_factor, comp.correlation]
         for name, comp in result.comparisons.items()],
    ))
    return 0


def _run_figure4(args: argparse.Namespace) -> int:
    result = run_celltype_experiment()
    rows = []
    for index, time in enumerate(result.simulated.times):
        row = [time]
        row += [result.simulated.fractions[t][index] for t in CellType.ordered()]
        rows.append(row)
    print(format_table(["minutes"] + [t.value for t in CellType.ordered()], rows, precision=3))
    print(f"mean |simulated - reference| = {result.mean_error:.3f}")
    return 0


def _run_figure5(args: argparse.Namespace) -> int:
    result = run_ftsz_experiment(num_cells=args.cells, rng=args.seed)
    series = result.dataset.series
    print(format_series("population ftsZ", series.times, series.values,
                        x_label="minutes", y_label="expression"))
    times, values = result.result.profile_vs_time(21)
    print(format_series("deconvolved ftsZ", times, values,
                        x_label="simulated minutes", y_label="expression"))
    print(f"deconvolved onset phase: {result.deconvolved_onset_phase:.3f} "
          f"(population: {result.population_onset_phase:.3f})")
    if args.output:
        phases, profile_values = result.result.profile_on_grid(201)
        path = save_profile_csv(PhaseProfile(phases, profile_values, name="ftsZ_deconvolved"), args.output)
        print(f"wrote deconvolved profile to {path}")
    return 0


def _run_sensitivity(args: argparse.Namespace) -> int:
    result = run_mu_sst_sensitivity(num_cells=args.cells, rng=args.seed)
    print(format_table(
        ["assumed mu_sst", "deconvolution NRMSE"],
        [[value, error] for value, error in zip(result.assumed_values, result.errors)],
    ))
    print(f"true mu_sst = {result.true_value}; best assumed = {result.best_assumed_value()}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "figure2": _run_figure2,
        "figure4": _run_figure4,
        "figure5": _run_figure5,
        "sensitivity": _run_sensitivity,
    }
    with np.printoptions(precision=4, suppress=True):
        return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
