"""Command-line interface for running the paper's experiments.

Usage::

    python -m repro.cli figure2 [--noise 0.1] [--cells 8000] [--seed 42]
    python -m repro.cli figure3 [--realisations 3] [--cells 8000] [--seed 7]
    python -m repro.cli figure4
    python -m repro.cli figure5 [--output profile.csv]
    python -m repro.cli sensitivity
    python -m repro.cli ablations [--study volume|constraints|lambda|all]
    python -m repro.cli serve-bench [--requests 96] [--grids 2] [--verbose]
    python -m repro.cli serve-bench --runner process --workers 4 --scaling 1,2,4
    python -m repro.cli serve-bench --http [--http-clients 4]
    python -m repro.cli serve [--host 127.0.0.1] [--port 8732]
    python -m repro.cli backends
    python -m repro.cli --backend numba figure2

Each sub-command runs the corresponding experiment driver — all of which
route their fits through the experiment-scoped ``FitSession`` layer — and
prints the series / metrics that the paper figure reports.  ``figure5`` can
additionally write the deconvolved profile to CSV.  ``serve-bench`` load
tests the micro-batching fit service (``repro.service``) against
one-request-at-a-time fits and verifies every response to 1e-10; with
``--http`` the same workload travels over real sockets through the network
edge (``repro.service.net``) and the same gate applies end to end.
``serve`` runs that network edge in the foreground (HTTP + WebSocket
streaming plus the ``/healthz`` / ``/metrics`` / ``/pool`` / ``/backends``
ops routes) until interrupted.

The global ``--backend`` flag (before the sub-command) selects the kernel
backend for the run (``numpy`` reference or the compiled ``numba`` backend
from the ``[compiled]`` extra); ``backends`` lists the registry with
availability and the active selection.
"""

from __future__ import annotations

import argparse
import os
from typing import Sequence

import numpy as np

from repro import backends, config
from repro.cellcycle.celltypes import CellType
from repro.data.io import save_profile_csv
from repro.data.timeseries import PhaseProfile
from repro.experiments.ablations import (
    run_constraint_ablation,
    run_lambda_ablation,
    run_volume_model_ablation,
)
from repro.experiments.figure2 import run_oscillator_experiment
from repro.experiments.figure3 import run_noisy_oscillator_experiment
from repro.experiments.figure4 import run_celltype_experiment
from repro.experiments.figure5 import run_ftsz_experiment
from repro.experiments.reporting import format_series, format_table
from repro.experiments.sensitivity import run_mu_sst_sensitivity
from repro.viz.ascii import ascii_compare


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In silico synchronization of cellular populations (DAC 2011 reproduction)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend for this run (registered: "
             f"{', '.join(backends.registered_backends())}; unavailable compiled "
             "backends fall back to the numpy reference with a warning)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    oscillator = subparsers.add_parser("figure2", help="Lotka-Volterra oscillator deconvolution")
    oscillator.add_argument("--noise", type=float, default=0.0, help="noise fraction (0.1 for Figure 3)")
    oscillator.add_argument("--cells", type=int, default=8000, help="Monte-Carlo founder cells")
    oscillator.add_argument("--seed", type=int, default=42, help="random seed")
    oscillator.add_argument("--plot", action="store_true", help="also print an ASCII plot")

    noisy = subparsers.add_parser(
        "figure3", help="noisy oscillator deconvolution, aggregated over noise realisations"
    )
    noisy.add_argument("--noise", type=float, default=0.10, help="noise fraction")
    noisy.add_argument("--realisations", type=int, default=3, help="independent noise realisations")
    noisy.add_argument("--cells", type=int, default=8000, help="Monte-Carlo founder cells")
    noisy.add_argument("--seed", type=int, default=7, help="random seed")

    subparsers.add_parser("figure4", help="cell-type distribution vs reference")

    ftsz = subparsers.add_parser("figure5", help="ftsZ population vs deconvolved expression")
    ftsz.add_argument("--cells", type=int, default=10_000, help="Monte-Carlo founder cells")
    ftsz.add_argument("--seed", type=int, default=2011, help="random seed")
    ftsz.add_argument("--output", type=str, default=None, help="write the deconvolved profile to this CSV")

    sensitivity = subparsers.add_parser(
        "sensitivity", help="sensitivity of the recovery to the assumed SW-to-ST transition phase"
    )
    sensitivity.add_argument("--cells", type=int, default=4000, help="Monte-Carlo founder cells")
    sensitivity.add_argument("--seed", type=int, default=17, help="random seed")

    ablations = subparsers.add_parser(
        "ablations", help="volume-model / constraint / lambda ablation studies"
    )
    ablations.add_argument(
        "--study",
        choices=["volume", "constraints", "lambda", "all"],
        default="all",
        help="which ablation study to run",
    )
    ablations.add_argument("--cells", type=int, default=6000, help="Monte-Carlo founder cells")
    ablations.add_argument("--seed", type=int, default=5, help="random seed")

    serve = subparsers.add_parser(
        "serve-bench",
        help="micro-batching fit service benchmark (scheduler vs one-request-at-a-time fits)",
    )
    serve.add_argument("--requests", type=int, default=96, help="requests in the seeded workload")
    serve.add_argument("--cells", type=int, default=3000, help="Monte-Carlo founder cells per kernel")
    serve.add_argument("--grids", type=int, default=2, help="distinct measurement time grids")
    serve.add_argument("--seed", type=int, default=0, help="workload seed")
    serve.add_argument("--repeat-ratio", type=float, default=0.3,
                       help="fraction of requests that bit-exactly repeat an earlier one")
    serve.add_argument("--selection-fraction", type=float, default=0.05,
                       help="fraction of fresh requests using automatic lambda selection")
    serve.add_argument("--max-batch", type=int, default=64, help="scheduler batch size bound")
    serve.add_argument("--max-wait-ms", type=float, default=0.2, help="scheduler batching window")
    serve.add_argument("--workers", type=int, default=2,
                       help="scheduler workers (threads, or processes with --runner process)")
    serve.add_argument(
        "--runner",
        choices=["thread", "process"],
        default=None,
        help="batch runner: in-process threads (default) or the multi-core "
             f"process engine; unset consults ${config.RUNNER_ENV_VAR}",
    )
    serve.add_argument(
        "--scaling",
        type=str,
        default=None,
        metavar="N1,N2,...",
        help="core-scaling sweep: rerun the timed workload at each worker "
             "count (e.g. 1,2,4) and report rps/p95/speedup per point",
    )
    serve.add_argument(
        "--scenario",
        choices=["all", "steady", "bursty", "heavy_tail", "hotkey",
                 "cache_hostile", "slow_consumer"],
        default=None,
        help="run the chaos scenario suite (deadlines, priorities, skew) instead of "
             "the plain throughput benchmark; 'all' runs every scenario",
    )
    serve.add_argument("--faults", action="store_true",
                       help="arm each scenario's seeded fault plan (solver errors, slow "
                            "solves, build failures, cache evictions)")
    serve.add_argument("--verbose", action="store_true",
                       help="also print pool / session / cache / telemetry stats")
    serve.add_argument("--http", action="store_true",
                       help="drive the workload over real sockets through the network edge "
                            "(HTTP front end) instead of in-process submits; the same "
                            "1e-10 equivalence gate applies end to end")
    serve.add_argument("--http-clients", type=int, default=4,
                       help="concurrent HTTP client threads for --http")

    server = subparsers.add_parser(
        "serve",
        help="run the fit service network edge (HTTP + WebSocket) in the foreground",
    )
    server.add_argument("--host", type=str, default=config.DEFAULT_NET_HOST,
                        help="bind host (loopback by default)")
    server.add_argument("--port", type=int, default=config.DEFAULT_NET_PORT,
                        help="bind TCP port (0 picks an ephemeral port)")
    server.add_argument("--cells", type=int, default=3000,
                        help="Monte-Carlo founder cells per kernel")
    server.add_argument("--grids", type=int, default=2,
                        help="distinct measurement time grids to register")
    server.add_argument("--max-batch", type=int, default=64, help="scheduler batch size bound")
    server.add_argument("--max-wait-ms", type=float, default=0.2, help="scheduler batching window")
    server.add_argument("--workers", type=int, default=2,
                        help="scheduler workers (threads, or processes with --runner process)")
    server.add_argument(
        "--runner",
        choices=["thread", "process"],
        default=None,
        help="batch runner: in-process threads (default) or the multi-core "
             f"process engine; unset consults ${config.RUNNER_ENV_VAR}",
    )
    server.add_argument("--max-inflight", type=int, default=config.DEFAULT_STREAM_WINDOW,
                        help="per-connection in-flight window of the streaming route")

    subparsers.add_parser(
        "backends",
        help="list registered kernel backends (availability and active selection)",
    )
    return parser


def _run_figure2(args: argparse.Namespace) -> int:
    result = run_oscillator_experiment(
        noise_fraction=args.noise, num_cells=args.cells, rng=args.seed
    )
    for name in ("x1", "x2"):
        print(format_series(f"{name} population", result.times, result.population[name],
                            x_label="minutes", y_label="concentration"))
        times, values = result.deconvolved[name].profile_vs_time(19)
        print(format_series(f"{name} deconvolved", times, values,
                            x_label="minutes", y_label="concentration"))
        if args.plot:
            print(ascii_compare(
                {
                    "single cell": (result.times, result.single_cell[name]),
                    "population": (result.times, result.population[name]),
                },
                x_label="minutes", y_label=name,
            ))
    print(format_table(
        ["species", "deconv NRMSE", "improvement", "correlation"],
        [[name, comp.nrmse, comp.improvement_factor, comp.correlation]
         for name, comp in result.comparisons.items()],
    ))
    return 0


def _run_figure3(args: argparse.Namespace) -> int:
    summary = run_noisy_oscillator_experiment(
        noise_fraction=args.noise,
        num_realisations=args.realisations,
        rng=args.seed,
        num_cells=args.cells,
    )
    example = summary.example
    for name, comp in example.comparisons.items():
        print(format_series(f"{name} population (noisy)", example.times,
                            example.population[name],
                            x_label="minutes", y_label="concentration"))
    print(format_table(
        ["species", "mean NRMSE", "mean improvement"],
        [[name, summary.mean_nrmse[name], summary.mean_improvement[name]]
         for name in sorted(summary.mean_nrmse)],
    ))
    print(f"aggregated over {summary.num_realisations} noise realisation(s) "
          f"at {example.noise_fraction:.0%} noise")
    return 0


def _run_ablations(args: argparse.Namespace) -> int:
    if args.study in ("volume", "all"):
        scores = run_volume_model_ablation(num_cells=args.cells, rng=args.seed)
        print(format_table(
            ["volume model", "deconvolution NRMSE"],
            [[name, value] for name, value in scores.items()],
        ))
    if args.study in ("constraints", "all"):
        constraint_scores = run_constraint_ablation(num_cells=args.cells, rng=args.seed + 1)
        print(format_table(
            ["constraint stack", "NRMSE", "negativity"],
            [[name, entry["nrmse"], entry["negativity"]]
             for name, entry in constraint_scores.items()],
        ))
    if args.study in ("lambda", "all"):
        lambda_scores = run_lambda_ablation(num_cells=args.cells, rng=args.seed + 2)
        print(format_table(
            ["smoothing", "deconvolution NRMSE"],
            [[name, value] for name, value in lambda_scores.items()],
        ))
    return 0


def _run_figure4(args: argparse.Namespace) -> int:
    result = run_celltype_experiment()
    rows = []
    for index, time in enumerate(result.simulated.times):
        row = [time]
        row += [result.simulated.fractions[t][index] for t in CellType.ordered()]
        rows.append(row)
    print(format_table(["minutes"] + [t.value for t in CellType.ordered()], rows, precision=3))
    print(f"mean |simulated - reference| = {result.mean_error:.3f}")
    return 0


def _run_figure5(args: argparse.Namespace) -> int:
    result = run_ftsz_experiment(num_cells=args.cells, rng=args.seed)
    series = result.dataset.series
    print(format_series("population ftsZ", series.times, series.values,
                        x_label="minutes", y_label="expression"))
    times, values = result.result.profile_vs_time(21)
    print(format_series("deconvolved ftsZ", times, values,
                        x_label="simulated minutes", y_label="expression"))
    print(f"deconvolved onset phase: {result.deconvolved_onset_phase:.3f} "
          f"(population: {result.population_onset_phase:.3f})")
    if args.output:
        phases, profile_values = result.result.profile_on_grid(201)
        path = save_profile_csv(PhaseProfile(phases, profile_values, name="ftsZ_deconvolved"), args.output)
        print(f"wrote deconvolved profile to {path}")
    return 0


def _build_service_stack(cells: int, grids: int):
    """Build the kernels and the session factory every service command shares.

    Distinct measurement schedules are generated for however many grids were
    asked for (shrinking span and density so every grid is unique); the
    returned :class:`~repro.service.pool.SessionFactory` creates one
    deconvolver per pool shard with every kernel pre-registered.  It is
    picklable on purpose: the same factory serves the thread runner's pool
    and ships to the process runner's spawned workers.
    """
    from repro.cellcycle.kernel import KernelBuilder
    from repro.cellcycle.parameters import CellCycleParameters
    from repro.service import SessionFactory

    parameters = CellCycleParameters()
    builder = KernelBuilder(parameters, num_cells=cells, phase_bins=60)
    schedules = [
        np.linspace(0.0, 150.0 - 5.0 * index, max(8, 16 - index))
        for index in range(max(1, grids))
    ]
    print(f"Building {len(schedules)} population kernel(s) ({cells} cells each) ...")
    kernels = [builder.build(times, rng=index) for index, times in enumerate(schedules)]
    factory = SessionFactory(parameters=parameters, num_basis=12, kernels=kernels)
    return kernels, factory


def _run_serve_bench(args: argparse.Namespace) -> int:
    import time

    from repro.service import (
        MicroBatchScheduler,
        SessionPool,
        WorkloadSpec,
        build_workload,
        max_coefficient_gap,
        serial_reference,
        warm_serial_reference,
    )

    kernels, factory = _build_service_stack(args.cells, args.grids)

    if args.scenario is not None:
        return _run_serve_scenarios(args, kernels, factory)

    spec = WorkloadSpec(
        num_requests=args.requests,
        repeat_ratio=args.repeat_ratio,
        selection_fraction=args.selection_fraction,
        seed=args.seed,
    )
    workload = build_workload(kernels, spec)
    pool = SessionPool(factory)
    reference = factory("serial-reference")

    if args.http:
        return _run_serve_bench_http(args, workload, pool, reference)

    with MicroBatchScheduler(
        pool,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        workers=args.workers,
        runner=args.runner,
    ) as scheduler:
        print(f"runner: {scheduler.runner} ({scheduler.workers} worker(s))")
        # Warm both paths so the timed passes measure the steady-state
        # service, not first-request kernel/assembly setup.
        scheduler.map(workload)
        scheduler.cache.clear()
        scheduler.telemetry.reset()
        warm_serial_reference(reference, workload)

        start = time.perf_counter()
        streamed = scheduler.map(workload)
        scheduler_seconds = time.perf_counter() - start
        snapshot = scheduler.telemetry.snapshot()

        start = time.perf_counter()
        references = serial_reference(reference, workload)
        serial_seconds = time.perf_counter() - start

        gap = max_coefficient_gap(streamed, references)
        lambdas_equal = [r.lam for r in streamed] == [r.lam for r in references]
        latency = snapshot["histograms"]["latency_seconds"]
        counters = snapshot["counters"]
        rows = [
            ["requests", float(len(workload))],
            ["scheduler ms", scheduler_seconds * 1e3],
            ["serial ms", serial_seconds * 1e3],
            ["speedup", serial_seconds / scheduler_seconds],
            ["throughput rps", len(workload) / scheduler_seconds],
            ["coalescing factor", snapshot["coalescing_factor"]],
            ["p50 latency ms", latency["p50"] * 1e3],
            ["p95 latency ms", latency["p95"] * 1e3],
            ["p99 latency ms", latency["p99"] * 1e3],
            ["cache hits", float(counters.get("cache_hits", 0))],
            ["deduplicated", float(counters.get("deduplicated", 0))],
            ["max |coef gap|", gap],
        ]
        print(format_table(["metric", "value"], rows))
        if args.verbose:
            print("scheduler stats:")
            stats = scheduler.stats()
            for section in ("pool", "cache"):
                print(f"  {section}: { {k: v for k, v in stats[section].items() if k != 'sessions'} }")
            for key, session_stats in stats["pool"]["sessions"].items():
                print(f"  session {key}: {session_stats}")
            print(f"  telemetry counters: {counters}")
            print(f"  batch size: {snapshot['histograms'].get('batch_size')}")
            if scheduler.runner == "process":
                print(f"  worker pool: {scheduler.stats()['worker_pool']}")
    if args.scaling:
        _run_serve_bench_scaling(args, workload, pool)
    if not lambdas_equal:
        print("FAILED: scheduler lambdas deviate from the one-shot fits")
        return 1
    if gap > 1e-10:
        print(f"FAILED: scheduler responses deviate from direct fits by {gap:.2e} (> 1e-10)")
        return 1
    print("ok: every scheduler response matches its one-shot fit to 1e-10 "
          "(exact lambda agreement)")
    return 0


def _run_serve_bench_scaling(args: argparse.Namespace, workload, pool) -> None:
    """Core-scaling sweep: rerun the timed workload at each worker count.

    Each point gets a fresh scheduler (and, under the process runner, a
    fresh worker pool) warmed before timing; the table reports throughput,
    p95 latency and speedup versus the first (smallest) point.  On a
    single-core container the curve is flat — the numbers are reported, not
    gated, so the sweep stays meaningful everywhere.
    """
    import time

    from repro.service import MicroBatchScheduler

    counts = [int(part) for part in args.scaling.split(",") if part.strip()]
    print(f"core-scaling sweep ({args.runner or 'default'} runner, "
          f"{len(workload)} requests, {os.cpu_count()} cpu(s)):")
    rows = []
    base_rps = None
    for count in counts:
        with MicroBatchScheduler(
            pool,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            workers=count,
            runner=args.runner,
        ) as scheduler:
            scheduler.map(workload)  # warm sessions (and worker replicas)
            scheduler.cache.clear()
            scheduler.telemetry.reset()
            start = time.perf_counter()
            scheduler.map(workload)
            seconds = time.perf_counter() - start
            snapshot = scheduler.telemetry.snapshot()
        rps = len(workload) / seconds
        if base_rps is None:
            base_rps = rps
        rows.append([
            float(count),
            seconds * 1e3,
            rps,
            snapshot["histograms"]["latency_seconds"]["p95"] * 1e3,
            rps / base_rps,
        ])
    print(format_table(
        ["workers", "wall ms", "rps", "p95 ms", "speedup"], rows
    ))


def _run_serve_bench_http(args: argparse.Namespace, workload, pool, reference) -> int:
    """Drive the seeded workload through the network edge over real sockets.

    The workload is split round-robin over ``--http-clients`` threads, each
    holding its own keep-alive :class:`~repro.service.net.FitHTTPClient`;
    every response (decoded from the wire) must match the one-shot serial
    reference to 1e-10 with exact lambda agreement, and the ops routes must
    answer with live data while the load is running.  Exit code 1 on a gap.
    """
    import concurrent.futures
    import time

    from repro.service import MicroBatchScheduler, max_coefficient_gap, serial_reference
    from repro.service.net import FitHTTPClient, WireFit, serve_in_thread

    wires = [WireFit.from_request(request) for request in workload]
    with MicroBatchScheduler(
        pool,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        workers=args.workers,
        runner=args.runner,
    ) as scheduler:
        with serve_in_thread(scheduler) as handle:
            print(f"Serving on {handle.host}:{handle.port} "
                  f"({args.http_clients} client thread(s), {len(workload)} requests) ...")

            def run_client(offset: int) -> list[tuple[int, object]]:
                out = []
                with FitHTTPClient(handle.host, handle.port) as client:
                    for index in range(offset, len(wires), args.http_clients):
                        out.append((index, client.fit(wires[index])))
                return out

            start = time.perf_counter()
            with concurrent.futures.ThreadPoolExecutor(args.http_clients) as executor:
                futures = [executor.submit(run_client, i) for i in range(args.http_clients)]
                # Ops routes must answer with live data *while* fits stream.
                with FitHTTPClient(handle.host, handle.port) as ops:
                    health = ops.healthz()
                    metrics = ops.metrics()
                indexed = [pair for future in futures for pair in future.result()]
            http_seconds = time.perf_counter() - start
            results = [result for _index, result in sorted(indexed)]
        snapshot = scheduler.telemetry.snapshot()

    start = time.perf_counter()
    references = serial_reference(reference, workload)
    serial_seconds = time.perf_counter() - start

    gap = max_coefficient_gap(results, references)
    lambdas_equal = [r.lam for r in results] == [r.lam for r in references]
    rows = [
        ["requests", float(len(workload))],
        ["http ms", http_seconds * 1e3],
        ["serial ms", serial_seconds * 1e3],
        ["throughput rps", len(workload) / http_seconds],
        ["coalescing factor", snapshot["coalescing_factor"]],
        ["http requests seen", float(snapshot["counters"].get("net_http_requests", 0))],
        ["max |coef gap|", gap],
    ]
    print(format_table(["metric", "value"], rows))
    if args.verbose:
        print(f"  /healthz during load: {health}")
        print(f"  /metrics counters during load: {metrics['counters']}")
    if health.get("status") != "ok":
        print(f"FAILED: /healthz reported {health!r} under load")
        return 1
    if metrics["counters"].get("net_http_requests", 0) <= 0:
        print("FAILED: /metrics showed no live traffic under load")
        return 1
    if not lambdas_equal:
        print("FAILED: wire lambdas deviate from the one-shot fits")
        return 1
    if gap > 1e-10:
        print(f"FAILED: wire responses deviate from direct fits by {gap:.2e} (> 1e-10)")
        return 1
    print("ok: every wire response matches its one-shot fit to 1e-10 "
          "(exact lambda agreement)")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Run the network edge in the foreground until interrupted."""
    import asyncio

    from repro.service import MicroBatchScheduler, SessionPool
    from repro.service.net import FitServer

    _kernels, factory = _build_service_stack(args.cells, args.grids)
    pool = SessionPool(factory)

    async def serve() -> None:
        server = FitServer(
            scheduler,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
        )
        await server.start()
        print(f"repro fit service listening on http://{server.host}:{server.port}")
        print("routes: POST /v1/fit  POST /v1/fit/batch  GET /v1/stream (ws)  "
              "/healthz  /metrics  /pool  /backends")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.aclose()

    with MicroBatchScheduler(
        pool,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        workers=args.workers,
        runner=args.runner,
    ) as scheduler:
        try:
            asyncio.run(serve())
        except KeyboardInterrupt:
            print("shutting down")
    return 0


def _run_serve_scenarios(args: argparse.Namespace, kernels, factory) -> int:
    """Run the chaos scenario suite: SLO-shaped traffic, optional faults.

    Every accepted request must terminate (result, shed, deadline miss or a
    typed error — zero hung futures) and every solved response must match
    the one-shot serial reference to 1e-10; the per-scenario SLO verdict is
    reported alongside.  Exit code 1 on a hang or a bit-exactness gap.
    """
    import concurrent.futures
    import time

    from repro.service import (
        SCENARIOS,
        DeadlineExceeded,
        FaultPlan,
        MicroBatchScheduler,
        RequestShed,
        SessionPool,
        WorkloadSpec,
        max_coefficient_gap,
        serial_reference,
    )
    from repro.service.loadgen import (
        apply_scenario,
        arrival_offsets,
        build_workload,
        evaluate_slo,
    )

    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    reference = factory("serial-reference")
    rows = []
    worst_gap = 0.0
    hung_total = 0
    failed_slos = []
    for name in names:
        scenario = SCENARIOS[name]
        print(f"scenario {name}: {scenario.description}")
        spec = WorkloadSpec(
            num_requests=args.requests,
            repeat_ratio=(
                scenario.repeat_ratio
                if scenario.repeat_ratio is not None
                else args.repeat_ratio
            ),
            selection_fraction=args.selection_fraction,
            seed=args.seed,
        )
        workload = apply_scenario(
            build_workload(kernels, spec), scenario, seed=args.seed
        )
        offsets = arrival_offsets(scenario, len(workload), seed=args.seed)
        plan = FaultPlan(scenario.faults) if args.faults else None
        pool_factory = factory
        if plan is not None and args.runner != "process":
            # The wrap is a closure, which cannot ship to spawned workers;
            # under the process runner session builds happen worker-side
            # anyway, so only the solve-boundary faults (armed via
            # fault_plan below) are injected there.
            pool_factory = plan.wrap_factory(factory)
        pool = SessionPool(pool_factory)
        with MicroBatchScheduler(
            pool,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            workers=args.workers,
            runner=args.runner,
            fault_plan=plan,
        ) as scheduler:
            start = time.perf_counter()
            futures = []
            drained = 0
            for offset, request in zip(offsets, workload):
                delay = float(offset) - (time.perf_counter() - start)
                if delay > 0.0:
                    time.sleep(delay)
                if scenario.client_window > 0:
                    # Slow consumer: cap the submitted-but-unconsumed window,
                    # blocking on the oldest response before submitting more.
                    while len(futures) - drained >= scenario.client_window:
                        concurrent.futures.wait([futures[drained]], timeout=300.0)
                        drained += 1
                futures.append(scheduler.submit(request))
            done, hung = concurrent.futures.wait(futures, timeout=300.0)
            snapshot = scheduler.telemetry.snapshot()
            if args.verbose and plan is not None:
                print(f"  injected faults: {plan.stats()['injected']}")
        solved = []
        shed = missed = errors = 0
        for index, future in enumerate(futures):
            if future in hung:
                continue
            exc = future.exception()
            if exc is None:
                solved.append((index, future.result()))
            elif isinstance(exc, RequestShed):
                shed += 1
            elif isinstance(exc, DeadlineExceeded):
                missed += 1
            else:
                errors += 1
        gap = 0.0
        if solved:
            references = serial_reference(
                reference, [workload[index] for index, _ in solved]
            )
            gap = max_coefficient_gap([result for _, result in solved], references)
        worst_gap = max(worst_gap, gap)
        hung_total += len(hung)
        verdict = evaluate_slo(snapshot, scenario.slo)
        if not verdict["passed"]:
            failed_slos.append(name)
        latency = snapshot["histograms"].get("latency_seconds", {"p95": 0.0})
        rows.append([
            name,
            float(len(workload)),
            float(len(solved)),
            float(shed),
            float(missed),
            float(errors),
            float(len(hung)),
            latency["p95"] * 1e3,
            gap,
            1.0 if verdict["passed"] else 0.0,
        ])
        if args.verbose:
            for criterion, (observed, limit, ok) in verdict["checks"].items():
                marker = "ok" if ok else "FAIL"
                print(f"  {criterion}: {observed:.4g} (limit {limit:.4g}) {marker}")
    print(format_table(
        ["scenario", "requests", "solved", "shed", "missed", "errors",
         "hung", "p95 ms", "max gap", "SLO pass"],
        rows,
    ))
    if hung_total:
        print(f"FAILED: {hung_total} future(s) never terminated")
        return 1
    if worst_gap > 1e-10:
        print(f"FAILED: solved responses deviate from direct fits by {worst_gap:.2e} (> 1e-10)")
        return 1
    if failed_slos:
        print(f"SLO violations in: {', '.join(failed_slos)} (see table)")
    print("ok: every request terminated; every solved response matches its "
          "one-shot fit to 1e-10")
    return 0


def _run_backends(args: argparse.Namespace) -> int:
    """Print the kernel-backend registry (``repro backends``)."""
    rows = []
    for entry in backends.backend_table():
        rows.append([
            entry["name"],
            "yes" if entry["compiled"] else "no",
            "yes" if entry["available"] else "no",
            "*" if entry["active"] else "",
            entry["description"] + (f" [{entry['error']}]" if entry["error"] else ""),
        ])
    print(format_table(
        ["backend", "compiled", "available", "active", "description"], rows
    ))
    print(f"requested at import: {backends.requested_backend()!r} "
          f"(env var {config.BACKEND_ENV_VAR}); "
          f"active: {backends.active_backend().name!r}")
    return 0


def _run_sensitivity(args: argparse.Namespace) -> int:
    result = run_mu_sst_sensitivity(num_cells=args.cells, rng=args.seed)
    print(format_table(
        ["assumed mu_sst", "deconvolution NRMSE"],
        [[value, error] for value, error in zip(result.assumed_values, result.errors)],
    ))
    print(f"true mu_sst = {result.true_value}; best assumed = {result.best_assumed_value()}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "figure2": _run_figure2,
        "figure3": _run_figure3,
        "figure4": _run_figure4,
        "figure5": _run_figure5,
        "sensitivity": _run_sensitivity,
        "ablations": _run_ablations,
        "serve-bench": _run_serve_bench,
        "serve": _run_serve,
        "backends": _run_backends,
    }
    if args.backend is not None:
        backends.set_active_backend(args.backend)
    with np.printoptions(precision=4, suppress=True):
        return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
