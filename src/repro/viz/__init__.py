"""Plain-text visualisation helpers (no plotting dependencies required)."""

from repro.viz.ascii import ascii_plot, ascii_compare

__all__ = ["ascii_plot", "ascii_compare"]
