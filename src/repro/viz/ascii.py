"""ASCII line plots for terminals and log files.

The examples and benchmarks report series as tables; for a quicker visual
impression (does the deconvolved curve peak where the truth peaks?) these
helpers render one or more series as a character grid.  They intentionally
avoid any plotting dependency so they work in the offline benchmark
environment.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_1d

_MARKERS = "*o+x#@"


def _render(
    series: list[tuple[str, np.ndarray, np.ndarray]],
    *,
    width: int,
    height: int,
    x_label: str,
    y_label: str,
) -> str:
    all_x = np.concatenate([x for _, x, _ in series])
    all_y = np.concatenate([y for _, _, y in series])
    x_min, x_max = float(np.min(all_x)), float(np.max(all_x))
    y_min, y_max = float(np.min(all_y)), float(np.max(all_y))
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (_, x_values, y_values) in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        columns = np.round((x_values - x_min) / (x_max - x_min) * (width - 1)).astype(int)
        rows = np.round((y_values - y_min) / (y_max - y_min) * (height - 1)).astype(int)
        for column, row in zip(columns, rows):
            grid[height - 1 - row][column] = marker

    lines = [f"{y_label} [{y_min:.3g}, {y_max:.3g}]"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.3g} .. {x_max:.3g}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, (name, _, _) in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def ascii_plot(
    x_values: np.ndarray,
    y_values: np.ndarray,
    *,
    name: str = "series",
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render a single series as an ASCII plot string."""
    x_values = ensure_1d(x_values, "x_values")
    y_values = ensure_1d(y_values, "y_values")
    if x_values.size != y_values.size:
        raise ValueError("x_values and y_values must have the same length")
    if width < 8 or height < 4:
        raise ValueError("width must be >= 8 and height >= 4")
    return _render([(name, x_values, y_values)], width=width, height=height,
                   x_label=x_label, y_label=y_label)


def ascii_compare(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    *,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render several named ``(x, y)`` series on one shared ASCII grid."""
    if not series:
        raise ValueError("series must not be empty")
    prepared = []
    for name, (x_values, y_values) in series.items():
        x_arr = ensure_1d(x_values, f"{name} x")
        y_arr = ensure_1d(y_values, f"{name} y")
        if x_arr.size != y_arr.size:
            raise ValueError(f"series {name!r} has mismatched lengths")
        prepared.append((name, x_arr, y_arr))
    if width < 8 or height < 4:
        raise ValueError("width must be >= 8 and height >= 4")
    return _render(prepared, width=width, height=height, x_label=x_label, y_label=y_label)
