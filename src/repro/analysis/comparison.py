"""Comparison of deconvolved, population and ground-truth profiles."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import max_absolute_error, nrmse, pearson_correlation, rmse
from repro.core.result import DeconvolutionResult
from repro.data.timeseries import PhaseProfile
from repro.utils.validation import ensure_1d


@dataclass
class ProfileComparison:
    """Quantitative comparison of an estimated profile against a ground truth.

    Attributes
    ----------
    rmse, nrmse, max_error, correlation:
        Error metrics of the estimate against the truth on the phase grid.
    population_nrmse:
        NRMSE of the raw population curve (mapped onto the phase axis)
        against the same truth — the "do nothing" baseline the deconvolution
        must beat.
    improvement_factor:
        ``population_nrmse / nrmse``; greater than one means the deconvolution
        recovered the synchronous profile better than the raw population data.
    """

    rmse: float
    nrmse: float
    max_error: float
    correlation: float
    population_nrmse: float
    improvement_factor: float


def compare_to_truth(
    result: DeconvolutionResult,
    truth: PhaseProfile,
    *,
    num_points: int = 201,
    population_values: np.ndarray | None = None,
    population_times: np.ndarray | None = None,
) -> ProfileComparison:
    """Compare a deconvolution result against the known synchronous profile.

    Parameters
    ----------
    result:
        Fitted deconvolution result.
    truth:
        Ground-truth synchronous profile.
    num_points:
        Number of phase samples used for the comparison.
    population_values, population_times:
        Optional raw population series; when given, the population curve is
        re-parameterised by phase (``phi = t / mean_cycle_time``, clipped to
        one cycle) to compute the baseline NRMSE.  Defaults to the result's
        own measurements.
    """
    phases = np.linspace(0.0, 1.0, int(num_points))
    estimate = result.profile(phases)
    truth_values = truth(phases)

    error_rmse = rmse(estimate, truth_values)
    error_nrmse = nrmse(estimate, truth_values)
    error_max = max_absolute_error(estimate, truth_values)
    correlation = pearson_correlation(estimate, truth_values)

    if population_values is None:
        population_values = result.measurements
        population_times = result.times
    population_values = ensure_1d(population_values, "population_values")
    population_times = ensure_1d(population_times, "population_times")
    if population_values.size != population_times.size:
        raise ValueError("population series and times must have the same length")

    # Interpret the population curve as a (wrong) estimate of f(phi) by mapping
    # experiment time to phase over one average cycle.
    cycle = result.mean_cycle_time
    population_phases = np.clip(population_times / cycle, 0.0, 1.0)
    population_on_grid = np.interp(phases, population_phases, population_values)
    population_error = nrmse(population_on_grid, truth_values)

    improvement = population_error / error_nrmse if error_nrmse > 0 else float("inf")
    return ProfileComparison(
        rmse=error_rmse,
        nrmse=error_nrmse,
        max_error=error_max,
        correlation=correlation,
        population_nrmse=population_error,
        improvement_factor=improvement,
    )
