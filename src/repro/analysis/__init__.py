"""Analysis helpers: error metrics, feature detection and profile comparison."""

from repro.analysis.metrics import (
    rmse,
    nrmse,
    mean_absolute_error,
    max_absolute_error,
    pearson_correlation,
    relative_error,
)
from repro.analysis.features import (
    detect_onset_phase,
    detect_peak,
    has_post_peak_increase,
    post_peak_drop_fraction,
)
from repro.analysis.comparison import ProfileComparison, compare_to_truth

__all__ = [
    "rmse",
    "nrmse",
    "mean_absolute_error",
    "max_absolute_error",
    "pearson_correlation",
    "relative_error",
    "detect_onset_phase",
    "detect_peak",
    "has_post_peak_increase",
    "post_peak_drop_fraction",
    "ProfileComparison",
    "compare_to_truth",
]
