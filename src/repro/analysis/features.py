"""Feature detection on expression profiles.

The Figure 5 experiment rests on two qualitative features of the deconvolved
*ftsZ* profile: a transcription *delay* (near-zero expression before the
swarmer-to-stalked transition) and a *post-peak drop with no subsequent
increase*.  These detectors quantify both so benchmarks can assert them.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_in_range, ensure_1d


def detect_onset_phase(
    phases: np.ndarray,
    values: np.ndarray,
    *,
    threshold_fraction: float = 0.1,
) -> float:
    """Phase at which expression rises through a threshold on its way to the peak.

    The onset is the *last* upward crossing of the threshold
    ``min + threshold_fraction * (max - min)`` that precedes the global
    maximum.  Searching backwards from the peak makes the detector robust to
    small boundary artifacts near phase zero (common in regularised
    deconvolutions), which would otherwise mask a genuine transcription delay.

    Parameters
    ----------
    phases, values:
        Profile samples.
    threshold_fraction:
        Fraction of the dynamic range (above the minimum) defining "onset".

    Returns
    -------
    float
        The onset phase; zero if the profile never falls below the threshold
        before its peak.
    """
    phases = ensure_1d(phases, "phases")
    values = ensure_1d(values, "values")
    if phases.size != values.size:
        raise ValueError("phases and values must have the same length")
    check_in_range(threshold_fraction, "threshold_fraction", 0.0, 1.0, inclusive=False)
    low = float(np.min(values))
    high = float(np.max(values))
    if high <= low:
        raise ValueError("cannot detect an onset in a constant profile")
    threshold = low + threshold_fraction * (high - low)
    peak_index = int(np.argmax(values))
    below = np.flatnonzero(values[: peak_index + 1] < threshold)
    if below.size == 0:
        return float(phases[0])
    last_below = int(below[-1])
    if last_below >= peak_index:
        return float(phases[last_below])
    # Linear interpolation between the last sub-threshold sample before the
    # peak and the following sample.
    x0, x1 = phases[last_below], phases[last_below + 1]
    y0, y1 = values[last_below], values[last_below + 1]
    if y1 == y0:
        return float(x1)
    return float(x0 + (threshold - y0) / (y1 - y0) * (x1 - x0))


def detect_peak(phases: np.ndarray, values: np.ndarray) -> tuple[float, float]:
    """Phase and value of the global maximum of the profile."""
    phases = ensure_1d(phases, "phases")
    values = ensure_1d(values, "values")
    if phases.size != values.size:
        raise ValueError("phases and values must have the same length")
    index = int(np.argmax(values))
    return float(phases[index]), float(values[index])


def has_post_peak_increase(
    phases: np.ndarray,
    values: np.ndarray,
    *,
    tolerance_fraction: float = 0.05,
) -> bool:
    """Whether expression rises again after its global maximum.

    An increase is only reported when, after the global peak, the profile
    climbs by more than ``tolerance_fraction`` of the peak-to-trough range
    above its running minimum — small wiggles from regularisation noise are
    ignored.
    """
    phases = ensure_1d(phases, "phases")
    values = ensure_1d(values, "values")
    if phases.size != values.size:
        raise ValueError("phases and values must have the same length")
    peak_index = int(np.argmax(values))
    tail = values[peak_index:]
    if tail.size < 3:
        return False
    value_range = float(np.max(values) - np.min(values))
    if value_range == 0.0:
        return False
    running_min = np.minimum.accumulate(tail)
    rebound = float(np.max(tail - running_min))
    return rebound > tolerance_fraction * value_range


def post_peak_drop_fraction(phases: np.ndarray, values: np.ndarray) -> float:
    """Fractional drop from the global peak to the end of the profile.

    Returns ``(peak - final) / peak``; large values indicate the pronounced
    post-peak drop the paper's deconvolved *ftsZ* profile shows.
    """
    phases = ensure_1d(phases, "phases")
    values = ensure_1d(values, "values")
    if phases.size != values.size:
        raise ValueError("phases and values must have the same length")
    peak = float(np.max(values))
    if peak == 0.0:
        raise ValueError("post-peak drop is undefined for an all-zero profile")
    final = float(values[-1])
    return (peak - final) / peak
