"""Error metrics used to quantify deconvolution quality."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_1d


def _pair(estimate: np.ndarray, truth: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    estimate = ensure_1d(estimate, "estimate")
    truth = ensure_1d(truth, "truth")
    if estimate.size != truth.size:
        raise ValueError("estimate and truth must have the same length")
    return estimate, truth


def rmse(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Root-mean-square error."""
    estimate, truth = _pair(estimate, truth)
    return float(np.sqrt(np.mean((estimate - truth) ** 2)))


def nrmse(estimate: np.ndarray, truth: np.ndarray) -> float:
    """RMSE normalised by the range of the truth (dimensionless)."""
    estimate, truth = _pair(estimate, truth)
    spread = float(np.max(truth) - np.min(truth))
    if spread == 0.0:
        raise ValueError("nrmse is undefined for a constant truth signal")
    return rmse(estimate, truth) / spread


def mean_absolute_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute error."""
    estimate, truth = _pair(estimate, truth)
    return float(np.mean(np.abs(estimate - truth)))


def max_absolute_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Maximum absolute error."""
    estimate, truth = _pair(estimate, truth)
    return float(np.max(np.abs(estimate - truth)))


def pearson_correlation(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Pearson correlation coefficient between estimate and truth."""
    estimate, truth = _pair(estimate, truth)
    est_centered = estimate - np.mean(estimate)
    tru_centered = truth - np.mean(truth)
    denom = np.linalg.norm(est_centered) * np.linalg.norm(tru_centered)
    if denom == 0.0:
        raise ValueError("pearson correlation is undefined for constant signals")
    return float(est_centered @ tru_centered / denom)


def relative_error(estimate: float | np.ndarray, truth: float | np.ndarray) -> np.ndarray | float:
    """Element-wise relative error ``|estimate - truth| / |truth|``."""
    estimate_arr = np.asarray(estimate, dtype=float)
    truth_arr = np.asarray(truth, dtype=float)
    if np.any(truth_arr == 0):
        raise ValueError("relative error is undefined where the truth is zero")
    result = np.abs(estimate_arr - truth_arr) / np.abs(truth_arr)
    return float(result) if result.ndim == 0 else result
