"""Data layer: containers, noise models, synthetic genes and reference datasets."""

from repro.data.timeseries import ExpressionTimeSeries, PhaseProfile
from repro.data.noise import (
    NoiseModel,
    GaussianAdditiveNoise,
    GaussianProportionalNoise,
    GaussianMagnitudeNoise,
    LogNormalNoise,
    make_noise_model,
)
from repro.data.synthetic import (
    constant_profile,
    linear_profile,
    single_pulse_profile,
    double_pulse_profile,
    ftsz_like_profile,
)
from repro.data.judd2003 import judd_reference_distribution, JUDD_TIMES_MINUTES
from repro.data.mcgrath2007 import FtsZDataset, ftsz_population_dataset

__all__ = [
    "ExpressionTimeSeries",
    "PhaseProfile",
    "NoiseModel",
    "GaussianAdditiveNoise",
    "GaussianProportionalNoise",
    "GaussianMagnitudeNoise",
    "LogNormalNoise",
    "make_noise_model",
    "constant_profile",
    "linear_profile",
    "single_pulse_profile",
    "double_pulse_profile",
    "ftsz_like_profile",
    "judd_reference_distribution",
    "JUDD_TIMES_MINUTES",
    "FtsZDataset",
    "ftsz_population_dataset",
]
