"""Reference cell-type distribution for the Figure 4 comparison.

The paper compares its simulated cell-type fractions against the
experimentally observed distribution of Judd et al. (PNAS 2003, Fig. 4 bottom
panel).  The original numbers are only available as a published figure, so
this module encodes an *approximate reference table* with the qualitative
shape reported there and reproduced by the paper: the culture starts
essentially all early-stalked around 75 minutes, progresses through the early
and late predivisional stages, and regenerates swarmer and early-stalked cells
as divisions begin near the 150-minute average cycle time.

This is a documented substitution (see ``DESIGN.md``): the comparison in the
benchmark checks the same qualitative agreement the paper claims, not absolute
experimental values.
"""

from __future__ import annotations

import numpy as np

from repro.cellcycle.celltypes import CellType, CellTypeDistribution

#: Times (minutes after synchronisation) of the reference distribution.
JUDD_TIMES_MINUTES: np.ndarray = np.array([75.0, 90.0, 105.0, 120.0, 135.0, 150.0])

#: Approximate reference fractions of each cell type at the times above.
#: Rows follow :data:`JUDD_TIMES_MINUTES`; each row sums to one.
_REFERENCE_FRACTIONS: dict[CellType, np.ndarray] = {
    CellType.SW: np.array([0.02, 0.02, 0.03, 0.09, 0.24, 0.33]),
    CellType.STE: np.array([0.80, 0.40, 0.08, 0.12, 0.30, 0.53]),
    CellType.STEPD: np.array([0.17, 0.55, 0.74, 0.45, 0.14, 0.04]),
    CellType.STLPD: np.array([0.01, 0.03, 0.15, 0.34, 0.32, 0.10]),
}


def judd_reference_distribution() -> CellTypeDistribution:
    """The reference cell-type distribution as a :class:`CellTypeDistribution`."""
    fractions = {cell_type: values.copy() for cell_type, values in _REFERENCE_FRACTIONS.items()}
    return CellTypeDistribution(times=JUDD_TIMES_MINUTES.copy(), fractions=fractions)
