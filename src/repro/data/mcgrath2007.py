"""Synthetic stand-in for the McGrath et al. (2007) *ftsZ* microarray series.

The paper's Figure 5 deconvolves a population-level *ftsZ* expression time
course taken from the McGrath et al. microarray study.  That dataset is not
redistributable here, so — per the substitution documented in ``DESIGN.md`` —
this module generates an equivalent population series by pushing a
biologically motivated single-cell *ftsZ* profile (delayed onset at the
swarmer-to-stalked transition, mid-cycle peak, post-peak decline) through the
same forward volume-density kernel used for deconvolution, then adding
measurement noise.  The generated dataset therefore exercises exactly the
code path of the paper's experiment while making the ground truth available
for quantitative checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellcycle.kernel import KernelBuilder, VolumeKernel
from repro.cellcycle.parameters import CellCycleParameters
from repro.data.noise import GaussianMagnitudeNoise
from repro.data.synthetic import ftsz_like_profile
from repro.data.timeseries import ExpressionTimeSeries, PhaseProfile
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


@dataclass
class FtsZDataset:
    """Synthetic *ftsZ* dataset used by the Figure 5 experiment.

    Attributes
    ----------
    series:
        Noisy population-level expression time series (the "microarray data").
    noiseless:
        The same series before noise was added.
    truth:
        The underlying single-cell phase profile.
    kernel:
        The volume-density kernel used to generate the population data.
    parameters:
        Cell-cycle parameters of the generating population model.
    """

    series: ExpressionTimeSeries
    noiseless: ExpressionTimeSeries
    truth: PhaseProfile
    kernel: VolumeKernel
    parameters: CellCycleParameters


def ftsz_population_dataset(
    *,
    num_times: int = 16,
    t_end: float = 150.0,
    noise_fraction: float = 0.05,
    num_cells: int = 10_000,
    phase_bins: int = 100,
    parameters: CellCycleParameters | None = None,
    rng: SeedLike = 2011,
) -> FtsZDataset:
    """Generate the synthetic *ftsZ* population dataset.

    Parameters
    ----------
    num_times:
        Number of microarray sampling times, evenly spaced on ``[0, t_end]``.
    t_end:
        Duration of the experiment in minutes (one average cell cycle).
    noise_fraction:
        Gaussian noise level as a fraction of the series magnitude; set to
        zero for a noiseless dataset.
    num_cells:
        Founder cells of the kernel's Monte-Carlo simulation.
    phase_bins:
        Phase resolution of the kernel.
    parameters:
        Cell-cycle parameters; defaults to the paper's values.
    rng:
        Seed controlling both the kernel simulation and the noise.
    """
    num_times = int(num_times)
    if num_times < 4:
        raise ValueError("num_times must be at least 4")
    check_positive(t_end, "t_end")
    check_positive(noise_fraction, "noise_fraction", strict=False)
    parameters = parameters if parameters is not None else CellCycleParameters()
    generator = as_generator(rng)

    times = np.linspace(0.0, t_end, num_times)
    truth = ftsz_like_profile(onset=parameters.mu_sst, peak=0.4, amplitude=10.0, baseline=0.1)
    builder = KernelBuilder(parameters, num_cells=num_cells, phase_bins=phase_bins)
    kernel = builder.build(times, generator)
    clean_values = kernel.apply_function(truth)
    noiseless = ExpressionTimeSeries(times=times, values=clean_values, name="ftsZ")

    if noise_fraction > 0:
        noise = GaussianMagnitudeNoise(noise_fraction)
        noisy_values = noise.apply(clean_values, generator)
        sigma = noise.standard_deviations(clean_values)
    else:
        noisy_values = clean_values.copy()
        sigma = None
    series = ExpressionTimeSeries(
        times=times,
        values=noisy_values,
        sigma=sigma,
        name="ftsZ",
        metadata={"source": "synthetic stand-in for McGrath et al. 2007", "noise_fraction": noise_fraction},
    )
    return FtsZDataset(
        series=series,
        noiseless=noiseless,
        truth=truth,
        kernel=kernel,
        parameters=parameters,
    )
