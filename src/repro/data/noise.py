"""Measurement-noise models for population expression data.

The paper's Figure 3 experiment adds "Gaussian error with standard deviations
equal to 10% of the data magnitude" to the simulated population data; that
corresponds to :class:`GaussianProportionalNoise` (per-point magnitude) or
:class:`GaussianMagnitudeNoise` (global magnitude).  Both are provided, plus
additive Gaussian and multiplicative log-normal models for robustness studies.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, ensure_1d


class NoiseModel(abc.ABC):
    """Interface of a measurement-noise model."""

    name: str = "noise"

    @abc.abstractmethod
    def standard_deviations(self, values: np.ndarray) -> np.ndarray:
        """Per-measurement standard deviations implied by the model."""

    def apply(self, values: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Return one noisy realisation of ``values``."""
        values = ensure_1d(values, "values")
        generator = as_generator(rng)
        sigma = self.standard_deviations(values)
        return values + generator.normal(0.0, 1.0, values.size) * sigma


class GaussianAdditiveNoise(NoiseModel):
    """Additive Gaussian noise with a fixed standard deviation."""

    name = "gaussian_additive"

    def __init__(self, sigma: float) -> None:
        self.sigma = check_positive(sigma, "sigma")

    def standard_deviations(self, values: np.ndarray) -> np.ndarray:
        values = ensure_1d(values, "values")
        return np.full(values.size, self.sigma)


class GaussianProportionalNoise(NoiseModel):
    """Gaussian noise with standard deviation proportional to each data point.

    ``sigma_m = fraction * |G(t_m)|``, floored at ``fraction * floor`` so that
    near-zero measurements still receive a little noise.
    """

    name = "gaussian_proportional"

    def __init__(self, fraction: float, floor: float = 0.0) -> None:
        self.fraction = check_positive(fraction, "fraction")
        self.floor = check_positive(floor, "floor", strict=False)

    def standard_deviations(self, values: np.ndarray) -> np.ndarray:
        values = ensure_1d(values, "values")
        return self.fraction * np.maximum(np.abs(values), self.floor)


class GaussianMagnitudeNoise(NoiseModel):
    """Gaussian noise with standard deviation tied to the series magnitude.

    ``sigma = fraction * max_m |G(t_m)|`` for every measurement — the paper's
    "10% of the data magnitude" reading where the magnitude is a property of
    the whole series.
    """

    name = "gaussian_magnitude"

    def __init__(self, fraction: float) -> None:
        self.fraction = check_positive(fraction, "fraction")

    def standard_deviations(self, values: np.ndarray) -> np.ndarray:
        values = ensure_1d(values, "values")
        magnitude = float(np.max(np.abs(values)))
        if magnitude == 0.0:
            magnitude = 1.0
        return np.full(values.size, self.fraction * magnitude)


class LogNormalNoise(NoiseModel):
    """Multiplicative log-normal noise (positive-valued data only)."""

    name = "lognormal"

    def __init__(self, sigma_log: float) -> None:
        self.sigma_log = check_positive(sigma_log, "sigma_log")

    def standard_deviations(self, values: np.ndarray) -> np.ndarray:
        values = ensure_1d(values, "values")
        # Standard deviation of x * exp(eps) with eps ~ N(0, sigma_log^2),
        # to first order sigma ~ |x| * sigma_log.
        return np.abs(values) * self.sigma_log

    def apply(self, values: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        values = ensure_1d(values, "values")
        if np.any(values < 0):
            raise ValueError("log-normal noise requires non-negative data")
        generator = as_generator(rng)
        factors = np.exp(generator.normal(0.0, self.sigma_log, values.size))
        return values * factors


def make_noise_model(name: str, level: float) -> NoiseModel:
    """Construct a noise model by name with a single level parameter."""
    models = {
        GaussianAdditiveNoise.name: GaussianAdditiveNoise,
        GaussianProportionalNoise.name: GaussianProportionalNoise,
        GaussianMagnitudeNoise.name: GaussianMagnitudeNoise,
        LogNormalNoise.name: LogNormalNoise,
    }
    try:
        cls = models[name]
    except KeyError:
        raise ValueError(f"unknown noise model {name!r}; available: {sorted(models)}") from None
    return cls(level)
