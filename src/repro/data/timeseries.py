"""Containers for expression time series and phase profiles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.numerics.quadrature import trapezoid_weights
from repro.utils.validation import check_sorted, ensure_1d


@dataclass
class PhaseProfile:
    """A synchronous (single-cell-like) expression profile ``f(phi)``.

    The profile is stored as samples on a phase grid and evaluated elsewhere
    by linear interpolation, which keeps forward-model evaluations exact on
    the kernel's bin centres once the grid is fine enough.

    Attributes
    ----------
    phases:
        Strictly increasing phase samples covering ``[0, 1]``.
    values:
        Expression values at the phase samples.
    name:
        Species / gene name.
    """

    phases: np.ndarray
    values: np.ndarray
    name: str = "profile"

    def __post_init__(self) -> None:
        self.phases = check_sorted(self.phases, "phases")
        self.values = ensure_1d(self.values, "values")
        if self.phases.size != self.values.size:
            raise ValueError("phases and values must have the same length")
        if self.phases[0] < -1e-9 or self.phases[-1] > 1.0 + 1e-9:
            raise ValueError("phases must lie inside [0, 1]")

    def __call__(self, phases: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the profile at arbitrary phases by linear interpolation."""
        scalar = np.ndim(phases) == 0
        query = np.atleast_1d(np.asarray(phases, dtype=float))
        values = np.interp(query, self.phases, self.values)
        return float(values[0]) if scalar else values

    @classmethod
    def from_callable(
        cls,
        func: Callable[[np.ndarray], np.ndarray],
        *,
        num_points: int = 401,
        name: str = "profile",
    ) -> "PhaseProfile":
        """Sample a callable ``f(phi)`` on a uniform grid."""
        phases = np.linspace(0.0, 1.0, int(num_points))
        return cls(phases=phases, values=np.asarray(func(phases), dtype=float), name=name)

    def mean(self) -> float:
        """Phase-averaged expression ``\\int f(phi) dphi``."""
        return float(trapezoid_weights(self.phases) @ self.values)

    def peak_phase(self) -> float:
        """Phase of the maximum expression."""
        return float(self.phases[int(np.argmax(self.values))])

    def rescale(self, factor: float) -> "PhaseProfile":
        """Profile multiplied by a constant factor."""
        return PhaseProfile(self.phases.copy(), self.values * float(factor), self.name)

    def to_time(self, cycle_time: float) -> tuple[np.ndarray, np.ndarray]:
        """Profile against time for one cycle of length ``cycle_time`` minutes."""
        return self.phases * float(cycle_time), self.values.copy()


@dataclass
class ExpressionTimeSeries:
    """A population-level expression time series ``G(t_m)``.

    Attributes
    ----------
    times:
        Measurement times in minutes (strictly increasing).
    values:
        Measured population expression.
    sigma:
        Optional per-measurement standard deviations.
    name:
        Species / gene name.
    """

    times: np.ndarray
    values: np.ndarray
    sigma: Optional[np.ndarray] = None
    name: str = "series"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.times = check_sorted(self.times, "times")
        self.values = ensure_1d(self.values, "values")
        if self.times.size != self.values.size:
            raise ValueError("times and values must have the same length")
        if self.sigma is not None:
            self.sigma = ensure_1d(self.sigma, "sigma")
            if self.sigma.size != self.times.size:
                raise ValueError("sigma must match the number of measurements")
            if np.any(self.sigma <= 0):
                raise ValueError("sigma must be strictly positive")

    @property
    def num_measurements(self) -> int:
        """Number of time points."""
        return int(self.times.size)

    def with_values(self, values: np.ndarray, *, name: str | None = None) -> "ExpressionTimeSeries":
        """Copy of the series with different values (e.g. after adding noise)."""
        return ExpressionTimeSeries(
            times=self.times.copy(),
            values=ensure_1d(values, "values").copy(),
            sigma=None if self.sigma is None else self.sigma.copy(),
            name=self.name if name is None else name,
            metadata=dict(self.metadata),
        )

    def subsample(self, indices: np.ndarray) -> "ExpressionTimeSeries":
        """Series restricted to a subset of time points."""
        indices = np.asarray(indices, dtype=int)
        return ExpressionTimeSeries(
            times=self.times[indices],
            values=self.values[indices],
            sigma=None if self.sigma is None else self.sigma[indices],
            name=self.name,
            metadata=dict(self.metadata),
        )

    def magnitude(self) -> float:
        """Characteristic magnitude of the series (maximum absolute value)."""
        return float(np.max(np.abs(self.values)))
