"""CSV persistence for expression time series and phase profiles.

Microarray-style time courses and deconvolved profiles are small tabular
objects; plain CSV keeps them interoperable with spreadsheets and R without
adding dependencies.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.timeseries import ExpressionTimeSeries, PhaseProfile


def save_timeseries_csv(series: ExpressionTimeSeries, path: str | Path) -> Path:
    """Write an expression time series to ``path`` as CSV.

    Columns: ``time_minutes``, ``value`` and (when present) ``sigma``.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["time_minutes", "value"]
        if series.sigma is not None:
            header.append("sigma")
        writer.writerow(header)
        for index in range(series.num_measurements):
            row = [f"{series.times[index]:.10g}", f"{series.values[index]:.10g}"]
            if series.sigma is not None:
                row.append(f"{series.sigma[index]:.10g}")
            writer.writerow(row)
    return path


def load_timeseries_csv(path: str | Path, *, name: str | None = None) -> ExpressionTimeSeries:
    """Read an expression time series written by :func:`save_timeseries_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header[:2] != ["time_minutes", "value"]:
            raise ValueError(f"{path} does not look like a repro time-series CSV")
        has_sigma = len(header) > 2 and header[2] == "sigma"
        times, values, sigmas = [], [], []
        for row in reader:
            if not row:
                continue
            times.append(float(row[0]))
            values.append(float(row[1]))
            if has_sigma:
                sigmas.append(float(row[2]))
    return ExpressionTimeSeries(
        times=np.asarray(times),
        values=np.asarray(values),
        sigma=np.asarray(sigmas) if has_sigma else None,
        name=name if name is not None else path.stem,
    )


def save_profile_csv(profile: PhaseProfile, path: str | Path) -> Path:
    """Write a phase profile to ``path`` as CSV with columns ``phase``, ``value``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["phase", "value"])
        for phase, value in zip(profile.phases, profile.values):
            writer.writerow([f"{phase:.10g}", f"{value:.10g}"])
    return path


def load_profile_csv(path: str | Path, *, name: str | None = None) -> PhaseProfile:
    """Read a phase profile written by :func:`save_profile_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header != ["phase", "value"]:
            raise ValueError(f"{path} does not look like a repro phase-profile CSV")
        phases, values = [], []
        for row in reader:
            if not row:
                continue
            phases.append(float(row[0]))
            values.append(float(row[1]))
    return PhaseProfile(
        phases=np.asarray(phases),
        values=np.asarray(values),
        name=name if name is not None else path.stem,
    )
