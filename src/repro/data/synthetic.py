"""Synthetic single-cell phase profiles.

These analytic profiles serve two purposes: simple shapes (constant, linear,
pulses) are used throughout the test suite because their forward transforms
have easily checkable properties, and :func:`ftsz_like_profile` is the
biologically motivated stand-in used to regenerate the Figure 5 experiment
(see the substitution note in ``DESIGN.md``): *ftsZ* transcription is delayed
until the swarmer-to-stalked transition, peaks mid-cycle and declines with no
subsequent increase (Kelly et al. 1998).
"""

from __future__ import annotations

import numpy as np

from repro.data.timeseries import PhaseProfile
from repro.utils.validation import check_in_range, check_positive


def constant_profile(level: float = 1.0, *, num_points: int = 401, name: str = "constant") -> PhaseProfile:
    """A phase-independent profile ``f(phi) = level``."""
    check_positive(level, "level", strict=False)
    phases = np.linspace(0.0, 1.0, int(num_points))
    return PhaseProfile(phases, np.full(phases.size, float(level)), name)


def linear_profile(
    start: float = 0.0,
    end: float = 1.0,
    *,
    num_points: int = 401,
    name: str = "linear",
) -> PhaseProfile:
    """A linearly increasing (or decreasing) profile from ``start`` to ``end``."""
    phases = np.linspace(0.0, 1.0, int(num_points))
    values = float(start) + (float(end) - float(start)) * phases
    return PhaseProfile(phases, values, name)


def single_pulse_profile(
    center: float = 0.5,
    width: float = 0.12,
    amplitude: float = 1.0,
    baseline: float = 0.05,
    *,
    num_points: int = 401,
    name: str = "pulse",
) -> PhaseProfile:
    """A Gaussian pulse of expression centred at ``center``."""
    check_in_range(center, "center", 0.0, 1.0)
    check_positive(width, "width")
    check_positive(amplitude, "amplitude")
    check_positive(baseline, "baseline", strict=False)
    phases = np.linspace(0.0, 1.0, int(num_points))
    values = baseline + amplitude * np.exp(-0.5 * ((phases - center) / width) ** 2)
    return PhaseProfile(phases, values, name)


def double_pulse_profile(
    centers: tuple[float, float] = (0.3, 0.75),
    widths: tuple[float, float] = (0.08, 0.08),
    amplitudes: tuple[float, float] = (1.0, 0.6),
    baseline: float = 0.05,
    *,
    num_points: int = 401,
    name: str = "double_pulse",
) -> PhaseProfile:
    """Two Gaussian pulses of expression — a harder deconvolution target."""
    phases = np.linspace(0.0, 1.0, int(num_points))
    values = np.full(phases.size, float(baseline))
    for center, width, amplitude in zip(centers, widths, amplitudes):
        check_in_range(center, "center", 0.0, 1.0)
        check_positive(width, "width")
        check_positive(amplitude, "amplitude")
        values += amplitude * np.exp(-0.5 * ((phases - center) / width) ** 2)
    return PhaseProfile(phases, values, name)


def ftsz_like_profile(
    onset: float = 0.15,
    peak: float = 0.4,
    amplitude: float = 10.0,
    sharpness: float = 2.0,
    baseline: float = 0.1,
    *,
    num_points: int = 401,
    name: str = "ftsZ",
) -> PhaseProfile:
    """A *ftsZ*-like profile: zero before ``onset``, peaking at ``peak``, then declining.

    The post-onset shape is a gamma-like bump
    ``amplitude * (s * exp(1 - s))**sharpness`` with
    ``s = (phi - onset) / (peak - onset)``, which rises smoothly from zero at
    the onset, attains its maximum exactly at ``peak`` and decays
    monotonically afterwards with no subsequent increase — the two features
    the paper's Figure 5 highlights in the deconvolved data.

    Parameters
    ----------
    onset:
        Phase at which transcription begins (the SW-to-ST transition, 0.15).
    peak:
        Phase of maximal expression (about 0.4 in the paper).
    amplitude:
        Peak expression level above the baseline.
    sharpness:
        Exponent controlling how peaked the bump is.
    baseline:
        Small basal expression level present at all phases.
    """
    check_in_range(onset, "onset", 0.0, 1.0)
    check_in_range(peak, "peak", 0.0, 1.0)
    if not peak > onset:
        raise ValueError("peak must lie after onset")
    check_positive(amplitude, "amplitude")
    check_positive(sharpness, "sharpness")
    check_positive(baseline, "baseline", strict=False)

    phases = np.linspace(0.0, 1.0, int(num_points))
    scaled = np.clip((phases - onset) / (peak - onset), 0.0, None)
    bump = np.where(scaled > 0, (scaled * np.exp(1.0 - scaled)) ** sharpness, 0.0)
    values = baseline + amplitude * bump
    return PhaseProfile(phases, values, name)
