"""Per-stage timing harness for the warm-started, shared-factorization solve path.

Times the four layers the solve-path PR threads through -- QP solve (cold,
cached-workspace and warm-started), lambda search (GCV and k-fold CV),
residual bootstrap and Monte-Carlo kernel build -- on one representative
deconvolution workload, and emits a JSON baseline (``BENCH_solvepath.json``)
so the perf trajectory can be tracked across PRs.

Run the full-size benchmark and refresh the committed baseline with::

    PYTHONPATH=src python -m repro.benchmarks.solvepath --output BENCH_solvepath.json

A ``--smoke`` mode (small sizes, one repeat) runs inside the tier-1 test flow
(``tests/test_bench_smoke.py``) so the harness itself cannot rot.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Callable

import numpy as np

# Wall-clock seed timings of the stages before the shared-factorization
# solve path landed (PR 1), measured at the default sizes below on the PR's
# build machine.  Kept in the emitted JSON so every report carries its own
# reference point.
SEED_BASELINE_SECONDS = {
    # problem.solve on an assembled problem; the seed had no caches, so its
    # every solve matches today's "qp_solve" stage definition.
    "qp_solve": 2.06e-4,
    "lambda_gcv": 6.0e-4,
    "lambda_kfold": 5.13e-2,
    "bootstrap": 7.03e-1,
    "kernel_build": 8.7e-3,
}

DEFAULT_CONFIG = {
    "num_cells": 6000,
    "phase_bins": 80,
    "num_times": 16,
    "num_basis": 14,
    "num_replicates": 50,
    "lambda_count": 13,
    "repeats": 5,
}

SMOKE_CONFIG = {
    "num_cells": 800,
    "phase_bins": 30,
    "num_times": 8,
    "num_basis": 8,
    "num_replicates": 4,
    "lambda_count": 5,
    "repeats": 1,
}


def _time(function: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``function()``."""
    best = np.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return float(best)


def run_solvepath_benchmark(
    *,
    num_cells: int = DEFAULT_CONFIG["num_cells"],
    phase_bins: int = DEFAULT_CONFIG["phase_bins"],
    num_times: int = DEFAULT_CONFIG["num_times"],
    num_basis: int = DEFAULT_CONFIG["num_basis"],
    num_replicates: int = DEFAULT_CONFIG["num_replicates"],
    lambda_count: int = DEFAULT_CONFIG["lambda_count"],
    repeats: int = DEFAULT_CONFIG["repeats"],
    rng: int = 0,
) -> dict:
    """Time every solve-path stage once and return the report dictionary.

    Stages (seconds each):

    * ``kernel_build`` -- vectorized ``build_from_history`` on a shared
      population history.
    * ``problem_assembly_cold`` -- fresh problem assembly (design, penalty,
      constraint rows) plus one solve, nothing cached.
    * ``qp_solve`` -- ``problem.solve`` on an assembled problem through the
      per-lambda cached Hessian/Cholesky workspace (the seed solver
      refactorized here on every call).
    * ``qp_solve_warm`` -- workspace solve warm-started with the previous
      solution and active set.
    * ``lambda_gcv`` -- eigendecomposition GCV over the lambda grid.
    * ``lambda_kfold`` -- k-fold CV with hoisted folds and warm-started
      lambda sweeps.
    * ``bootstrap`` -- residual bootstrap with the shared fit workspace and
      warm-started replicates.
    """
    from repro.cellcycle.kernel import KernelBuilder
    from repro.cellcycle.parameters import CellCycleParameters
    from repro.cellcycle.population import PopulationSimulator
    from repro.core.basis import SplineBasis
    from repro.core.constraints import default_constraints
    from repro.core.deconvolver import Deconvolver
    from repro.core.forward import ForwardModel
    from repro.core.lambda_selection import (
        default_lambda_grid,
        generalized_cross_validation,
        k_fold_cross_validation,
    )
    from repro.core.problem import DeconvolutionProblem
    from repro.core.uncertainty import bootstrap_deconvolution
    from repro.data.synthetic import ftsz_like_profile

    parameters = CellCycleParameters()
    times = np.linspace(0.0, 150.0, int(num_times))
    builder = KernelBuilder(
        parameters, num_cells=int(num_cells), phase_bins=int(phase_bins)
    )
    simulator = PopulationSimulator(
        parameters, builder.volume_model, builder.initial_condition
    )
    history = simulator.run(int(num_cells), float(times.max()), rng)
    kernel = builder.build_from_history(history, times, simulator)
    truth = ftsz_like_profile()
    measurements = kernel.apply_function(truth)
    basis = SplineBasis(num_basis=int(num_basis))
    lambdas = default_lambda_grid(int(lambda_count))

    def fresh_problem() -> DeconvolutionProblem:
        return DeconvolutionProblem(
            ForwardModel(kernel, basis),
            measurements,
            constraints=default_constraints(),
            parameters=parameters,
        )

    stages: dict[str, float] = {}
    stages["kernel_build"] = _time(
        lambda: builder.build_from_history(history, times, simulator), repeats
    )

    lam = 1e-3
    stages["problem_assembly_cold"] = _time(
        lambda: fresh_problem().solve(lam, backend="active_set"), repeats
    )
    problem = fresh_problem()
    base = problem.solve(lam, backend="active_set")
    stages["qp_solve"] = _time(
        lambda: problem.solve(lam, backend="active_set"), repeats
    )
    stages["qp_solve_warm"] = _time(
        lambda: problem.solve(
            lam, backend="active_set", x0=base.x, active_set=base.active_set
        ),
        repeats,
    )

    stages["lambda_gcv"] = _time(
        lambda: generalized_cross_validation(problem, lambdas), repeats
    )
    stages["lambda_kfold"] = _time(
        lambda: k_fold_cross_validation(
            problem, lambdas, num_folds=min(5, int(num_times)), backend="auto", rng=0
        ),
        repeats,
    )

    deconvolver = Deconvolver(kernel, parameters=parameters, num_basis=int(num_basis))
    stages["bootstrap"] = _time(
        lambda: bootstrap_deconvolution(
            deconvolver,
            times,
            measurements,
            lam=lam,
            num_replicates=int(num_replicates),
            rng=0,
        ),
        repeats,
    )

    config = {
        "num_cells": int(num_cells),
        "phase_bins": int(phase_bins),
        "num_times": int(num_times),
        "num_basis": int(num_basis),
        "num_replicates": int(num_replicates),
        "lambda_count": int(lambda_count),
        "repeats": int(repeats),
    }
    is_default = all(config[key] == DEFAULT_CONFIG[key] for key in DEFAULT_CONFIG if key != "repeats")
    speedups = {}
    if is_default:
        for stage, seed_seconds in SEED_BASELINE_SECONDS.items():
            if stages.get(stage, 0.0) > 0.0:
                speedups[stage] = round(seed_seconds / stages[stage], 2)
    return {
        "benchmark": "solvepath",
        "config": config,
        "stages_seconds": stages,
        "seed_baseline_seconds": SEED_BASELINE_SECONDS if is_default else None,
        "speedup_vs_seed": speedups or None,
        "platform": platform.platform(),
    }


def write_baseline(report: dict, path: str) -> None:
    """Write a benchmark report as indented JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(report: dict) -> str:
    """Human-readable per-stage summary of a report."""
    lines = [f"solvepath benchmark ({report['config']})"]
    speedups = report.get("speedup_vs_seed") or {}
    for stage, seconds in sorted(report["stages_seconds"].items()):
        line = f"  {stage:16s} {seconds * 1e3:10.3f} ms"
        if stage in speedups:
            line += f"   ({speedups[stage]:.1f}x vs seed)"
        lines.append(line)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.benchmarks.solvepath``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes, one repeat")
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument("--repeats", type=int, default=None, help="override repeat count")
    args = parser.parse_args(argv)

    config = dict(SMOKE_CONFIG if args.smoke else DEFAULT_CONFIG)
    if args.repeats is not None:
        config["repeats"] = args.repeats
    report = run_solvepath_benchmark(**config)
    print(format_report(report))
    if args.output:
        write_baseline(report, args.output)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
