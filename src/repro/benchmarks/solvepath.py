"""Per-stage timing harness for the warm-started, shared-factorization solve path.

Times the layers the solve-path PRs thread through -- QP solve (cold,
cached-workspace and warm-started), lambda search (GCV and both k-fold CV
engines), residual bootstrap, Monte-Carlo kernel build and multi-species
``fit_many`` batches -- on one representative deconvolution workload, and
emits a JSON baseline (``BENCH_solvepath.json``) so the perf trajectory can
be tracked across PRs.

Run the full-size benchmark and refresh the committed baseline with::

    PYTHONPATH=src python -m repro.benchmarks.solvepath --output BENCH_solvepath.json

The CI bench-regression job re-times the default sizes with fewer repeats and
fails on any stage slower than the committed baseline by more than a generous
tolerance::

    python -m repro.benchmarks.solvepath --quick --compare BENCH_solvepath.json

A ``--smoke`` mode (small sizes, one repeat) runs inside the tier-1 test flow
(``tests/test_bench_smoke.py``) so the harness itself cannot rot.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Callable

import numpy as np

# Wall-clock seed timings of the stages before the shared-factorization
# solve path landed (PR 1), measured at the default sizes below on the PR's
# build machine.  Kept in the emitted JSON so every report carries its own
# reference point.
SEED_BASELINE_SECONDS = {
    # problem.solve on an assembled problem; the seed had no caches, so its
    # every solve matches today's "qp_solve" stage definition.
    "qp_solve": 2.06e-4,
    "lambda_gcv": 6.0e-4,
    "lambda_kfold": 5.13e-2,
    "bootstrap": 7.03e-1,
    "kernel_build": 8.7e-3,
}

# Timings of the PR 1 solve path at the default sizes (same machine), before
# the batched CV / kernel / multi-species layer (PR 2) landed: the stages
# that existed are PR 1's committed BENCH_solvepath.json numbers, the
# fit_many stages were measured by running this workload against the PR 1
# tree.  They anchor the ``speedup_vs_pr1`` column of every default-size
# report.
PR1_BASELINE_SECONDS = {
    "qp_solve": 3.396e-5,
    "qp_solve_warm": 2.669e-5,
    "problem_assembly_cold": 3.487e-3,
    "lambda_gcv": 2.256e-4,
    "lambda_kfold": 1.450e-2,
    "bootstrap": 1.316e-2,
    "kernel_build": 7.877e-3,
    "fit_many_gcv": 4.345e-3,
    "fit_many_kfold": 1.190e-1,
}

# Timings of the PR 2 batched CV / kernel / multi-species layer at the
# default sizes (same machine): the values of PR 2's committed
# BENCH_solvepath.json.  They anchor the ``speedup_vs_pr2`` column, i.e. what
# the batched multi-RHS engine and the fused kernel build (PR 3) bought.
PR2_BASELINE_SECONDS = {
    "qp_solve": 3.622e-5,
    "qp_solve_warm": 2.489e-5,
    "problem_assembly_cold": 3.355e-3,
    "lambda_gcv": 1.574e-4,
    "lambda_kfold": 1.392e-3,
    "bootstrap": 1.297e-2,
    "kernel_build": 3.280e-3,
    "fit_many_gcv": 3.853e-3,
    "fit_many_kfold": 1.753e-2,
}

# Timings of the PR 3 batched multi-RHS / fused-kernel tree at the default
# sizes (same machine): the values of PR 3's committed BENCH_solvepath.json.
# The stages the session layer (PR 4) introduced were measured by running
# their equivalent workload against the PR 3 tree: ``problem_assembly_warm``
# is PR 3's cold assembly (nothing was memoised), ``session_multi_grid`` is
# one fresh Deconvolver + one ``fit`` per grid with pre-built kernels, and
# ``fit_stream`` is the same vectors as individual warm ``fit`` calls.  They anchor the ``speedup_vs_pr3`` column, i.e. what the
# shared assembly pipeline, cross-grid session caches and streaming API
# bought.  ``qp_solve_batch`` was likewise re-measured against the PR 3 tree
# (that solver path is untouched by PR 4); PR 3's committed 8.9e-4 was an
# outlier recorded under machine load.
PR3_BASELINE_SECONDS = {
    "qp_solve": 3.753e-5,
    "qp_solve_warm": 2.666e-5,
    "qp_solve_batch": 1.40e-4,
    "problem_assembly_cold": 3.596e-3,
    "problem_assembly_warm": 3.371e-3,
    "lambda_gcv": 1.656e-4,
    "lambda_kfold": 9.078e-4,
    "bootstrap": 2.171e-3,
    "kernel_build": 3.699e-3,
    "fit_many_gcv": 2.909e-3,
    "fit_many_kfold": 1.000e-2,
    "session_multi_grid": 3.388e-2,
    "fit_stream": 4.260e-3,
}

# Timings of the PR 4 session/streaming tree at the default sizes (same
# machine): the values of PR 4's committed BENCH_solvepath.json.  The
# ``service_throughput`` entry is the equivalent workload run against the
# PR 4 tree — the same seeded 320-request mix as one-request-at-a-time warm
# ``Deconvolver.fit`` calls (PR 4 had no service runtime, so one-at-a-time is
# exactly what a service caller got).  They anchor the ``speedup_vs_pr4``
# column, i.e. what the micro-batching service runtime (scheduler, shard
# pool, result cache) and the lazy-diagnostics result layer bought.
PR4_BASELINE_SECONDS = {
    "qp_solve": 3.374e-5,
    "qp_solve_warm": 2.574e-5,
    "qp_solve_batch": 1.412e-4,
    "problem_assembly_cold": 2.179e-3,
    "problem_assembly_warm": 3.311e-4,
    "lambda_gcv": 1.561e-4,
    "lambda_kfold": 7.888e-4,
    "bootstrap": 1.544e-3,
    "kernel_build": 3.706e-3,
    "fit_many_gcv": 2.882e-3,
    "fit_many_kfold": 1.015e-2,
    "session_multi_grid": 1.562e-3,
    "fit_stream": 1.685e-3,
    "service_throughput": 4.792e-2,
}

# Timings of the PR 5 service-runtime tree at the default sizes (same
# machine): the values of PR 5's committed BENCH_solvepath.json.  They
# anchor the ``speedup_vs_pr5`` column — in this PR chiefly a *regression*
# guard: the SLO admission control, adaptive batching window and breaker
# bookkeeping added to the scheduler must keep ``service_throughput`` within
# a few percent of the PR 5 happy path (no ``service_slo`` entry: PR 5 had
# no deadline/priority machinery to time).
PR5_BASELINE_SECONDS = {
    "qp_solve": 3.383e-5,
    "qp_solve_warm": 2.670e-5,
    "qp_solve_batch": 1.324e-4,
    "problem_assembly_cold": 2.145e-3,
    "problem_assembly_warm": 3.487e-4,
    "lambda_gcv": 1.666e-4,
    "lambda_kfold": 8.700e-4,
    "bootstrap": 1.516e-3,
    "kernel_build": 3.787e-3,
    "fit_many_gcv": 1.413e-3,
    "fit_many_kfold": 9.490e-3,
    "session_multi_grid": 1.245e-3,
    "fit_stream": 7.192e-4,
    "service_throughput": 9.532e-3,
}

# Timings of the PR 6 SLO/fault-injection tree at the default sizes (same
# machine): the values of PR 6's committed BENCH_solvepath.json.  They
# anchor the ``speedup_vs_pr6`` column — what the pluggable kernel-backend
# layer bought.  Under the numpy reference (the default) the dispatch must
# cost ~nothing, so this column doubles as the dispatch-overhead guard;
# under the ``[compiled]`` extra the ``*_compiled`` stages carry the JIT
# win (those stages are new in this PR and have no PR 6 anchor).
PR6_BASELINE_SECONDS = {
    "qp_solve": 4.749e-5,
    "qp_solve_warm": 2.515e-5,
    "qp_solve_batch": 2.105e-4,
    "problem_assembly_cold": 3.270e-3,
    "problem_assembly_warm": 5.916e-4,
    "lambda_gcv": 2.928e-4,
    "lambda_kfold": 1.677e-3,
    "bootstrap": 2.156e-3,
    "kernel_build": 5.436e-3,
    "fit_many_gcv": 2.005e-3,
    "fit_many_kfold": 1.320e-2,
    "session_multi_grid": 2.495e-3,
    "fit_stream": 1.716e-3,
    "service_throughput": 1.551e-2,
    "service_slo": 2.186e-2,
}

# Timings of the PR 8 network-edge tree (which also carries PR 7's pluggable
# kernel-backend dispatch — PR 7 never refreshed the committed baseline, so
# its anchor and PR 8's are one snapshot) at the default sizes (same
# machine): the values of PR 8's committed BENCH_solvepath.json.  They
# anchor the ``speedup_vs_pr8`` column — what the process execution engine
# and the cross-lambda stacked eig-solve bought.  On a single-core container
# the multi-core win cannot show here; the stacked mixed-lambda solve shows
# up in ``service_throughput`` (mixed-lambda micro-batches collapse to one
# LAPACK call), and the core-scaling curve lives in the report's
# ``service_scaling`` section, which PR 8 had no counterpart for.
PR8_BASELINE_SECONDS = {
    "qp_solve": 5.321e-5,
    "qp_solve_warm": 4.239e-5,
    "qp_solve_batch": 2.368e-4,
    "problem_assembly_cold": 3.270e-3,
    "problem_assembly_warm": 5.044e-4,
    "problem_assembly_compiled": 2.771e-3,
    "lambda_gcv": 2.696e-4,
    "lambda_kfold": 1.482e-3,
    "bootstrap": 2.309e-3,
    "kernel_build": 5.239e-3,
    "kernel_build_compiled": 5.367e-3,
    "fit_many_gcv": 2.662e-3,
    "fit_many_kfold": 1.672e-2,
    "session_multi_grid": 2.130e-3,
    "fit_stream": 1.270e-3,
    "service_throughput": 1.927e-2,
    "service_slo": 2.787e-2,
}

DEFAULT_CONFIG = {
    "num_cells": 6000,
    "phase_bins": 80,
    "num_times": 16,
    "num_basis": 14,
    "num_replicates": 50,
    "lambda_count": 13,
    "num_species": 8,
    "num_grids": 4,
    "num_stream": 32,
    "num_service": 320,
    "repeats": 5,
}

SMOKE_CONFIG = {
    "num_cells": 800,
    "phase_bins": 30,
    "num_times": 8,
    "num_basis": 8,
    "num_replicates": 4,
    "lambda_count": 5,
    "num_species": 3,
    "num_grids": 2,
    "num_stream": 6,
    "num_service": 12,
    "repeats": 1,
}

# CI sizes: the default workload (so stages are comparable against the
# committed baseline) with fewer repeats to keep the job short.
QUICK_REPEATS = 2


def _time(function: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``function()``."""
    best = np.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return float(best)


def run_solvepath_benchmark(
    *,
    num_cells: int = DEFAULT_CONFIG["num_cells"],
    phase_bins: int = DEFAULT_CONFIG["phase_bins"],
    num_times: int = DEFAULT_CONFIG["num_times"],
    num_basis: int = DEFAULT_CONFIG["num_basis"],
    num_replicates: int = DEFAULT_CONFIG["num_replicates"],
    lambda_count: int = DEFAULT_CONFIG["lambda_count"],
    num_species: int = DEFAULT_CONFIG["num_species"],
    num_grids: int = DEFAULT_CONFIG["num_grids"],
    num_stream: int = DEFAULT_CONFIG["num_stream"],
    num_service: int = DEFAULT_CONFIG["num_service"],
    repeats: int = DEFAULT_CONFIG["repeats"],
    rng: int = 0,
) -> dict:
    """Time every solve-path stage once and return the report dictionary.

    Stages (seconds each):

    * ``kernel_build`` -- batched ``build_from_history`` on a shared
      population history (memoised pair expansion, Horner volume pass).
    * ``kernel_build_compiled`` -- the same kernel build re-timed under the
      ``numba`` kernel backend (one untimed warm-up call pays the JIT).
      When the ``[compiled]`` extra is not installed this runs on the numpy
      reference via the documented fallback; the report's ``backend``
      section records which backend actually executed.
    * ``problem_assembly_compiled`` -- the cold assembly stage (memos
      cleared each repeat) under the ``numba`` backend: the constraint
      quadrature reductions run through the compiled kernels.  Same
      fallback rule as ``kernel_build_compiled``.
    * ``problem_assembly_cold`` -- fresh problem assembly (design, penalty,
      constraint rows) plus one solve with the module-level assembly memos
      cleared first: the genuinely cold path, whose remaining win is the
      shared ``AssemblyContext`` (one quadrature + one basis table pass for
      the whole constraint stack instead of one per constraint).
    * ``problem_assembly_warm`` -- the same fresh assembly with the memos
      warm: the constraint tables and penalty Gram come from the
      module-level caches, so only the design products and the solve remain.
    * ``session_multi_grid`` -- one fit on each of ``num_grids`` measurement
      grids through a fresh ``FitSession`` with pre-registered kernels: the
      per-fit work matches the cold stage's (one assembly, one solve), so
      the number is directly comparable to ``problem_assembly_cold *
      num_grids`` — per-grid assembly rides the warm memos and the shared
      constraint rows, amortising it to near zero.
    * ``fit_stream`` -- ``num_stream`` measurement vectors submitted one at
      a time to a warm session and flushed once: the streaming API's
      amortised multi-RHS cost versus one ``fit`` per vector.
    * ``qp_solve`` -- ``problem.solve`` on an assembled problem through the
      per-lambda cached Hessian/Cholesky workspace (the seed solver
      refactorized here on every call).
    * ``qp_solve_warm`` -- workspace solve warm-started with the previous
      solution and active set.
    * ``qp_solve_batch`` -- one stacked multi-RHS ``solve_batch`` over
      ``num_replicates`` gradients sharing the per-lambda factorization
      (whole batch, not per row).
    * ``lambda_gcv`` -- eigendecomposition GCV over the lambda grid.
    * ``lambda_kfold`` -- k-fold CV through the per-fold generalised
      eigendecomposition plan.  With best-of-``repeats`` timing the plan is
      cached after the first repeat, so this measures the *warm* CV call:
      diagonal rescales plus the batched KKT verification of the remembered
      active sets, with constrained solves only where the sets changed.
    * ``bootstrap`` -- residual bootstrap through the batched engine (all
      replicates as one multi-RHS solve seeded with the base fit's active
      set).
    * ``fit_many_gcv`` / ``fit_many_kfold`` -- multi-species batch of
      ``num_species`` fits sharing one workspace and the lambda grid's
      eigendecompositions/fold plans across species; final solves run
      through the batched engine grouped by selected lambda.
    * ``service_throughput`` -- the seeded mixed service workload
      (``num_service`` requests over the session grids: mixed genes, noise
      levels, smoothing settings, 30% bit-exact repeats, 5% automatic
      selection) pushed through the micro-batching scheduler
      (``repro.service``) on a warm pool.  The report's ``service`` section
      carries the serial one-request-at-a-time reference timing, the
      speedup, the coalescing factor, p95 latency and the verified maximum
      coefficient gap against direct fits.
    * ``service_slo`` -- the same request count reshaped by the ``hotkey``
      chaos scenario (traffic sharded over four pool configurations with one
      taking ~90%, half the requests carrying deadlines, mixed priorities)
      through the SLO-aware scheduler.  The report's ``service_slo`` section
      carries the shed rate, deadline-miss rate, p95 latency and the SLO
      verdict — the cost and behaviour of the admission-control machinery
      under skewed traffic.
    * ``service_scaling`` -- the throughput workload through the *process*
      runner (``MicroBatchScheduler(runner="process")``) at increasing
      worker counts; the stage value is the highest-count point and the
      report's ``service_scaling`` section carries the whole curve (rps,
      p95 and verified gap per point) plus the host core count.  The curve
      is informational on purpose: a single-core container cannot show the
      multi-core win, only its overhead.
    """
    from repro import backends as kernel_backends
    from repro.cellcycle.kernel import KernelBuilder
    from repro.cellcycle.parameters import CellCycleParameters
    from repro.cellcycle.population import PopulationSimulator
    from repro.core.basis import SplineBasis
    from repro.core.constraints import clear_assembly_caches, default_constraints
    from repro.core.deconvolver import Deconvolver
    from repro.core.forward import ForwardModel
    from repro.core.lambda_selection import (
        default_lambda_grid,
        generalized_cross_validation,
        k_fold_cross_validation,
    )
    from repro.core.problem import DeconvolutionProblem
    from repro.core.uncertainty import bootstrap_deconvolution
    from repro.data.synthetic import ftsz_like_profile

    parameters = CellCycleParameters()
    times = np.linspace(0.0, 150.0, int(num_times))
    builder = KernelBuilder(
        parameters, num_cells=int(num_cells), phase_bins=int(phase_bins)
    )
    simulator = PopulationSimulator(
        parameters, builder.volume_model, builder.initial_condition
    )
    history = simulator.run(int(num_cells), float(times.max()), rng)
    kernel = builder.build_from_history(history, times, simulator)
    truth = ftsz_like_profile()
    measurements = kernel.apply_function(truth)
    basis = SplineBasis(num_basis=int(num_basis))
    lambdas = default_lambda_grid(int(lambda_count))

    def fresh_problem() -> DeconvolutionProblem:
        return DeconvolutionProblem(
            ForwardModel(kernel, basis),
            measurements,
            constraints=default_constraints(),
            parameters=parameters,
        )

    stages: dict[str, float] = {}
    stages["kernel_build"] = _time(
        lambda: builder.build_from_history(history, times, simulator), repeats
    )

    lam = 1e-3

    def cold_assembly() -> None:
        # Cold constraint assembly: drop the module-level memos so every
        # repeat re-pays the quadrature and basis tables (the shared
        # AssemblyContext still serves all three constraints — the stage's
        # remaining win over PR 3).  The penalty Gram rides the shared
        # ``basis`` instance's own cache, exactly as in the PR 1-3 stage
        # definition, so the timing stays comparable across baselines.
        clear_assembly_caches()
        fresh_problem().solve(lam, backend="active_set")

    stages["problem_assembly_cold"] = _time(cold_assembly, repeats)

    # Compiled-backend variants of the two hottest build stages: the same
    # bodies re-timed under the ``numba`` backend (which resolves to the
    # numpy reference, with a logged warning, when the [compiled] extra is
    # not installed).  One untimed warm-up call per stage pays the JIT
    # compilation — cached across processes when NUMBA_CACHE_DIR is set.
    with kernel_backends.use_backend("numba") as compiled_backend:
        compiled_stage_backend = compiled_backend.name
        builder.build_from_history(history, times, simulator)
        stages["kernel_build_compiled"] = _time(
            lambda: builder.build_from_history(history, times, simulator), repeats
        )
        cold_assembly()
        stages["problem_assembly_compiled"] = _time(cold_assembly, repeats)
    # Drop the memos the compiled passes populated so the warm stages below
    # re-warm them under the active (default) backend.
    clear_assembly_caches()

    fresh_problem()  # warm the module-level assembly memos
    stages["problem_assembly_warm"] = _time(
        lambda: fresh_problem().solve(lam, backend="active_set"), repeats
    )
    problem = fresh_problem()
    base = problem.solve(lam, backend="active_set")
    stages["qp_solve"] = _time(
        lambda: problem.solve(lam, backend="active_set"), repeats
    )
    stages["qp_solve_warm"] = _time(
        lambda: problem.solve(
            lam, backend="active_set", x0=base.x, active_set=base.active_set
        ),
        repeats,
    )
    batch_rng = np.random.default_rng(3)
    replicate_matrix = measurements[:, None] + 0.01 * batch_rng.normal(
        size=(measurements.size, int(num_replicates))
    )
    stages["qp_solve_batch"] = _time(
        lambda: problem.solve_batch(
            lam, replicate_matrix, shared_active_set=base.active_set
        ),
        repeats,
    )

    stages["lambda_gcv"] = _time(
        lambda: generalized_cross_validation(problem, lambdas), repeats
    )
    stages["lambda_kfold"] = _time(
        lambda: k_fold_cross_validation(
            problem, lambdas, num_folds=min(5, int(num_times)), backend="auto", rng=0
        ),
        repeats,
    )

    deconvolver = Deconvolver(kernel, parameters=parameters, num_basis=int(num_basis))
    stages["bootstrap"] = _time(
        lambda: bootstrap_deconvolution(
            deconvolver,
            times,
            measurements,
            lam=lam,
            num_replicates=int(num_replicates),
            rng=0,
        ),
        repeats,
    )

    # Multi-species batch: scaled copies of the base series with seeded noise.
    species_rng = np.random.default_rng(7)
    matrix = np.column_stack(
        [
            measurements * (1.0 + 0.2 * species)
            + 0.01 * species_rng.normal(size=measurements.size)
            for species in range(int(num_species))
        ]
    )
    batch_deconvolver = Deconvolver(
        kernel, parameters=parameters, num_basis=int(num_basis)
    )
    stages["fit_many_gcv"] = _time(
        lambda: batch_deconvolver.fit_many(times, matrix, lambda_method="gcv"),
        repeats,
    )
    stages["fit_many_kfold"] = _time(
        lambda: batch_deconvolver.fit_many(times, matrix, lambda_method="kfold"),
        repeats,
    )

    # Session stage: one experiment spanning several measurement time grids,
    # one fit per grid — the per-fit work is exactly the cold stage's (one
    # assembly, one solve), so the timing is directly comparable to
    # ``problem_assembly_cold * num_grids``.  Kernels are pre-built (from the
    # shared history) and registered, and the deconvolver is constructed in
    # the setup, so the stage isolates what a fresh session amortises: warm
    # per-grid assembly plus the batched solves.
    grids_per_session = max(1, int(num_grids))
    session_grids = [
        np.linspace(0.0, 150.0 - 5.0 * index, int(num_times))
        for index in range(grids_per_session)
    ]
    session_kernels = [kernel] + [
        builder.build_from_history(history, grid, simulator)
        for grid in session_grids[1:]
    ]
    grid_rng = np.random.default_rng(13)
    session_vectors = [
        grid_kernel.apply_function(truth)
        + 0.01 * grid_rng.normal(size=grid_kernel.num_measurements)
        for grid_kernel in session_kernels
    ]
    session_deconvolver = Deconvolver(parameters=parameters, num_basis=int(num_basis))

    def run_session_multi_grid() -> None:
        session = session_deconvolver.session(fresh=True)
        for grid_kernel in session_kernels:
            session.register_kernel(grid_kernel)
        for grid, vector in zip(session_grids, session_vectors):
            session.submit(grid, vector, lam=lam)
        session.flush()

    run_session_multi_grid()  # warm the assembly/penalty memos
    stages["session_multi_grid"] = _time(run_session_multi_grid, repeats)

    # Streaming: vectors arrive one at a time on a warm session and are
    # flushed through one stacked multi-RHS solve.
    stream_rng = np.random.default_rng(17)
    stream_vectors = measurements[None, :] + 0.01 * stream_rng.normal(
        size=(max(2, int(num_stream)), measurements.size)
    )
    stream_session = Deconvolver(
        kernel, parameters=parameters, num_basis=int(num_basis)
    ).session()
    stream_session.submit(times, stream_vectors[0], lam=lam)
    stream_session.flush()

    def run_fit_stream() -> None:
        for vector in stream_vectors:
            stream_session.submit(times, vector, lam=lam)
        stream_session.flush()

    stages["fit_stream"] = _time(run_fit_stream, repeats)

    # Service throughput: the seeded mixed workload through the
    # micro-batching scheduler on a warm session pool, versus the same
    # requests as one-at-a-time ``fit`` calls.  The result cache is cleared
    # inside the timed function so within-workload repeats hit (that is the
    # service's job) but nothing leaks across repeats.
    from repro.service import (
        MicroBatchScheduler,
        SessionPool,
        WorkloadSpec,
        build_workload,
        max_coefficient_gap,
        serial_reference,
        warm_serial_reference,
    )

    def service_factory(_key) -> Deconvolver:
        service_deconvolver = Deconvolver(parameters=parameters, num_basis=int(num_basis))
        service_session = service_deconvolver.session()
        for grid_kernel in session_kernels:
            service_session.register_kernel(grid_kernel)
        return service_deconvolver

    workload = build_workload(
        session_kernels,
        WorkloadSpec(
            num_requests=max(2, int(num_service)),
            repeat_ratio=0.3,
            selection_fraction=0.05,
            seed=23,
        ),
    )
    scheduler = MicroBatchScheduler(
        SessionPool(service_factory), max_batch=64, max_wait_ms=0.2, workers=2
    )
    scheduler.map(workload)  # warm the pool's kernels/assembly/factorizations

    def run_service() -> None:
        scheduler.cache.clear()
        scheduler.map(workload)

    stages["service_throughput"] = _time(run_service, repeats)
    service_reference = service_factory("serial-reference")
    warm_serial_reference(service_reference, workload)
    serial_results: list = []

    def run_serial() -> None:
        serial_results[:] = serial_reference(service_reference, workload)

    service_serial = _time(run_serial, repeats)
    scheduler.cache.clear()
    scheduler.telemetry.reset()
    service_results = scheduler.map(workload)
    service_snapshot = scheduler.telemetry.snapshot()
    scheduler.shutdown()
    service_gap = max_coefficient_gap(service_results, serial_results)
    service_report = {
        "requests": len(workload),
        "serial_seconds": service_serial,
        "speedup_vs_serial": round(service_serial / stages["service_throughput"], 2),
        "throughput_rps": round(len(workload) / stages["service_throughput"], 1),
        "coalescing_factor": round(service_snapshot["coalescing_factor"], 2),
        "p95_latency_ms": round(
            service_snapshot["histograms"]["latency_seconds"]["p95"] * 1e3, 3
        ),
        "max_coefficient_gap": service_gap,
    }

    # Service SLO: the hotkey chaos scenario (sharded traffic, one hot
    # shard, deadlines and priorities on half the requests) through the
    # SLO-aware scheduler.  Futures resolving with typed shed/deadline
    # errors are part of the contract, so the timed loop waits on
    # ``exception()`` instead of ``result()``.
    from repro.service.loadgen import SCENARIOS, apply_scenario, evaluate_slo

    slo_scenario = SCENARIOS["hotkey"]
    slo_workload = apply_scenario(workload, slo_scenario, seed=23)
    slo_scheduler = MicroBatchScheduler(
        SessionPool(service_factory), max_batch=64, max_wait_ms=0.2, workers=2
    )

    def run_service_slo() -> None:
        slo_scheduler.cache.clear()
        for future in slo_scheduler.submit_many(slo_workload):
            future.exception()

    run_service_slo()  # warm every shard the skewed traffic addresses
    stages["service_slo"] = _time(run_service_slo, repeats)
    slo_scheduler.cache.clear()
    slo_scheduler.telemetry.reset()
    run_service_slo()
    slo_snapshot = slo_scheduler.telemetry.snapshot()
    slo_scheduler.shutdown()
    slo_verdict = evaluate_slo(slo_snapshot, slo_scenario.slo)
    slo_report = {
        "scenario": slo_scenario.name,
        "requests": len(slo_workload),
        "shed_rate": round(slo_snapshot["shed_rate"], 4),
        "deadline_miss_rate": round(slo_snapshot["deadline_miss_rate"], 4),
        "p95_latency_ms": round(
            slo_snapshot["histograms"]["latency_seconds"]["p95"] * 1e3, 3
        ),
        "errors": slo_snapshot["counters"].get("errors", 0),
        "slo_passed": bool(slo_verdict["passed"]),
    }

    # Service core-scaling: the same workload through the process runner at
    # increasing worker counts.  Each point gets a fresh scheduler whose
    # spawned workers hold their own warm session replicas, so a hot shard
    # fans out across real cores instead of serializing under the GIL.  The
    # curve is *reported*, never asserted — on a single-core container every
    # point necessarily lands near the 1-worker rps, and the spawn/IPC
    # overhead is exactly what the report should show there.
    import os as _os

    from repro.service import SessionFactory

    scaling_factory = SessionFactory(
        parameters=parameters, num_basis=int(num_basis), kernels=session_kernels
    )
    scaling_counts = (1, 2, 4) if int(num_service) >= 64 else (1, 2)
    scaling_points: list[dict] = []
    for count in scaling_counts:
        scaling_scheduler = MicroBatchScheduler(
            SessionPool(scaling_factory),
            max_batch=64,
            max_wait_ms=0.2,
            runner="process",
            workers=count,
        )
        scaling_scheduler.map(workload)  # spawn + warm the worker replicas

        def run_scaling() -> None:
            scaling_scheduler.cache.clear()
            scaling_scheduler.map(workload)

        point_seconds = _time(run_scaling, repeats)
        scaling_scheduler.cache.clear()
        scaling_scheduler.telemetry.reset()
        scaling_results = scaling_scheduler.map(workload)
        scaling_snapshot = scaling_scheduler.telemetry.snapshot()
        scaling_scheduler.shutdown()
        scaling_points.append(
            {
                "workers": count,
                "seconds": point_seconds,
                "rps": round(len(workload) / point_seconds, 1),
                "p95_latency_ms": round(
                    scaling_snapshot["histograms"]["latency_seconds"]["p95"] * 1e3, 3
                ),
                "speedup_vs_one_worker": round(
                    scaling_points[0]["seconds"] / point_seconds, 2
                )
                if scaling_points
                else 1.0,
                "max_coefficient_gap": max_coefficient_gap(
                    scaling_results, serial_results
                ),
            }
        )
    stages["service_scaling"] = scaling_points[-1]["seconds"]
    scaling_report = {
        "requests": len(workload),
        "cpu_count": _os.cpu_count(),
        "thread_runner_seconds": stages["service_throughput"],
        "points": scaling_points,
    }

    config = {
        "num_cells": int(num_cells),
        "phase_bins": int(phase_bins),
        "num_times": int(num_times),
        "num_basis": int(num_basis),
        "num_replicates": int(num_replicates),
        "lambda_count": int(lambda_count),
        "num_species": int(num_species),
        "num_grids": int(num_grids),
        "num_stream": int(num_stream),
        "num_service": int(num_service),
        "repeats": int(repeats),
    }
    is_default = all(config[key] == DEFAULT_CONFIG[key] for key in DEFAULT_CONFIG if key != "repeats")

    def baseline_speedups(baseline: dict[str, float]) -> dict[str, float] | None:
        if not is_default:
            return None
        speedups = {
            stage: round(seconds / stages[stage], 2)
            for stage, seconds in baseline.items()
            if stages.get(stage, 0.0) > 0.0
        }
        return speedups or None

    backend_report = {
        "active": kernel_backends.active_backend().name,
        "requested": kernel_backends.requested_backend(),
        "compiled_stages_backend": compiled_stage_backend,
        "available": kernel_backends.available_backends(),
    }

    return {
        "benchmark": "solvepath",
        "config": config,
        "backend": backend_report,
        "stages_seconds": stages,
        "service": service_report,
        "service_slo": slo_report,
        "service_scaling": scaling_report,
        "seed_baseline_seconds": SEED_BASELINE_SECONDS if is_default else None,
        "speedup_vs_seed": baseline_speedups(SEED_BASELINE_SECONDS),
        "pr1_baseline_seconds": PR1_BASELINE_SECONDS if is_default else None,
        "speedup_vs_pr1": baseline_speedups(PR1_BASELINE_SECONDS),
        "pr2_baseline_seconds": PR2_BASELINE_SECONDS if is_default else None,
        "speedup_vs_pr2": baseline_speedups(PR2_BASELINE_SECONDS),
        "pr3_baseline_seconds": PR3_BASELINE_SECONDS if is_default else None,
        "speedup_vs_pr3": baseline_speedups(PR3_BASELINE_SECONDS),
        "pr4_baseline_seconds": PR4_BASELINE_SECONDS if is_default else None,
        "speedup_vs_pr4": baseline_speedups(PR4_BASELINE_SECONDS),
        "pr5_baseline_seconds": PR5_BASELINE_SECONDS if is_default else None,
        "speedup_vs_pr5": baseline_speedups(PR5_BASELINE_SECONDS),
        "pr6_baseline_seconds": PR6_BASELINE_SECONDS if is_default else None,
        "speedup_vs_pr6": baseline_speedups(PR6_BASELINE_SECONDS),
        "pr8_baseline_seconds": PR8_BASELINE_SECONDS if is_default else None,
        "speedup_vs_pr8": baseline_speedups(PR8_BASELINE_SECONDS),
        "platform": platform.platform(),
    }


def write_baseline(report: dict, path: str) -> None:
    """Write a benchmark report as indented JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(report: dict) -> str:
    """Human-readable per-stage summary of a report.

    Each stage line carries a backend column: the kernel backend the stage
    actually executed on (``*_compiled`` stages run on the report's
    ``compiled_stages_backend`` — the numpy reference when the ``[compiled]``
    extra is absent — everything else on the active backend).
    """
    lines = [f"solvepath benchmark ({report['config']})"]
    backend = report.get("backend") or {}
    active_name = backend.get("active", "numpy")
    compiled_name = backend.get("compiled_stages_backend", active_name)
    if backend:
        available = ", ".join(
            sorted(name for name, ok in backend.get("available", {}).items() if ok)
        )
        lines.append(
            f"  backend: active {active_name!r}, compiled stages on "
            f"{compiled_name!r} (available: {available})"
        )
    seed_speedups = report.get("speedup_vs_seed") or {}
    pr1_speedups = report.get("speedup_vs_pr1") or {}
    pr2_speedups = report.get("speedup_vs_pr2") or {}
    pr3_speedups = report.get("speedup_vs_pr3") or {}
    pr4_speedups = report.get("speedup_vs_pr4") or {}
    pr5_speedups = report.get("speedup_vs_pr5") or {}
    pr6_speedups = report.get("speedup_vs_pr6") or {}
    pr8_speedups = report.get("speedup_vs_pr8") or {}
    for stage, seconds in sorted(report["stages_seconds"].items()):
        ran_on = compiled_name if stage.endswith("_compiled") else active_name
        line = f"  {stage:26s} {seconds * 1e3:10.3f} ms  [{ran_on}]"
        if stage in seed_speedups:
            line += f"   ({seed_speedups[stage]:.1f}x vs seed)"
        if stage in pr1_speedups:
            line += f"   ({pr1_speedups[stage]:.1f}x vs PR1)"
        if stage in pr2_speedups:
            line += f"   ({pr2_speedups[stage]:.1f}x vs PR2)"
        if stage in pr3_speedups:
            line += f"   ({pr3_speedups[stage]:.1f}x vs PR3)"
        if stage in pr4_speedups:
            line += f"   ({pr4_speedups[stage]:.1f}x vs PR4)"
        if stage in pr5_speedups:
            line += f"   ({pr5_speedups[stage]:.1f}x vs PR5)"
        if stage in pr6_speedups:
            line += f"   ({pr6_speedups[stage]:.1f}x vs PR6)"
        if stage in pr8_speedups:
            line += f"   ({pr8_speedups[stage]:.1f}x vs PR8)"
        lines.append(line)
    service = report.get("service")
    if service:
        lines.append(
            "  service: {requests} requests, {speedup_vs_serial:.2f}x vs one-at-a-time "
            "({throughput_rps:.0f} rps, coalescing {coalescing_factor:.1f}, "
            "p95 {p95_latency_ms:.2f} ms, max gap {max_coefficient_gap:.1e})".format(**service)
        )
    slo = report.get("service_slo")
    if slo:
        lines.append(
            "  service_slo ({scenario}): {requests} requests, shed {shed_rate:.1%}, "
            "deadline misses {deadline_miss_rate:.1%}, p95 {p95_latency_ms:.2f} ms, "
            "SLO {verdict}".format(
                verdict="pass" if slo["slo_passed"] else "FAIL", **slo
            )
        )
    scaling = report.get("service_scaling")
    if scaling:
        curve = ", ".join(
            "{workers}w {rps:.0f} rps ({speedup_vs_one_worker:.2f}x, "
            "p95 {p95_latency_ms:.1f} ms)".format(**point)
            for point in scaling["points"]
        )
        lines.append(
            f"  service_scaling ({scaling['cpu_count']} cores, "
            f"{scaling['requests']} requests, process runner): {curve}"
        )
    return "\n".join(lines)


def compare_reports(
    report: dict, baseline: dict, *, tolerance: float = 3.0, min_seconds: float = 1e-3
) -> tuple[bool, str]:
    """Per-stage regression check of a report against a committed baseline.

    A stage regresses when it is slower than
    ``tolerance * max(baseline, min_seconds)``: the ratio tolerance absorbs
    machine-to-machine differences, and the ``min_seconds`` floor keeps
    microsecond-scale stages (whose absolute timings on a noisy shared CI
    runner can legitimately exceed any fixed ratio of a fast reference
    machine) from tripping the gate — those stages only fail once they cross
    ``tolerance * min_seconds`` outright.  Stages missing from the
    *baseline* are listed but do not fail the check (new stages appear
    before their baseline is refreshed); stages the baseline has but the
    current run lacks DO fail it — a stage silently dropping out of the
    benchmark is itself a regression in coverage.

    Returns ``(ok, table)`` with a readable per-stage diff table.
    """
    if tolerance <= 1.0:
        raise ValueError("tolerance must be greater than 1.0")
    stages = report.get("stages_seconds", {})
    reference = baseline.get("stages_seconds", {})
    lines = [
        f"{'stage':26s} {'current':>12s} {'baseline':>12s} {'ratio':>8s}  verdict",
    ]
    ok = True
    for stage in sorted(set(stages) | set(reference)):
        current = stages.get(stage)
        base = reference.get(stage)
        if current is None:
            ok = False
            lines.append(f"{stage:26s} {'-':>12s} {base * 1e3:10.3f} ms {'-':>8s}  REGRESSION (stage missing from current run)")
            continue
        if base is None:
            lines.append(f"{stage:26s} {current * 1e3:10.3f} ms {'-':>12s} {'-':>8s}  missing in baseline (ignored)")
            continue
        ratio = current / base if base > 0 else float("inf")
        verdict = "ok"
        if current > tolerance * max(base, min_seconds):
            verdict = f"REGRESSION (> {tolerance:.1f}x)"
            ok = False
        elif ratio > tolerance:
            verdict = "ok (below floor)"
        lines.append(
            f"{stage:26s} {current * 1e3:10.3f} ms {base * 1e3:10.3f} ms {ratio:7.2f}x  {verdict}"
        )
    report_config = {k: v for k, v in report.get("config", {}).items() if k != "repeats"}
    baseline_config = {k: v for k, v in baseline.get("config", {}).items() if k != "repeats"}
    if report_config != baseline_config:
        lines.append(
            "note: config differs from baseline "
            f"({report_config} vs {baseline_config}); ratios are not comparable"
        )
    return ok, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.benchmarks.solvepath``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes, one repeat")
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"default sizes with {QUICK_REPEATS} repeats (the CI bench gate)",
    )
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument("--repeats", type=int, default=None, help="override repeat count")
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE_JSON",
        help="compare per-stage timings against a committed baseline report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="slowdown factor at which --compare fails a stage (default 3.0)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1e-3,
        help="baseline floor in seconds for the --compare gate; stages faster "
        "than this only fail once they exceed tolerance * floor (default 1e-3)",
    )
    args = parser.parse_args(argv)
    if args.smoke and args.quick:
        parser.error("--smoke and --quick are mutually exclusive")

    config = dict(SMOKE_CONFIG if args.smoke else DEFAULT_CONFIG)
    if args.quick:
        config["repeats"] = QUICK_REPEATS
    if args.repeats is not None:
        config["repeats"] = args.repeats
    report = run_solvepath_benchmark(**config)
    print(format_report(report))
    if args.output:
        write_baseline(report, args.output)
        print(f"wrote {args.output}")
    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        ok, table = compare_reports(
            report, baseline, tolerance=args.tolerance, min_seconds=args.floor
        )
        print(f"\nbench regression gate vs {args.compare} (tolerance {args.tolerance:.1f}x):")
        print(table)
        if not ok:
            print("FAILED: at least one stage regressed beyond tolerance")
            return 1
        print("ok: no stage regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
