"""In-package benchmark harnesses.

Unlike the pytest-benchmark suites under ``benchmarks/`` (repo root), the
modules here are importable library code: they can run in a smoke mode inside
the tier-1 test flow and emit machine-readable baselines (e.g.
``BENCH_solvepath.json``) that future PRs diff against.
"""

__all__ = ["solvepath"]
