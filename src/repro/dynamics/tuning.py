"""Oscillation-period measurement and tuning to a target period.

The paper chooses Lotka-Volterra parameters "which yield a 150 minute period
oscillation (similar to the average cell cycle time for Caulobacter)".  These
utilities measure the period of any :class:`~repro.dynamics.base.ODEModel`
limit cycle from a simulated trajectory and exploit the time-rescaling
property (multiplying every rate by ``k`` divides the period by ``k``) to hit
a target period exactly.
"""

from __future__ import annotations

import numpy as np

from repro.dynamics.base import ODEModel
from repro.utils.validation import check_positive


def _upward_crossings(times: np.ndarray, values: np.ndarray, level: float) -> np.ndarray:
    """Times at which ``values`` crosses ``level`` from below (linear interp)."""
    below = values[:-1] < level
    above = values[1:] >= level
    indices = np.flatnonzero(below & above)
    if indices.size == 0:
        return np.array([])
    fraction = (level - values[indices]) / (values[indices + 1] - values[indices])
    return times[indices] + fraction * (times[indices + 1] - times[indices])


def estimate_period(
    model: ODEModel,
    *,
    species: int = 0,
    t_max: float | None = None,
    num_points: int = 8001,
    transient_fraction: float = 0.25,
) -> float:
    """Estimate the oscillation period of ``model`` from a long simulation.

    The period is measured as the median spacing between successive upward
    crossings of the species' mean value, after discarding an initial
    transient.

    Parameters
    ----------
    model:
        The oscillator.
    species:
        Index of the species whose oscillation is analysed.
    t_max:
        Simulation horizon; defaults to a generous multiple of the slowest
        rate implied by the default trajectory.
    num_points:
        Number of output samples of the simulation.
    transient_fraction:
        Fraction of the trajectory discarded before measuring crossings.
    """
    if t_max is None:
        t_max = 2000.0
    check_positive(t_max, "t_max")
    solution = model.simulate(t_max, num_points=num_points, method="rk45")
    start = int(transient_fraction * solution.times.size)
    times = solution.times[start:]
    values = solution.states[start:, species]
    level = float(np.mean(values))
    crossings = _upward_crossings(times, values, level)
    if crossings.size < 3:
        raise RuntimeError(
            "could not detect enough oscillation cycles; increase t_max or check the model"
        )
    return float(np.median(np.diff(crossings)))


def scale_to_period(model: ODEModel, measured_period: float, target_period: float) -> ODEModel:
    """Rescale a model's rates so its period becomes ``target_period``."""
    check_positive(measured_period, "measured_period")
    check_positive(target_period, "target_period")
    factor = measured_period / target_period
    if not hasattr(model, "with_rates_scaled"):
        raise TypeError(
            f"{type(model).__name__} does not support rate scaling; implement with_rates_scaled"
        )
    return model.with_rates_scaled(factor)


def tune_to_period(
    model: ODEModel,
    target_period: float,
    *,
    species: int = 0,
    t_max: float | None = None,
    refine: int = 1,
) -> ODEModel:
    """Tune ``model`` to oscillate with ``target_period``.

    One measurement/rescale round is exact for models whose rates scale time
    linearly (all models in this package); ``refine`` extra rounds are
    available as a safeguard for models where the scaling is only approximate.
    """
    check_positive(target_period, "target_period")
    tuned = model
    for _ in range(max(1, int(refine))):
        measured = estimate_period(tuned, species=species, t_max=t_max)
        if abs(measured - target_period) / target_period < 1e-3:
            return tuned
        tuned = scale_to_period(tuned, measured, target_period)
    return tuned
