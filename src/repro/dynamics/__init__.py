"""Single-cell dynamic models used as deconvolution test cases.

The paper validates the method on a Lotka-Volterra oscillator tuned to the
150-minute Caulobacter cycle (Sec. 4.1).  This package implements that model
plus two further cell-cycle-like oscillators (Goodwin, repressilator) as
extension workloads, together with utilities for measuring oscillation
periods, rescaling models to a target period and extracting phase profiles
``f(phi)`` from limit-cycle trajectories.
"""

from repro.dynamics.base import ODEModel
from repro.dynamics.lotka_volterra import LotkaVolterraModel
from repro.dynamics.goodwin import GoodwinOscillator
from repro.dynamics.repressilator import Repressilator
from repro.dynamics.tuning import estimate_period, scale_to_period, tune_to_period
from repro.dynamics.phase_profiles import PhaseProfile, extract_phase_profiles

__all__ = [
    "ODEModel",
    "LotkaVolterraModel",
    "GoodwinOscillator",
    "Repressilator",
    "estimate_period",
    "scale_to_period",
    "tune_to_period",
    "PhaseProfile",
    "extract_phase_profiles",
]
