"""Goodwin oscillator — a minimal negative-feedback gene-expression oscillator.

Used as an additional, biologically flavoured workload for the deconvolution
experiments beyond the paper's Lotka-Volterra example.  The model is

    dx/dt = a / (1 + z^n) - b x      (mRNA, repressed by the end product)
    dy/dt = c x - d y                (protein)
    dz/dt = e y - f z                (end product / repressor)

which oscillates for sufficiently steep repression (``n`` of order 8 or more).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.base import ODEModel
from repro.utils.validation import check_positive


@dataclass
class GoodwinOscillator(ODEModel):
    """Three-variable Goodwin oscillator.

    Attributes
    ----------
    a, b, c, d, e, f:
        Production and degradation rates of the three species.
    n:
        Hill coefficient of the repression (must be large enough for
        sustained oscillations, typically >= 8).
    """

    a: float = 1.0
    b: float = 0.1
    c: float = 1.0
    d: float = 0.1
    e: float = 1.0
    f: float = 0.1
    n: float = 10.0

    species_names = ("mrna", "protein", "repressor")

    def __post_init__(self) -> None:
        for name in ("a", "b", "c", "d", "e", "f", "n"):
            check_positive(getattr(self, name), name)

    def rhs(self, t: float, state: np.ndarray) -> np.ndarray:
        x, y, z = state
        z_clipped = max(z, 0.0)
        return np.array(
            [
                self.a / (1.0 + z_clipped**self.n) - self.b * x,
                self.c * x - self.d * y,
                self.e * y - self.f * z,
            ]
        )

    def default_initial_state(self) -> np.ndarray:
        return np.array([0.1, 0.2, 2.5])

    def with_rates_scaled(self, factor: float) -> "GoodwinOscillator":
        """Copy with all rate constants multiplied by ``factor`` (time rescaling)."""
        check_positive(factor, "factor")
        return GoodwinOscillator(
            a=self.a * factor,
            b=self.b * factor,
            c=self.c * factor,
            d=self.d * factor,
            e=self.e * factor,
            f=self.f * factor,
            n=self.n,
        )
