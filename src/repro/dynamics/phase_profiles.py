"""Extraction of phase profiles ``f(phi)`` from limit-cycle trajectories.

To generate the "true synchronized single cell" curves of the Figure 2/3
experiments, the oscillator is integrated for a number of transient cycles,
then one full period is sampled and re-parameterised by cell-cycle phase
``phi = t / T``.  The resulting :class:`~repro.data.timeseries.PhaseProfile`
objects are what the forward kernel convolves into population data.
"""

from __future__ import annotations

import numpy as np

from repro.data.timeseries import PhaseProfile
from repro.dynamics.base import ODEModel
from repro.utils.validation import check_positive

__all__ = ["PhaseProfile", "extract_phase_profiles"]


def extract_phase_profiles(
    model: ODEModel,
    period: float,
    *,
    num_points: int = 401,
    transient_periods: int = 0,
    initial_state: np.ndarray | None = None,
    align_to_minimum: bool = False,
    species: tuple[str, ...] | None = None,
) -> dict[str, PhaseProfile]:
    """Sample each species of ``model`` over one period as a phase profile.

    Parameters
    ----------
    model:
        The oscillator.
    period:
        Oscillation period in minutes (the cell-cycle time the profile is
        synchronised to).
    num_points:
        Number of phase samples on ``[0, 1]``.
    transient_periods:
        Number of full periods integrated and discarded before sampling, so
        the trajectory settles onto its (quasi-)limit cycle.
    initial_state:
        Starting state; defaults to the model default.
    align_to_minimum:
        If ``True``, rotate the sampled cycle so phase zero coincides with the
        minimum of the first species (a common convention when the absolute
        phase origin is arbitrary).
    species:
        Optional subset of species names to return.
    """
    check_positive(period, "period")
    num_points = int(num_points)
    if num_points < 3:
        raise ValueError("num_points must be >= 3")
    transient_periods = int(transient_periods)
    if transient_periods < 0:
        raise ValueError("transient_periods must be non-negative")

    total_time = period * (transient_periods + 1)
    samples_per_period = num_points - 1
    total_points = samples_per_period * (transient_periods + 1) + 1
    solution = model.simulate(
        total_time, num_points=total_points, initial_state=initial_state, method="rk4"
    )
    start = samples_per_period * transient_periods
    cycle_states = solution.states[start : start + num_points]
    phases = np.linspace(0.0, 1.0, num_points)

    if align_to_minimum:
        shift = int(np.argmin(cycle_states[:-1, 0]))
        body = np.roll(cycle_states[:-1], -shift, axis=0)
        cycle_states = np.vstack([body, body[:1]])

    requested = species if species is not None else model.species_names
    profiles: dict[str, PhaseProfile] = {}
    for name in requested:
        index = model.species_index(name)
        profiles[name] = PhaseProfile(
            phases=phases.copy(), values=cycle_states[:, index].copy(), name=name
        )
    return profiles
