"""Repressilator — the three-gene ring oscillator of Elowitz & Leibler.

A further extension workload: six species (three mRNAs, three proteins) in a
cyclic repression ring.  In the dimensionless form used here,

    dm_i/dt = rate_scale * (alpha / (1 + p_{i-1}^n) + alpha0 - m_i)
    dp_i/dt = rate_scale * beta * (m_i - p_i)

with indices modulo three; ``rate_scale`` rescales time so the oscillation can
be tuned to the 150-minute cell cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.base import ODEModel
from repro.utils.validation import check_positive


@dataclass
class Repressilator(ODEModel):
    """Six-variable repressilator.

    Attributes
    ----------
    alpha:
        Maximal transcription rate (repressor absent).
    alpha0:
        Leaky transcription rate (repressor saturating).
    beta:
        Ratio of protein to mRNA decay rates.
    n:
        Hill coefficient of repression.
    rate_scale:
        Overall time-scale factor; larger values speed the oscillation up.
    """

    alpha: float = 220.0
    alpha0: float = 0.2
    beta: float = 0.2
    n: float = 2.0
    rate_scale: float = 1.0

    species_names = ("m1", "p1", "m2", "p2", "m3", "p3")

    def __post_init__(self) -> None:
        check_positive(self.alpha, "alpha")
        check_positive(self.alpha0, "alpha0", strict=False)
        check_positive(self.beta, "beta")
        check_positive(self.n, "n")
        check_positive(self.rate_scale, "rate_scale")

    def rhs(self, t: float, state: np.ndarray) -> np.ndarray:
        m = state[0::2]
        p = state[1::2]
        p_prev = np.roll(p, 1)  # gene i is repressed by protein i-1
        p_clipped = np.maximum(p_prev, 0.0)
        dm = self.alpha / (1.0 + p_clipped**self.n) + self.alpha0 - m
        dp = self.beta * (m - p)
        derivative = np.empty(6)
        derivative[0::2] = dm
        derivative[1::2] = dp
        return self.rate_scale * derivative

    def default_initial_state(self) -> np.ndarray:
        return np.array([1.0, 2.0, 5.0, 1.0, 10.0, 3.0])

    def with_rates_scaled(self, factor: float) -> "Repressilator":
        """Copy with the overall time scale multiplied by ``factor``."""
        check_positive(factor, "factor")
        return Repressilator(
            alpha=self.alpha,
            alpha0=self.alpha0,
            beta=self.beta,
            n=self.n,
            rate_scale=self.rate_scale * factor,
        )
