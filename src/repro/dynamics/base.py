"""Base class for single-cell ODE models."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.numerics.integrate import ODESolution, integrate_rk4, integrate_rk45
from repro.utils.validation import check_positive


class ODEModel(abc.ABC):
    """A deterministic single-cell gene-expression model ``dy/dt = rhs(t, y)``.

    Subclasses define the right-hand side, species names and a default initial
    state; this base class provides simulation helpers shared by all models.
    """

    #: Human-readable species names, one per state component.
    species_names: tuple[str, ...] = ()

    @abc.abstractmethod
    def rhs(self, t: float, state: np.ndarray) -> np.ndarray:
        """Time derivative of the state."""

    @abc.abstractmethod
    def default_initial_state(self) -> np.ndarray:
        """Default initial condition used by the simulation helpers."""

    @property
    def num_species(self) -> int:
        """Number of state components."""
        return len(self.species_names)

    def simulate(
        self,
        t_end: float,
        *,
        num_points: int = 601,
        initial_state: Sequence[float] | np.ndarray | None = None,
        t_start: float = 0.0,
        method: str = "rk4",
    ) -> ODESolution:
        """Integrate the model over ``[t_start, t_end]``.

        Parameters
        ----------
        t_end:
            Final time.
        num_points:
            Number of output samples (uniformly spaced).
        initial_state:
            Starting state; defaults to :meth:`default_initial_state`.
        t_start:
            Initial time.
        method:
            ``"rk4"`` (fixed step on the output grid refined internally) or
            ``"rk45"`` (adaptive with dense output).
        """
        check_positive(t_end - t_start, "t_end - t_start")
        state0 = (
            np.asarray(initial_state, dtype=float)
            if initial_state is not None
            else self.default_initial_state()
        )
        times = np.linspace(float(t_start), float(t_end), int(num_points))
        if method == "rk4":
            # Refine the integration grid to keep the fixed-step error small
            # regardless of the requested output resolution.
            refine = 4
            fine_times = np.linspace(float(t_start), float(t_end), refine * (int(num_points) - 1) + 1)
            solution = integrate_rk4(self.rhs, state0, fine_times)
            states = solution.interpolate(times)
            return ODESolution(times=times, states=states, num_steps=solution.num_steps)
        if method == "rk45":
            return integrate_rk45(self.rhs, state0, (float(t_start), float(t_end)), dense_times=times)
        raise ValueError(f"unknown integration method {method!r}")

    def species_index(self, name: str) -> int:
        """Index of a species by name."""
        try:
            return self.species_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown species {name!r}; available: {list(self.species_names)}"
            ) from None
