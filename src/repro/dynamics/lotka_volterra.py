"""Lotka-Volterra oscillator (the paper's Sec. 4.1 test model).

The equations (20)-(21) of the paper,

    dx1/dt = x1 (a - b x2)
    dx2/dt = x2 (c x1 - d)

are interpreted as two chemical species where binding converts ``x1`` into
``x2``.  The default parameters are chosen (via :mod:`repro.dynamics.tuning`)
so that the oscillation period is close to the 150-minute Caulobacter cycle,
matching the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.base import ODEModel
from repro.utils.validation import check_positive


@dataclass
class LotkaVolterraModel(ODEModel):
    """Lotka-Volterra oscillator with rates ``a, b, c, d``.

    Attributes
    ----------
    a:
        Net production rate of ``x1``.
    b:
        Rate of conversion of ``x1`` driven by ``x2``.
    c:
        Rate of production of ``x2`` driven by ``x1``.
    d:
        Degradation rate of ``x2``.
    x1_0, x2_0:
        Default initial concentrations.
    """

    a: float = 0.06
    b: float = 0.03
    c: float = 0.03
    d: float = 0.045
    x1_0: float = 0.6
    x2_0: float = 0.6

    species_names = ("x1", "x2")

    def __post_init__(self) -> None:
        for name in ("a", "b", "c", "d"):
            check_positive(getattr(self, name), name)
        check_positive(self.x1_0, "x1_0")
        check_positive(self.x2_0, "x2_0")

    def rhs(self, t: float, state: np.ndarray) -> np.ndarray:
        x1, x2 = state
        return np.array([x1 * (self.a - self.b * x2), x2 * (self.c * x1 - self.d)])

    def default_initial_state(self) -> np.ndarray:
        return np.array([self.x1_0, self.x2_0])

    @property
    def equilibrium(self) -> np.ndarray:
        """Coexistence equilibrium ``(d/c, a/b)``."""
        return np.array([self.d / self.c, self.a / self.b])

    def conserved_quantity(self, state: np.ndarray) -> float:
        """The Lotka-Volterra first integral ``c x1 - d ln x1 + b x2 - a ln x2``.

        Constant along trajectories; used in tests to validate the integrators.
        """
        x1, x2 = np.asarray(state, dtype=float)
        if x1 <= 0 or x2 <= 0:
            raise ValueError("the conserved quantity is defined only for positive states")
        return float(self.c * x1 - self.d * np.log(x1) + self.b * x2 - self.a * np.log(x2))

    def with_rates_scaled(self, factor: float) -> "LotkaVolterraModel":
        """Return a copy with all rates multiplied by ``factor``.

        Scaling every rate by ``k`` rescales time by ``1/k`` without changing
        the orbit shape, which is how the model is tuned to a target period.
        """
        check_positive(factor, "factor")
        return LotkaVolterraModel(
            a=self.a * factor,
            b=self.b * factor,
            c=self.c * factor,
            d=self.d * factor,
            x1_0=self.x1_0,
            x2_0=self.x2_0,
        )

    @classmethod
    def paper_oscillator(cls) -> "LotkaVolterraModel":
        """The default oscillator used in the Figure 2/3 experiments.

        Parameters are tuned so the period is ~150 minutes and the two species
        have the strongly different amplitudes visible in the paper's figures
        (``x1`` peaking near 2.5-3, ``x2`` near 10-12 in arbitrary units).
        """
        from repro.dynamics.tuning import tune_to_period

        base = cls(a=1.0, b=0.4, c=0.8, d=0.5, x1_0=0.25, x2_0=1.0)
        return tune_to_period(base, 150.0)
