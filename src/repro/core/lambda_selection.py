"""Selection of the smoothing parameter ``lambda``.

The paper selects ``lambda`` by cross-validation (following Craven & Wahba).
Two selectors are provided:

* **k-fold cross-validation** — measurements are split into folds; for each
  candidate ``lambda`` the constrained problem is solved on the training folds
  and scored by the weighted squared error on the held-out measurements.
* **generalised cross-validation (GCV)** — the classical closed-form score of
  the *unconstrained* smoother matrix
  ``S(lambda) = A (A^T W A + lambda Omega)^-1 A^T W``; inequality constraints
  are ignored in the score (the standard approximation), which is accurate
  whenever few positivity constraints are active at the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import DeconvolutionProblem
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_1d


@dataclass
class LambdaSelectionResult:
    """Outcome of a lambda search.

    Attributes
    ----------
    best_lambda:
        The selected smoothing parameter.
    scores:
        Mapping from candidate lambda to its selection score (lower is better).
    method:
        Name of the selection method used.
    """

    best_lambda: float
    scores: dict[float, float] = field(default_factory=dict)
    method: str = "gcv"


def default_lambda_grid(num: int = 13, low: float = 1e-6, high: float = 1e2) -> np.ndarray:
    """Logarithmically spaced candidate grid for ``lambda``."""
    if num < 2:
        raise ValueError("num must be >= 2")
    if not (low > 0 and high > low):
        raise ValueError("require 0 < low < high")
    return np.logspace(np.log10(low), np.log10(high), int(num))


def generalized_cross_validation(
    problem: DeconvolutionProblem,
    lambdas: np.ndarray,
) -> LambdaSelectionResult:
    """Score each candidate ``lambda`` with the GCV criterion.

    ``GCV(lambda) = (N * ||W^{1/2}(G - S G)||^2) / trace(I - S)^2`` with the
    unconstrained linear smoother ``S``.
    """
    lambdas = ensure_1d(lambdas, "lambdas")
    design = problem.forward.design_matrix
    weights = 1.0 / problem.sigma**2
    sqrt_w = np.sqrt(weights)
    weighted_design = design * weights[:, None]
    gram = design.T @ weighted_design
    num_measurements = problem.measurements.size

    scores: dict[float, float] = {}
    for lam in lambdas:
        regularised = gram + float(lam) * problem.penalty
        regularised = regularised + problem.ridge * np.eye(problem.num_coefficients)
        try:
            solve = np.linalg.solve(regularised, weighted_design.T)
        except np.linalg.LinAlgError:
            solve = np.linalg.pinv(regularised) @ weighted_design.T
        smoother = design @ solve
        residual = problem.measurements - smoother @ problem.measurements
        trace_term = num_measurements - float(np.trace(smoother))
        if trace_term <= 1e-9:
            scores[float(lam)] = np.inf
            continue
        numerator = num_measurements * float(np.sum((sqrt_w * residual) ** 2))
        scores[float(lam)] = numerator / trace_term**2

    best = min(scores, key=scores.get)
    return LambdaSelectionResult(best_lambda=best, scores=scores, method="gcv")


def k_fold_cross_validation(
    problem: DeconvolutionProblem,
    lambdas: np.ndarray,
    *,
    num_folds: int = 5,
    backend: str = "auto",
    rng: SeedLike = 0,
) -> LambdaSelectionResult:
    """Score each candidate ``lambda`` by k-fold cross-validation.

    Parameters
    ----------
    problem:
        The full deconvolution problem.
    lambdas:
        Candidate smoothing parameters.
    num_folds:
        Number of folds; capped at the number of measurements (leave-one-out).
    backend:
        QP backend used for the training fits.
    rng:
        Seed controlling the random fold assignment.
    """
    lambdas = ensure_1d(lambdas, "lambdas")
    num_measurements = problem.measurements.size
    num_folds = int(min(num_folds, num_measurements))
    if num_folds < 2:
        raise ValueError("cross-validation needs at least two folds")
    generator = as_generator(rng)
    permutation = generator.permutation(num_measurements)
    folds = np.array_split(permutation, num_folds)

    scores: dict[float, float] = {}
    for lam in lambdas:
        total = 0.0
        valid = True
        for fold in folds:
            train = np.setdiff1d(permutation, fold)
            train_problem = problem.restrict(train)
            result = train_problem.solve(float(lam), backend=backend)
            if not result.converged:
                valid = False
                break
            held_out = problem.forward.restrict(fold)
            predicted = held_out.predict(result.x)
            residual = problem.measurements[fold] - predicted
            total += float(np.sum((residual / problem.sigma[fold]) ** 2))
        scores[float(lam)] = total if valid else np.inf

    best = min(scores, key=scores.get)
    return LambdaSelectionResult(best_lambda=best, scores=scores, method="kfold")


def select_lambda(
    problem: DeconvolutionProblem,
    lambdas: np.ndarray | None = None,
    *,
    method: str = "gcv",
    num_folds: int = 5,
    backend: str = "auto",
    rng: SeedLike = 0,
) -> LambdaSelectionResult:
    """Select ``lambda`` with the requested method (``gcv`` or ``kfold``)."""
    if lambdas is None:
        lambdas = default_lambda_grid()
    if method == "gcv":
        return generalized_cross_validation(problem, lambdas)
    if method == "kfold":
        return k_fold_cross_validation(
            problem, lambdas, num_folds=num_folds, backend=backend, rng=rng
        )
    raise ValueError(f"unknown lambda selection method {method!r}")
