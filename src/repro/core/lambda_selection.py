"""Selection of the smoothing parameter ``lambda``.

The paper selects ``lambda`` by cross-validation (following Craven & Wahba).
Two selectors are provided:

* **k-fold cross-validation** — measurements are split into folds; for each
  candidate ``lambda`` the constrained problem is solved on the training folds
  and scored by the weighted squared error on the held-out measurements.  The
  default engine factors each fold *once*: a generalised eigendecomposition
  of the pencil ``(Omega, A_tr^T W A_tr + c Omega)`` (with the shift ``c``
  inside the lambda grid so the factored matrix is a well-conditioned actual
  Hessian) turns every candidate's training Hessian into the diagonal
  ``2 (1 + (lambda - c) mu)`` in the eigenbasis.  Each candidate is then an
  ``O(Nc)`` diagonal solve plus a tiny KKT correction for the equality rows;
  the constrained active-set solver only runs for the candidates whose
  unconstrained optimum violates an inequality (and those solves reuse
  per-candidate cached workspaces and warm starts).  A ``solve`` engine — the
  fold-hoisted, warm-started per-(fold, lambda) QP sweep — remains as the
  reference and the fallback for degenerate pencils.
* **generalised cross-validation (GCV)** — the classical closed-form score of
  the *unconstrained* smoother matrix
  ``S(lambda) = A (A^T W A + lambda Omega)^-1 A^T W``; inequality constraints
  are ignored in the score (the standard approximation), which is accurate
  whenever few positivity constraints are active at the optimum.  Instead of
  materialising the ``Nm x Nm`` smoother for every candidate, a one-time
  generalised eigendecomposition of ``(Omega, A^T W A + ridge I)`` reduces
  each candidate's trace and residual to ``O(Nm * Nc)`` vector work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.problem import DeconvolutionProblem
from repro.numerics.qp import (
    QPResult,
    QPWorkspace,
    QuadraticProgram,
    kkt_solve_diagonal_batch,
    solve_qp,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_1d


@dataclass
class LambdaSelectionResult:
    """Outcome of a lambda search.

    Attributes
    ----------
    best_lambda:
        The selected smoothing parameter.
    scores:
        Mapping from candidate lambda to its selection score (lower is better).
    method:
        Name of the selection method used.
    """

    best_lambda: float
    scores: dict[float, float] = field(default_factory=dict)
    method: str = "gcv"


def default_lambda_grid(num: int = 13, low: float = 1e-6, high: float = 1e2) -> np.ndarray:
    """Logarithmically spaced candidate grid for ``lambda``.

    Parameters
    ----------
    num:
        Number of candidates (at least 2).
    low, high:
        Smallest and largest candidate, ``0 < low < high``.

    Returns
    -------
    numpy.ndarray
        The candidates in ascending order, shape ``(num,)``.
    """
    if num < 2:
        raise ValueError("num must be >= 2")
    if not (low > 0 and high > low):
        raise ValueError("require 0 < low < high")
    return np.logspace(np.log10(low), np.log10(high), int(num))


def _gcv_scores_dense(
    problem: DeconvolutionProblem, lambdas: np.ndarray
) -> dict[float, float]:
    """Reference GCV scores via the dense ``Nm x Nm`` smoother matrix.

    Kept as the fallback (and cross-check) for :func:`_gcv_scores_eig`; cost
    grows with ``Nm^2`` per candidate.
    """
    design = problem.forward.design_matrix
    weights = 1.0 / problem.sigma**2
    sqrt_w = np.sqrt(weights)
    weighted_design = design * weights[:, None]
    gram = design.T @ weighted_design
    num_measurements = problem.measurements.size

    scores: dict[float, float] = {}
    for lam in lambdas:
        regularised = gram + float(lam) * problem.penalty
        regularised = regularised + problem.ridge * np.eye(problem.num_coefficients)
        try:
            solve = np.linalg.solve(regularised, weighted_design.T)
        except np.linalg.LinAlgError:
            solve = np.linalg.pinv(regularised) @ weighted_design.T
        smoother = design @ solve
        residual = problem.measurements - smoother @ problem.measurements
        trace_term = num_measurements - float(np.trace(smoother))
        if trace_term <= 1e-9:
            scores[float(lam)] = np.inf
            continue
        numerator = num_measurements * float(np.sum((sqrt_w * residual) ** 2))
        scores[float(lam)] = numerator / trace_term**2
    return scores


def _gcv_eig_pieces(
    problem: DeconvolutionProblem,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Measurement-independent pieces of the eigendecomposition GCV score.

    Cached on the problem family (see
    :meth:`~repro.core.problem.DeconvolutionProblem.selection_cache`), so a
    multi-species batch pays for the ``eigh`` once instead of once per
    species.
    """
    from scipy.linalg import eigh

    def build() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        design = problem.forward.design_matrix
        gram = problem.gram
        regulariser = gram + problem.ridge * np.eye(problem.num_coefficients)
        mu, vectors = eigh(problem.penalty, regulariser)
        # Per-mode pieces: trace contributions and reconstruction modes.
        trace_weights = np.einsum("ij,ij->j", vectors, gram @ vectors)
        modes = design @ vectors
        return mu, vectors, trace_weights, modes

    return problem.selection_cache("gcv_eig", build)


def _gcv_scores_eig(
    problem: DeconvolutionProblem, lambdas: np.ndarray
) -> dict[float, float]:
    """GCV scores from a one-time generalised eigendecomposition.

    With ``M = A^T W A + ridge I`` and the pencil ``Omega v = mu M v``
    (eigenvectors ``V`` normalised so ``V^T M V = I``), the smoother for any
    ``lambda`` is ``S = A V diag(1 / (1 + lambda mu)) V^T A^T W``.  Its trace
    and the fitted values then cost ``O(Nm * Nc)`` per candidate instead of a
    dense ``Nm x Nm`` build.  Raises ``LinAlgError`` when ``M`` is not
    positive definite (caller falls back to the dense path).
    """
    weights = 1.0 / problem.sigma**2
    mu, vectors, trace_weights, modes = _gcv_eig_pieces(problem)

    measurements = problem.measurements
    num_measurements = measurements.size
    projections = vectors.T @ (problem.weighted_design.T @ measurements)

    scores: dict[float, float] = {}
    for lam in lambdas:
        shrink_denominator = 1.0 + float(lam) * mu
        if np.any(shrink_denominator <= 0.0):
            # Numerically indefinite pencil for this lambda; defer to the
            # dense path for a trustworthy score.
            scores[float(lam)] = _gcv_scores_dense(problem, np.array([float(lam)]))[
                float(lam)
            ]
            continue
        shrink = 1.0 / shrink_denominator
        trace = float(trace_weights @ shrink)
        fitted = modes @ (shrink * projections)
        trace_term = num_measurements - trace
        if trace_term <= 1e-9:
            scores[float(lam)] = np.inf
            continue
        residual = measurements - fitted
        numerator = num_measurements * float(np.sum(weights * residual**2))
        scores[float(lam)] = numerator / trace_term**2
    return scores


def generalized_cross_validation_batch(
    problem: DeconvolutionProblem,
    measurement_matrix: np.ndarray,
    lambdas: np.ndarray,
) -> list[LambdaSelectionResult]:
    """GCV-select a lambda for every column of a measurement matrix at once.

    The score pieces that depend on the measurements are matrix-shaped
    versions of :func:`_gcv_scores_eig`'s vector work: one projection GEMM
    up front and one reconstruction GEMM per candidate, regardless of the
    number of species.  A multi-species batch therefore pays essentially one
    species' scoring cost for the whole matrix.  Scores may differ from the
    per-species path in the last floating-point digits (BLAS kernels are
    shape dependent), which is orders of magnitude below the score gaps of
    a log-spaced candidate grid; the selected lambdas are verified equal in
    the equivalence tests.

    Parameters
    ----------
    problem:
        Template problem of the family (measurements are ignored); supplies
        the cached eigendecomposition pieces, weights and design products.
    measurement_matrix:
        One species per column, shape ``(Nm, S)``.
    lambdas:
        Candidate smoothing parameters.

    Returns
    -------
    list[LambdaSelectionResult]
        One selection per column, in column order.  Falls back to the
        per-species scorer when the eigendecomposition is degenerate.
    """
    lambdas = ensure_1d(lambdas, "lambdas")
    matrix = np.asarray(measurement_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("measurement_matrix must be two-dimensional")
    try:
        mu, vectors, trace_weights, modes = _gcv_eig_pieces(problem)
    except np.linalg.LinAlgError:
        return [
            generalized_cross_validation(problem.with_measurements(matrix[:, column]), lambdas)
            for column in range(matrix.shape[1])
        ]
    weights = 1.0 / problem.sigma**2
    num_measurements, num_species = matrix.shape
    projections = vectors.T @ (problem.weighted_design.T @ matrix)
    score_rows: list[np.ndarray] = []
    for lam in lambdas:
        shrink_denominator = 1.0 + float(lam) * mu
        if np.any(shrink_denominator <= 0.0):
            # Indefinite pencil for this candidate: defer to the dense
            # per-species scorer, exactly like the vector path.
            score_rows.append(
                np.array(
                    [
                        _gcv_scores_dense(
                            problem.with_measurements(matrix[:, column]),
                            np.array([float(lam)]),
                        )[float(lam)]
                        for column in range(num_species)
                    ]
                )
            )
            continue
        shrink = 1.0 / shrink_denominator
        trace_term = num_measurements - float(trace_weights @ shrink)
        if trace_term <= 1e-9:
            score_rows.append(np.full(num_species, np.inf))
            continue
        residuals = matrix - modes @ (shrink[:, None] * projections)
        numerators = num_measurements * np.sum(weights[:, None] * residuals**2, axis=0)
        score_rows.append(numerators / trace_term**2)
    score_table = np.vstack(score_rows)
    selections: list[LambdaSelectionResult] = []
    for column in range(num_species):
        scores = {float(lam): float(score_table[row, column]) for row, lam in enumerate(lambdas)}
        best = min(scores, key=scores.get)
        selections.append(LambdaSelectionResult(best_lambda=best, scores=scores, method="gcv"))
    return selections


def generalized_cross_validation(
    problem: DeconvolutionProblem,
    lambdas: np.ndarray,
) -> LambdaSelectionResult:
    """Score each candidate ``lambda`` with the GCV criterion.

    ``GCV(lambda) = (N * ||W^{1/2}(G - S G)||^2) / trace(I - S)^2`` with the
    unconstrained linear smoother ``S``.  The whole grid is scored from one
    generalised eigendecomposition; the dense smoother build remains as a
    fallback for degenerate Gram matrices.

    Parameters
    ----------
    problem:
        The full deconvolution problem.
    lambdas:
        Candidate smoothing parameters.

    Returns
    -------
    LambdaSelectionResult
        The best candidate plus the per-candidate scores.
    """
    lambdas = ensure_1d(lambdas, "lambdas")
    try:
        scores = _gcv_scores_eig(problem, lambdas)
    except np.linalg.LinAlgError:
        scores = _gcv_scores_dense(problem, lambdas)

    best = min(scores, key=scores.get)
    return LambdaSelectionResult(best_lambda=best, scores=scores, method="gcv")


class _FoldEigState:
    """Measurement-independent eigendecomposition state of one CV fold."""

    __slots__ = (
        "train",
        "test",
        "projector",
        "diagonals",
        "eq_columns",
        "eq_vector",
        "ineq_columns",
        "ineq_vector",
        "test_modes",
        "test_sigma",
        "workspaces",
        "warm_starts",
    )

    def __init__(
        self,
        problem: DeconvolutionProblem,
        train: np.ndarray,
        test: np.ndarray,
        lambdas_descending: np.ndarray,
        shift: float,
    ) -> None:
        from scipy.linalg import eigh

        self.train = train
        self.test = test
        design = problem.forward.design_matrix
        weights = 1.0 / problem.sigma**2
        train_design = design[train]
        train_weighted = train_design * weights[train][:, None]
        gram = train_design.T @ train_weighted
        gram = 0.5 * (gram + gram.T)
        num_coefficients = problem.num_coefficients
        shifted = gram + 0.5 * problem.ridge * np.eye(num_coefficients)
        shifted += shift * problem.penalty
        # Pencil (Omega, A^T W A + ridge/2 + c Omega): the B matrix is the
        # (halved) training Hessian at lambda = c, positive definite and far
        # better conditioned than the rank-deficient fold Gram alone.  In the
        # eigenbasis every candidate's Hessian is diagonal.
        mu, vectors = eigh(problem.penalty, shifted)
        diagonals = 2.0 * (1.0 + (lambdas_descending[:, None] - shift) * mu[None, :])
        if not np.all(diagonals > 0.0) or not np.all(np.isfinite(diagonals)):
            raise np.linalg.LinAlgError("indefinite fold pencil for the lambda grid")
        self.diagonals = diagonals
        # Maps a training measurement vector straight to the eigenbasis
        # gradient: q = -2 projector @ m_train.
        self.projector = vectors.T @ train_weighted.T
        constraint_set = problem.constraint_set
        if constraint_set.has_equalities:
            self.eq_columns = constraint_set.equality_matrix @ vectors
            self.eq_vector = constraint_set.equality_vector
        else:
            self.eq_columns = None
            self.eq_vector = None
        if constraint_set.has_inequalities:
            self.ineq_columns = constraint_set.inequality_matrix @ vectors
            self.ineq_vector = constraint_set.inequality_vector
        else:
            self.ineq_columns = None
            self.ineq_vector = None
        self.test_modes = design[test] @ vectors
        self.test_sigma = problem.sigma[test]
        # Lazy per-candidate fallback state, reused across calls and species.
        self.workspaces: dict[int, QPWorkspace] = {}
        self.warm_starts: dict[int, tuple[np.ndarray, list[int]]] = {}

    def solutions(
        self, train_measurements: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Equality-constrained optima for every candidate, plus feasibility.

        Returns the eigenbasis gradient of the training measurements, the
        solutions ``Y`` (one row per candidate, in the plan's descending
        lambda order) of the training problem *without* its inequality rows,
        and a boolean mask of the candidates whose solution already satisfies
        every inequality (and is therefore the exact constrained optimum).
        """
        gradient = -2.0 * (self.projector @ train_measurements)
        solutions = -gradient[None, :] / self.diagonals
        if self.eq_columns is not None:
            # KKT correction onto the equality rows: a dense solve of one
            # (num_eq x num_eq) system per candidate.
            scaled = self.eq_columns[None, :, :] / self.diagonals[:, None, :]
            schur = scaled @ self.eq_columns.T
            residual = self.eq_vector[None, :] - solutions @ self.eq_columns.T
            multipliers = np.linalg.solve(schur, residual[..., None])[..., 0]
            solutions = solutions + np.einsum("lk,lkc->lc", multipliers, scaled)
        if self.ineq_columns is None:
            feasible = np.ones(solutions.shape[0], dtype=bool)
        else:
            slack = solutions @ self.ineq_columns.T - self.ineq_vector[None, :]
            feasible = slack.min(axis=1) >= -1e-9
        return gradient, solutions, feasible

    def kkt_solutions(
        self, gradient: np.ndarray, candidate_rows: Sequence[int], active: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched working-set KKT solves for a group of candidates.

        Solves, for every candidate index in ``candidate_rows``, the
        eigenbasis training problem with the equality rows plus the
        inequality rows ``active`` pinned, in one stacked
        :func:`~repro.numerics.qp.kkt_solve_diagonal_batch` call (the
        candidate Hessians are diagonal in the fold eigenbasis).

        Parameters
        ----------
        gradient:
            Shared eigenbasis gradient of the training measurements.
        candidate_rows:
            Candidate indices (rows of :attr:`diagonals`) to solve.
        active:
            Inequality rows pinned active for every candidate in the group.

        Returns
        -------
        tuple[numpy.ndarray, numpy.ndarray]
            ``(solutions, ineq_multipliers)`` with one row per candidate.
        """
        pieces = []
        rhs_pieces = []
        num_eq = 0
        if self.eq_columns is not None:
            pieces.append(self.eq_columns)
            rhs_pieces.append(self.eq_vector)
            num_eq = self.eq_columns.shape[0]
        if len(active):
            active_idx = np.asarray(active, dtype=int)
            pieces.append(self.ineq_columns[active_idx])
            rhs_pieces.append(self.ineq_vector[active_idx])
        if pieces:
            columns = np.vstack(pieces)
            rhs = np.concatenate(rhs_pieces)
        else:
            columns = np.zeros((0, self.diagonals.shape[1]))
            rhs = np.zeros(0)
        return kkt_solve_diagonal_batch(
            self.diagonals[np.asarray(candidate_rows, dtype=int)],
            gradient,
            columns,
            rhs,
            num_eq,
        )

    def fallback_workspace(self, index: int) -> QPWorkspace:
        """Cached active-set workspace for one candidate's diagonal Hessian."""
        workspace = self.workspaces.get(index)
        if workspace is None:
            hessian = np.diag(self.diagonals[index])
            workspace = QPWorkspace(
                QuadraticProgram(
                    hessian=hessian,
                    gradient=np.zeros(hessian.shape[0]),
                    eq_matrix=self.eq_columns,
                    eq_vector=self.eq_vector,
                    ineq_matrix=self.ineq_columns,
                    ineq_vector=self.ineq_vector,
                )
            )
            self.workspaces[index] = workspace
        return workspace


class KFoldEigPlan:
    """Shared per-fold factorization plan for k-fold cross-validation.

    The plan holds everything about a ``(fold assignment, lambda grid)``
    cross-validation that does not depend on the measurement values: per-fold
    generalised eigendecompositions, constraint rows and held-out modes in
    the eigenbasis, and the fallback QP workspaces with their warm starts.
    :meth:`score` then evaluates any measurement vector of the same problem
    family — the fast path for multi-species batches, where the plan is built
    once and scored per species.
    """

    def __init__(
        self,
        problem: DeconvolutionProblem,
        lambdas: np.ndarray,
        folds: list[np.ndarray],
        permutation: np.ndarray,
    ) -> None:
        lambdas = np.asarray(lambdas, dtype=float)
        self.sweep_order = np.argsort(lambdas, kind="stable")[::-1]
        self.lambdas_descending = lambdas[self.sweep_order]
        # Shift the pencil to the grid's geometric mean so the factored
        # matrix is an actual (well-conditioned) mid-grid Hessian.
        positive = lambdas[lambdas > 0.0]
        if positive.size:
            self.shift = float(np.exp(np.mean(np.log(positive))))
        else:
            self.shift = 1e-3
        self.folds = [
            _FoldEigState(
                problem,
                np.setdiff1d(permutation, fold),
                fold,
                self.lambdas_descending,
                self.shift,
            )
            for fold in folds
        ]

    def score(
        self, measurements: np.ndarray, *, backend: str = "auto"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Summed held-out CV scores for one measurement vector.

        Returns ``(totals, valid)`` in the *original* lambda-grid order.
        Candidates whose equality-constrained optimum is feasible are scored
        directly from the diagonal solve; the rest run the active-set solver
        in the eigenbasis, warm-started from the same candidate's previous
        solve (earlier species/call) or the preceding candidate in the sweep.
        """
        num_candidates = self.lambdas_descending.size
        totals = np.zeros(num_candidates)
        valid = np.ones(num_candidates, dtype=bool)
        for fold in self.folds:
            gradient, solutions, feasible = fold.solutions(measurements[fold.train])
            predictions = solutions @ fold.test_modes.T
            residuals = (measurements[fold.test][None, :] - predictions) / fold.test_sigma
            scores = np.einsum("lj,lj->l", residuals, residuals)
            if not np.all(feasible):
                self._solve_infeasible(
                    fold, gradient, solutions, feasible, scores, measurements, valid, backend
                )
            totals += scores
        reordered_totals = np.empty(num_candidates)
        reordered_valid = np.empty(num_candidates, dtype=bool)
        reordered_totals[self.sweep_order] = totals
        reordered_valid[self.sweep_order] = valid
        return reordered_totals, reordered_valid

    def _solve_infeasible(
        self,
        fold: _FoldEigState,
        gradient: np.ndarray,
        solutions: np.ndarray,
        feasible: np.ndarray,
        scores: np.ndarray,
        measurements: np.ndarray,
        valid: np.ndarray,
        backend: str,
    ) -> None:
        """Constrained solves for the candidates the fast path cannot score.

        Candidates with a remembered active set from a previous scoring call
        (warm cross-validation, later species of a batch) are first KKT
        verified in stacked groups — one batched diagonal solve per distinct
        active set, across all the lambdas sharing it — and only the
        candidates whose active set actually changed fall through to the
        sequential per-candidate active-set sweep.
        """
        test_values = measurements[fold.test]
        resolved = np.zeros(solutions.shape[0], dtype=bool)
        if backend in ("auto", "active_set"):
            self._verify_warm_candidates(
                fold, gradient, feasible, scores, test_values, resolved
            )
        previous: tuple[np.ndarray, list[int]] | None = None
        for index in range(solutions.shape[0]):
            if feasible[index]:
                # A feasible diagonal solution is also the best warm start
                # for the next infeasible candidate in the sweep.
                previous = (solutions[index], [])
                continue
            if resolved[index]:
                previous = fold.warm_starts[index]
                continue
            warm = fold.warm_starts.get(index, previous)
            warm_x = warm[0] if warm is not None else None
            warm_active = warm[1] if warm is not None else None
            if backend == "active_set" or backend == "auto":
                result = fold.fallback_workspace(index).solve(
                    gradient, x0=warm_x, active_set=warm_active
                )
                if backend == "auto" and not (
                    result.converged and self._feasible(fold, result.x)
                ):
                    result = self._solve_general(
                        fold, index, gradient, warm_x, warm_active, backend
                    )
            else:
                result = self._solve_general(
                    fold, index, gradient, warm_x, warm_active, backend
                )
            if not result.converged:
                valid[index] = False
                continue
            solution, active = self._refine_with_kkt(fold, gradient, index, result)
            fold.warm_starts[index] = (solution, active)
            previous = (solution, active)
            residual = (test_values - fold.test_modes @ solution) / fold.test_sigma
            scores[index] = float(residual @ residual)

    @staticmethod
    def _verify_warm_candidates(
        fold: _FoldEigState,
        gradient: np.ndarray,
        feasible: np.ndarray,
        scores: np.ndarray,
        test_values: np.ndarray,
        resolved: np.ndarray,
        tol: float = 1e-9,
    ) -> None:
        """Score candidates whose remembered active set still checks out.

        Groups the infeasible candidates by the active set remembered from a
        previous scoring call and solves each group's working-set KKT
        systems in one stacked diagonal-batch call; candidates whose
        solution passes the primal/dual verification are exact constrained
        optima and are scored directly, never entering the per-candidate
        active-set loop.  On warm cross-validation calls (and later species
        of a multi-species batch) this replaces nearly every fallback solve
        with vectorized linear algebra.
        """
        if fold.ineq_columns is None:
            return
        groups: dict[tuple[int, ...], list[int]] = {}
        for index in np.flatnonzero(~feasible):
            warm = fold.warm_starts.get(int(index))
            if warm is not None and warm[1]:
                groups.setdefault(tuple(warm[1]), []).append(int(index))
        margin = tol * (1.0 + np.abs(fold.ineq_vector))
        for active, rows in groups.items():
            try:
                x, lagrange = fold.kkt_solutions(gradient, rows, list(active))
            except np.linalg.LinAlgError:
                continue
            ok = np.all(
                x @ fold.ineq_columns.T - fold.ineq_vector[None, :] >= -margin[None, :],
                axis=1,
            )
            if lagrange.size:
                ok &= lagrange.min(axis=1) >= -tol
            for position, index in enumerate(rows):
                if not ok[position]:
                    continue
                solution = x[position]
                fold.warm_starts[index] = (solution, list(active))
                residual = (test_values - fold.test_modes @ solution) / fold.test_sigma
                scores[index] = float(residual @ residual)
                resolved[index] = True

    @staticmethod
    def _refine_with_kkt(
        fold: _FoldEigState,
        gradient: np.ndarray,
        index: int,
        result: QPResult,
        tol: float = 1e-9,
    ) -> tuple[np.ndarray, list[int]]:
        """Snap an active-set solution onto its working-set KKT system.

        Re-solving the discovered working set through the same batched KKT
        path used for warm verification makes repeated scoring reproducible:
        a later call that verifies the remembered set reproduces this
        solution to the last float rounding, so warm CV scores match the
        cold ones to machine precision.  Falls back to the solver's own
        iterate when the refined point fails the KKT check (degenerate
        working set, or a backend that does not report active sets).
        """
        active = list(result.active_set)
        if not active or fold.ineq_columns is None:
            return result.x, active
        try:
            x, lagrange = fold.kkt_solutions(gradient, [index], active)
        except np.linalg.LinAlgError:
            return result.x, active
        solution = x[0]
        margin = tol * (1.0 + np.abs(fold.ineq_vector))
        if np.all(fold.ineq_columns @ solution - fold.ineq_vector >= -margin) and (
            lagrange.size == 0 or float(lagrange[0].min()) >= -tol
        ):
            return solution, active
        return result.x, active

    @staticmethod
    def _feasible(fold: _FoldEigState, solution: np.ndarray, tol: float = 1e-6) -> bool:
        """Constraint check of an eigenbasis solution (mirrors ``solve_qp``)."""
        if fold.eq_columns is not None:
            if np.max(np.abs(fold.eq_columns @ solution - fold.eq_vector), initial=0.0) > tol:
                return False
        if fold.ineq_columns is not None:
            if np.min(fold.ineq_columns @ solution - fold.ineq_vector, initial=0.0) < -tol:
                return False
        return True

    def _solve_general(
        self,
        fold: _FoldEigState,
        index: int,
        gradient: np.ndarray,
        warm_x: np.ndarray | None,
        warm_active: list[int] | None,
        backend: str,
    ) -> QPResult:
        """Full ``solve_qp`` dispatch (SciPy fallback) for one candidate."""
        workspace = fold.fallback_workspace(index)
        program = QuadraticProgram(
            hessian=workspace.hessian,
            gradient=gradient,
            eq_matrix=fold.eq_columns,
            eq_vector=fold.eq_vector,
            ineq_matrix=fold.ineq_columns,
            ineq_vector=fold.ineq_vector,
        )
        return solve_qp(
            program, warm_x, backend=backend, active_set=warm_active, workspace=workspace
        )


def _kfold_scores_solve(
    problem: DeconvolutionProblem,
    lambdas: np.ndarray,
    folds: list[np.ndarray],
    permutation: np.ndarray,
    backend: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference engine: per-(fold, lambda) constrained solves.

    Each fold's restricted training problem and held-out forward model are
    assembled once; within a fold the lambda grid is swept from the largest
    candidate down with every training solve warm-started from the previous
    lambda's solution and active set (the per-lambda Hessian factorizations
    are cached on the restricted problem).
    """
    # Sweep from the largest lambda down: heavily smoothed solves are nearly
    # unconstrained (cheap from cold), and each solve then warm-starts the
    # next, slightly less smoothed one -- about half the active-set
    # iterations of an ascending sweep.
    sweep_order = np.argsort(lambdas, kind="stable")[::-1]
    totals = np.zeros(lambdas.size)
    valid = np.ones(lambdas.size, dtype=bool)
    for fold in folds:
        train = np.setdiff1d(permutation, fold)
        train_problem = problem.restrict(train)
        held_out = problem.forward.restrict(fold)
        fold_measurements = problem.measurements[fold]
        fold_sigma = problem.sigma[fold]
        warm_x = None
        warm_active = None
        for index in sweep_order:
            if not valid[index]:
                continue
            result = train_problem.solve(
                float(lambdas[index]),
                backend=backend,
                x0=warm_x,
                active_set=warm_active,
            )
            if not result.converged:
                valid[index] = False
                continue
            warm_x, warm_active = result.x, result.active_set
            residual = fold_measurements - held_out.predict(result.x)
            totals[index] += float(np.sum((residual / fold_sigma) ** 2))
    return totals, valid


def k_fold_cross_validation(
    problem: DeconvolutionProblem,
    lambdas: np.ndarray,
    *,
    num_folds: int = 5,
    backend: str = "auto",
    rng: SeedLike = 0,
    engine: str = "auto",
) -> LambdaSelectionResult:
    """Score each candidate ``lambda`` by k-fold cross-validation.

    Parameters
    ----------
    problem:
        The full deconvolution problem.
    lambdas:
        Candidate smoothing parameters.
    num_folds:
        Number of folds; capped at the number of measurements (leave-one-out).
    backend:
        QP backend used for the training fits.
    rng:
        Seed controlling the random fold assignment.
    engine:
        ``"eig"`` scores the grid through per-fold generalised
        eigendecompositions (each candidate's training factor is a diagonal
        rescale; the constrained solver only runs for candidates with active
        inequalities), ``"solve"`` runs the per-(fold, lambda) warm-started
        QP sweep, and ``"auto"`` (default) uses ``"eig"`` with an automatic
        fallback to ``"solve"`` for degenerate pencils.  The eigendecomposition
        plan is cached on the problem family, so repeated calls — and sibling
        problems from
        :meth:`~repro.core.problem.DeconvolutionProblem.with_measurements`,
        e.g. a multi-species batch — reuse the per-fold factorizations.

    Returns
    -------
    LambdaSelectionResult
        The best candidate plus the summed held-out scores (``inf`` for
        candidates whose training solves failed to converge).
    """
    lambdas = ensure_1d(lambdas, "lambdas")
    num_measurements = problem.measurements.size
    num_folds = int(min(num_folds, num_measurements))
    if num_folds < 2:
        raise ValueError("cross-validation needs at least two folds")
    if engine not in ("auto", "eig", "solve"):
        raise ValueError(f"unknown k-fold engine {engine!r}")
    generator = as_generator(rng)
    permutation = generator.permutation(num_measurements)
    folds = np.array_split(permutation, num_folds)

    totals = valid = None
    if engine in ("auto", "eig"):
        fingerprint = (num_folds, permutation.tobytes(), lambdas.tobytes())
        try:
            plan = problem.selection_cache(
                "kfold_eig",
                lambda: KFoldEigPlan(problem, lambdas, folds, permutation),
                fingerprint=fingerprint,
            )
            totals, valid = plan.score(problem.measurements, backend=backend)
        except np.linalg.LinAlgError:
            if engine == "eig":
                raise
    if totals is None:
        totals, valid = _kfold_scores_solve(problem, lambdas, folds, permutation, backend)

    scores = {
        float(lambdas[index]): float(totals[index]) if valid[index] else np.inf
        for index in range(lambdas.size)
    }
    best = min(scores, key=scores.get)
    return LambdaSelectionResult(best_lambda=best, scores=scores, method="kfold")


def select_lambda(
    problem: DeconvolutionProblem,
    lambdas: np.ndarray | None = None,
    *,
    method: str = "gcv",
    num_folds: int = 5,
    backend: str = "auto",
    rng: SeedLike = 0,
    engine: str = "auto",
) -> LambdaSelectionResult:
    """Select ``lambda`` with the requested method.

    Parameters
    ----------
    problem:
        The full deconvolution problem.
    lambdas:
        Candidate grid; defaults to :func:`default_lambda_grid`.
    method:
        ``"gcv"`` (:func:`generalized_cross_validation`) or ``"kfold"``
        (:func:`k_fold_cross_validation`).
    num_folds, backend, rng, engine:
        Passed through to the k-fold selector; ignored by GCV.

    Returns
    -------
    LambdaSelectionResult
        The best candidate plus the per-candidate scores.
    """
    if lambdas is None:
        lambdas = default_lambda_grid()
    if method == "gcv":
        return generalized_cross_validation(problem, lambdas)
    if method == "kfold":
        return k_fold_cross_validation(
            problem, lambdas, num_folds=num_folds, backend=backend, rng=rng, engine=engine
        )
    raise ValueError(f"unknown lambda selection method {method!r}")
