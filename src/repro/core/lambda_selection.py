"""Selection of the smoothing parameter ``lambda``.

The paper selects ``lambda`` by cross-validation (following Craven & Wahba).
Two selectors are provided:

* **k-fold cross-validation** — measurements are split into folds; for each
  candidate ``lambda`` the constrained problem is solved on the training folds
  and scored by the weighted squared error on the held-out measurements.  The
  fold-restricted problems are assembled once (not once per lambda), and the
  training solves sweep the lambda grid from the largest candidate down
  (heavily smoothed solves are nearly unconstrained, hence cheap from cold),
  warm-starting each solve from the previous lambda's solution and active set.
* **generalised cross-validation (GCV)** — the classical closed-form score of
  the *unconstrained* smoother matrix
  ``S(lambda) = A (A^T W A + lambda Omega)^-1 A^T W``; inequality constraints
  are ignored in the score (the standard approximation), which is accurate
  whenever few positivity constraints are active at the optimum.  Instead of
  materialising the ``Nm x Nm`` smoother for every candidate, a one-time
  generalised eigendecomposition of ``(Omega, A^T W A + ridge I)`` reduces
  each candidate's trace and residual to ``O(Nm * Nc)`` vector work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import DeconvolutionProblem
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_1d


@dataclass
class LambdaSelectionResult:
    """Outcome of a lambda search.

    Attributes
    ----------
    best_lambda:
        The selected smoothing parameter.
    scores:
        Mapping from candidate lambda to its selection score (lower is better).
    method:
        Name of the selection method used.
    """

    best_lambda: float
    scores: dict[float, float] = field(default_factory=dict)
    method: str = "gcv"


def default_lambda_grid(num: int = 13, low: float = 1e-6, high: float = 1e2) -> np.ndarray:
    """Logarithmically spaced candidate grid for ``lambda``."""
    if num < 2:
        raise ValueError("num must be >= 2")
    if not (low > 0 and high > low):
        raise ValueError("require 0 < low < high")
    return np.logspace(np.log10(low), np.log10(high), int(num))


def _gcv_scores_dense(
    problem: DeconvolutionProblem, lambdas: np.ndarray
) -> dict[float, float]:
    """Reference GCV scores via the dense ``Nm x Nm`` smoother matrix.

    Kept as the fallback (and cross-check) for :func:`_gcv_scores_eig`; cost
    grows with ``Nm^2`` per candidate.
    """
    design = problem.forward.design_matrix
    weights = 1.0 / problem.sigma**2
    sqrt_w = np.sqrt(weights)
    weighted_design = design * weights[:, None]
    gram = design.T @ weighted_design
    num_measurements = problem.measurements.size

    scores: dict[float, float] = {}
    for lam in lambdas:
        regularised = gram + float(lam) * problem.penalty
        regularised = regularised + problem.ridge * np.eye(problem.num_coefficients)
        try:
            solve = np.linalg.solve(regularised, weighted_design.T)
        except np.linalg.LinAlgError:
            solve = np.linalg.pinv(regularised) @ weighted_design.T
        smoother = design @ solve
        residual = problem.measurements - smoother @ problem.measurements
        trace_term = num_measurements - float(np.trace(smoother))
        if trace_term <= 1e-9:
            scores[float(lam)] = np.inf
            continue
        numerator = num_measurements * float(np.sum((sqrt_w * residual) ** 2))
        scores[float(lam)] = numerator / trace_term**2
    return scores


def _gcv_scores_eig(
    problem: DeconvolutionProblem, lambdas: np.ndarray
) -> dict[float, float]:
    """GCV scores from a one-time generalised eigendecomposition.

    With ``M = A^T W A + ridge I`` and the pencil ``Omega v = mu M v``
    (eigenvectors ``V`` normalised so ``V^T M V = I``), the smoother for any
    ``lambda`` is ``S = A V diag(1 / (1 + lambda mu)) V^T A^T W``.  Its trace
    and the fitted values then cost ``O(Nm * Nc)`` per candidate instead of a
    dense ``Nm x Nm`` build.  Raises ``LinAlgError`` when ``M`` is not
    positive definite (caller falls back to the dense path).
    """
    from scipy.linalg import eigh

    design = problem.forward.design_matrix
    weights = 1.0 / problem.sigma**2
    gram = problem.gram
    regulariser = gram + problem.ridge * np.eye(problem.num_coefficients)
    mu, vectors = eigh(problem.penalty, regulariser)

    measurements = problem.measurements
    num_measurements = measurements.size
    # Per-mode pieces: trace contributions, data projections, reconstruction.
    trace_weights = np.einsum("ij,ij->j", vectors, gram @ vectors)
    modes = design @ vectors
    projections = vectors.T @ (problem.weighted_design.T @ measurements)

    scores: dict[float, float] = {}
    for lam in lambdas:
        shrink_denominator = 1.0 + float(lam) * mu
        if np.any(shrink_denominator <= 0.0):
            # Numerically indefinite pencil for this lambda; defer to the
            # dense path for a trustworthy score.
            scores[float(lam)] = _gcv_scores_dense(problem, np.array([float(lam)]))[
                float(lam)
            ]
            continue
        shrink = 1.0 / shrink_denominator
        trace = float(trace_weights @ shrink)
        fitted = modes @ (shrink * projections)
        trace_term = num_measurements - trace
        if trace_term <= 1e-9:
            scores[float(lam)] = np.inf
            continue
        residual = measurements - fitted
        numerator = num_measurements * float(np.sum(weights * residual**2))
        scores[float(lam)] = numerator / trace_term**2
    return scores


def generalized_cross_validation(
    problem: DeconvolutionProblem,
    lambdas: np.ndarray,
) -> LambdaSelectionResult:
    """Score each candidate ``lambda`` with the GCV criterion.

    ``GCV(lambda) = (N * ||W^{1/2}(G - S G)||^2) / trace(I - S)^2`` with the
    unconstrained linear smoother ``S``.  The whole grid is scored from one
    generalised eigendecomposition; the dense smoother build remains as a
    fallback for degenerate Gram matrices.
    """
    lambdas = ensure_1d(lambdas, "lambdas")
    try:
        scores = _gcv_scores_eig(problem, lambdas)
    except np.linalg.LinAlgError:
        scores = _gcv_scores_dense(problem, lambdas)

    best = min(scores, key=scores.get)
    return LambdaSelectionResult(best_lambda=best, scores=scores, method="gcv")


def k_fold_cross_validation(
    problem: DeconvolutionProblem,
    lambdas: np.ndarray,
    *,
    num_folds: int = 5,
    backend: str = "auto",
    rng: SeedLike = 0,
) -> LambdaSelectionResult:
    """Score each candidate ``lambda`` by k-fold cross-validation.

    Each fold's restricted training problem and held-out forward model are
    assembled once; within a fold the lambda grid is swept from the largest
    candidate down with every training solve warm-started from the previous
    lambda's solution and active set (the per-lambda Hessian factorizations
    are cached on the restricted problem).

    Parameters
    ----------
    problem:
        The full deconvolution problem.
    lambdas:
        Candidate smoothing parameters.
    num_folds:
        Number of folds; capped at the number of measurements (leave-one-out).
    backend:
        QP backend used for the training fits.
    rng:
        Seed controlling the random fold assignment.
    """
    lambdas = ensure_1d(lambdas, "lambdas")
    num_measurements = problem.measurements.size
    num_folds = int(min(num_folds, num_measurements))
    if num_folds < 2:
        raise ValueError("cross-validation needs at least two folds")
    generator = as_generator(rng)
    permutation = generator.permutation(num_measurements)
    folds = np.array_split(permutation, num_folds)

    # Sweep from the largest lambda down: heavily smoothed solves are nearly
    # unconstrained (cheap from cold), and each solve then warm-starts the
    # next, slightly less smoothed one -- about half the active-set
    # iterations of an ascending sweep.
    sweep_order = np.argsort(lambdas, kind="stable")[::-1]
    totals = np.zeros(lambdas.size)
    valid = np.ones(lambdas.size, dtype=bool)
    for fold in folds:
        train = np.setdiff1d(permutation, fold)
        train_problem = problem.restrict(train)
        held_out = problem.forward.restrict(fold)
        fold_measurements = problem.measurements[fold]
        fold_sigma = problem.sigma[fold]
        warm_x = None
        warm_active = None
        for index in sweep_order:
            if not valid[index]:
                continue
            result = train_problem.solve(
                float(lambdas[index]),
                backend=backend,
                x0=warm_x,
                active_set=warm_active,
            )
            if not result.converged:
                valid[index] = False
                continue
            warm_x, warm_active = result.x, result.active_set
            residual = fold_measurements - held_out.predict(result.x)
            totals[index] += float(np.sum((residual / fold_sigma) ** 2))

    scores = {
        float(lambdas[index]): float(totals[index]) if valid[index] else np.inf
        for index in range(lambdas.size)
    }
    best = min(scores, key=scores.get)
    return LambdaSelectionResult(best_lambda=best, scores=scores, method="kfold")


def select_lambda(
    problem: DeconvolutionProblem,
    lambdas: np.ndarray | None = None,
    *,
    method: str = "gcv",
    num_folds: int = 5,
    backend: str = "auto",
    rng: SeedLike = 0,
) -> LambdaSelectionResult:
    """Select ``lambda`` with the requested method (``gcv`` or ``kfold``)."""
    if lambdas is None:
        lambdas = default_lambda_grid()
    if method == "gcv":
        return generalized_cross_validation(problem, lambdas)
    if method == "kfold":
        return k_fold_cross_validation(
            problem, lambdas, num_folds=num_folds, backend=backend, rng=rng
        )
    raise ValueError(f"unknown lambda selection method {method!r}")
