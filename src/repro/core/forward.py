"""Forward model: map a synchronous profile to population measurements.

Implements ``G(t_m) = \\int Q(phi, t_m) f(phi) dphi`` (eq. 3) for profiles
given either as callables, as samples on the kernel's phase grid, or as
coefficient vectors in a :class:`~repro.core.basis.SplineBasis`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cellcycle.kernel import VolumeKernel
from repro.core.basis import SplineBasis
from repro.utils.validation import ensure_1d


def convolve_profile(
    kernel: VolumeKernel,
    profile: Callable[[np.ndarray], np.ndarray] | np.ndarray,
) -> np.ndarray:
    """Population measurements produced by a synchronous profile.

    Parameters
    ----------
    kernel:
        Discretised volume-density kernel.
    profile:
        Either a callable ``f(phi)`` or an array of samples at the kernel's
        phase-bin centres.

    Returns
    -------
    numpy.ndarray
        ``G(t_m)`` at the kernel's measurement times.
    """
    if callable(profile):
        return kernel.apply_function(profile)
    return kernel.apply(np.asarray(profile, dtype=float))


class ForwardModel:
    """Linear forward operator from spline coefficients to population data.

    Parameters
    ----------
    kernel:
        Discretised volume-density kernel ``Q(phi, t)``.
    basis:
        Spline basis representing the synchronous profile.
    """

    def __init__(self, kernel: VolumeKernel, basis: SplineBasis) -> None:
        self.kernel = kernel
        self.basis = basis
        basis_at_centers = basis.evaluate(kernel.phase_centers)
        #: Design matrix ``A[m, i] = \int Q(phi, t_m) psi_i(phi) dphi``.
        self.design_matrix = kernel.design_matrix(basis_at_centers)

    @property
    def num_measurements(self) -> int:
        """Number of population measurement times."""
        return self.kernel.num_measurements

    @property
    def num_coefficients(self) -> int:
        """Number of spline coefficients."""
        return self.basis.num_basis

    def predict(self, coefficients: np.ndarray) -> np.ndarray:
        """Model-predicted measurements ``G_hat(t_m)`` for spline coefficients."""
        coefficients = ensure_1d(coefficients, "coefficients")
        if coefficients.size != self.num_coefficients:
            raise ValueError("coefficient vector has the wrong length")
        return self.design_matrix @ coefficients

    def restrict(self, indices: np.ndarray) -> "ForwardModel":
        """Forward model restricted to a subset of measurements (for CV)."""
        restricted = ForwardModel.__new__(ForwardModel)
        restricted.kernel = self.kernel.restrict(indices)
        restricted.basis = self.basis
        restricted.design_matrix = self.design_matrix[np.asarray(indices, dtype=int)]
        return restricted
