"""Fit diagnostics for deconvolution results."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import DeconvolutionProblem
from repro.core.result import DeconvolutionResult


@dataclass
class FitDiagnostics:
    """Diagnostics of a deconvolution fit.

    Attributes
    ----------
    effective_degrees_of_freedom:
        Trace of the (unconstrained) smoother matrix at the fitted ``lambda``;
        the usual measure of model complexity for penalised splines.
    residual_norm:
        Unweighted 2-norm of the measurement residuals.
    weighted_residual_norm:
        2-norm of the residuals scaled by the measurement sigmas.
    max_absolute_residual:
        Largest absolute residual.
    reduced_chi_squared:
        Weighted misfit divided by (measurements - effective dof), when
        positive; ``nan`` otherwise.
    negativity:
        Most negative value of the estimated profile on a fine grid (zero when
        positivity holds exactly).
    """

    effective_degrees_of_freedom: float
    residual_norm: float
    weighted_residual_norm: float
    max_absolute_residual: float
    reduced_chi_squared: float
    negativity: float


def effective_degrees_of_freedom(problem: DeconvolutionProblem, lam: float) -> float:
    """Trace of the unconstrained smoother matrix at smoothing parameter ``lam``."""
    design = problem.forward.design_matrix
    weights = 1.0 / problem.sigma**2
    weighted_design = design * weights[:, None]
    gram = design.T @ weighted_design
    regularised = gram + float(lam) * problem.penalty + problem.ridge * np.eye(problem.num_coefficients)
    try:
        solve = np.linalg.solve(regularised, weighted_design.T)
    except np.linalg.LinAlgError:
        solve = np.linalg.pinv(regularised) @ weighted_design.T
    smoother = design @ solve
    return float(np.trace(smoother))


def compute_diagnostics(
    problem: DeconvolutionProblem,
    result: DeconvolutionResult,
    *,
    grid_size: int = 401,
) -> FitDiagnostics:
    """Compute :class:`FitDiagnostics` for a fitted result."""
    dof = effective_degrees_of_freedom(problem, result.lam)
    residuals = result.residuals
    weighted = result.weighted_residuals
    num_measurements = residuals.size
    denominator = num_measurements - dof
    chi2 = float(np.sum(weighted**2) / denominator) if denominator > 1e-9 else float("nan")
    phases = np.linspace(0.0, 1.0, int(grid_size))
    profile = result.profile(phases)
    negativity = float(min(0.0, np.min(profile)))
    return FitDiagnostics(
        effective_degrees_of_freedom=dof,
        residual_norm=float(np.linalg.norm(residuals)),
        weighted_residual_norm=float(np.linalg.norm(weighted)),
        max_absolute_residual=float(np.max(np.abs(residuals))),
        reduced_chi_squared=chi2,
        negativity=negativity,
    )
