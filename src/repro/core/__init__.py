"""Deconvolution core — the paper's primary contribution.

The expression estimate ``f(phi)`` is represented in a natural-cubic-spline
basis (:mod:`repro.core.basis`), fitted to population measurements through the
volume-density kernel (:mod:`repro.core.forward`) by minimising a
regularised least-squares criterion (eq. 5) subject to positivity, RNA
conservation across division and rate-continuity constraints
(:mod:`repro.core.constraints`).  The :class:`~repro.core.deconvolver.Deconvolver`
facade wires all of this together and selects the smoothing parameter by
cross-validation or GCV (:mod:`repro.core.lambda_selection`).
"""

from repro.core.basis import SplineBasis
from repro.core.forward import ForwardModel, convolve_profile
from repro.core.constraints import (
    AssemblyContext,
    ConstraintSet,
    PositivityConstraint,
    RNAConservationConstraint,
    RateContinuityConstraint,
    assembly_context,
    default_constraints,
)
from repro.core.problem import DeconvolutionProblem
from repro.core.result import DeconvolutionResult
from repro.core.deconvolver import Deconvolver
from repro.core.session import FitSession, FitWorkspace
from repro.core.lambda_selection import (
    LambdaSelectionResult,
    generalized_cross_validation,
    k_fold_cross_validation,
    select_lambda,
    default_lambda_grid,
)
from repro.core.diagnostics import FitDiagnostics, compute_diagnostics
from repro.core.uncertainty import BootstrapResult, bootstrap_deconvolution

__all__ = [
    "SplineBasis",
    "ForwardModel",
    "convolve_profile",
    "AssemblyContext",
    "assembly_context",
    "FitSession",
    "FitWorkspace",
    "ConstraintSet",
    "PositivityConstraint",
    "RNAConservationConstraint",
    "RateContinuityConstraint",
    "default_constraints",
    "DeconvolutionProblem",
    "DeconvolutionResult",
    "Deconvolver",
    "LambdaSelectionResult",
    "generalized_cross_validation",
    "k_fold_cross_validation",
    "select_lambda",
    "default_lambda_grid",
    "FitDiagnostics",
    "compute_diagnostics",
    "BootstrapResult",
    "bootstrap_deconvolution",
]
