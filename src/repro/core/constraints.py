"""Physical constraints on the deconvolved expression profile.

The paper imposes three kinds of constraints on ``f_alpha`` (Secs. 2.3 and
3.2), all linear in the spline coefficients ``alpha``:

* **Positivity** — expression concentrations cannot be negative, enforced on a
  fine phase grid: ``f_alpha(phi_j) >= 0``.
* **RNA conservation across division** — the transcript concentration just
  before division must equal the volume-weighted combination of the daughter
  concentrations: ``f(1) = 0.4 f(0) + 0.6 E[f(phi_sst)]``, i.e.
  ``\\int w(phi) f(phi) dphi = 0`` with
  ``w(phi) = delta(1 - phi) - 0.4 delta(phi) - 0.6 p(phi)``.
* **Rate continuity across division** (the Sec. 3.2 update) — the rate of
  change of the transcript *number* must also be continuous:
  ``\\int w1(phi) f(phi) dphi = \\int w2(phi) f'(phi) dphi`` with
  ``w1 = beta0 delta(1-phi) - beta0 delta(phi) - beta(phi) p(phi)`` and
  ``w2 = 0.4 delta(phi) + 0.6 p(phi) - delta(1-phi)`` (eqs. 17-19).

Each constraint object converts itself into rows of a linear equality or
inequality system over ``alpha``; :class:`ConstraintSet` collects those rows
so the deconvolution problem can toggle constraints for ablation studies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.cellcycle.parameters import CellCycleParameters
from repro.core.basis import SplineBasis
from repro.numerics.quadrature import simpson_weights
from repro.utils.gridding import phase_grid


@dataclass
class ConstraintSet:
    """Linear constraint rows over the spline coefficients.

    ``equality_matrix @ alpha = equality_vector`` and
    ``inequality_matrix @ alpha >= inequality_vector``.
    """

    equality_matrix: np.ndarray
    equality_vector: np.ndarray
    inequality_matrix: np.ndarray
    inequality_vector: np.ndarray
    names: list[str] = field(default_factory=list)

    @classmethod
    def empty(cls, num_coefficients: int) -> "ConstraintSet":
        """A constraint set with no rows."""
        return cls(
            equality_matrix=np.zeros((0, num_coefficients)),
            equality_vector=np.zeros(0),
            inequality_matrix=np.zeros((0, num_coefficients)),
            inequality_vector=np.zeros(0),
            names=[],
        )

    def add_equalities(self, rows: np.ndarray, rhs: np.ndarray, name: str) -> None:
        """Append equality rows."""
        self.equality_matrix = np.vstack([self.equality_matrix, np.atleast_2d(rows)])
        self.equality_vector = np.concatenate([self.equality_vector, np.atleast_1d(rhs)])
        self.names.append(name)

    def add_inequalities(self, rows: np.ndarray, rhs: np.ndarray, name: str) -> None:
        """Append inequality rows (``rows @ alpha >= rhs``)."""
        self.inequality_matrix = np.vstack([self.inequality_matrix, np.atleast_2d(rows)])
        self.inequality_vector = np.concatenate([self.inequality_vector, np.atleast_1d(rhs)])
        self.names.append(name)

    @property
    def has_equalities(self) -> bool:
        """Whether any equality rows are present."""
        return self.equality_matrix.shape[0] > 0

    @property
    def has_inequalities(self) -> bool:
        """Whether any inequality rows are present."""
        return self.inequality_matrix.shape[0] > 0

    def violations(self, coefficients: np.ndarray, tol: float = 1e-8) -> dict[str, float]:
        """Maximum equality residual and inequality violation of a solution."""
        eq_violation = 0.0
        if self.has_equalities:
            eq_violation = float(
                np.max(np.abs(self.equality_matrix @ coefficients - self.equality_vector))
            )
        ineq_violation = 0.0
        if self.has_inequalities:
            slack = self.inequality_matrix @ coefficients - self.inequality_vector
            ineq_violation = float(max(0.0, -np.min(slack, initial=0.0)))
        return {"equality": eq_violation, "inequality": ineq_violation, "tolerance": tol}


class Constraint(abc.ABC):
    """Interface of a linear constraint contributor."""

    name: str = "constraint"

    @abc.abstractmethod
    def apply(
        self,
        constraint_set: ConstraintSet,
        basis: SplineBasis,
        parameters: CellCycleParameters,
    ) -> None:
        """Append this constraint's rows to ``constraint_set``."""


class PositivityConstraint(Constraint):
    """Non-negativity of the expression on a fine phase grid.

    Parameters
    ----------
    grid_size:
        Number of equally spaced phases at which ``f_alpha >= 0`` is enforced.
    """

    name = "positivity"

    def __init__(self, grid_size: int = 201) -> None:
        grid_size = int(grid_size)
        if grid_size < 2:
            raise ValueError("grid_size must be >= 2")
        self.grid_size = grid_size

    def apply(
        self,
        constraint_set: ConstraintSet,
        basis: SplineBasis,
        parameters: CellCycleParameters,
    ) -> None:
        """Append one ``f_alpha(phi_j) >= 0`` row per grid phase."""
        grid = phase_grid(self.grid_size)
        rows = basis.evaluate(grid)
        constraint_set.add_inequalities(rows, np.zeros(grid.size), self.name)


def _density_quadrature(
    parameters: CellCycleParameters, grid_size: int = 2001
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense grid, Simpson weights and transition-phase density values."""
    grid = phase_grid(grid_size)
    weights = simpson_weights(grid)
    density = np.asarray(parameters.transition_phase_density(grid), dtype=float)
    # Renormalise the truncated Gaussian on [0, 1] so the constraint weights
    # integrate the density to exactly one.
    mass = float(weights @ density)
    density = density / mass
    return grid, weights, density


class RNAConservationConstraint(Constraint):
    """Conservation of transcript number across cell division.

    Enforces ``f(1) - 0.4 f(0) - 0.6 \\int p(phi) f(phi) dphi = 0``.
    """

    name = "rna_conservation"

    def __init__(self, quadrature_size: int = 2001) -> None:
        self.quadrature_size = int(quadrature_size)

    def apply(
        self,
        constraint_set: ConstraintSet,
        basis: SplineBasis,
        parameters: CellCycleParameters,
    ) -> None:
        """Append the conservation equality row (eq. 7) over the basis."""
        grid, weights, density = _density_quadrature(parameters, self.quadrature_size)
        basis_at_one = basis.evaluate(np.array([1.0]))[0]
        basis_at_zero = basis.evaluate(np.array([0.0]))[0]
        density_integral = (weights * density) @ basis.evaluate(grid)
        row = (
            basis_at_one
            - parameters.swarmer_volume_fraction * basis_at_zero
            - parameters.stalked_volume_fraction * density_integral
        )
        constraint_set.add_equalities(row, np.zeros(1), self.name)


class RateContinuityConstraint(Constraint):
    """Continuity of the transcript-generation rate across division (Sec. 3.2).

    Enforces eq. 17: ``\\int w1(phi) f(phi) dphi = \\int w2(phi) f'(phi) dphi``
    with the delta-function parts evaluated directly through the basis.
    """

    name = "rate_continuity"

    def __init__(self, quadrature_size: int = 2001) -> None:
        self.quadrature_size = int(quadrature_size)

    def apply(
        self,
        constraint_set: ConstraintSet,
        basis: SplineBasis,
        parameters: CellCycleParameters,
    ) -> None:
        """Append the rate-continuity equality row (eq. 17) over the basis."""
        grid, weights, density = _density_quadrature(parameters, self.quadrature_size)
        # beta(phi) = 0.4 / (1 - phi) diverges at phi = 1, where the transition
        # density has long since vanished; evaluate the product beta * p with
        # the zero-density points masked so the divergence never enters.
        # beta(phi) = 0.4 / (1 - phi) diverges at phi = 1, where the transition
        # density is (numerically) negligible; evaluate the product beta * p
        # only away from that endpoint so no infinities enter the row.
        usable = (density > 0.0) & (grid < 1.0 - 1e-9)
        beta_density = np.zeros_like(density)
        beta_density[usable] = (
            np.asarray(parameters.beta(grid[usable]), dtype=float) * density[usable]
        )
        beta0 = float(weights @ beta_density)

        basis_at_one = basis.evaluate(np.array([1.0]))[0]
        basis_at_zero = basis.evaluate(np.array([0.0]))[0]
        deriv_at_one = basis.evaluate_derivative(np.array([1.0]))[0]
        deriv_at_zero = basis.evaluate_derivative(np.array([0.0]))[0]
        basis_on_grid = basis.evaluate(grid)
        deriv_on_grid = basis.evaluate_derivative(grid)

        # Left-hand side of eq. 17: integral of w1 against f.
        lhs = (
            beta0 * basis_at_one
            - beta0 * basis_at_zero
            - (weights * beta_density) @ basis_on_grid
        )
        # Right-hand side of eq. 17: integral of w2 against f'.
        rhs = (
            parameters.swarmer_volume_fraction * deriv_at_zero
            + parameters.stalked_volume_fraction * ((weights * density) @ deriv_on_grid)
            - deriv_at_one
        )
        row = lhs - rhs
        constraint_set.add_equalities(row, np.zeros(1), self.name)


def default_constraints(
    *,
    positivity: bool = True,
    rna_conservation: bool = True,
    rate_continuity: bool = True,
    positivity_grid: int = 201,
) -> list[Constraint]:
    """The paper's default constraint stack, with per-constraint toggles."""
    constraints: list[Constraint] = []
    if positivity:
        constraints.append(PositivityConstraint(grid_size=positivity_grid))
    if rna_conservation:
        constraints.append(RNAConservationConstraint())
    if rate_continuity:
        constraints.append(RateContinuityConstraint())
    return constraints


def build_constraint_set(
    constraints: list[Constraint],
    basis: SplineBasis,
    parameters: CellCycleParameters,
) -> ConstraintSet:
    """Assemble the linear rows of all given constraints."""
    constraint_set = ConstraintSet.empty(basis.num_basis)
    for constraint in constraints:
        constraint.apply(constraint_set, basis, parameters)
    return constraint_set
