"""Physical constraints on the deconvolved expression profile.

The paper imposes three kinds of constraints on ``f_alpha`` (Secs. 2.3 and
3.2), all linear in the spline coefficients ``alpha``:

* **Positivity** — expression concentrations cannot be negative, enforced on a
  fine phase grid: ``f_alpha(phi_j) >= 0``.
* **RNA conservation across division** — the transcript concentration just
  before division must equal the volume-weighted combination of the daughter
  concentrations: ``f(1) = 0.4 f(0) + 0.6 E[f(phi_sst)]``, i.e.
  ``\\int w(phi) f(phi) dphi = 0`` with
  ``w(phi) = delta(1 - phi) - 0.4 delta(phi) - 0.6 p(phi)``.
* **Rate continuity across division** (the Sec. 3.2 update) — the rate of
  change of the transcript *number* must also be continuous:
  ``\\int w1(phi) f(phi) dphi = \\int w2(phi) f'(phi) dphi`` with
  ``w1 = beta0 delta(1-phi) - beta0 delta(phi) - beta(phi) p(phi)`` and
  ``w2 = 0.4 delta(phi) + 0.6 p(phi) - delta(1-phi)`` (eqs. 17-19).

Each constraint object converts itself into rows of a linear equality or
inequality system over ``alpha``; :class:`ConstraintSet` collects those rows
so the deconvolution problem can toggle constraints for ablation studies.

All constraints draw their evaluation tables from a shared
:class:`AssemblyContext`: the dense phase grid, Simpson weights, transition
density and the basis/derivative matrices are computed **once per assembly**
(instead of once per constraint) and memoised across assemblies of the same
``(basis, parameters)`` configuration, so re-assembling a problem for a new
experiment grid costs table lookups instead of quadrature.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import backends
from repro.cellcycle.parameters import CellCycleParameters
from repro.core.basis import SplineBasis, clear_penalty_cache
from repro.numerics.quadrature import simpson_weights
from repro.utils.gridding import phase_grid


@dataclass
class ConstraintSet:
    """Linear constraint rows over the spline coefficients.

    ``equality_matrix @ alpha = equality_vector`` and
    ``inequality_matrix @ alpha >= inequality_vector``.
    """

    equality_matrix: np.ndarray
    equality_vector: np.ndarray
    inequality_matrix: np.ndarray
    inequality_vector: np.ndarray
    names: list[str] = field(default_factory=list)

    @classmethod
    def empty(cls, num_coefficients: int) -> "ConstraintSet":
        """A constraint set with no rows."""
        return cls(
            equality_matrix=np.zeros((0, num_coefficients)),
            equality_vector=np.zeros(0),
            inequality_matrix=np.zeros((0, num_coefficients)),
            inequality_vector=np.zeros(0),
            names=[],
        )

    def add_equalities(self, rows: np.ndarray, rhs: np.ndarray, name: str) -> None:
        """Append equality rows."""
        self.equality_matrix = np.vstack([self.equality_matrix, np.atleast_2d(rows)])
        self.equality_vector = np.concatenate([self.equality_vector, np.atleast_1d(rhs)])
        self.names.append(name)

    def add_inequalities(self, rows: np.ndarray, rhs: np.ndarray, name: str) -> None:
        """Append inequality rows (``rows @ alpha >= rhs``)."""
        self.inequality_matrix = np.vstack([self.inequality_matrix, np.atleast_2d(rows)])
        self.inequality_vector = np.concatenate([self.inequality_vector, np.atleast_1d(rhs)])
        self.names.append(name)

    @property
    def has_equalities(self) -> bool:
        """Whether any equality rows are present."""
        return self.equality_matrix.shape[0] > 0

    @property
    def has_inequalities(self) -> bool:
        """Whether any inequality rows are present."""
        return self.inequality_matrix.shape[0] > 0

    def violations(self, coefficients: np.ndarray, tol: float = 1e-8) -> dict[str, float]:
        """Maximum equality residual and inequality violation of a solution."""
        eq_violation = 0.0
        if self.has_equalities:
            eq_violation = float(
                np.max(np.abs(self.equality_matrix @ coefficients - self.equality_vector))
            )
        ineq_violation = 0.0
        if self.has_inequalities:
            slack = self.inequality_matrix @ coefficients - self.inequality_vector
            ineq_violation = float(max(0.0, -np.min(slack, initial=0.0)))
        return {"equality": eq_violation, "inequality": ineq_violation, "tolerance": tol}


class AssemblyContext:
    """Shared evaluation tables for assembling one constraint stack.

    One context is built per ``(basis, parameters)`` pair and handed to every
    constraint, so the dense phase grid, Simpson weights, transition density
    and the basis/derivative matrices are evaluated once per assembly instead
    of once per constraint.  All tables are keyed by grid size and built
    lazily, so a context only ever holds what its constraints asked for.

    Contexts themselves are memoised at module level (see
    :func:`assembly_context`), which makes *re*-assembly of an
    already-seen configuration — a fresh problem on a new measurement grid of
    the same experiment — a set of dictionary hits.

    Parameters
    ----------
    basis:
        Spline basis whose rows the constraints are expressed over.
    parameters:
        Cell-cycle parameters supplying the transition density and ``beta``.
    """

    def __init__(self, basis: SplineBasis, parameters: CellCycleParameters) -> None:
        self.basis = basis
        self.parameters = parameters
        self._basis_values: dict[int, np.ndarray] = {}
        self._basis_derivatives: dict[int, np.ndarray] = {}
        self._quadratures: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._beta_tables: dict[int, tuple[np.ndarray, float]] = {}
        self._endpoint_values: tuple[np.ndarray, np.ndarray] | None = None
        self._endpoint_derivatives: tuple[np.ndarray, np.ndarray] | None = None

    def basis_values(self, grid_size: int) -> np.ndarray:
        """Basis matrix on ``phase_grid(grid_size)`` (cached per size)."""
        table = self._basis_values.get(grid_size)
        if table is None:
            table = self.basis.evaluate(phase_grid(grid_size))
            self._basis_values[grid_size] = table
        return table

    def basis_derivatives(self, grid_size: int) -> np.ndarray:
        """First-derivative basis matrix on ``phase_grid(grid_size)`` (cached)."""
        table = self._basis_derivatives.get(grid_size)
        if table is None:
            table = self.basis.evaluate_derivative(phase_grid(grid_size))
            self._basis_derivatives[grid_size] = table
        return table

    @property
    def endpoint_values(self) -> tuple[np.ndarray, np.ndarray]:
        """Basis rows at the cycle endpoints, ``(psi(0), psi(1))``."""
        if self._endpoint_values is None:
            rows = self.basis.evaluate(np.array([0.0, 1.0]))
            self._endpoint_values = (rows[0], rows[1])
        return self._endpoint_values

    @property
    def endpoint_derivatives(self) -> tuple[np.ndarray, np.ndarray]:
        """Derivative basis rows at the endpoints, ``(psi'(0), psi'(1))``."""
        if self._endpoint_derivatives is None:
            rows = self.basis.evaluate_derivative(np.array([0.0, 1.0]))
            self._endpoint_derivatives = (rows[0], rows[1])
        return self._endpoint_derivatives

    def density_quadrature(
        self, grid_size: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense grid, Simpson weights and normalised transition density.

        The truncated Gaussian is renormalised on ``[0, 1]`` so the constraint
        weights integrate the density to exactly one.
        """
        table = self._quadratures.get(grid_size)
        if table is None:
            grid = phase_grid(grid_size)
            weights = simpson_weights(grid)
            density = np.asarray(
                self.parameters.transition_phase_density(grid), dtype=float
            )
            density = density / float(weights @ density)
            table = (grid, weights, density)
            self._quadratures[grid_size] = table
        return table

    def beta_quadrature(self, grid_size: int) -> tuple[np.ndarray, float]:
        """Masked ``beta * p`` values and their integral ``beta0`` (cached).

        ``beta(phi) = 0.4 / (1 - phi)`` diverges at ``phi = 1``, where the
        transition density has long since vanished; the product is evaluated
        with the zero-density points and the endpoint masked so the
        divergence never enters the constraint row.
        """
        table = self._beta_tables.get(grid_size)
        if table is None:
            grid, weights, density = self.density_quadrature(grid_size)
            usable = (density > 0.0) & (grid < 1.0 - 1e-9)
            beta_density = np.zeros_like(density)
            beta_density[usable] = (
                np.asarray(self.parameters.beta(grid[usable]), dtype=float)
                * density[usable]
            )
            table = (beta_density, float(weights @ beta_density))
            self._beta_tables[grid_size] = table
        return table


# Memoised contexts keyed by basis/parameter fingerprints: assemblies of the
# same configuration — fresh problems across the grids of one experiment —
# share one context.  Smallish LRU so pathological sweeps cannot grow it
# without bound.
_CONTEXT_CACHE: OrderedDict[tuple, AssemblyContext] = OrderedDict()
_CONTEXT_CACHE_SIZE = 8


def assembly_context(
    basis: SplineBasis, parameters: CellCycleParameters
) -> AssemblyContext:
    """Shared (memoised) :class:`AssemblyContext` for a configuration.

    Keyed by the basis knot fingerprint and the parameter values (plus the
    concrete parameter type, so subclasses overriding the density or ``beta``
    never collide with the base class).  Unhashable parameter objects fall
    back to an uncached context.
    """
    try:
        key = (basis.fingerprint, type(parameters), parameters)
        context = _CONTEXT_CACHE.get(key)
    except TypeError:
        return AssemblyContext(basis, parameters)
    if context is None:
        context = AssemblyContext(basis, parameters)
        _CONTEXT_CACHE[key] = context
        while len(_CONTEXT_CACHE) > _CONTEXT_CACHE_SIZE:
            _CONTEXT_CACHE.popitem(last=False)
    else:
        _CONTEXT_CACHE.move_to_end(key)
    return context


def clear_assembly_caches() -> None:
    """Drop every module-level assembly memo (contexts and penalty matrices).

    Used by the benchmark's genuinely-cold assembly stage and by tests; the
    caches refill transparently on the next assembly.
    """
    _CONTEXT_CACHE.clear()
    clear_penalty_cache()


class Constraint(abc.ABC):
    """Interface of a linear constraint contributor."""

    name: str = "constraint"

    @abc.abstractmethod
    def apply(
        self,
        constraint_set: ConstraintSet,
        basis: SplineBasis,
        parameters: CellCycleParameters,
    ) -> None:
        """Append this constraint's rows to ``constraint_set``."""

    def apply_with_context(
        self, constraint_set: ConstraintSet, context: AssemblyContext, *, backend=None
    ) -> None:
        """Append rows using a shared :class:`AssemblyContext`.

        The default delegates to :meth:`apply`, so third-party constraints
        written against the ``(basis, parameters)`` signature keep working;
        the built-in constraints override this with the table-sharing path.
        ``backend`` selects the kernel backend for the quadrature reductions
        (``None`` means the process-wide active one).
        """
        self.apply(constraint_set, context.basis, context.parameters)


class PositivityConstraint(Constraint):
    """Non-negativity of the expression on a fine phase grid.

    Parameters
    ----------
    grid_size:
        Number of equally spaced phases at which ``f_alpha >= 0`` is enforced.
    """

    name = "positivity"

    def __init__(self, grid_size: int = 201) -> None:
        grid_size = int(grid_size)
        if grid_size < 2:
            raise ValueError("grid_size must be >= 2")
        self.grid_size = grid_size

    def apply(
        self,
        constraint_set: ConstraintSet,
        basis: SplineBasis,
        parameters: CellCycleParameters,
    ) -> None:
        """Append one ``f_alpha(phi_j) >= 0`` row per grid phase."""
        self.apply_with_context(constraint_set, assembly_context(basis, parameters))

    def apply_with_context(
        self, constraint_set: ConstraintSet, context: AssemblyContext, *, backend=None
    ) -> None:
        """Append the positivity rows from the context's cached basis table."""
        rows = context.basis_values(self.grid_size)
        constraint_set.add_inequalities(rows, np.zeros(rows.shape[0]), self.name)


class RNAConservationConstraint(Constraint):
    """Conservation of transcript number across cell division.

    Enforces ``f(1) - 0.4 f(0) - 0.6 \\int p(phi) f(phi) dphi = 0``.
    """

    name = "rna_conservation"

    def __init__(self, quadrature_size: int = 2001) -> None:
        self.quadrature_size = int(quadrature_size)

    def apply(
        self,
        constraint_set: ConstraintSet,
        basis: SplineBasis,
        parameters: CellCycleParameters,
    ) -> None:
        """Append the conservation equality row (eq. 7) over the basis."""
        self.apply_with_context(constraint_set, assembly_context(basis, parameters))

    def apply_with_context(
        self, constraint_set: ConstraintSet, context: AssemblyContext, *, backend=None
    ) -> None:
        """Append the conservation row from the context's cached tables."""
        parameters = context.parameters
        _, weights, density = context.density_quadrature(self.quadrature_size)
        basis_at_zero, basis_at_one = context.endpoint_values
        density_integral = backends.resolve(backend).weighted_dot(
            weights, density, context.basis_values(self.quadrature_size)
        )
        row = (
            basis_at_one
            - parameters.swarmer_volume_fraction * basis_at_zero
            - parameters.stalked_volume_fraction * density_integral
        )
        constraint_set.add_equalities(row, np.zeros(1), self.name)


class RateContinuityConstraint(Constraint):
    """Continuity of the transcript-generation rate across division (Sec. 3.2).

    Enforces eq. 17: ``\\int w1(phi) f(phi) dphi = \\int w2(phi) f'(phi) dphi``
    with the delta-function parts evaluated directly through the basis.
    """

    name = "rate_continuity"

    def __init__(self, quadrature_size: int = 2001) -> None:
        self.quadrature_size = int(quadrature_size)

    def apply(
        self,
        constraint_set: ConstraintSet,
        basis: SplineBasis,
        parameters: CellCycleParameters,
    ) -> None:
        """Append the rate-continuity equality row (eq. 17) over the basis."""
        self.apply_with_context(constraint_set, assembly_context(basis, parameters))

    def apply_with_context(
        self, constraint_set: ConstraintSet, context: AssemblyContext, *, backend=None
    ) -> None:
        """Append the rate-continuity row from the context's cached tables."""
        parameters = context.parameters
        kernel_backend = backends.resolve(backend)
        _, weights, density = context.density_quadrature(self.quadrature_size)
        # The divergence of beta at phi = 1 is handled once, inside the
        # context's masked beta table (see AssemblyContext.beta_quadrature).
        beta_density, beta0 = context.beta_quadrature(self.quadrature_size)

        basis_at_zero, basis_at_one = context.endpoint_values
        deriv_at_zero, deriv_at_one = context.endpoint_derivatives
        basis_on_grid = context.basis_values(self.quadrature_size)
        deriv_on_grid = context.basis_derivatives(self.quadrature_size)

        # Left-hand side of eq. 17: integral of w1 against f.
        lhs = (
            beta0 * basis_at_one
            - beta0 * basis_at_zero
            - kernel_backend.weighted_dot(weights, beta_density, basis_on_grid)
        )
        # Right-hand side of eq. 17: integral of w2 against f'.
        rhs = (
            parameters.swarmer_volume_fraction * deriv_at_zero
            + parameters.stalked_volume_fraction
            * kernel_backend.weighted_dot(weights, density, deriv_on_grid)
            - deriv_at_one
        )
        row = lhs - rhs
        constraint_set.add_equalities(row, np.zeros(1), self.name)


def default_constraints(
    *,
    positivity: bool = True,
    rna_conservation: bool = True,
    rate_continuity: bool = True,
    positivity_grid: int = 201,
) -> list[Constraint]:
    """The paper's default constraint stack, with per-constraint toggles."""
    constraints: list[Constraint] = []
    if positivity:
        constraints.append(PositivityConstraint(grid_size=positivity_grid))
    if rna_conservation:
        constraints.append(RNAConservationConstraint())
    if rate_continuity:
        constraints.append(RateContinuityConstraint())
    return constraints


def build_constraint_set(
    constraints: list[Constraint],
    basis: SplineBasis,
    parameters: CellCycleParameters,
    *,
    context: AssemblyContext | None = None,
    backend: str | None = None,
) -> ConstraintSet:
    """Assemble the linear rows of all given constraints.

    All constraints share one :class:`AssemblyContext` (the memoised
    module-level context by default), so the dense quadrature tables and
    basis evaluations are computed at most once per configuration.

    ``backend`` selects the kernel backend for the quadrature reductions
    (see ``repro.backends``); ``None`` — the default — uses the process-wide
    active backend and keeps compatibility with third-party constraints
    whose ``apply_with_context`` predates the ``backend`` keyword.
    """
    if context is None:
        context = assembly_context(basis, parameters)
    constraint_set = ConstraintSet.empty(basis.num_basis)
    for constraint in constraints:
        if backend is None:
            constraint.apply_with_context(constraint_set, context)
        else:
            constraint.apply_with_context(constraint_set, context, backend=backend)
    return constraint_set
