"""Assembly of the deconvolution optimisation problem.

The cost criterion (eq. 5) is

    C(lambda) = sum_m (G(t_m) - G_hat(t_m))^2 / sigma_m^2
                + lambda * \\int f''(phi)^2 dphi

which, with ``f`` in a spline basis and ``G_hat = A alpha``, is the quadratic

    C(alpha) = (G - A alpha)^T W (G - A alpha) + lambda alpha^T Omega alpha

with ``W = diag(1 / sigma_m^2)``.  Minimising it subject to the linear
constraint rows yields a convex quadratic program solved by
:func:`repro.numerics.qp.solve_qp`.

Because every surrounding workload (lambda grids, cross-validation folds,
bootstrap replicates, multi-species batches) solves long families of these
QPs, the problem object caches the expensive invariants: the weighted design
and Gram matrices, one assembled Hessian per ``lambda``, and one
:class:`~repro.numerics.qp.QPWorkspace` (Cholesky factor plus transformed
constraint rows) per ``lambda``.  :meth:`DeconvolutionProblem.with_measurements`
derives a sibling problem for new data that *shares* all of those caches, so a
bootstrap replicate solve touches nothing but a fresh gradient.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cellcycle.parameters import CellCycleParameters
from repro.core.constraints import Constraint, ConstraintSet, build_constraint_set
from repro.core.forward import ForwardModel
from repro.numerics.qp import (
    BatchQPResult,
    MixedLambdaEigPlan,
    QPResult,
    QPWorkspace,
    QuadraticProgram,
    solve_qp,
)
from repro.utils.validation import check_positive, ensure_1d


class DeconvolutionProblem:
    """Regularised, constrained least-squares problem for one expression series.

    Parameters
    ----------
    forward:
        Forward model mapping spline coefficients to population measurements.
    measurements:
        Population measurements ``G(t_m)`` at the forward model's times.
    sigma:
        Per-measurement standard deviations ``sigma_m``.  A scalar is
        broadcast; defaults to one (unweighted least squares).
    constraints:
        Constraint objects; defaults to none (use
        :func:`repro.core.constraints.default_constraints` for the paper's
        stack).
    parameters:
        Cell-cycle parameters used by the division constraints.
    ridge:
        Small multiple of the identity added to the Hessian so the QP stays
        strictly convex even when ``lambda`` is tiny and ``A`` is rank
        deficient.
    constraint_set:
        Pre-assembled constraint rows for ``constraints``.  The rows depend
        only on the basis and parameters — not on the measurement grid — so
        an experiment-scoped session assembles them once and hands the same
        set to the problem of every grid; when omitted they are assembled
        here (through the shared, memoised
        :func:`~repro.core.constraints.assembly_context`).
    """

    def __init__(
        self,
        forward: ForwardModel,
        measurements: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        constraints: Optional[list[Constraint]] = None,
        parameters: Optional[CellCycleParameters] = None,
        ridge: float = 1e-10,
        constraint_set: Optional[ConstraintSet] = None,
    ) -> None:
        self.forward = forward
        self.measurements = ensure_1d(measurements, "measurements")
        if self.measurements.size != forward.num_measurements:
            raise ValueError("measurements length does not match the forward model")
        self.parameters = parameters if parameters is not None else CellCycleParameters()
        self.sigma = self._normalise_sigma(sigma)
        self.constraints = list(constraints) if constraints is not None else []
        self.ridge = check_positive(ridge, "ridge", strict=False)

        self.basis = forward.basis
        self.penalty = self.basis.penalty_matrix()
        if constraint_set is None:
            constraint_set = build_constraint_set(
                self.constraints, self.basis, self.parameters
            )
        elif constraint_set.equality_matrix.shape[1] != self.basis.num_basis:
            raise ValueError("constraint_set does not match the basis size")
        self.constraint_set: ConstraintSet = constraint_set
        self._weights = 1.0 / self.sigma**2
        self._init_solver_caches()

    def _init_solver_caches(self) -> None:
        """Fresh per-design caches (shared by :meth:`with_measurements` copies)."""
        self._weighted_design: Optional[np.ndarray] = None
        self._gram: Optional[np.ndarray] = None
        self._gradient_cache: Optional[np.ndarray] = None
        # Assembled programs are gradient-specific, hence per instance.
        self._programs: dict[float, QuadraticProgram] = {}
        # Keyed by float(lambda); shared (by reference) across sibling
        # problems that differ only in their measurements.
        self._hessians: dict[float, np.ndarray] = {}
        self._workspaces: dict[float, QPWorkspace] = {}
        # Measurement-independent state built by the lambda selectors (GCV
        # eigendecompositions, k-fold plans); shared across siblings so a
        # multi-species batch pays for each factorization once.
        self._selection_caches: dict[object, object] = {}

    def release_solver_caches(self) -> None:
        """Drop this instance's references to the heavyweight solver caches.

        Sibling problems share the per-lambda Hessian/workspace dicts, the
        selection plans and the design products *by reference*; rebinding
        them here (never mutating the shared objects) detaches only this
        instance, so the template and its other siblings keep everything.
        A long-lived holder of one sibling — e.g. a cached service result
        backing its lazy diagnostics — calls this so the factorizations can
        be reclaimed once the owning session is evicted.  Diagnostics
        (``data_misfit``, ``roughness``, prediction, violations) remain
        fully functional; a later solve on this instance would simply
        refactorize from scratch.
        """
        self._weighted_design = None
        self._gram = None
        self._gradient_cache = None
        self._programs = {}
        self._hessians = {}
        self._workspaces = {}
        self._selection_caches = {}

    def _normalise_sigma(self, sigma: np.ndarray | float | None) -> np.ndarray:
        if sigma is None:
            return np.ones_like(self.measurements)
        sigma_arr = np.broadcast_to(np.asarray(sigma, dtype=float), self.measurements.shape).copy()
        if np.any(sigma_arr <= 0) or not np.all(np.isfinite(sigma_arr)):
            raise ValueError("sigma must be positive and finite")
        return sigma_arr

    @property
    def num_coefficients(self) -> int:
        """Number of spline coefficients."""
        return self.forward.num_coefficients

    def data_misfit(self, coefficients: np.ndarray) -> float:
        """Weighted squared residual (first term of eq. 5)."""
        residual = self.measurements - self.forward.predict(coefficients)
        return float(np.sum(self._weights * residual**2))

    def roughness(self, coefficients: np.ndarray) -> float:
        """Roughness ``\\int f''^2`` (second term of eq. 5, without ``lambda``)."""
        coefficients = ensure_1d(coefficients, "coefficients")
        return float(coefficients @ self.penalty @ coefficients)

    def cost(self, coefficients: np.ndarray, lam: float) -> float:
        """Full cost ``C(lambda)`` of eq. 5."""
        return self.data_misfit(coefficients) + float(lam) * self.roughness(coefficients)

    @property
    def weighted_design(self) -> np.ndarray:
        """Row-weighted design matrix ``W A`` (cached)."""
        if self._weighted_design is None:
            self._weighted_design = self.forward.design_matrix * self._weights[:, None]
        return self._weighted_design

    @property
    def gram(self) -> np.ndarray:
        """Weighted Gram matrix ``A^T W A``, exactly symmetrized (cached)."""
        if self._gram is None:
            gram = self.forward.design_matrix.T @ self.weighted_design
            self._gram = 0.5 * (gram + gram.T)
        return self._gram

    def _gradient(self) -> np.ndarray:
        """QP linear term ``-2 A^T W G`` for this problem's measurements."""
        if self._gradient_cache is None:
            self._gradient_cache = -2.0 * (self.weighted_design.T @ self.measurements)
        return self._gradient_cache

    def _hessian(self, lam: float) -> np.ndarray:
        """Assembled (exactly symmetric) QP Hessian for ``lam``, cached."""
        key = float(lam)
        hessian = self._hessians.get(key)
        if hessian is None:
            hessian = 2.0 * (self.gram + key * self.penalty)
            hessian += self.ridge * np.eye(self.num_coefficients)
            self._hessians[key] = hessian
        return hessian

    def quadratic_program(self, lam: float) -> QuadraticProgram:
        """Build the convex QP for a given smoothing parameter.

        The Hessian is cached per ``lambda`` (and shared with sibling
        problems from :meth:`with_measurements`); only the gradient depends
        on the measurements.
        """
        lam = check_positive(lam, "lam", strict=False)
        program = self._programs.get(lam)
        if program is None:
            constraint_set = self.constraint_set
            program = QuadraticProgram(
                hessian=self._hessian(lam),
                gradient=self._gradient(),
                eq_matrix=constraint_set.equality_matrix if constraint_set.has_equalities else None,
                eq_vector=constraint_set.equality_vector if constraint_set.has_equalities else None,
                ineq_matrix=constraint_set.inequality_matrix if constraint_set.has_inequalities else None,
                ineq_vector=constraint_set.inequality_vector if constraint_set.has_inequalities else None,
            )
            self._programs[lam] = program
        return program

    def solver_workspace(self, lam: float) -> Optional[QPWorkspace]:
        """Shared :class:`QPWorkspace` (Cholesky + constraint transform) for ``lam``."""
        key = float(lam)
        workspace = self._workspaces.get(key)
        if workspace is None:
            try:
                workspace = QPWorkspace(self.quadratic_program(key))
            except np.linalg.LinAlgError:
                return None
            self._workspaces[key] = workspace
        return workspace

    def selection_cache(self, key: object, factory, *, fingerprint: object = None):
        """Measurement-independent lambda-selection state, built on demand.

        The cache is shared (by reference) with every sibling from
        :meth:`with_measurements`, so eigendecompositions and fold plans
        computed while selecting ``lambda`` for one species are reused by all
        the others.  Each ``key`` holds one slot: the entry is rebuilt when
        the caller's ``fingerprint`` (e.g. the fold assignment and lambda
        grid a k-fold plan was built for) differs from the stored one, so
        callers that legitimately vary their inputs — a fresh permutation per
        call from a shared ``Generator``, say — replace the slot instead of
        growing the cache without bound.
        """
        entry = self._selection_caches.get(key)
        if entry is not None and entry[0] == fingerprint:
            return entry[1]
        value = factory()
        self._selection_caches[key] = (fingerprint, value)
        return value

    def solve(
        self,
        lam: float,
        *,
        backend: str = "auto",
        x0: np.ndarray | None = None,
        active_set: Sequence[int] | None = None,
    ) -> QPResult:
        """Solve the constrained problem for a given ``lambda``.

        Parameters
        ----------
        lam:
            Smoothing parameter of this solve.
        backend:
            QP backend (see :func:`repro.numerics.qp.solve_qp`).
        x0, active_set:
            Warm start for the active-set backend, e.g. the solution and
            final active set of a neighbouring lambda or a previous
            bootstrap replicate.

        Returns
        -------
        QPResult
            The solve outcome (solution, objective, active set,
            convergence metadata).
        """
        program = self.quadratic_program(lam)
        return solve_qp(
            program,
            x0,
            backend=backend,
            active_set=active_set,
            workspace=self.solver_workspace(lam),
        )

    def solve_batch(
        self,
        lam: float,
        measurement_matrix: np.ndarray,
        *,
        backend: str = "auto",
        shared_active_set: Sequence[int] | None = None,
        tol: float = 1e-9,
    ) -> BatchQPResult:
        """Solve the problem for many measurement vectors in one batched call.

        All columns share this problem family's Hessian, constraint rows and
        per-lambda factorization (:meth:`solver_workspace`): the batch is one
        stacked gradient build plus a multi-RHS
        :meth:`~repro.numerics.qp.QPWorkspace.solve_batch`, with the
        per-problem active-set loop running only for the columns where a
        different set of positivity rows binds.  This is the engine behind
        bootstrap replicates and multi-species ``fit_many`` batches.

        Parameters
        ----------
        lam:
            Smoothing parameter shared by every column.
        measurement_matrix:
            Measurement vectors, shape ``(num_measurements, num_problems)``
            — one column per problem (matching ``fit_many``'s layout).
        backend:
            ``"active_set"`` keeps every column on the in-repo solver;
            ``"auto"`` (default) re-dispatches columns that fail to converge
            (or land infeasible) through :func:`~repro.numerics.qp.solve_qp`
            with its SciPy fallback; ``"scipy"`` solves every column through
            the fallback backend.
        shared_active_set:
            Inequality rows expected active for most columns (e.g. a base
            fit's active set when solving its bootstrap replicates).
        tol:
            Verification and active-set tolerance.

        Returns
        -------
        BatchQPResult
            Stacked solutions in column order.
        """
        matrix = np.asarray(measurement_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != self.measurements.size:
            raise ValueError(
                "measurement_matrix must have shape (num_measurements, num_problems)"
            )
        workspace = self.solver_workspace(lam)
        if workspace is None or backend == "scipy":
            return self._solve_batch_columnwise(lam, matrix, backend)
        gradients = np.ascontiguousarray((-2.0 * (self.weighted_design.T @ matrix)).T)
        batch = workspace.solve_batch(
            gradients, shared_active_set=shared_active_set, tol=tol
        )
        if backend == "auto":
            program = self.quadratic_program(lam)
            for index in range(batch.num_problems):
                # Rows accepted by the batched KKT verification already
                # passed a stricter slack check; only fallback and failed
                # rows need the solve_qp-style auto repair.
                if batch.converged[index] and not batch.fallback[index]:
                    continue
                if batch.converged[index] and program.is_feasible(
                    batch.x[index], tol=1e-6
                ):
                    continue
                sibling = self.with_measurements(matrix[:, index])
                repaired = sibling.solve(lam, backend="auto")
                batch.x[index] = repaired.x
                batch.objectives[index] = repaired.objective
                batch.iterations[index] = repaired.iterations
                batch.converged[index] = repaired.converged
                batch.active_sets[index] = list(repaired.active_set)
                batch.fallback[index] = True
        return batch

    def solve_mixed(
        self,
        lams: Sequence[float],
        measurement_matrix: np.ndarray,
        *,
        backend: str = "auto",
        shared_active_set: Sequence[int] | None = None,
        tol: float = 1e-9,
    ) -> BatchQPResult:
        """Solve one mixed-lambda batch in a single stacked eig-basis pass.

        :meth:`solve_batch` requires every column to share one lambda, so a
        mixed-lambda micro-batch costs one call (one per-lambda
        factorization, ~0.1 ms of fixed overhead) per distinct lambda.  This
        method diagonalizes the shared shifted pencil once
        (:class:`~repro.numerics.qp.MixedLambdaEigPlan`, cached across calls
        via :meth:`selection_cache`) and solves *all* columns — each with its
        own lambda and measurements — in one stacked KKT pass per candidate
        working set.  Columns whose positivity pattern matches no candidate
        set, or whose lambda is too far from the pencil shift for full
        accuracy, fall back to the per-group :meth:`solve_batch` path, so
        every returned row is either a verified-KKT exact optimum or the
        product of the unchanged active-set solver.

        Parameters
        ----------
        lams:
            Per-column smoothing parameters, length ``num_problems`` (all
            strictly positive; otherwise the per-group path runs).
        measurement_matrix:
            Measurement vectors, shape ``(num_measurements, num_problems)``.
        backend:
            Passed through to the per-group fallback (``"scipy"`` disables
            the stacked pass entirely).
        shared_active_set:
            Working-set hint tried first in the stacked pass.
        tol:
            Verification and active-set tolerance.

        Returns
        -------
        BatchQPResult
            Stacked solutions in column order; ``fallback`` marks the rows
            that went through the per-group path.
        """
        matrix = np.asarray(measurement_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != self.measurements.size:
            raise ValueError(
                "measurement_matrix must have shape (num_measurements, num_problems)"
            )
        lams = np.asarray(list(lams), dtype=float)
        if lams.shape != (matrix.shape[1],):
            raise ValueError("lams must provide one lambda per measurement column")
        distinct = np.unique(lams)
        if distinct.size == 1:
            return self.solve_batch(
                float(distinct[0]),
                matrix,
                backend=backend,
                shared_active_set=shared_active_set,
                tol=tol,
            )
        plan: MixedLambdaEigPlan | None = None
        if backend != "scipy" and np.all(distinct > 0.0):
            # Quantize the shift to half-decades around the batch's geometric
            # mean so batches drawn from a stable lambda population reuse one
            # cached plan (and its remembered working sets).
            log_shift = round(2.0 * float(np.mean(np.log10(distinct)))) / 2.0
            try:
                plan = self.selection_cache(
                    "mixed_lambda_plan",
                    lambda: MixedLambdaEigPlan(
                        self.gram,
                        self.penalty,
                        self.ridge,
                        10.0**log_shift,
                        eq_matrix=self.constraint_set.equality_matrix
                        if self.constraint_set.has_equalities
                        else None,
                        eq_vector=self.constraint_set.equality_vector
                        if self.constraint_set.has_equalities
                        else None,
                        ineq_matrix=self.constraint_set.inequality_matrix
                        if self.constraint_set.has_inequalities
                        else None,
                        ineq_vector=self.constraint_set.inequality_vector
                        if self.constraint_set.has_inequalities
                        else None,
                    ),
                    fingerprint=log_shift,
                )
            except np.linalg.LinAlgError:
                plan = None
        num_problems = matrix.shape[1]
        x = np.zeros((num_problems, self.num_coefficients))
        objectives = np.zeros(num_problems)
        iterations = np.zeros(num_problems, dtype=int)
        converged = np.zeros(num_problems, dtype=bool)
        active_sets: list[list[int]] = [[] for _ in range(num_problems)]
        fallback = np.zeros(num_problems, dtype=bool)
        solved = np.zeros(num_problems, dtype=bool)
        if plan is not None:
            gradients = np.ascontiguousarray((-2.0 * (self.weighted_design.T @ matrix)).T)
            try:
                stacked_x, stacked_obj, stacked_sets = plan.solve(
                    lams, gradients, guess=shared_active_set, tol=tol
                )
            except np.linalg.LinAlgError:
                stacked_sets = [None] * num_problems
            for index, active in enumerate(stacked_sets):
                if active is None:
                    continue
                x[index] = stacked_x[index]
                objectives[index] = stacked_obj[index]
                iterations[index] = 1
                converged[index] = True
                active_sets[index] = sorted(active)
                solved[index] = True
        # Per-group active-set fallback for the rows the stacked pass could
        # not confirm (a different positivity pattern binds, or accuracy
        # guards tripped) — identical to the pre-stacked per-group sweep,
        # with warm active-set chaining across groups.
        shared = list(shared_active_set) if shared_active_set is not None else None
        for lam in sorted({float(value) for value in lams[~solved]}, reverse=True):
            columns = [
                index
                for index in range(num_problems)
                if not solved[index] and float(lams[index]) == lam
            ]
            group = self.solve_batch(
                lam,
                matrix[:, columns],
                backend=backend,
                shared_active_set=shared,
                tol=tol,
            )
            for row, index in enumerate(columns):
                x[index] = group.x[row]
                objectives[index] = group.objectives[row]
                iterations[index] = group.iterations[row]
                converged[index] = group.converged[row]
                active_sets[index] = list(group.active_sets[row])
                fallback[index] = True
            shared = list(group.active_sets[-1]) or shared
            if plan is not None and group.active_sets[-1]:
                plan.remember(group.active_sets[-1])
        return BatchQPResult(
            x=x,
            objectives=objectives,
            iterations=iterations,
            converged=converged,
            active_sets=active_sets,
            fallback=fallback,
        )

    def _solve_batch_columnwise(
        self, lam: float, matrix: np.ndarray, backend: str
    ) -> BatchQPResult:
        """Column-at-a-time batch fallback (SciPy backend, indefinite Hessian)."""
        results = [
            self.with_measurements(matrix[:, index]).solve(lam, backend=backend)
            for index in range(matrix.shape[1])
        ]
        num_problems = len(results)
        return BatchQPResult(
            x=np.array([result.x for result in results])
            if num_problems
            else np.zeros((0, self.num_coefficients)),
            objectives=np.array([result.objective for result in results]),
            iterations=np.array([result.iterations for result in results], dtype=int),
            converged=np.array([result.converged for result in results], dtype=bool),
            active_sets=[list(result.active_set) for result in results],
            fallback=np.ones(num_problems, dtype=bool),
        )

    def with_measurements(self, measurements: np.ndarray) -> "DeconvolutionProblem":
        """Sibling problem for new measurements sharing every solver cache.

        The forward model, penalty, constraint rows, weighted design, Gram
        matrix and the per-lambda Hessian/workspace caches are all shared by
        reference; only the measurement vector (and hence the QP gradient)
        changes.  This is the fast path for bootstrap replicates and
        multi-species fits.
        """
        measurements = ensure_1d(measurements, "measurements")
        if measurements.size != self.measurements.size:
            raise ValueError("measurements length does not match the problem")
        sibling = DeconvolutionProblem.__new__(DeconvolutionProblem)
        sibling.forward = self.forward
        sibling.measurements = measurements
        sibling.parameters = self.parameters
        sibling.sigma = self.sigma
        sibling.constraints = self.constraints
        sibling.ridge = self.ridge
        sibling.basis = self.basis
        sibling.penalty = self.penalty
        sibling.constraint_set = self.constraint_set
        sibling._weights = self._weights
        # Force the lazy matrices on the parent so every sibling genuinely
        # shares them instead of copying an unpopulated None slot.
        sibling._weighted_design = self.weighted_design
        sibling._gram = self.gram
        sibling._gradient_cache = None
        sibling._programs = {}
        sibling._hessians = self._hessians
        sibling._workspaces = self._workspaces
        sibling._selection_caches = self._selection_caches
        return sibling

    def restrict(self, indices: np.ndarray) -> "DeconvolutionProblem":
        """Problem restricted to a subset of measurements (for cross-validation)."""
        indices = np.asarray(indices, dtype=int)
        restricted = DeconvolutionProblem.__new__(DeconvolutionProblem)
        restricted.forward = self.forward.restrict(indices)
        restricted.measurements = self.measurements[indices]
        restricted.parameters = self.parameters
        restricted.sigma = self.sigma[indices]
        restricted.constraints = self.constraints
        restricted.ridge = self.ridge
        restricted.basis = self.basis
        restricted.penalty = self.penalty
        restricted.constraint_set = self.constraint_set
        restricted._weights = 1.0 / restricted.sigma**2
        restricted._init_solver_caches()
        return restricted
