"""Assembly of the deconvolution optimisation problem.

The cost criterion (eq. 5) is

    C(lambda) = sum_m (G(t_m) - G_hat(t_m))^2 / sigma_m^2
                + lambda * \\int f''(phi)^2 dphi

which, with ``f`` in a spline basis and ``G_hat = A alpha``, is the quadratic

    C(alpha) = (G - A alpha)^T W (G - A alpha) + lambda alpha^T Omega alpha

with ``W = diag(1 / sigma_m^2)``.  Minimising it subject to the linear
constraint rows yields a convex quadratic program solved by
:func:`repro.numerics.qp.solve_qp`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cellcycle.parameters import CellCycleParameters
from repro.core.basis import SplineBasis
from repro.core.constraints import Constraint, ConstraintSet, build_constraint_set
from repro.core.forward import ForwardModel
from repro.numerics.qp import QPResult, QuadraticProgram, solve_qp
from repro.utils.validation import check_positive, ensure_1d


class DeconvolutionProblem:
    """Regularised, constrained least-squares problem for one expression series.

    Parameters
    ----------
    forward:
        Forward model mapping spline coefficients to population measurements.
    measurements:
        Population measurements ``G(t_m)`` at the forward model's times.
    sigma:
        Per-measurement standard deviations ``sigma_m``.  A scalar is
        broadcast; defaults to one (unweighted least squares).
    constraints:
        Constraint objects; defaults to none (use
        :func:`repro.core.constraints.default_constraints` for the paper's
        stack).
    parameters:
        Cell-cycle parameters used by the division constraints.
    ridge:
        Small multiple of the identity added to the Hessian so the QP stays
        strictly convex even when ``lambda`` is tiny and ``A`` is rank
        deficient.
    """

    def __init__(
        self,
        forward: ForwardModel,
        measurements: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        constraints: Optional[list[Constraint]] = None,
        parameters: Optional[CellCycleParameters] = None,
        ridge: float = 1e-10,
    ) -> None:
        self.forward = forward
        self.measurements = ensure_1d(measurements, "measurements")
        if self.measurements.size != forward.num_measurements:
            raise ValueError("measurements length does not match the forward model")
        self.parameters = parameters if parameters is not None else CellCycleParameters()
        self.sigma = self._normalise_sigma(sigma)
        self.constraints = list(constraints) if constraints is not None else []
        self.ridge = check_positive(ridge, "ridge", strict=False)

        self.basis = forward.basis
        self.penalty = self.basis.penalty_matrix()
        self.constraint_set: ConstraintSet = build_constraint_set(
            self.constraints, self.basis, self.parameters
        )
        self._weights = 1.0 / self.sigma**2

    def _normalise_sigma(self, sigma: np.ndarray | float | None) -> np.ndarray:
        if sigma is None:
            return np.ones_like(self.measurements)
        sigma_arr = np.broadcast_to(np.asarray(sigma, dtype=float), self.measurements.shape).copy()
        if np.any(sigma_arr <= 0) or not np.all(np.isfinite(sigma_arr)):
            raise ValueError("sigma must be positive and finite")
        return sigma_arr

    @property
    def num_coefficients(self) -> int:
        """Number of spline coefficients."""
        return self.forward.num_coefficients

    def data_misfit(self, coefficients: np.ndarray) -> float:
        """Weighted squared residual (first term of eq. 5)."""
        residual = self.measurements - self.forward.predict(coefficients)
        return float(np.sum(self._weights * residual**2))

    def roughness(self, coefficients: np.ndarray) -> float:
        """Roughness ``\\int f''^2`` (second term of eq. 5, without ``lambda``)."""
        coefficients = ensure_1d(coefficients, "coefficients")
        return float(coefficients @ self.penalty @ coefficients)

    def cost(self, coefficients: np.ndarray, lam: float) -> float:
        """Full cost ``C(lambda)`` of eq. 5."""
        return self.data_misfit(coefficients) + float(lam) * self.roughness(coefficients)

    def quadratic_program(self, lam: float) -> QuadraticProgram:
        """Build the convex QP for a given smoothing parameter."""
        lam = check_positive(lam, "lam", strict=False)
        design = self.forward.design_matrix
        weighted_design = design * self._weights[:, None]
        hessian = 2.0 * (design.T @ weighted_design + lam * self.penalty)
        hessian += self.ridge * np.eye(self.num_coefficients)
        gradient = -2.0 * (weighted_design.T @ self.measurements)
        constraint_set = self.constraint_set
        return QuadraticProgram(
            hessian=hessian,
            gradient=gradient,
            eq_matrix=constraint_set.equality_matrix if constraint_set.has_equalities else None,
            eq_vector=constraint_set.equality_vector if constraint_set.has_equalities else None,
            ineq_matrix=constraint_set.inequality_matrix if constraint_set.has_inequalities else None,
            ineq_vector=constraint_set.inequality_vector if constraint_set.has_inequalities else None,
        )

    def solve(
        self,
        lam: float,
        *,
        backend: str = "auto",
        x0: np.ndarray | None = None,
    ) -> QPResult:
        """Solve the constrained problem for a given ``lambda``."""
        program = self.quadratic_program(lam)
        return solve_qp(program, x0, backend=backend)

    def restrict(self, indices: np.ndarray) -> "DeconvolutionProblem":
        """Problem restricted to a subset of measurements (for cross-validation)."""
        indices = np.asarray(indices, dtype=int)
        restricted = DeconvolutionProblem.__new__(DeconvolutionProblem)
        restricted.forward = self.forward.restrict(indices)
        restricted.measurements = self.measurements[indices]
        restricted.parameters = self.parameters
        restricted.sigma = self.sigma[indices]
        restricted.constraints = self.constraints
        restricted.ridge = self.ridge
        restricted.basis = self.basis
        restricted.penalty = self.penalty
        restricted.constraint_set = self.constraint_set
        restricted._weights = 1.0 / restricted.sigma**2
        return restricted
