"""Deconvolution result container with lazily computed diagnostics."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.basis import SplineBasis
from repro.utils.validation import ensure_1d

if TYPE_CHECKING:  # pragma: no cover - import cycle broken for typing only
    from repro.core.problem import DeconvolutionProblem


class DeconvolutionResult:
    """Estimated synchronous expression profile and fit metadata.

    Diagnostics that are derived from the coefficients — ``fitted``,
    ``data_misfit``, ``roughness``, ``constraint_violations``, ``sigma`` —
    may be passed eagerly or left to be computed on first access from the
    ``problem`` the fit was solved on.  Laziness keeps the per-fit cost of
    high-throughput paths (multi-species batches, bootstrap replicates, the
    service scheduler) down to the solve itself; accessing a lazy attribute
    always yields exactly the value the eager path would have stored.

    Parameters
    ----------
    coefficients:
        Spline coefficients ``alpha`` of the estimated profile.
    basis:
        The spline basis the coefficients refer to.
    lam:
        Smoothing parameter used for the final fit.
    times:
        Population measurement times (minutes).
    measurements:
        Observed population values ``G(t_m)``.
    fitted:
        Model-predicted population values ``G_hat(t_m)``; computed from
        ``problem`` when omitted.
    sigma:
        Measurement standard deviations used as weights; taken from
        ``problem`` when omitted.
    data_misfit:
        Weighted squared residual of the fit; computed from ``problem``
        when omitted.
    roughness:
        Roughness ``\\int f''^2`` of the estimate; computed from ``problem``
        when omitted.
    solver_converged:
        Whether the QP solver reported convergence.
    solver_iterations:
        Iterations used by the QP solver.
    lambda_path:
        Optional record of the lambda-selection scores (lambda -> score).
    mean_cycle_time:
        Mean cell-cycle time used to convert phase to "simulated time".
    constraint_violations:
        Residual constraint violations at the solution; computed from
        ``problem`` when omitted.
    solver_active_set:
        Inequality constraints active at the solution; warm-starts related
        solves (bootstrap replicates, neighbouring lambdas, sibling species).
    problem:
        The :class:`~repro.core.problem.DeconvolutionProblem` the result was
        solved on; required only when one of the lazy attributes above is
        omitted.
    """

    def __init__(
        self,
        coefficients: np.ndarray,
        basis: SplineBasis,
        lam: float,
        times: np.ndarray,
        measurements: np.ndarray,
        fitted: Optional[np.ndarray] = None,
        sigma: Optional[np.ndarray] = None,
        data_misfit: Optional[float] = None,
        roughness: Optional[float] = None,
        solver_converged: bool = True,
        solver_iterations: int = 0,
        lambda_path: Optional[dict] = None,
        mean_cycle_time: float = 150.0,
        constraint_violations: Optional[dict] = None,
        solver_active_set: Optional[list] = None,
        problem: Optional["DeconvolutionProblem"] = None,
    ) -> None:
        self.coefficients = coefficients
        self.basis = basis
        self.lam = lam
        self.times = times
        self.measurements = measurements
        self.solver_converged = solver_converged
        self.solver_iterations = solver_iterations
        self.lambda_path = {} if lambda_path is None else lambda_path
        self.mean_cycle_time = mean_cycle_time
        self.solver_active_set = [] if solver_active_set is None else solver_active_set
        self._problem = problem
        self._fitted = fitted
        self._sigma = sigma
        self._data_misfit = data_misfit
        self._roughness = roughness
        self._constraint_violations = constraint_violations

    def release_backing_caches(self) -> "DeconvolutionResult":
        """Keep lazy diagnostics but stop pinning solver factorizations.

        The backing problem drops its references to the shared per-lambda
        factorization caches and design products
        (:meth:`~repro.core.problem.DeconvolutionProblem.release_solver_caches`
        — the owning session keeps its own), so holding this result
        long-term, e.g. in the service result cache, does not keep solver
        state alive past session/pool eviction.  Costs a few attribute
        rebinds, no materialization.  Returns ``self`` for chaining.
        """
        if self._problem is not None:
            self._problem.release_solver_caches()
        return self

    def _materialize(self) -> None:
        """Force every lazy diagnostic to its concrete value.

        The single list of lazily computed attributes; :meth:`detach` and
        pickling both rely on it, so a new lazy diagnostic only needs to be
        added here.
        """
        _ = (
            self.fitted,
            self.sigma,
            self.data_misfit,
            self.roughness,
            self.constraint_violations,
        )

    def detach(self) -> "DeconvolutionResult":
        """Materialize every lazy diagnostic and drop the backing problem.

        Afterwards the result is self-contained: it no longer pins the
        problem's factorization caches or the owning session's arrays in
        memory.  Long-lived holders of results (the service result cache,
        archives) detach so that session/pool eviction can actually reclaim
        memory.  Returns ``self`` for chaining.
        """
        if self._problem is not None:
            self._materialize()
            self._problem = None
        return self

    def __getstate__(self) -> dict:
        """Materialize via :meth:`detach` semantics for pickling.

        Problems hold LAPACK factorization workspaces that cannot (and
        should not) cross pickle boundaries; a pickled result is therefore
        fully materialized and self-contained.
        """
        if self._problem is not None:
            self._materialize()
        state = self.__dict__.copy()
        state["_problem"] = None
        return state

    def _require_problem(self, attribute: str) -> "DeconvolutionProblem":
        """The backing problem, or a clear error when it was never attached."""
        if self._problem is None:
            raise AttributeError(
                f"{attribute} was not provided and no problem is attached to compute it from"
            )
        return self._problem

    @property
    def fitted(self) -> np.ndarray:
        """Model-predicted population values ``G_hat(t_m)``."""
        if self._fitted is None:
            problem = self._require_problem("fitted")
            self._fitted = problem.forward.predict(self.coefficients)
        return self._fitted

    @property
    def sigma(self) -> np.ndarray:
        """Measurement standard deviations used as weights."""
        if self._sigma is None:
            self._sigma = self._require_problem("sigma").sigma.copy()
        return self._sigma

    @property
    def data_misfit(self) -> float:
        """Weighted squared residual of the fit."""
        if self._data_misfit is None:
            problem = self._require_problem("data_misfit")
            self._data_misfit = problem.data_misfit(self.coefficients)
        return self._data_misfit

    @property
    def roughness(self) -> float:
        """Roughness ``\\int f''^2`` of the estimate."""
        if self._roughness is None:
            problem = self._require_problem("roughness")
            self._roughness = problem.roughness(self.coefficients)
        return self._roughness

    @property
    def constraint_violations(self) -> dict:
        """Residual equality/inequality violations at the solution.

        Empty for hand-built results without an attached problem (matching
        the pre-lazy default).
        """
        if self._constraint_violations is None:
            if self._problem is None:
                self._constraint_violations = {}
            else:
                self._constraint_violations = self._problem.constraint_set.violations(
                    self.coefficients
                )
        return self._constraint_violations

    def profile(self, phases: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the deconvolved profile ``f(phi)`` at the given phases."""
        scalar = np.ndim(phases) == 0
        phases_arr = np.atleast_1d(np.asarray(phases, dtype=float))
        values = self.basis.profile(self.coefficients, phases_arr)
        return float(values[0]) if scalar else values

    def profile_derivative(self, phases: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the derivative ``f'(phi)`` of the deconvolved profile."""
        scalar = np.ndim(phases) == 0
        phases_arr = np.atleast_1d(np.asarray(phases, dtype=float))
        values = self.basis.profile_derivative(self.coefficients, phases_arr)
        return float(values[0]) if scalar else values

    def profile_on_grid(self, num_points: int = 201) -> tuple[np.ndarray, np.ndarray]:
        """Profile sampled on a uniform phase grid; returns ``(phases, values)``."""
        phases = np.linspace(0.0, 1.0, int(num_points))
        return phases, self.profile(phases)

    def profile_vs_time(self, num_points: int = 201) -> tuple[np.ndarray, np.ndarray]:
        """Profile against "simulated time" (phase scaled by the mean cycle time).

        This is the scaling used for the bottom panel of Fig. 5 in the paper.
        """
        phases, values = self.profile_on_grid(num_points)
        return phases * self.mean_cycle_time, values

    @property
    def residuals(self) -> np.ndarray:
        """Raw residuals ``G - G_hat``."""
        return self.measurements - self.fitted

    @property
    def weighted_residuals(self) -> np.ndarray:
        """Residuals divided by the measurement standard deviations."""
        return self.residuals / self.sigma

    def cost(self) -> float:
        """Value of the paper's cost criterion (eq. 5) at the estimate."""
        return self.data_misfit + self.lam * self.roughness

    def rmse_against(self, phases: np.ndarray, truth: np.ndarray) -> float:
        """Root-mean-square error of the profile against a known ground truth."""
        phases = ensure_1d(phases, "phases")
        truth = ensure_1d(truth, "truth")
        if phases.size != truth.size:
            raise ValueError("phases and truth must have the same length")
        estimate = self.profile(phases)
        return float(np.sqrt(np.mean((estimate - truth) ** 2)))

    def summary(self) -> str:
        """Short human-readable fit summary."""
        lines = [
            "DeconvolutionResult:",
            f"  basis functions      : {self.basis.num_basis}",
            f"  lambda               : {self.lam:.4g}",
            f"  data misfit          : {self.data_misfit:.6g}",
            f"  roughness            : {self.roughness:.6g}",
            f"  cost                 : {self.cost():.6g}",
            f"  solver converged     : {self.solver_converged}",
            f"  solver iterations    : {self.solver_iterations}",
        ]
        if self.constraint_violations:
            eq = self.constraint_violations.get("equality", 0.0)
            ineq = self.constraint_violations.get("inequality", 0.0)
            lines.append(f"  constraint violation : eq {eq:.3g}, ineq {ineq:.3g}")
        return "\n".join(lines)
