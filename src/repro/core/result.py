"""Deconvolution result container."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.basis import SplineBasis
from repro.utils.validation import ensure_1d


@dataclass
class DeconvolutionResult:
    """Estimated synchronous expression profile and fit metadata.

    Attributes
    ----------
    coefficients:
        Spline coefficients ``alpha`` of the estimated profile.
    basis:
        The spline basis the coefficients refer to.
    lam:
        Smoothing parameter used for the final fit.
    times:
        Population measurement times (minutes).
    measurements:
        Observed population values ``G(t_m)``.
    fitted:
        Model-predicted population values ``G_hat(t_m)``.
    sigma:
        Measurement standard deviations used as weights.
    data_misfit:
        Weighted squared residual of the fit.
    roughness:
        Roughness ``\\int f''^2`` of the estimate.
    solver_converged:
        Whether the QP solver reported convergence.
    solver_iterations:
        Iterations used by the QP solver.
    solver_active_set:
        Inequality constraints active at the solution; warm-starts related
        solves (bootstrap replicates, neighbouring lambdas, sibling species).
    lambda_path:
        Optional record of the lambda-selection scores (lambda -> score).
    mean_cycle_time:
        Mean cell-cycle time used to convert phase to "simulated time".
    """

    coefficients: np.ndarray
    basis: SplineBasis
    lam: float
    times: np.ndarray
    measurements: np.ndarray
    fitted: np.ndarray
    sigma: np.ndarray
    data_misfit: float
    roughness: float
    solver_converged: bool
    solver_iterations: int
    lambda_path: dict[float, float] = field(default_factory=dict)
    mean_cycle_time: float = 150.0
    constraint_violations: dict[str, float] = field(default_factory=dict)
    solver_active_set: list[int] = field(default_factory=list)

    def profile(self, phases: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the deconvolved profile ``f(phi)`` at the given phases."""
        scalar = np.ndim(phases) == 0
        phases_arr = np.atleast_1d(np.asarray(phases, dtype=float))
        values = self.basis.profile(self.coefficients, phases_arr)
        return float(values[0]) if scalar else values

    def profile_derivative(self, phases: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the derivative ``f'(phi)`` of the deconvolved profile."""
        scalar = np.ndim(phases) == 0
        phases_arr = np.atleast_1d(np.asarray(phases, dtype=float))
        values = self.basis.profile_derivative(self.coefficients, phases_arr)
        return float(values[0]) if scalar else values

    def profile_on_grid(self, num_points: int = 201) -> tuple[np.ndarray, np.ndarray]:
        """Profile sampled on a uniform phase grid; returns ``(phases, values)``."""
        phases = np.linspace(0.0, 1.0, int(num_points))
        return phases, self.profile(phases)

    def profile_vs_time(self, num_points: int = 201) -> tuple[np.ndarray, np.ndarray]:
        """Profile against "simulated time" (phase scaled by the mean cycle time).

        This is the scaling used for the bottom panel of Fig. 5 in the paper.
        """
        phases, values = self.profile_on_grid(num_points)
        return phases * self.mean_cycle_time, values

    @property
    def residuals(self) -> np.ndarray:
        """Raw residuals ``G - G_hat``."""
        return self.measurements - self.fitted

    @property
    def weighted_residuals(self) -> np.ndarray:
        """Residuals divided by the measurement standard deviations."""
        return self.residuals / self.sigma

    def cost(self) -> float:
        """Value of the paper's cost criterion (eq. 5) at the estimate."""
        return self.data_misfit + self.lam * self.roughness

    def rmse_against(self, phases: np.ndarray, truth: np.ndarray) -> float:
        """Root-mean-square error of the profile against a known ground truth."""
        phases = ensure_1d(phases, "phases")
        truth = ensure_1d(truth, "truth")
        if phases.size != truth.size:
            raise ValueError("phases and truth must have the same length")
        estimate = self.profile(phases)
        return float(np.sqrt(np.mean((estimate - truth) ** 2)))

    def summary(self) -> str:
        """Short human-readable fit summary."""
        lines = [
            "DeconvolutionResult:",
            f"  basis functions      : {self.basis.num_basis}",
            f"  lambda               : {self.lam:.4g}",
            f"  data misfit          : {self.data_misfit:.6g}",
            f"  roughness            : {self.roughness:.6g}",
            f"  cost                 : {self.cost():.6g}",
            f"  solver converged     : {self.solver_converged}",
            f"  solver iterations    : {self.solver_iterations}",
        ]
        if self.constraint_violations:
            eq = self.constraint_violations.get("equality", 0.0)
            ineq = self.constraint_violations.get("inequality", 0.0)
            lines.append(f"  constraint violation : eq {eq:.3g}, ineq {ineq:.3g}")
        return "\n".join(lines)
