"""Natural-cubic-spline basis for the synchronous expression ``f(phi)``.

Following Sec. 2.3 of the paper, ``f`` is modelled as
``f_alpha(phi) = sum_i alpha_i psi_i(phi)`` where the ``psi_i`` are natural
cubic splines.  Here the ``i``-th basis function is the natural cubic spline
that interpolates one at knot ``i`` and zero at every other knot (the cardinal
spline basis), which makes the coefficients directly interpretable as knot
values of the profile.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.numerics.interpolation import NaturalCubicSpline
from repro.utils.validation import check_sorted, ensure_1d

# Expensive per-knot-vector tables memoised by knot fingerprint: every fresh
# ``SplineBasis`` over the same knots — one per Deconvolver in a sweep, one
# per session in an experiment — reuses the roughness (penalty) Gram matrix
# and the stacked cardinal-spline second-derivative table instead of
# re-deriving them spline by spline.  The arrays are documented read-only;
# small LRUs bound pathological knot sweeps.
_PENALTY_CACHE: OrderedDict[bytes, np.ndarray] = OrderedDict()
_SECOND_DERIVATIVE_CACHE: OrderedDict[bytes, np.ndarray] = OrderedDict()
_PENALTY_CACHE_SIZE = 16


def clear_penalty_cache() -> None:
    """Drop the memoised basis tables (benchmarking and tests)."""
    _PENALTY_CACHE.clear()
    _SECOND_DERIVATIVE_CACHE.clear()


class SplineBasis:
    """Cardinal natural-cubic-spline basis on ``[0, 1]``.

    Parameters
    ----------
    num_basis:
        Number of basis functions (equivalently knots); at least four.
    knots:
        Optional explicit strictly increasing knot vector covering ``[0, 1]``;
        overrides ``num_basis`` when given.
    """

    def __init__(self, num_basis: int = 12, knots: np.ndarray | None = None) -> None:
        if knots is not None:
            self.knots = check_sorted(knots, "knots")
            if abs(self.knots[0]) > 1e-12 or abs(self.knots[-1] - 1.0) > 1e-12:
                raise ValueError("explicit knots must start at 0 and end at 1")
        else:
            num_basis = int(num_basis)
            if num_basis < 4:
                raise ValueError(f"num_basis must be >= 4, got {num_basis}")
            self.knots = np.linspace(0.0, 1.0, num_basis)
        if self.knots.size < 4:
            raise ValueError("the basis needs at least four knots")
        self._splines_cache: list[NaturalCubicSpline] | None = None
        self._penalty: np.ndarray | None = None
        # Stacked cardinal-spline data for one-pass basis evaluation: knot
        # values (the identity) and per-spline knot second derivatives.  The
        # second-derivative table costs one tridiagonal solve per basis
        # function, so bases sharing a knot fingerprint share it through the
        # module-level memo.
        self._knot_values = np.eye(self.knots.size)
        key = self.fingerprint
        table = _SECOND_DERIVATIVE_CACHE.get(key)
        if table is None:
            table = np.column_stack(
                [spline.second_derivatives for spline in self._splines]
            )
            _SECOND_DERIVATIVE_CACHE[key] = table
            while len(_SECOND_DERIVATIVE_CACHE) > _PENALTY_CACHE_SIZE:
                _SECOND_DERIVATIVE_CACHE.popitem(last=False)
        else:
            _SECOND_DERIVATIVE_CACHE.move_to_end(key)
        self._knot_second_derivatives = table

    @property
    def _splines(self) -> list[NaturalCubicSpline]:
        """Per-basis-function cardinal splines, built on first use.

        Only the exact penalty integral (:meth:`penalty_matrix` on a cache
        miss) needs the spline objects themselves; evaluation runs off the
        stacked knot tables.
        """
        if self._splines_cache is None:
            self._splines_cache = [
                NaturalCubicSpline(self.knots, np.eye(self.knots.size)[i])
                for i in range(self.knots.size)
            ]
        return self._splines_cache

    def _locate(self, phases: np.ndarray) -> np.ndarray:
        """Knot-interval index of each phase (clamped, end pieces extrapolate)."""
        idx = np.searchsorted(self.knots, phases, side="right") - 1
        return np.clip(idx, 0, self.knots.size - 2)

    @property
    def num_basis(self) -> int:
        """Number of basis functions."""
        return int(self.knots.size)

    @property
    def fingerprint(self) -> bytes:
        """Hashable identity of the basis: the raw bytes of its knot vector.

        Two bases with bit-identical knots produce identical evaluation and
        penalty matrices, so the fingerprint keys every cross-instance memo
        (penalty Gram, assembly contexts, session grids).
        """
        return np.ascontiguousarray(self.knots).tobytes()

    def evaluate(self, phases: np.ndarray) -> np.ndarray:
        """Basis matrix ``B[j, i] = psi_i(phases[j])``.

        All cardinal splines share the knot vector, so the whole matrix is
        evaluated in one pass (one interval search for all splines) instead
        of once per basis function; the arithmetic matches the per-spline
        evaluation exactly.
        """
        phases = ensure_1d(phases, "phases")
        x = self.knots
        idx = self._locate(phases)
        h = x[idx + 1] - x[idx]
        a = (x[idx + 1] - phases) / h
        b = (phases - x[idx]) / h
        y = self._knot_values
        m = self._knot_second_derivatives
        return (
            a[:, None] * y[idx]
            + b[:, None] * y[idx + 1]
            + ((a**3 - a)[:, None] * m[idx] + (b**3 - b)[:, None] * m[idx + 1])
            * (h**2)[:, None]
            / 6.0
        )

    def evaluate_derivative(self, phases: np.ndarray) -> np.ndarray:
        """First-derivative basis matrix ``B'[j, i] = psi_i'(phases[j])``."""
        phases = ensure_1d(phases, "phases")
        x = self.knots
        idx = self._locate(phases)
        h = x[idx + 1] - x[idx]
        a = (x[idx + 1] - phases) / h
        b = (phases - x[idx]) / h
        y = self._knot_values
        m = self._knot_second_derivatives
        return (
            (y[idx + 1] - y[idx]) / h[:, None]
            - ((3.0 * a**2 - 1.0) / 6.0 * h)[:, None] * m[idx]
            + ((3.0 * b**2 - 1.0) / 6.0 * h)[:, None] * m[idx + 1]
        )

    def evaluate_second_derivative(self, phases: np.ndarray) -> np.ndarray:
        """Second-derivative basis matrix ``B''[j, i] = psi_i''(phases[j])``."""
        phases = ensure_1d(phases, "phases")
        idx = self._locate(phases)
        x = self.knots
        h = x[idx + 1] - x[idx]
        a = (x[idx + 1] - phases) / h
        b = (phases - x[idx]) / h
        m = self._knot_second_derivatives
        return a[:, None] * m[idx] + b[:, None] * m[idx + 1]

    def penalty_matrix(self) -> np.ndarray:
        """Roughness penalty ``Omega[i, j] = \\int psi_i''(phi) psi_j''(phi) dphi``.

        The integral is evaluated exactly (the second derivatives are
        piecewise linear), so the matrix is symmetric positive semi-definite
        with the constant and linear functions in its null space.  The matrix
        is computed once per *knot vector* — bases sharing a fingerprint
        share the assembled matrix through a module-level memo — and cached;
        treat it as read-only.
        """
        if self._penalty is not None:
            return self._penalty
        key = self.fingerprint
        omega = _PENALTY_CACHE.get(key)
        if omega is None:
            n = self.num_basis
            omega = np.zeros((n, n))
            for i in range(n):
                for j in range(i, n):
                    value = self._splines[i].roughness_cross(self._splines[j])
                    omega[i, j] = value
                    omega[j, i] = value
            _PENALTY_CACHE[key] = omega
            while len(_PENALTY_CACHE) > _PENALTY_CACHE_SIZE:
                _PENALTY_CACHE.popitem(last=False)
        else:
            _PENALTY_CACHE.move_to_end(key)
        self._penalty = omega
        return omega

    def profile(self, coefficients: np.ndarray, phases: np.ndarray) -> np.ndarray:
        """Evaluate ``f_alpha`` at ``phases`` for the given coefficients."""
        coefficients = ensure_1d(coefficients, "coefficients")
        if coefficients.size != self.num_basis:
            raise ValueError("coefficient vector has the wrong length")
        return self.evaluate(phases) @ coefficients

    def profile_derivative(self, coefficients: np.ndarray, phases: np.ndarray) -> np.ndarray:
        """Evaluate ``f_alpha'`` at ``phases`` for the given coefficients."""
        coefficients = ensure_1d(coefficients, "coefficients")
        if coefficients.size != self.num_basis:
            raise ValueError("coefficient vector has the wrong length")
        return self.evaluate_derivative(phases) @ coefficients

    def interpolation_coefficients(self, phases: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Least-squares coefficients reproducing ``values`` sampled at ``phases``.

        Useful for projecting a known synchronous profile (e.g. the
        Lotka-Volterra ground truth) onto the basis for error analysis.
        """
        design = self.evaluate(phases)
        values = ensure_1d(values, "values")
        if values.size != design.shape[0]:
            raise ValueError("phases and values must have the same length")
        coefficients, *_ = np.linalg.lstsq(design, values, rcond=None)
        return coefficients

    def roughness(self, coefficients: np.ndarray) -> float:
        """Roughness ``\\int f_alpha''(phi)^2 dphi`` of a coefficient vector."""
        coefficients = ensure_1d(coefficients, "coefficients")
        omega = self.penalty_matrix()
        return float(coefficients @ omega @ coefficients)
