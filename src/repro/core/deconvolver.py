"""High-level deconvolution facade.

:class:`Deconvolver` is the public entry point of the library: given a
volume-density kernel (or the ingredients to build one) it turns a
population-level expression time series into an estimate of the synchronous
single-cell profile ``f(phi)``, handling basis construction, constraint
assembly, smoothing-parameter selection and the constrained QP solve.

Repeated fits share everything reusable through an experiment-scoped
:class:`~repro.core.session.FitSession`: kernels, forward models and template
problems (with their per-lambda QP factorizations and selection plans) are
cached per measurement grid, multi-species batches and bootstrap replicates
ride the batched multi-RHS engine, and each solve can be warm-started from a
related previous fit via the ``warm_start`` argument.  The session — reached
with :meth:`Deconvolver.session` — also exposes the streaming
``submit``/``flush``/``fit_stream`` API for service-style callers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import config
from repro.cellcycle.kernel import KernelBuilder, VolumeKernel
from repro.cellcycle.parameters import CellCycleParameters
from repro.core.basis import SplineBasis
from repro.core.constraints import Constraint, default_constraints
from repro.core.lambda_selection import (
    default_lambda_grid,
    generalized_cross_validation_batch,
    select_lambda,
)
from repro.core.problem import DeconvolutionProblem
from repro.core.result import DeconvolutionResult
from repro.core.session import FitSession, FitWorkspace
from repro.utils.rng import SeedLike
from repro.utils.validation import ensure_1d

__all__ = ["Deconvolver", "FitSession", "FitWorkspace"]


class Deconvolver:
    """In-silico synchronisation of population expression time series.

    Parameters
    ----------
    kernel:
        Pre-built volume-density kernel whose times match the measurements to
        be deconvolved.  If omitted, a kernel is built on demand from
        ``parameters`` with :class:`~repro.cellcycle.kernel.KernelBuilder`.
    parameters:
        Cell-cycle parameters (used both for kernel construction and for the
        division constraints); defaults to the paper's Caulobacter values.
    num_basis:
        Number of natural-cubic-spline basis functions for ``f(phi)``.
    constraints:
        Constraint objects; defaults to the paper's full stack (positivity,
        RNA conservation, rate continuity).
    solver_backend:
        QP backend: ``"auto"`` (in-repo active-set solver with SciPy fallback),
        ``"active_set"`` or ``"scipy"``.
    kernel_builder:
        Optional pre-configured builder used when ``kernel`` is omitted.
    """

    def __init__(
        self,
        kernel: Optional[VolumeKernel] = None,
        *,
        parameters: Optional[CellCycleParameters] = None,
        num_basis: int = config.DEFAULT_NUM_BASIS,
        constraints: Optional[Sequence[Constraint]] = None,
        solver_backend: str = "auto",
        kernel_builder: Optional[KernelBuilder] = None,
    ) -> None:
        self.parameters = parameters if parameters is not None else CellCycleParameters()
        self.kernel = kernel
        self.kernel_builder = kernel_builder
        self.basis = SplineBasis(num_basis=num_basis)
        if constraints is None:
            self.constraints: list[Constraint] = default_constraints()
        else:
            self.constraints = list(constraints)
        self.solver_backend = solver_backend
        self._session: Optional[FitSession] = None

    def ensure_kernel(self, times: np.ndarray, rng: SeedLike = 0) -> VolumeKernel:
        """Return a kernel matching ``times``, building one if necessary."""
        times = ensure_1d(times, "times")
        if self.kernel is not None:
            if self.kernel.times.size != times.size or not np.allclose(self.kernel.times, times):
                raise ValueError(
                    "the provided kernel's measurement times do not match the data times"
                )
            return self.kernel
        builder = self.kernel_builder
        if builder is None:
            builder = KernelBuilder(self.parameters)
        self.kernel = builder.build(times, rng)
        return self.kernel

    def session(self, *, fresh: bool = False) -> FitSession:
        """Experiment-scoped :class:`FitSession` owning every reusable cache.

        The session is created lazily and kept while the deconvolver's
        (public) kernel/basis/parameters/constraints attributes are
        unchanged; replacing any of them between fits transparently starts a
        fresh session, so stale factorizations can never leak across
        configurations.  ``fresh=True`` forces a new session (dropping every
        per-grid cache), e.g. to bound memory in a long-lived service.
        """
        if fresh or self._session is None or not self._session.matches(self):
            self._session = FitSession(self)
        return self._session

    def fit_workspace(
        self,
        times: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        rng: SeedLike = 0,
    ) -> FitWorkspace:
        """Shared workspace for repeated fits on one (times, sigma) grid.

        Workspaces live in the :meth:`session`, which retains one per grid:
        asking for any previously seen grid returns the original workspace
        object with all of its factorizations.
        """
        return self.session().workspace(times, sigma=sigma, rng=rng)

    def build_problem(
        self,
        times: np.ndarray,
        measurements: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        rng: SeedLike = 0,
    ) -> DeconvolutionProblem:
        """Assemble the optimisation problem for a measurement series."""
        measurements = ensure_1d(measurements, "measurements")
        workspace = self.fit_workspace(times, sigma=sigma, rng=rng)
        return workspace.problem_for(measurements)

    def fit(
        self,
        times: np.ndarray,
        measurements: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        lam: float | None = None,
        lambda_method: str = "gcv",
        lambda_grid: np.ndarray | None = None,
        rng: SeedLike = 0,
        warm_start: DeconvolutionResult | None = None,
    ) -> DeconvolutionResult:
        """Deconvolve one population expression time series.

        Parameters
        ----------
        times:
            Measurement times in minutes.
        measurements:
            Population expression values ``G(t_m)``.
        sigma:
            Measurement standard deviations (scalar or per measurement);
            defaults to uniform weighting.
        lam:
            Fixed smoothing parameter.  When ``None`` the parameter is
            selected automatically with ``lambda_method``.
        lambda_method:
            ``"gcv"`` or ``"kfold"``; used only when ``lam`` is ``None``.
        lambda_grid:
            Candidate grid for the automatic selection.
        rng:
            Seed for kernel construction (when needed) and CV fold assignment.
        warm_start:
            Result of a related previous fit on the same grid (a bootstrap
            base fit, the previous species in a batch); its coefficients and
            active set warm-start the final QP solve.  Ignored when the basis
            sizes differ.

        Returns
        -------
        DeconvolutionResult
            The fitted profile plus diagnostics.
        """
        problem = self.build_problem(times, measurements, sigma=sigma, rng=rng)

        lambda_path: dict[float, float] = {}
        if lam is None:
            selection = select_lambda(
                problem, lambda_grid, method=lambda_method, backend=self.solver_backend, rng=rng
            )
            lam = selection.best_lambda
            lambda_path = selection.scores

        warm_x = None
        warm_active = None
        if warm_start is not None and warm_start.coefficients.size == problem.num_coefficients:
            warm_x = warm_start.coefficients
            warm_active = warm_start.solver_active_set
        qp_result = problem.solve(
            float(lam), backend=self.solver_backend, x0=warm_x, active_set=warm_active
        )
        return self._result_from_solve(problem, float(lam), qp_result, times, lambda_path)

    def _result_from_solve(
        self,
        problem: DeconvolutionProblem,
        lam: float,
        qp_result,
        times: np.ndarray,
        lambda_path: dict[float, float],
    ) -> DeconvolutionResult:
        """Package one QP solve into a :class:`DeconvolutionResult`.

        Derived diagnostics (fitted values, misfit, roughness, constraint
        violations) are left to the result's lazy properties, backed by the
        problem reference: batched high-throughput paths only pay for what a
        caller actually reads, and the values are identical either way.
        """
        coefficients = qp_result.x
        return DeconvolutionResult(
            coefficients=coefficients,
            basis=self.basis,
            lam=float(lam),
            times=ensure_1d(times, "times").copy(),
            measurements=problem.measurements.copy(),
            solver_converged=qp_result.converged,
            solver_iterations=qp_result.iterations,
            lambda_path=lambda_path,
            mean_cycle_time=self.parameters.mean_cycle_time,
            solver_active_set=list(qp_result.active_set),
            problem=problem,
        )

    def fit_many(
        self,
        times: np.ndarray,
        measurement_matrix: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        lam: float | None = None,
        lambda_method: str = "gcv",
        lambda_grid: np.ndarray | None = None,
        rng: SeedLike = 0,
        engine: str = "auto",
        workers: int | None = None,
        warm_start_chain: bool = True,
        cross_lambda: bool | None = None,
    ) -> list[DeconvolutionResult]:
        """Deconvolve several species sharing the same measurement times.

        ``measurement_matrix`` has one column per species.  All species share
        the kernel, design matrix, constraint rows, per-lambda QP
        factorizations *and* the lambda search's eigendecompositions (the GCV
        pencil, the k-fold per-fold plans) through one :class:`FitWorkspace`
        and its template problem, so the per-species marginal cost is a
        gradient, a grid scoring pass and one QP solve — or, on the default
        batched engine, one *row* of a stacked multi-RHS solve.

        Parameters
        ----------
        times, sigma, lambda_method, lambda_grid, rng:
            As in :meth:`fit`, applied to every species.
        lam:
            Fixed smoothing parameter(s): a scalar applies to every species,
            a sequence gives one entry per column (entries may be ``None``
            to request automatic selection for that species), and ``None``
            selects automatically for every species.  Mixed-lambda batches
            let service callers solve heterogeneous traffic on one grid as
            a single call — the batch engine groups by lambda internally.
        engine:
            Which execution engine runs the final per-species solves (lambda
            selection is always serial so the shared plans are filled
            deterministically):

            * ``"batch"`` — species are grouped by their selected lambda and
              each group is solved as one stacked multi-RHS
              :meth:`~repro.core.problem.DeconvolutionProblem.solve_batch`
              (shared factorization, single LAPACK calls; the active-set
              loop only runs for species where positivity binds
              differently).
            * ``"serial"`` — one :meth:`fit` per species, chained through
              ``warm_start_chain``.
            * ``"thread"`` — the final solves fan out over a thread pool of
              ``workers`` (bit-for-bit identical to ``serial`` with
              ``warm_start_chain=False``); GIL-bound in the pure-Python
              active-set loop, kept for reference.
            * ``"process"`` — escape hatch for workloads that need real
              CPU parallelism beyond the batched engine: each species is
              fitted in a separate process (fresh problem assembly per
              worker, so it only pays off for expensive per-species fits).
              Requires picklable kernel/constraints and gives every worker
              an identical copy of ``rng``.
            * ``"auto"`` (default) — ``"batch"``.
        workers:
            Pool size for the ``thread`` / ``process`` engines; defaults to
            :func:`repro.config.default_pool_size` (species count capped at
            the per-kind limit).  Ignored by the ``batch`` and ``serial``
            engines.
        warm_start_chain:
            Serial engine only: when true (default) each species' final
            solve is warm-started from the previous species' solution and
            active set.  Set to false for fully independent,
            order-insensitive per-species solves.
        cross_lambda:
            Batch engine only: when a batch spans several distinct lambdas,
            solve all of them in one stacked eig-basis pass
            (:meth:`~repro.core.problem.DeconvolutionProblem.solve_mixed`)
            instead of one ``solve_batch`` per lambda group.  ``None``
            (default) enables the stacked pass automatically for
            mixed-lambda batches; ``False`` forces the per-group sweep.
            Either path returns the same verified optima (≤ 1e-10).

        Returns
        -------
        list[DeconvolutionResult]
            One result per species, in column order.
        """
        matrix = np.asarray(measurement_matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("measurement_matrix must be two-dimensional")
        num_species = matrix.shape[1]
        if engine == "auto":
            engine = "batch"
        if engine not in ("batch", "serial", "thread", "process"):
            raise ValueError(f"unknown fit_many engine {engine!r}")

        if lam is None or np.ndim(lam) == 0:
            requested: list[float | None] = [
                None if lam is None else float(lam)
            ] * num_species
        else:
            requested = [None if value is None else float(value) for value in lam]
            if len(requested) != num_species:
                raise ValueError("per-species lam must have one entry per column")

        if engine == "serial" and warm_start_chain:
            results: list[DeconvolutionResult] = []
            previous: DeconvolutionResult | None = None
            for column in range(num_species):
                previous = self.fit(
                    times,
                    matrix[:, column],
                    sigma=sigma,
                    lam=requested[column],
                    lambda_method=lambda_method,
                    lambda_grid=lambda_grid,
                    rng=rng,
                    warm_start=previous,
                )
                results.append(previous)
            return results

        if engine == "process":
            return self._fit_many_process(
                times, matrix, sigma, requested, lambda_method, lambda_grid, rng, workers
            )

        workspace = self.fit_workspace(times, sigma=sigma, rng=rng)
        problems = [workspace.problem_for(matrix[:, column]) for column in range(num_species)]
        lams: list[float] = []
        paths: list[dict[float, float]] = []
        unselected = [column for column, value in enumerate(requested) if value is None]
        if len(unselected) > 1 and lambda_method == "gcv":
            # The whole batch is GCV-scored in one matrix pass off the shared
            # eigendecomposition; see generalized_cross_validation_batch.
            grid = (
                default_lambda_grid()
                if lambda_grid is None
                else ensure_1d(lambda_grid, "lambda_grid")
            )
            selections = iter(
                generalized_cross_validation_batch(
                    workspace.template, matrix[:, unselected], grid
                )
            )
        else:
            selections = None
        for column, problem in enumerate(problems):
            if requested[column] is not None:
                lams.append(float(requested[column]))
                paths.append({})
            elif selections is not None:
                selection = next(selections)
                lams.append(float(selection.best_lambda))
                paths.append(selection.scores)
            else:
                # k-fold selection runs serially: the per-grid fold plans
                # live in shared caches that the first species fills and the
                # rest reuse.
                selection = select_lambda(
                    problem,
                    lambda_grid,
                    method=lambda_method,
                    backend=self.solver_backend,
                    rng=rng,
                )
                lams.append(float(selection.best_lambda))
                paths.append(selection.scores)

        if engine == "batch":
            # Species sharing a selected lambda also share their Hessian
            # factorization, so each group is one stacked multi-RHS solve.
            # Groups are swept from the largest lambda down (heavily
            # smoothed solves activate the fewest constraints) and each
            # group's last active set seeds the next group's batched KKT
            # verification — the cross-species warm chain of the serial
            # engine, expressed as shared-set guesses.
            groups: dict[float, list[int]] = {}
            for column, chosen in enumerate(lams):
                groups.setdefault(chosen, []).append(column)
            results = [None] * num_species  # type: ignore[list-item]
            if len(groups) > 1 and cross_lambda is not False:
                # Mixed-lambda batch: one stacked eig-basis pass solves every
                # column regardless of its lambda (per-group active-set
                # fallback runs inside solve_mixed only where positivity
                # binds), cutting the per-group fixed cost out of the
                # micro-batch floor.
                mixed = workspace.template.solve_mixed(
                    lams, matrix, backend=self.solver_backend
                )
                return [
                    self._result_from_solve(
                        problems[column],
                        lams[column],
                        mixed.result(column),
                        times,
                        paths[column],
                    )
                    for column in range(num_species)
                ]
            shared: list[int] | None = None
            for chosen in sorted(groups, reverse=True):
                columns = groups[chosen]
                if len(columns) == 1:
                    # Singleton group: the stacked multi-RHS machinery (RHS
                    # stacking, vectorized KKT verification) costs more than
                    # it saves for one row; the plain warm workspace solve
                    # reaches the same exact optimum.
                    (column,) = columns
                    qp_result = problems[column].solve(
                        chosen, backend=self.solver_backend, active_set=shared
                    )
                    results[column] = self._result_from_solve(
                        problems[column], chosen, qp_result, times, paths[column]
                    )
                    shared = list(qp_result.active_set) or shared
                    continue
                batch = workspace.template.solve_batch(
                    chosen,
                    matrix[:, columns],
                    backend=self.solver_backend,
                    shared_active_set=shared,
                )
                for row, column in enumerate(columns):
                    results[column] = self._result_from_solve(
                        problems[column], chosen, batch.result(row), times, paths[column]
                    )
                shared = batch.active_sets[-1] or shared
            return results

        if engine == "serial":
            return [
                self._result_from_solve(
                    problem,
                    chosen,
                    problem.solve(chosen, backend=self.solver_backend),
                    times,
                    path,
                )
                for problem, chosen, path in zip(problems, lams, paths)
            ]

        from concurrent.futures import ThreadPoolExecutor

        from repro.numerics.qp import QPWorkspace, solve_qp

        # Pre-assemble the shared per-lambda Hessians serially; afterwards
        # the worker threads only read the shared caches.
        for chosen in sorted(set(lams)):
            workspace.template.quadratic_program(chosen)

        def solve_one(index: int) -> DeconvolutionResult:
            problem = problems[index]
            program = problem.quadratic_program(lams[index])
            try:
                private = QPWorkspace(program)
            except np.linalg.LinAlgError:
                private = None
            qp_result = solve_qp(
                program, backend=self.solver_backend, workspace=private
            )
            return self._result_from_solve(
                problem, lams[index], qp_result, times, paths[index]
            )

        pool_size = int(workers) if workers else config.default_pool_size(num_species)
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            return list(pool.map(solve_one, range(num_species)))

    def _fit_many_process(
        self,
        times: np.ndarray,
        matrix: np.ndarray,
        sigma: np.ndarray | float | None,
        requested: list,
        lambda_method: str,
        lambda_grid: np.ndarray | None,
        rng: SeedLike,
        workers: int | None,
    ) -> list[DeconvolutionResult]:
        """Process-pool escape hatch behind ``fit_many(engine="process")``.

        Each species is shipped to a worker process together with the
        (picklable) kernel and configuration; the worker rebuilds a fresh
        deconvolver and runs a complete single-species :meth:`fit`.  Nothing
        is shared across workers, so this only pays off when per-species
        fits are expensive enough to amortize the per-process assembly.
        """
        from concurrent.futures import ProcessPoolExecutor

        # Resolve the kernel through the session so registered/per-grid
        # kernels are honoured and the multi-grid caches survive (the old
        # ensure_kernel path pinned self.kernel, invalidating the session).
        kernel = self.session().kernel_for(ensure_1d(times, "times"), rng)
        num_species = matrix.shape[1]
        payloads = [
            (
                kernel,
                self.parameters,
                self.basis.num_basis,
                self.constraints,
                self.solver_backend,
                np.asarray(times, dtype=float),
                matrix[:, column],
                sigma,
                requested[column],
                lambda_method,
                lambda_grid,
                rng,
            )
            for column in range(num_species)
        ]
        pool_size = (
            int(workers)
            if workers
            else config.default_pool_size(num_species, kind="process")
        )
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            return list(pool.map(_fit_one_species_process, payloads))


def _fit_one_species_process(payload: tuple) -> DeconvolutionResult:
    """Worker entry point of ``fit_many(engine="process")``.

    Rebuilds a deconvolver from the pickled configuration and fits one
    species.  Module level so it is importable by worker processes under
    every start method (fork and spawn).
    """
    (
        kernel,
        parameters,
        num_basis,
        constraints,
        solver_backend,
        times,
        measurements,
        sigma,
        lam,
        lambda_method,
        lambda_grid,
        rng,
    ) = payload
    deconvolver = Deconvolver(
        kernel,
        parameters=parameters,
        num_basis=num_basis,
        constraints=constraints,
        solver_backend=solver_backend,
    )
    return deconvolver.fit(
        times,
        measurements,
        sigma=sigma,
        lam=lam,
        lambda_method=lambda_method,
        lambda_grid=lambda_grid,
        rng=rng,
    )
