"""High-level deconvolution facade.

:class:`Deconvolver` is the public entry point of the library: given a
volume-density kernel (or the ingredients to build one) it turns a
population-level expression time series into an estimate of the synchronous
single-cell profile ``f(phi)``, handling basis construction, constraint
assembly, smoothing-parameter selection and the constrained QP solve.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import config
from repro.cellcycle.kernel import KernelBuilder, VolumeKernel
from repro.cellcycle.parameters import CellCycleParameters
from repro.core.basis import SplineBasis
from repro.core.constraints import Constraint, default_constraints
from repro.core.forward import ForwardModel
from repro.core.lambda_selection import select_lambda
from repro.core.problem import DeconvolutionProblem
from repro.core.result import DeconvolutionResult
from repro.utils.rng import SeedLike
from repro.utils.validation import ensure_1d


class Deconvolver:
    """In-silico synchronisation of population expression time series.

    Parameters
    ----------
    kernel:
        Pre-built volume-density kernel whose times match the measurements to
        be deconvolved.  If omitted, a kernel is built on demand from
        ``parameters`` with :class:`~repro.cellcycle.kernel.KernelBuilder`.
    parameters:
        Cell-cycle parameters (used both for kernel construction and for the
        division constraints); defaults to the paper's Caulobacter values.
    num_basis:
        Number of natural-cubic-spline basis functions for ``f(phi)``.
    constraints:
        Constraint objects; defaults to the paper's full stack (positivity,
        RNA conservation, rate continuity).
    solver_backend:
        QP backend: ``"auto"`` (in-repo active-set solver with SciPy fallback),
        ``"active_set"`` or ``"scipy"``.
    kernel_builder:
        Optional pre-configured builder used when ``kernel`` is omitted.
    """

    def __init__(
        self,
        kernel: Optional[VolumeKernel] = None,
        *,
        parameters: Optional[CellCycleParameters] = None,
        num_basis: int = config.DEFAULT_NUM_BASIS,
        constraints: Optional[Sequence[Constraint]] = None,
        solver_backend: str = "auto",
        kernel_builder: Optional[KernelBuilder] = None,
    ) -> None:
        self.parameters = parameters if parameters is not None else CellCycleParameters()
        self.kernel = kernel
        self.kernel_builder = kernel_builder
        self.basis = SplineBasis(num_basis=num_basis)
        if constraints is None:
            self.constraints: list[Constraint] = default_constraints()
        else:
            self.constraints = list(constraints)
        self.solver_backend = solver_backend

    def ensure_kernel(self, times: np.ndarray, rng: SeedLike = 0) -> VolumeKernel:
        """Return a kernel matching ``times``, building one if necessary."""
        times = ensure_1d(times, "times")
        if self.kernel is not None:
            if self.kernel.times.size != times.size or not np.allclose(self.kernel.times, times):
                raise ValueError(
                    "the provided kernel's measurement times do not match the data times"
                )
            return self.kernel
        builder = self.kernel_builder
        if builder is None:
            builder = KernelBuilder(self.parameters)
        self.kernel = builder.build(times, rng)
        return self.kernel

    def build_problem(
        self,
        times: np.ndarray,
        measurements: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        rng: SeedLike = 0,
    ) -> DeconvolutionProblem:
        """Assemble the optimisation problem for a measurement series."""
        measurements = ensure_1d(measurements, "measurements")
        kernel = self.ensure_kernel(times, rng)
        forward = ForwardModel(kernel, self.basis)
        return DeconvolutionProblem(
            forward,
            measurements,
            sigma=sigma,
            constraints=self.constraints,
            parameters=self.parameters,
        )

    def fit(
        self,
        times: np.ndarray,
        measurements: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        lam: float | None = None,
        lambda_method: str = "gcv",
        lambda_grid: np.ndarray | None = None,
        rng: SeedLike = 0,
    ) -> DeconvolutionResult:
        """Deconvolve one population expression time series.

        Parameters
        ----------
        times:
            Measurement times in minutes.
        measurements:
            Population expression values ``G(t_m)``.
        sigma:
            Measurement standard deviations (scalar or per measurement);
            defaults to uniform weighting.
        lam:
            Fixed smoothing parameter.  When ``None`` the parameter is
            selected automatically with ``lambda_method``.
        lambda_method:
            ``"gcv"`` or ``"kfold"``; used only when ``lam`` is ``None``.
        lambda_grid:
            Candidate grid for the automatic selection.
        rng:
            Seed for kernel construction (when needed) and CV fold assignment.

        Returns
        -------
        DeconvolutionResult
            The fitted profile plus diagnostics.
        """
        problem = self.build_problem(times, measurements, sigma=sigma, rng=rng)

        lambda_path: dict[float, float] = {}
        if lam is None:
            selection = select_lambda(
                problem, lambda_grid, method=lambda_method, backend=self.solver_backend, rng=rng
            )
            lam = selection.best_lambda
            lambda_path = selection.scores

        qp_result = problem.solve(float(lam), backend=self.solver_backend)
        coefficients = qp_result.x
        fitted = problem.forward.predict(coefficients)
        return DeconvolutionResult(
            coefficients=coefficients,
            basis=self.basis,
            lam=float(lam),
            times=ensure_1d(times, "times").copy(),
            measurements=ensure_1d(measurements, "measurements").copy(),
            fitted=fitted,
            sigma=problem.sigma.copy(),
            data_misfit=problem.data_misfit(coefficients),
            roughness=problem.roughness(coefficients),
            solver_converged=qp_result.converged,
            solver_iterations=qp_result.iterations,
            lambda_path=lambda_path,
            mean_cycle_time=self.parameters.mean_cycle_time,
            constraint_violations=problem.constraint_set.violations(coefficients),
        )

    def fit_many(
        self,
        times: np.ndarray,
        measurement_matrix: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        lam: float | None = None,
        lambda_method: str = "gcv",
        rng: SeedLike = 0,
    ) -> list[DeconvolutionResult]:
        """Deconvolve several species sharing the same measurement times.

        ``measurement_matrix`` has one column per species.
        """
        matrix = np.asarray(measurement_matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("measurement_matrix must be two-dimensional")
        results = []
        for column in range(matrix.shape[1]):
            results.append(
                self.fit(
                    times,
                    matrix[:, column],
                    sigma=sigma,
                    lam=lam,
                    lambda_method=lambda_method,
                    rng=rng,
                )
            )
        return results
