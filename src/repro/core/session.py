"""Experiment-scoped fit session: cross-grid caching and a streaming fit API.

A :class:`FitSession` owns every reusable artifact of one experiment
configuration — Monte-Carlo kernels, forward models, assembled template
problems (and through them the per-lambda Hessian/Cholesky factorizations and
lambda-selection plans) — keyed by the fingerprint of the measurement time
grid, so ``N`` species measured on ``M`` time grids pay kernel construction
and problem assembly once **per grid** instead of once per fit.  The session
is the layer the :class:`~repro.core.deconvolver.Deconvolver` facade, the
experiment drivers and the CLI all route through; a
:class:`FitWorkspace` is merely the session's per-grid view.

On top of the caches the session offers a **streaming fit API** for
service-style callers: :meth:`FitSession.submit` queues incoming measurement
vectors, :meth:`FitSession.flush` groups everything queued by (grid, fit
options) and pushes each group through the batched multi-RHS engine
(``fit_many(engine="batch")``), and :meth:`FitSession.fit_stream` wraps both
into an iterator.  A caller feeding vectors one at a time therefore gets the
amortised multi-RHS marginal cost without managing the batching itself, and
the results are identical (to solver precision) to one-shot
:meth:`~repro.core.deconvolver.Deconvolver.fit` calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

import numpy as np

from repro.cellcycle.kernel import KernelBuilder, VolumeKernel
from repro.core.constraints import ConstraintSet, build_constraint_set
from repro.core.forward import ForwardModel
from repro.core.problem import DeconvolutionProblem
from repro.utils.rng import SeedLike
from repro.utils.validation import ensure_1d

if TYPE_CHECKING:  # pragma: no cover - import cycle broken for typing only
    from repro.core.deconvolver import Deconvolver
    from repro.core.result import DeconvolutionResult


def times_fingerprint(times: np.ndarray) -> bytes:
    """Hashable identity of a measurement time grid."""
    return np.ascontiguousarray(np.asarray(times, dtype=float)).tobytes()


def sigma_fingerprint(times: np.ndarray, sigma: np.ndarray | float | None) -> bytes:
    """Hashable identity of a sigma specification on a given time grid."""
    if sigma is None:
        return b"uniform"
    sigma_arr = np.ascontiguousarray(
        np.broadcast_to(np.asarray(sigma, dtype=float), np.shape(times))
    )
    return sigma_arr.tobytes()


def fit_options_bucket(
    times: np.ndarray,
    sigma: np.ndarray | float | None,
    lam: float | None,
    lambda_method: str,
    lambda_grid: np.ndarray | None,
) -> tuple:
    """Grouping key of one fit's options: fits sharing it batch together.

    Fixed-lambda fits on one ``(times, sigma)`` grid share a bucket
    regardless of their lambda values — :meth:`Deconvolver.fit_many` accepts
    a per-species lambda sequence and groups by lambda internally — while
    selection fits also group by method and candidate grid (those steer the
    scoring pass).  This is the single source of truth for batch
    compatibility; the session's streaming flush and the service scheduler's
    coalescing both key on it.
    """
    times = np.asarray(times, dtype=float)
    times_key = times_fingerprint(times)
    sigma_key = sigma_fingerprint(times, sigma)
    if lam is not None:
        return (times_key, sigma_key, "fixed")
    return (
        times_key,
        sigma_key,
        "select",
        lambda_method,
        b"default"
        if lambda_grid is None
        else np.ascontiguousarray(np.asarray(lambda_grid, dtype=float)).tobytes(),
    )


class FitWorkspace:
    """Per-grid view of a :class:`FitSession`.

    Holds the session-owned kernel and forward model for one
    ``(times, sigma)`` measurement grid plus a template
    :class:`~repro.core.problem.DeconvolutionProblem` whose solver caches
    (weighted design, Gram, per-lambda Hessian/Cholesky factorizations,
    selection plans) every fit on the grid shares through
    :meth:`~repro.core.problem.DeconvolutionProblem.with_measurements`.
    Workspaces are built and cached by :meth:`FitSession.workspace`; this
    class assembles nothing itself beyond the template problem.
    """

    def __init__(
        self,
        session: "FitSession",
        times: np.ndarray,
        sigma: np.ndarray | float | None,
        kernel: VolumeKernel,
        forward: ForwardModel,
    ) -> None:
        self.session = session
        self.times = ensure_1d(times, "times").copy()
        self.kernel = kernel
        self.forward = forward
        self.template = DeconvolutionProblem(
            forward,
            np.zeros(forward.num_measurements),
            sigma=sigma,
            constraints=session.constraints,
            parameters=session.parameters,
            constraint_set=session.constraint_set,
        )
        # Identity snapshot of the configuration this workspace froze; kept
        # for compatibility with pre-session callers (the session holds the
        # authoritative copy).
        self.source_state = session.source_state

    def matches(self, deconvolver: "Deconvolver") -> bool:
        """Whether this workspace still reflects the deconvolver's config."""
        return self.session.matches(deconvolver)

    def problem_for(self, measurements: np.ndarray) -> DeconvolutionProblem:
        """Problem instance for one measurement vector, sharing all caches."""
        return self.template.with_measurements(measurements)

    @staticmethod
    def cache_key(
        times: np.ndarray, sigma: np.ndarray | float | None
    ) -> tuple[bytes, bytes]:
        """Hashable identity of a (times, sigma) measurement grid."""
        times = np.asarray(times, dtype=float)
        return times_fingerprint(times), sigma_fingerprint(times, sigma)


@dataclass
class _PendingFit:
    """One queued streaming fit awaiting the next :meth:`FitSession.flush`."""

    ticket: int
    times: np.ndarray
    measurements: np.ndarray
    sigma: np.ndarray | float | None
    lam: float | None
    lambda_method: str
    lambda_grid: np.ndarray | None
    rng: SeedLike

    def bucket(self) -> tuple:
        """Grouping key: fits in one bucket run as a single batched solve.

        Delegates to :func:`fit_options_bucket`, the shared source of truth
        for batch compatibility.
        """
        return fit_options_bucket(
            self.times, self.sigma, self.lam, self.lambda_method, self.lambda_grid
        )


class FitSession:
    """Shared solve state for every fit of one experiment configuration.

    Parameters
    ----------
    deconvolver:
        The configured facade whose kernel/basis/parameters/constraints the
        session snapshots.  Constructing a session adopts it as the
        facade's active session; it stays valid while those (public)
        attributes are unchanged — :meth:`matches` — and
        :meth:`Deconvolver.session` transparently replaces it otherwise.

    Notes
    -----
    Unlike the pre-session single-slot workspace cache, a session retains
    **every** measurement grid it has seen: revisiting a grid returns the
    original workspace object with all of its factorizations.  Sigma
    variants of one time grid share the kernel and the forward model (the
    design matrix is sigma independent); only the template problem is
    per-(times, sigma).
    """

    def __init__(self, deconvolver: "Deconvolver") -> None:
        self.deconvolver = deconvolver
        self.parameters = deconvolver.parameters
        self.basis = deconvolver.basis
        self.constraints = list(deconvolver.constraints)
        self.source_state = (
            deconvolver.kernel,
            deconvolver.basis,
            deconvolver.parameters,
            tuple(deconvolver.constraints),
        )
        self._explicit_kernel = deconvolver.kernel
        self._kernels: dict[bytes, VolumeKernel] = {}
        if deconvolver.kernel is not None:
            self._kernels[times_fingerprint(deconvolver.kernel.times)] = deconvolver.kernel
        self._forwards: dict[bytes, ForwardModel] = {}
        self._workspaces: dict[tuple[bytes, bytes], FitWorkspace] = {}
        self._constraint_set: ConstraintSet | None = None
        self._pending: list[_PendingFit] = []
        self._next_ticket = 0
        # Usage counters surfaced by stats(); the service layer's pool and
        # scheduler read them for telemetry and size accounting.
        self._workspace_hits = 0
        self._workspace_misses = 0
        self._kernel_builds = 0
        self._flushes = 0
        self._fits_flushed = 0
        # Constructing a session adopts it as the deconvolver's active one,
        # so fits delegated through the facade (fit, fit_many, flush) route
        # back into *this* session's caches rather than a parallel one.
        deconvolver._session = self

    # ------------------------------------------------------------------
    # Cache inspection / invalidation
    # ------------------------------------------------------------------

    def matches(self, deconvolver: "Deconvolver") -> bool:
        """Whether this session still reflects the deconvolver's config."""
        kernel, basis, parameters, constraints = self.source_state
        return (
            deconvolver.kernel is kernel
            and deconvolver.basis is basis
            and deconvolver.parameters is parameters
            and tuple(deconvolver.constraints) == constraints
        )

    @property
    def num_grids(self) -> int:
        """Number of distinct measurement time grids the session has seen."""
        return len(self._kernels)

    @property
    def num_workspaces(self) -> int:
        """Number of cached per-(times, sigma) workspaces."""
        return len(self._workspaces)

    @property
    def num_pending(self) -> int:
        """Number of submitted fits waiting for the next :meth:`flush`."""
        return len(self._pending)

    def approx_bytes(self) -> int:
        """Approximate memory held by the session's per-grid artifacts.

        Counts the dominant dense arrays — kernel densities and forward
        design matrices — as a cheap size-accounting hook for pool eviction
        budgets; the per-lambda factorizations scale with the same arrays.
        Safe to call from a thread other than the one fitting: the dicts
        are snapshotted atomically (``list()`` under the GIL) before
        iterating, so a concurrent insert cannot break the sum.
        """
        kernels = list(self._kernels.values())
        forwards = list(self._forwards.values())
        total = sum(kernel.density.nbytes for kernel in kernels)
        total += sum(forward.design_matrix.nbytes for forward in forwards)
        return int(total)

    def stats(self) -> dict:
        """Usage counters of this session, for telemetry and pool budgets.

        Returns
        -------
        dict
            ``grids`` / ``workspaces`` / ``pending`` sizes,
            ``workspace_hits`` / ``workspace_misses`` cache counters,
            ``kernel_builds`` (on-demand Monte-Carlo builds paid),
            ``flushes`` / ``fits_flushed`` streaming counters and
            ``approx_bytes`` (see :meth:`approx_bytes`).
        """
        return {
            "grids": self.num_grids,
            "workspaces": self.num_workspaces,
            "pending": self.num_pending,
            "workspace_hits": self._workspace_hits,
            "workspace_misses": self._workspace_misses,
            "kernel_builds": self._kernel_builds,
            "flushes": self._flushes,
            "fits_flushed": self._fits_flushed,
            "approx_bytes": self.approx_bytes(),
        }

    # ------------------------------------------------------------------
    # Per-grid artifacts
    # ------------------------------------------------------------------

    @property
    def constraint_set(self) -> ConstraintSet:
        """Constraint rows shared by every grid of this session.

        The rows depend only on the basis and the cell-cycle parameters, so
        one assembly (itself running off the memoised
        :func:`~repro.core.constraints.assembly_context`) serves every
        measurement grid the session ever sees.
        """
        if self._constraint_set is None:
            self._constraint_set = build_constraint_set(
                self.constraints, self.basis, self.parameters
            )
        return self._constraint_set

    def register_kernel(self, kernel: VolumeKernel) -> VolumeKernel:
        """Adopt a pre-built kernel for its measurement grid.

        Service callers that already hold kernels for their experiment's
        grids register them up front so the session never pays a Monte-Carlo
        build; registered kernels take precedence over on-demand builds.
        """
        self._kernels[times_fingerprint(kernel.times)] = kernel
        return kernel

    def kernel_for(self, times: np.ndarray, rng: SeedLike = 0) -> VolumeKernel:
        """Kernel matching ``times``: cached, registered, or built on demand."""
        times = ensure_1d(times, "times")
        key = times_fingerprint(times)
        kernel = self._kernels.get(key)
        if kernel is None:
            explicit = self._explicit_kernel
            if explicit is not None:
                # A session around an explicit kernel serves only that grid
                # (plus any registered ones); tolerate float noise the way
                # ensure_kernel always has.
                if explicit.times.size == times.size and np.allclose(
                    explicit.times, times
                ):
                    kernel = explicit
                else:
                    raise ValueError(
                        "the provided kernel's measurement times do not match the data times"
                    )
            else:
                builder = self.deconvolver.kernel_builder
                if builder is None:
                    builder = KernelBuilder(self.parameters)
                kernel = builder.build(times, rng)
                self._kernel_builds += 1
            self._kernels[key] = kernel
        return kernel

    def workspace(
        self,
        times: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        rng: SeedLike = 0,
    ) -> FitWorkspace:
        """Cached per-grid workspace for repeated fits on ``(times, sigma)``."""
        times = ensure_1d(times, "times")
        times_key = times_fingerprint(times)
        key = (times_key, sigma_fingerprint(times, sigma))
        cached = self._workspaces.get(key)
        if cached is not None:
            self._workspace_hits += 1
        else:
            self._workspace_misses += 1
            kernel = self.kernel_for(times, rng)
            forward = self._forwards.get(times_key)
            if forward is None:
                forward = ForwardModel(kernel, self.basis)
                self._forwards[times_key] = forward
            cached = FitWorkspace(self, times, sigma, kernel, forward)
            self._workspaces[key] = cached
        return cached

    # ------------------------------------------------------------------
    # One-shot fits (delegated to the facade, which routes back through
    # this session's workspaces)
    # ------------------------------------------------------------------

    def fit(self, times: np.ndarray, measurements: np.ndarray, **options) -> "DeconvolutionResult":
        """One-shot fit through the session (see :meth:`Deconvolver.fit`)."""
        return self.deconvolver.fit(times, measurements, **options)

    def fit_many(
        self, times: np.ndarray, measurement_matrix: np.ndarray, **options
    ) -> list["DeconvolutionResult"]:
        """Batched multi-species fit (see :meth:`Deconvolver.fit_many`)."""
        return self.deconvolver.fit_many(times, measurement_matrix, **options)

    # ------------------------------------------------------------------
    # Streaming API
    # ------------------------------------------------------------------

    def submit(
        self,
        times: np.ndarray,
        measurements: np.ndarray,
        *,
        sigma: np.ndarray | float | None = None,
        lam: float | None = None,
        lambda_method: str = "gcv",
        lambda_grid: np.ndarray | None = None,
        rng: SeedLike = 0,
        copy: bool = True,
    ) -> int:
        """Queue one measurement vector for the next :meth:`flush`.

        Arguments mirror :meth:`Deconvolver.fit`.  Returns a ticket number;
        :meth:`flush` returns results in submission (ticket) order.  Fits
        submitted with the same grid and fit options are solved together as
        one stacked multi-RHS batch; ``rng`` is taken from the first
        submission of each batch (it only seeds kernel construction and CV
        fold assignment, both shared across the batch).  With ``copy=False``
        the queue keeps references instead of snapshots — the caller
        promises not to mutate the arrays before the flush (the service
        scheduler owns its request arrays and uses this).
        """
        measurements = ensure_1d(measurements, "measurements")
        times = ensure_1d(times, "times")
        if lambda_grid is not None:
            lambda_grid = np.asarray(lambda_grid, dtype=float)
        if copy:
            measurements = measurements.copy()
            times = times.copy()
            lambda_grid = None if lambda_grid is None else lambda_grid.copy()
        pending = _PendingFit(
            ticket=self._next_ticket,
            times=times,
            measurements=measurements,
            sigma=sigma,
            lam=lam,
            lambda_method=lambda_method,
            lambda_grid=lambda_grid,
            rng=rng,
        )
        self._next_ticket += 1
        self._pending.append(pending)
        return pending.ticket

    def flush(self) -> list["DeconvolutionResult"]:
        """Solve everything queued by :meth:`submit`, in submission order.

        Pending fits are grouped by (grid, fit options); each group runs as
        one ``fit_many(engine="batch")`` call against this session's shared
        workspace, i.e. one stacked multi-RHS solve per selected lambda.
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        self._flushes += 1
        self._fits_flushed += len(pending)
        buckets: dict[tuple, list[_PendingFit]] = {}
        for item in pending:
            buckets.setdefault(item.bucket(), []).append(item)
        results: dict[int, "DeconvolutionResult"] = {}
        for items in buckets.values():
            first = items[0]
            matrix = np.column_stack([item.measurements for item in items])
            lam: object = None
            if first.lam is not None:
                # A fixed-lambda bucket may mix lambda values; fit_many
                # accepts the per-species sequence and groups internally.
                lam = [item.lam for item in items]
            fits = self.deconvolver.fit_many(
                first.times,
                matrix,
                sigma=first.sigma,
                lam=lam,
                lambda_method=first.lambda_method,
                lambda_grid=first.lambda_grid,
                rng=first.rng,
                engine="batch",
            )
            for item, fit in zip(items, fits):
                results[item.ticket] = fit
        return [results[item.ticket] for item in pending]

    def fit_stream(
        self,
        items: Iterable[tuple[np.ndarray, np.ndarray]],
        *,
        flush_every: Optional[int] = None,
        **options,
    ) -> Iterator["DeconvolutionResult"]:
        """Fit a stream of ``(times, measurements)`` pairs, batched.

        Results are yielded in input order.  With ``flush_every`` set, the
        queue is flushed whenever that many fits are pending (bounding both
        latency and memory); otherwise one flush at the end of the stream
        solves everything in maximal batches.  Keyword ``options`` are
        forwarded to :meth:`submit` for every item.
        """
        if flush_every is not None and flush_every < 1:
            raise ValueError("flush_every must be a positive integer")
        for times, measurements in items:
            self.submit(times, measurements, **options)
            if flush_every is not None and self.num_pending >= flush_every:
                yield from self.flush()
        yield from self.flush()
