"""Global configuration defaults for the reproduction package.

The defaults collected here are the ones the paper states explicitly (mean
swarmer-to-stalked transition phase, mean cycle time, volume partition) plus
numerical defaults (grid sizes, Monte-Carlo population sizes) that control the
accuracy/runtime trade-off of the simulation-based kernel.  Everything is a
plain value so callers can override any of them per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Mean swarmer-to-stalked (SW->ST) transition phase (updated value, Sec. 2.1).
DEFAULT_MU_SST: float = 0.15

#: Coefficient of variation of the SW->ST transition phase (Sec. 2.1).
DEFAULT_CV_SST: float = 0.13

#: Mean Caulobacter cell-cycle time in minutes (Sec. 4.1).
DEFAULT_MEAN_CYCLE_TIME: float = 150.0

#: Coefficient of variation of the cell-cycle time (configurable; the paper's
#: companion work uses a distribution around the 150-minute mean).
DEFAULT_CV_CYCLE_TIME: float = 0.10

#: Volume fraction inherited by the swarmer daughter at division (Sec. 3.1).
SWARMER_VOLUME_FRACTION: float = 0.4

#: Volume fraction inherited by the stalked daughter at division (Sec. 3.1).
STALKED_VOLUME_FRACTION: float = 0.6

#: Default number of phase bins used when estimating Q(phi, t).
DEFAULT_PHASE_BINS: int = 100

#: Default number of cells simulated when estimating Q(phi, t).
DEFAULT_POPULATION_SIZE: int = 20_000

#: Default number of spline basis functions for f(phi).
DEFAULT_NUM_BASIS: int = 12

#: Default number of points of the fine phase grid used for positivity
#: constraints and profile evaluation.
DEFAULT_FINE_GRID: int = 201

#: Default kernel backend for the hot inner loops (see ``repro.backends``):
#: the pure-numpy reference.  Overridable per process with the environment
#: variable named by :data:`BACKEND_ENV_VAR`, per session with
#: ``repro.backends.set_active_backend`` (the CLI's ``--backend`` flag), and
#: per call with the ``backend=`` argument of the dispatching entry points.
DEFAULT_BACKEND: str = "numpy"

#: Environment variable consulted once at import for the kernel backend
#: selection (``REPRO_BACKEND=numba`` enables the compiled backend when the
#: ``[compiled]`` extra is installed; unavailable backends fall back to the
#: numpy reference with a logged warning).
BACKEND_ENV_VAR: str = "REPRO_BACKEND"

#: Environment variable selecting the service scheduler's batch runner
#: (``REPRO_RUNNER=process`` enables the multi-core process runner when the
#: pool factory is picklable; the default is the in-process thread runner).
#: Read per scheduler instance, not once at import, so tests and embedders
#: can flip it between constructions.
RUNNER_ENV_VAR: str = "REPRO_RUNNER"

#: Default service scheduler runner when :data:`RUNNER_ENV_VAR` is unset.
DEFAULT_RUNNER: str = "thread"

#: Worker cap for thread pools (GIL-bound work: the `fit_many` thread engine,
#: the service scheduler's batch workers).
DEFAULT_THREAD_POOL_CAP: int = 4

#: Default bind host of the network front end (``repro serve``); loopback by
#: default — expose the service deliberately, not by accident.
DEFAULT_NET_HOST: str = "127.0.0.1"

#: Default TCP port of the network front end (0 = ephemeral, for tests).
DEFAULT_NET_PORT: int = 8732

#: Per-connection in-flight window of the WebSocket streaming route: a
#: stream may have at most this many submitted-but-undelivered fits, which
#: bounds server-side buffering per connection (slow-consumer backpressure).
DEFAULT_STREAM_WINDOW: int = 32

#: Seconds the HTTP edge waits on scheduler intake backpressure before
#: answering 429 (intake_overflow).
DEFAULT_SUBMIT_TIMEOUT_S: float = 30.0

#: Largest HTTP request body / WebSocket message the network edge accepts.
DEFAULT_MAX_MESSAGE_BYTES: int = 16 * 1024 * 1024

#: Worker cap for process pools (the `fit_many` process escape hatch, which
#: pays a full problem assembly per worker).
DEFAULT_PROCESS_POOL_CAP: int = 8


def default_pool_size(num_tasks: int | None, *, kind: str = "thread") -> int:
    """Shared worker-pool sizing rule used by every pooled execution path.

    Parameters
    ----------
    num_tasks:
        Number of independent tasks the pool will run, or ``None`` when the
        task count is unbounded/unknown (a long-lived service): the pool then
        gets the full cap for its ``kind``.
    kind:
        ``"thread"`` (cap :data:`DEFAULT_THREAD_POOL_CAP`) or ``"process"``
        (cap :data:`DEFAULT_PROCESS_POOL_CAP`).

    Returns
    -------
    int
        ``min(cap, max(1, num_tasks))`` — at least one worker, never more
        than the cap for the pool kind.
    """
    caps = {"thread": DEFAULT_THREAD_POOL_CAP, "process": DEFAULT_PROCESS_POOL_CAP}
    if kind not in caps:
        raise ValueError(f"unknown pool kind {kind!r}")
    cap = caps[kind]
    if num_tasks is None:
        return cap
    return min(cap, max(1, int(num_tasks)))


@dataclass(frozen=True)
class NumericalDefaults:
    """Bundle of numerical defaults used across the package.

    Attributes
    ----------
    phase_bins:
        Number of bins of the phase axis for kernel estimation.
    population_size:
        Number of simulated cells for Monte-Carlo kernel estimation.
    num_basis:
        Number of natural-cubic-spline basis functions for ``f(phi)``.
    fine_grid:
        Number of points of the fine phase grid for constraint evaluation.
    """

    phase_bins: int = DEFAULT_PHASE_BINS
    population_size: int = DEFAULT_POPULATION_SIZE
    num_basis: int = DEFAULT_NUM_BASIS
    fine_grid: int = DEFAULT_FINE_GRID


#: Shared immutable instance of the numerical defaults.
NUMERICAL_DEFAULTS = NumericalDefaults()
