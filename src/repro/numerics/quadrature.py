"""Quadrature rules on uniform and non-uniform grids.

The deconvolution pipeline needs definite integrals over the phase interval
``[0, 1]`` in three places: the forward model ``G(t) = \\int Q(phi, t) f(phi) dphi``,
the smoothness penalty ``\\int f''(phi)^2 dphi`` and the linear constraints that
integrate ``f`` against weight densities.  All of these reduce to a dot product
of sample values with quadrature weights, so the main exports are weight
constructors.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.validation import check_sorted, ensure_1d


def trapezoid_weights(grid: np.ndarray) -> np.ndarray:
    """Composite trapezoid weights for samples on an arbitrary sorted grid.

    Parameters
    ----------
    grid:
        Strictly increasing sample locations.

    Returns
    -------
    numpy.ndarray
        Weights ``w`` such that ``w @ f(grid)`` approximates ``\\int f``.
    """
    grid = check_sorted(grid, "grid")
    if grid.size < 2:
        raise ValueError("grid must contain at least two points")
    spacing = np.diff(grid)
    weights = np.zeros_like(grid)
    weights[:-1] += 0.5 * spacing
    weights[1:] += 0.5 * spacing
    return weights


def simpson_weights(grid: np.ndarray) -> np.ndarray:
    """Composite Simpson weights for a *uniform* grid.

    The grid must be uniform.  When the number of intervals is odd, the final
    interval is handled with a trapezoid correction so any grid size >= 3 is
    accepted.
    """
    grid = check_sorted(grid, "grid")
    n = grid.size
    if n < 3:
        return trapezoid_weights(grid)
    spacing = np.diff(grid)
    h = spacing[0]
    if not np.allclose(spacing, h, rtol=1e-10, atol=1e-12):
        raise ValueError("simpson_weights requires a uniform grid")
    weights = np.zeros(n)
    num_intervals = n - 1
    # Apply Simpson's 1/3 rule over pairs of intervals.
    last_even = num_intervals if num_intervals % 2 == 0 else num_intervals - 1
    for start in range(0, last_even, 2):
        weights[start] += h / 3.0
        weights[start + 1] += 4.0 * h / 3.0
        weights[start + 2] += h / 3.0
    if num_intervals % 2 == 1:
        # Trapezoid on the trailing interval keeps every grid size usable.
        weights[-2] += 0.5 * h
        weights[-1] += 0.5 * h
    return weights


def gauss_legendre_nodes(order: int, low: float = 0.0, high: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Legendre nodes and weights mapped to the interval ``[low, high]``."""
    order = int(order)
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if not high > low:
        raise ValueError("high must exceed low")
    nodes, weights = np.polynomial.legendre.leggauss(order)
    half_width = 0.5 * (high - low)
    midpoint = 0.5 * (high + low)
    return midpoint + half_width * nodes, half_width * weights


def integrate_samples(values: np.ndarray, grid: np.ndarray, *, rule: str = "trapezoid") -> float:
    """Integrate sampled values over ``grid`` with the named composite rule."""
    values = ensure_1d(values, "values")
    grid = check_sorted(grid, "grid")
    if values.size != grid.size:
        raise ValueError("values and grid must have the same length")
    if rule == "trapezoid":
        weights = trapezoid_weights(grid)
    elif rule == "simpson":
        weights = simpson_weights(grid)
    else:
        raise ValueError(f"unknown quadrature rule {rule!r}")
    return float(weights @ values)


def integrate_function(
    func: Callable[[np.ndarray], np.ndarray],
    low: float,
    high: float,
    *,
    order: int = 32,
    pieces: int = 1,
) -> float:
    """Integrate ``func`` over ``[low, high]`` with piecewise Gauss-Legendre.

    Parameters
    ----------
    func:
        Vectorised callable evaluated at quadrature nodes.
    low, high:
        Integration limits.
    order:
        Gauss-Legendre order per piece.
    pieces:
        Number of equal sub-intervals; useful for integrands with localised
        features (e.g. narrow Gaussian densities around the transition phase).
    """
    if not high > low:
        raise ValueError("high must exceed low")
    pieces = int(pieces)
    if pieces < 1:
        raise ValueError(f"pieces must be >= 1, got {pieces}")
    edges = np.linspace(low, high, pieces + 1)
    total = 0.0
    for left, right in zip(edges[:-1], edges[1:]):
        nodes, weights = gauss_legendre_nodes(order, left, right)
        total += float(weights @ np.asarray(func(nodes), dtype=float))
    return total
