"""Nelder-Mead simplex minimisation.

Used by the parameter-estimation application (:mod:`repro.estimation`), where
the objective — squared error of an ODE model pushed through the forward
population kernel — is cheap but not differentiable in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.utils.validation import ensure_1d


@dataclass
class NelderMeadResult:
    """Result of a Nelder-Mead minimisation."""

    x: np.ndarray
    fun: float
    iterations: int
    function_evaluations: int
    converged: bool


def minimize_nelder_mead(
    objective: Callable[[np.ndarray], float],
    x0: Sequence[float] | np.ndarray,
    *,
    initial_step: float | Sequence[float] = 0.1,
    max_iterations: int = 2000,
    xatol: float = 1e-8,
    fatol: float = 1e-10,
) -> NelderMeadResult:
    """Minimise ``objective`` starting from ``x0`` with the Nelder-Mead simplex.

    Parameters
    ----------
    objective:
        Scalar function of a 1-D array.
    x0:
        Initial point.
    initial_step:
        Size of the initial simplex displacement along each coordinate;
        scalar or per-coordinate sequence.
    max_iterations:
        Iteration cap.
    xatol, fatol:
        Convergence tolerances on simplex spread and on function spread.
    """
    x0 = ensure_1d(x0, "x0")
    n = x0.size
    steps = np.broadcast_to(np.asarray(initial_step, dtype=float), (n,)).copy()
    steps[steps == 0] = 1e-4

    # Build the initial simplex: x0 plus one displaced vertex per coordinate.
    simplex = np.vstack([x0] + [x0 + np.eye(n)[i] * steps[i] for i in range(n)])
    values = np.array([float(objective(vertex)) for vertex in simplex])
    evaluations = n + 1

    alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        order = np.argsort(values)
        simplex = simplex[order]
        values = values[order]

        if (
            np.max(np.abs(simplex[1:] - simplex[0])) <= xatol
            and np.max(np.abs(values[1:] - values[0])) <= fatol
        ):
            converged = True
            break

        centroid = np.mean(simplex[:-1], axis=0)
        reflected = centroid + alpha * (centroid - simplex[-1])
        f_reflected = float(objective(reflected))
        evaluations += 1

        if values[0] <= f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
            continue
        if f_reflected < values[0]:
            expanded = centroid + gamma * (reflected - centroid)
            f_expanded = float(objective(expanded))
            evaluations += 1
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
            continue
        # Contraction (outside if the reflection improved on the worst point).
        if f_reflected < values[-1]:
            contracted = centroid + rho * (reflected - centroid)
        else:
            contracted = centroid + rho * (simplex[-1] - centroid)
        f_contracted = float(objective(contracted))
        evaluations += 1
        if f_contracted < min(f_reflected, values[-1]):
            simplex[-1], values[-1] = contracted, f_contracted
            continue
        # Shrink towards the best vertex.
        simplex[1:] = simplex[0] + sigma * (simplex[1:] - simplex[0])
        values[1:] = [float(objective(vertex)) for vertex in simplex[1:]]
        evaluations += n

    order = np.argsort(values)
    best = simplex[order[0]]
    return NelderMeadResult(
        x=best,
        fun=float(values[order[0]]),
        iterations=iteration,
        function_evaluations=evaluations,
        converged=converged,
    )
