"""Dense convex quadratic programming with a reusable null-space workspace.

The deconvolution estimate (Sec. 2.3 of the paper) is the solution of

    minimize    0.5 x^T H x + g^T x
    subject to  A_eq x  = b_eq          (RNA conservation, rate continuity)
                A_in x >= b_in          (positivity of the expression)

with ``H`` symmetric positive definite.  Every workload built on top of the
estimator (lambda cross-validation, bootstrap bands, multi-species fits,
sensitivity sweeps) solves long families of nearly identical QPs, so the
solver is organised around a reusable :class:`QPWorkspace`:

* the Hessian is factorized **once** (Cholesky ``H = L L^T``) per workspace
  and shared by every solve that reuses the workspace -- e.g. all bootstrap
  replicates of a fit, which differ only in the linear term;
* the active-set iteration is a **null-space method**: the working-set
  constraint rows are kept as a QR factorization in the Cholesky-transformed
  coordinates, updated *incrementally* (Givens rotations) as constraints
  enter and leave the working set, instead of rebuilding and re-solving a
  dense ``(n+m) x (n+m)`` KKT system at every iteration;
* solves accept a **warm start** (initial point plus initial working set) and
  report the final active set, so a sequence of related solves -- a lambda
  grid sweep, bootstrap replicates, a multi-species batch -- converges in a
  handful of iterations each.

:func:`solve_qp` is the backend dispatcher; SciPy's SLSQP remains available
as a cross-check / fallback backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
from scipy.linalg import get_lapack_funcs

from repro import backends
from repro.utils.validation import ensure_1d, ensure_2d


@dataclass
class QuadraticProgram:
    """Data of a convex quadratic program.

    Attributes
    ----------
    hessian:
        Symmetric matrix ``H`` of the quadratic term, shape ``(n, n)``.
        Asymmetry within a small tolerance (float noise from Gram-matrix
        assembly) is repaired by symmetrizing ``0.5 * (H + H^T)``; asymmetry
        beyond the tolerance raises.
    gradient:
        Linear term ``g``, shape ``(n,)``.
    eq_matrix, eq_vector:
        Equality constraints ``A_eq x = b_eq`` (may be empty).
    ineq_matrix, ineq_vector:
        Inequality constraints ``A_in x >= b_in`` (may be empty).
    """

    hessian: np.ndarray
    gradient: np.ndarray
    eq_matrix: Optional[np.ndarray] = None
    eq_vector: Optional[np.ndarray] = None
    ineq_matrix: Optional[np.ndarray] = None
    ineq_vector: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.hessian = ensure_2d(self.hessian, "hessian")
        self.gradient = ensure_1d(self.gradient, "gradient")
        n = self.gradient.size
        if self.hessian.shape != (n, n):
            raise ValueError("hessian shape does not match gradient length")
        if not np.array_equal(self.hessian, self.hessian.T):
            if not np.allclose(self.hessian, self.hessian.T, atol=1e-8):
                raise ValueError("hessian must be symmetric")
            # Within tolerance but not exactly symmetric: repair the float
            # noise instead of aborting the solve (Cholesky needs symmetry).
            self.hessian = 0.5 * (self.hessian + self.hessian.T)
        if (self.eq_matrix is None) != (self.eq_vector is None):
            raise ValueError("eq_matrix and eq_vector must be provided together")
        if (self.ineq_matrix is None) != (self.ineq_vector is None):
            raise ValueError("ineq_matrix and ineq_vector must be provided together")
        if self.eq_matrix is not None:
            self.eq_matrix = ensure_2d(self.eq_matrix, "eq_matrix")
            self.eq_vector = ensure_1d(self.eq_vector, "eq_vector")
            if self.eq_matrix.shape != (self.eq_vector.size, n):
                raise ValueError("equality constraint shapes are inconsistent")
        if self.ineq_matrix is not None:
            self.ineq_matrix = ensure_2d(self.ineq_matrix, "ineq_matrix")
            self.ineq_vector = ensure_1d(self.ineq_vector, "ineq_vector")
            if self.ineq_matrix.shape != (self.ineq_vector.size, n):
                raise ValueError("inequality constraint shapes are inconsistent")

    @property
    def num_variables(self) -> int:
        """Number of optimisation variables."""
        return self.gradient.size

    def objective(self, x: np.ndarray) -> float:
        """Evaluate ``0.5 x^T H x + g^T x``."""
        x = ensure_1d(x, "x")
        return float(0.5 * x @ self.hessian @ x + self.gradient @ x)

    def is_feasible(self, x: np.ndarray, tol: float = 1e-7) -> bool:
        """Check whether ``x`` satisfies all constraints within ``tol``."""
        x = ensure_1d(x, "x")
        if self.eq_matrix is not None:
            if np.max(np.abs(self.eq_matrix @ x - self.eq_vector), initial=0.0) > tol:
                return False
        if self.ineq_matrix is not None:
            if np.min(self.ineq_matrix @ x - self.ineq_vector, initial=0.0) < -tol:
                return False
        return True


@dataclass
class QPResult:
    """Result of a quadratic-program solve.

    Attributes
    ----------
    x:
        Solution vector.
    objective:
        Objective value ``0.5 x^T H x + g^T x`` at ``x``.
    iterations:
        Number of active-set (or backend) iterations performed.
    converged:
        Whether the solve reached optimality.
    active_set:
        Indices of the inequality rows active at the solution.
    message:
        Human-readable termination status.
    """

    x: np.ndarray
    objective: float
    iterations: int
    converged: bool
    active_set: list[int] = field(default_factory=list)
    message: str = ""


@dataclass
class BatchQPResult:
    """Result of a stacked multi-RHS solve over one QP family.

    One row per problem: all problems share the workspace's Hessian and
    constraint rows and differ only in their linear term.  Rows whose shared
    working-set solution passed the batched KKT verification carry
    ``iterations == 0`` and ``fallback == False``; the remaining rows were
    handed to the per-problem active-set loop.

    Attributes
    ----------
    x:
        Solutions, shape ``(num_problems, n)`` (one row per problem).
    objectives:
        Objective values ``0.5 x^T H x + g^T x`` per row.
    iterations:
        Active-set iterations per row (zero for batch-verified rows).
    converged:
        Per-row convergence flags.
    active_sets:
        Per-row active inequality-row indices at the solution.
    fallback:
        Boolean mask of the rows solved by the per-problem active-set loop
        instead of the shared multi-RHS factorization path.
    """

    x: np.ndarray
    objectives: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    active_sets: list[list[int]]
    fallback: np.ndarray

    @property
    def num_problems(self) -> int:
        """Number of stacked problems (rows)."""
        return int(self.x.shape[0])

    @property
    def num_fallback(self) -> int:
        """Number of rows that required the per-problem active-set loop."""
        return int(np.count_nonzero(self.fallback))

    def result(self, index: int) -> QPResult:
        """Package one row as a standalone :class:`QPResult`."""
        index = int(index)
        return QPResult(
            x=self.x[index],
            objective=float(self.objectives[index]),
            iterations=int(self.iterations[index]),
            converged=bool(self.converged[index]),
            active_set=list(self.active_sets[index]),
            message="optimal" if self.converged[index] else "not converged",
        )


def _cholesky_with_jitter(hessian: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor, adding an escalating diagonal jitter if needed.

    The deconvolution Hessians carry an explicit ridge and are strictly
    positive definite; the jitter only engages for borderline user-supplied
    problems (it perturbs the optimum by at most the jitter size).
    """
    try:
        return np.linalg.cholesky(hessian)
    except np.linalg.LinAlgError:
        pass
    scale = float(np.max(np.abs(np.diag(hessian))), )
    scale = scale if scale > 0 else 1.0
    identity = np.eye(hessian.shape[0])
    for exponent in (-12, -10, -8, -6):
        try:
            return np.linalg.cholesky(hessian + (scale * 10.0**exponent) * identity)
        except np.linalg.LinAlgError:
            continue
    raise np.linalg.LinAlgError("hessian is not positive definite")


class QPWorkspace:
    """Shared factorization state for a family of related QPs.

    The workspace is bound to one ``(hessian, constraint matrices)`` triple:
    it stores the Cholesky factor ``L`` of the Hessian and the constraint
    rows pre-transformed into the triangular coordinates
    (``L^{-1} A^T`` columns), so any number of solves over different linear
    terms, starting points and warm-start active sets reuse the expensive
    pieces.  During a solve it maintains a QR factorization of the
    working-set columns that is updated incrementally (one Givens sweep per
    constraint entering or leaving) rather than refactorized.

    Not thread-safe: a workspace runs one solve at a time.

    Parameters
    ----------
    problem:
        Problem whose Hessian and constraints define the family.  The
        ``gradient`` of this problem is only a default; :meth:`solve` accepts
        a per-solve linear term.
    """

    def __init__(self, problem: QuadraticProgram) -> None:
        n = problem.num_variables
        self.num_variables = n
        self.hessian = problem.hessian
        self.default_gradient = problem.gradient
        self.eq_matrix = problem.eq_matrix if problem.eq_matrix is not None else np.zeros((0, n))
        self.eq_vector = problem.eq_vector if problem.eq_vector is not None else np.zeros(0)
        self.ineq_matrix = (
            problem.ineq_matrix if problem.ineq_matrix is not None else np.zeros((0, n))
        )
        self.ineq_vector = (
            problem.ineq_vector if problem.ineq_vector is not None else np.zeros(0)
        )
        self.num_eq = self.eq_matrix.shape[0]
        self.num_ineq = self.ineq_matrix.shape[0]

        self.cholesky = _cholesky_with_jitter(self.hessian)
        # Raw LAPACK triangular solver: an order of magnitude less call
        # overhead than scipy.linalg.solve_triangular at these sizes.
        (self._trtrs,) = get_lapack_funcs(("trtrs",), (self.cholesky,))
        # Constraint rows transformed once into the triangular coordinates:
        # column i is L^{-1} a_i for constraint row a_i.
        if self.num_eq:
            self._eq_columns, _ = self._trtrs(
                self.cholesky, np.asfortranarray(self.eq_matrix.T), lower=1, trans=0
            )
        else:
            self._eq_columns = np.zeros((n, 0))
        # The inequality columns are only needed once a row enters the
        # working set, so they are transformed lazily (solves whose working
        # set stays empty skip the batch triangular solve entirely).
        self._ineq_columns: Optional[np.ndarray] = None
        # The zero vector's feasibility never changes; checking it once lets
        # default-start solves skip the per-call constraint sweep.
        self._zero_feasible = self._is_feasible(np.zeros(n), tol=1e-6)
        # Incremental QR state of the working-set columns (valid mid-solve).
        self._q = np.eye(n)
        self._r = np.zeros((n, n))
        self._k = 0
        # Factorize the (never-changing) equality columns once; resets then
        # just copy this snapshot instead of re-orthogonalising per solve.
        # The indices of the rows actually factored are kept so batched
        # solves can assemble the matching right-hand side.
        self._eq_kept: list[int] = []
        for j in range(self.num_eq):
            # Degenerate equality rows are skipped: the dependent row is
            # implied by the others.
            if self._append_column(self._eq_columns[:, j]):
                self._eq_kept.append(j)
        self._q0 = self._q.copy()
        self._r0 = self._r.copy()
        self._k0 = self._k
        # Number of equality columns actually inside the factorization; when
        # dependent equality rows were skipped this is smaller than num_eq,
        # and the multiplier bookkeeping must use this count.
        self._num_eq_factored = self._k

    def matches(self, problem: QuadraticProgram) -> bool:
        """Whether ``problem`` shares this workspace's Hessian and constraints.

        Identity checks only -- the caller is responsible for passing problems
        built from the same cached arrays.
        """
        eq = problem.eq_matrix if problem.eq_matrix is not None else None
        ineq = problem.ineq_matrix if problem.ineq_matrix is not None else None
        return (
            problem.hessian is self.hessian
            and (eq is None) == (self.num_eq == 0)
            and (ineq is None) == (self.num_ineq == 0)
            and (eq is None or eq is self.eq_matrix)
            and (ineq is None or ineq is self.ineq_matrix)
        )

    # ------------------------------------------------------------------
    # Incremental QR of the working-set columns in transformed coordinates.
    # ------------------------------------------------------------------

    def _ineq_column(self, index: int) -> np.ndarray:
        """Transformed column ``L^{-1} a_index`` of an inequality row."""
        if self._ineq_columns is None:
            self._ineq_columns, _ = self._trtrs(
                self.cholesky, np.asfortranarray(self.ineq_matrix.T), lower=1, trans=0
            )
        return self._ineq_columns[:, index]

    def _reset_factorization(self) -> None:
        """Restart the QR factorization with the equality-only working set."""
        np.copyto(self._q, self._q0)
        np.copyto(self._r, self._r0)
        self._k = self._k0

    def _append_column(self, column: np.ndarray, dep_tol: float = 1e-11) -> bool:
        """Add one transformed constraint column to the QR factorization.

        One Householder reflection maps the column's out-of-range components
        onto coordinate ``k``.  Returns ``False`` (leaving the factorization
        unchanged) when the column is numerically dependent on the current
        working set.
        """
        n, k = self.num_variables, self._k
        if k >= n:
            return False
        w = self._q.T @ column
        tail = w[k:]
        tail_norm = math.sqrt(float(tail @ tail))
        scale = max(1.0, math.sqrt(float(column @ column)))
        if tail_norm <= dep_tol * scale:
            return False
        # Reflection H v = beta e1 with the sign chosen to avoid cancellation.
        beta = -tail_norm if tail[0] >= 0.0 else tail_norm
        v = tail.copy()
        v[0] -= beta
        vv = float(v @ v)
        if vv > 0.0:
            trailing = self._q[:, k:]
            trailing -= np.outer(trailing @ v, (2.0 / vv) * v)
        self._r[:, k] = 0.0
        self._r[:k, k] = w[:k]
        self._r[k, k] = beta
        self._k = k + 1
        return True

    def _remove_column(self, position: int) -> None:
        """Drop the working-set column at ``position`` (eq columns excluded)."""
        j = self._num_eq_factored + position
        k = self._k
        r = self._r
        r[:, j : k - 1] = r[:, j + 1 : k]
        r[:, k - 1] = 0.0
        self._k = k - 1
        # The shifted columns are upper Hessenberg; one Givens sweep restores
        # the triangle while keeping Q orthogonal.
        for c in range(j, self._k):
            a, b = r[c, c], r[c + 1, c]
            if b == 0.0:
                continue
            radius = math.hypot(a, b)
            cos_t, sin_t = a / radius, b / radius
            top = cos_t * r[c, c : self._k] + sin_t * r[c + 1, c : self._k]
            bottom = cos_t * r[c + 1, c : self._k] - sin_t * r[c, c : self._k]
            r[c, c : self._k] = top
            r[c + 1, c : self._k] = bottom
            r[c + 1, c] = 0.0
            q_lo = self._q[:, c] * cos_t + self._q[:, c + 1] * sin_t
            q_hi = self._q[:, c + 1] * cos_t - self._q[:, c] * sin_t
            self._q[:, c] = q_lo
            self._q[:, c + 1] = q_hi

    # ------------------------------------------------------------------
    # Null-space active-set solve.
    # ------------------------------------------------------------------

    def _objective(self, x: np.ndarray, gradient: np.ndarray) -> float:
        return float(0.5 * x @ self.hessian @ x + gradient @ x)

    def _is_feasible(self, x: np.ndarray, tol: float) -> bool:
        if self.num_eq:
            residual = self.eq_matrix @ x - self.eq_vector
            if max(residual.max(), -residual.min()) > tol:
                return False
        if self.num_ineq and (self.ineq_matrix @ x - self.ineq_vector).min() < -tol:
            return False
        return True

    def solve(
        self,
        gradient: Optional[np.ndarray] = None,
        *,
        x0: Optional[np.ndarray] = None,
        active_set: Optional[Sequence[int]] = None,
        max_iterations: int = 500,
        tol: float = 1e-9,
    ) -> QPResult:
        """Null-space active-set solve for one member of the QP family.

        Parameters
        ----------
        gradient:
            Linear term of this solve; defaults to the gradient of the
            problem the workspace was built from.
        x0:
            Feasible starting point (defaults to zero).  A ``ValueError`` is
            raised if it is infeasible — unless an ``active_set`` is also
            given (warm-start context), in which case the solve degrades to
            a cold start from zero when zero is feasible.
        active_set:
            Warm-start working set: inequality-constraint indices to activate
            initially.  Indices that are not (near-)active at ``x0`` or are
            linearly dependent on the rest are silently dropped, so the final
            ``active_set`` of a previous, related solve can be passed
            verbatim.
        max_iterations, tol:
            Iteration cap and numerical tolerance of the active-set loop.

        Returns
        -------
        QPResult
            The solve outcome; ``active_set`` lists the inequality rows
            active at the solution (the warm start for a related solve).
        """
        n = self.num_variables
        if gradient is None:
            g = self.default_gradient
        else:
            g = np.asarray(gradient, dtype=float)
            if g.ndim != 1:
                g = ensure_1d(gradient, "gradient")
        if g.size != n:
            raise ValueError("gradient has the wrong length")
        if x0 is None:
            x = np.zeros(n)
        else:
            x = np.asarray(x0, dtype=float)
            if x.ndim != 1:
                x = ensure_1d(x0, "x0")
            x = x.copy()
        if x.size != n:
            raise ValueError("x0 has the wrong length")
        feasible = self._zero_feasible if x0 is None else self._is_feasible(x, tol=1e-6)
        if not feasible:
            # Warm starts (x0 together with an active set) are best-effort:
            # automated callers hand over previous solutions that may carry
            # fallback-backend constraint violations, so degrade to a cold
            # start instead of aborting the whole sweep.  A bare explicit x0
            # keeps the strict contract.
            if active_set is not None and self._zero_feasible:
                x = np.zeros(n)
                active_set = None
            else:
                raise ValueError("the starting point x0 is not feasible")

        lower = self.cholesky
        trtrs = self._trtrs
        hessian = self.hessian
        ineq_matrix = self.ineq_matrix
        num_eq_factored, num_ineq = self._num_eq_factored, self.num_ineq

        # (Re)build the QR factorization: equality rows always, then any
        # warm-start inequality rows that are actually active at x.
        self._reset_factorization()
        working: list[int] = []
        in_working = np.zeros(num_ineq, dtype=bool)
        if active_set:
            slack0 = self.ineq_matrix @ x - self.ineq_vector if num_ineq else np.zeros(0)
            for index in active_set:
                index = int(index)
                if index < 0 or index >= num_ineq or in_working[index]:
                    continue
                if abs(slack0[index]) > 1e-6 * (1.0 + abs(self.ineq_vector[index])):
                    continue
                if self._append_column(self._ineq_column(index)):
                    working.append(index)
                    in_working[index] = True

        # Anti-cycling: after a run of degenerate (zero-length) steps, switch
        # to Bland's smallest-index pivoting, which cannot cycle.
        stalled = 0
        use_bland = False

        for iteration in range(1, max_iterations + 1):
            gradient_at_x = hessian @ x + g
            d, _ = trtrs(lower, gradient_at_x, lower=1, trans=0)
            k = self._k
            if k < n:
                null_basis = self._q[:, k:]
                q_step = -(null_basis @ (null_basis.T @ d))
                step, _ = trtrs(lower, q_step, lower=1, trans=1)
            else:
                step = np.zeros(n)

            if math.sqrt(float(step @ step)) <= tol * max(
                1.0, math.sqrt(float(x @ x))
            ):
                # Stationary on the working set: check the multipliers of the
                # active inequality rows.  Stationarity reads
                # ``H p + C^T mu = -(H x + g)``, so the Lagrange multipliers
                # of the ``a_i^T x >= b_i`` constraints are ``-mu``.
                if k > num_eq_factored:
                    range_basis = self._q[:, :k]
                    mu, _ = trtrs(
                        np.ascontiguousarray(self._r[:k, :k]),
                        -(range_basis.T @ d),
                        lower=0,
                        trans=0,
                    )
                    lagrange = -mu[num_eq_factored:]
                else:
                    lagrange = np.zeros(0)
                if lagrange.size == 0 or float(lagrange.min()) >= -tol:
                    return QPResult(
                        x=x,
                        objective=self._objective(x, g),
                        iterations=iteration,
                        converged=True,
                        active_set=sorted(working),
                        message="optimal",
                    )
                if use_bland:
                    negative = np.flatnonzero(lagrange < -tol)
                    worst = int(min(negative, key=lambda i: working[i]))
                else:
                    worst = int(np.argmin(lagrange))
                self._remove_column(worst)
                in_working[working.pop(worst)] = False
                continue

            # Largest feasible step length along ``step`` (vectorized ratio
            # test over the inactive inequality rows).
            alpha = 1.0
            blocking = None
            if num_ineq:
                directional = ineq_matrix @ step
                candidates = np.flatnonzero((directional < -tol) & ~in_working)
                if candidates.size:
                    slack = ineq_matrix @ x - self.ineq_vector
                    ratios = -slack[candidates] / directional[candidates]
                    position = int(np.argmin(ratios))
                    if ratios[position] < alpha:
                        alpha = float(max(ratios[position], 0.0))
                        if use_bland:
                            tied = ratios <= ratios[position] + tol
                            blocking = int(candidates[tied].min())
                        else:
                            blocking = int(candidates[position])
            x = x + alpha * step
            if blocking is not None and alpha <= tol:
                stalled += 1
                if stalled >= 12:
                    use_bland = True
            elif alpha > tol:
                stalled = 0
            if blocking is not None:
                if self._append_column(self._ineq_column(blocking)):
                    working.append(blocking)
                    in_working[blocking] = True
                else:
                    # The blocking row is dependent on the working set: the
                    # iteration cannot make progress without cycling, so hand
                    # the problem to the fallback backend.
                    return QPResult(
                        x=x,
                        objective=self._objective(x, g),
                        iterations=iteration,
                        converged=False,
                        active_set=sorted(working),
                        message="degenerate working set",
                    )

        return QPResult(
            x=x,
            objective=self._objective(x, g),
            iterations=max_iterations,
            converged=False,
            active_set=sorted(working),
            message="maximum iterations reached",
        )

    # ------------------------------------------------------------------
    # Stacked multi-RHS solve.
    # ------------------------------------------------------------------

    def solve_batch(
        self,
        gradients: np.ndarray,
        *,
        shared_active_set: Optional[Sequence[int]] = None,
        max_iterations: int = 500,
        tol: float = 1e-9,
        kernel_backend: backends.BackendSpec = None,
    ) -> BatchQPResult:
        """Solve a whole family of linear terms against the shared factorization.

        All problems share this workspace's Hessian and constraint rows.  The
        batch path factors the working set **once** — the equality rows plus
        any ``shared_active_set`` inequality rows — and solves every row's
        working-set KKT system in single multi-RHS LAPACK calls (two
        triangular solves against the Cholesky factor, two dense products
        against the working-set QR).  Each candidate solution is then KKT
        verified in one vectorized pass: primal feasibility of every
        inequality row and non-negativity of the working-set multipliers.
        Rows that pass are exact constrained optima; only the rows where a
        *different* set of positivity constraints binds fall back to the
        per-problem active-set loop (warm-started from the shared set).

        Parameters
        ----------
        gradients:
            Stacked linear terms, shape ``(num_problems, n)`` — one row per
            problem.
        shared_active_set:
            Inequality rows expected to be active for most rows (e.g. the
            active set of a base fit whose bootstrap replicates are being
            solved).  Out-of-range, duplicate and linearly dependent indices
            are silently dropped.
        max_iterations, tol:
            Passed to the fallback active-set solves; ``tol`` also bounds the
            primal/dual verification of the batched solutions.
        kernel_backend:
            Kernel backend for the per-pass result packaging and the final
            objective evaluation (see ``repro.backends``); ``None`` uses the
            process-wide active backend.  Named ``kernel_backend`` (not
            ``backend``) because ``backend=`` already selects the QP
            *algorithm* in :func:`solve_qp`.

        Notes
        -----
        The batch is **adaptive**: rows rejected by the verification are
        solved one at a time (each warm-started from the previous fallback
        solution), and every newly discovered active set is immediately
        re-tried against *all* still-pending rows in another stacked pass.
        A family whose members share a handful of distinct active sets
        therefore costs one exact solve plus one multi-RHS pass per distinct
        set, not one active-set loop per row.

        Returns
        -------
        BatchQPResult
            Stacked solutions plus per-row convergence metadata.
        """
        gradients = np.asarray(gradients, dtype=float)
        if gradients.ndim != 2 or gradients.shape[1] != self.num_variables:
            raise ValueError(
                "gradients must have shape (num_problems, num_variables)"
            )
        kb = backends.resolve(kernel_backend)
        num_problems = gradients.shape[0]
        n = self.num_variables
        solutions = np.zeros((num_problems, n))
        iterations = np.zeros(num_problems, dtype=int)
        converged = np.ones(num_problems, dtype=bool)
        active_sets: list[list[int]] = [[] for _ in range(num_problems)]
        fallback = np.zeros(num_problems, dtype=bool)

        guess: list[int] = []
        if shared_active_set:
            seen: set[int] = set()
            for index in shared_active_set:
                index = int(index)
                if 0 <= index < self.num_ineq and index not in seen:
                    seen.add(index)
                    guess.append(index)

        remaining = list(range(num_problems))
        tried: set[tuple[int, ...]] = set()
        warm_candidates: dict[int, np.ndarray] = {}
        last_result: Optional[QPResult] = None
        while remaining:
            key = tuple(sorted(guess))
            if key not in tried:
                tried.add(key)
                rows = np.asarray(remaining, dtype=int)
                working, candidates, accepted, primal_ok = self._try_working_set(
                    gradients[rows], guess, tol
                )
                working_sorted = sorted(working)
                accepted_rows, pending_rows = kb.partition_accepted(
                    solutions, rows, candidates, accepted
                )
                for row in accepted_rows:
                    active_sets[row] = list(working_sorted)
                for position in np.flatnonzero(~accepted & primal_ok):
                    warm_candidates[int(rows[position])] = candidates[position]
                remaining = [int(row) for row in pending_rows]
                if not remaining:
                    break
            # Exact active-set solve of one pending row, warm-started from
            # the previous fallback solution (feasibility is shared by the
            # whole family) or this row's primal-feasible batch candidate.
            row = remaining.pop(0)
            fallback[row] = True
            if last_result is not None:
                start: Optional[np.ndarray] = last_result.x
                warm_set: Optional[Sequence[int]] = last_result.active_set
            elif row in warm_candidates:
                start = warm_candidates[row]
                warm_set = guess
            else:
                start = None
                warm_set = guess or None
            try:
                row_result = self.solve(
                    gradients[row],
                    x0=start,
                    active_set=warm_set,
                    max_iterations=max_iterations,
                    tol=tol,
                )
            except ValueError:
                converged[row] = False
                continue
            solutions[row] = row_result.x
            iterations[row] = row_result.iterations
            converged[row] = row_result.converged
            active_sets[row] = list(row_result.active_set)
            if row_result.converged:
                last_result = row_result
                guess = list(row_result.active_set)

        objectives = kb.batch_objectives(solutions, self.hessian, gradients)
        return BatchQPResult(
            x=solutions,
            objectives=objectives,
            iterations=iterations,
            converged=converged,
            active_sets=active_sets,
            fallback=fallback,
        )

    def _try_working_set(
        self, gradients: np.ndarray, guess: Sequence[int], tol: float
    ) -> tuple[list[int], np.ndarray, np.ndarray, np.ndarray]:
        """One stacked working-set pass of :meth:`solve_batch`.

        Factors the equality rows plus the ``guess`` inequality rows once
        (incremental Householder appends on top of the equality snapshot),
        solves every row's working-set KKT system in multi-RHS LAPACK calls,
        and KKT-verifies all candidates in one vectorized pass.

        Returns
        -------
        tuple
            ``(working, candidates, accepted, primal_ok)``: the inequality
            rows actually factored, the per-row candidate solutions, the
            rows passing the full primal/dual verification, and the rows
            that are at least primal feasible (usable as warm starts).
        """
        num_rows = gradients.shape[0]
        self._reset_factorization()
        working: list[int] = []
        for index in guess:
            if self._append_column(self._ineq_column(index)):
                working.append(index)
        k = self._k
        trtrs = self._trtrs
        lower = self.cholesky
        # D = L^{-1} G^T for every row in one triangular multi-RHS solve.
        transformed, _ = trtrs(
            lower, np.asfortranarray(gradients.T), lower=1, trans=0
        )
        if k:
            rhs = np.concatenate(
                [
                    self.eq_vector[self._eq_kept],
                    self.ineq_vector[np.asarray(working, dtype=int)]
                    if working
                    else np.zeros(0),
                ]
            )
            r_factor = np.ascontiguousarray(self._r[:k, :k])
            # Range-space component: u with R^T u = rhs (the same for every
            # row — the working-set right-hand side is measurement free).
            particular, _ = trtrs(r_factor, rhs, lower=0, trans=1)
            range_basis = self._q[:, :k]
            null_basis = self._q[:, k:]
            # y = Q1 u - Q2 (Q2^T d) per row, all rows at once.
            y = -(null_basis @ (null_basis.T @ transformed))
            y += (range_basis @ particular)[:, None]
            # Working-set multipliers of every row (same convention as
            # :meth:`solve`): R mu = -(u + Q1^T d), Lagrange multipliers of
            # the active inequality rows are ``-mu``.
            multipliers, _ = trtrs(
                r_factor,
                -(particular[:, None] + range_basis.T @ transformed),
                lower=0,
                trans=0,
            )
            lagrange = -multipliers[self._num_eq_factored:, :]
        else:
            y = -transformed
            lagrange = np.zeros((0, num_rows))
        x_columns, _ = trtrs(lower, y, lower=1, trans=1)
        candidates = np.ascontiguousarray(x_columns.T)

        # Batched KKT verification: primal feasibility of all inequality
        # rows, dual feasibility (non-negative multipliers) of the working
        # ones.  Rows passing both are exact constrained optima.
        if self.num_ineq:
            slack = self.ineq_matrix @ x_columns - self.ineq_vector[:, None]
            margin = (tol * (1.0 + np.abs(self.ineq_vector)))[:, None]
            primal_ok = np.all(slack >= -margin, axis=0)
        else:
            primal_ok = np.ones(num_rows, dtype=bool)
        accepted = primal_ok.copy()
        if lagrange.size:
            accepted &= lagrange.min(axis=0) >= -tol
        return working, candidates, accepted, primal_ok


def kkt_solve_diagonal_batch(
    diagonals: np.ndarray,
    gradient: np.ndarray,
    columns: np.ndarray,
    rhs: np.ndarray,
    num_equalities: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked working-set KKT solves for a family of diagonal Hessians.

    Solves, for every row ``l`` of ``diagonals``, the equality-constrained
    program ``min 0.5 x^T diag(d_l) x + q^T x`` subject to ``C x = b`` in one
    batched (Schur-complement) linear-algebra pass: the unconstrained optima
    are an elementwise divide, and the per-row corrections are one stacked
    ``solve`` over the small ``(k, k)`` Schur systems.  This is the engine
    behind the k-fold cross-validation fallback: in the per-fold eigenbasis
    every candidate lambda's Hessian is diagonal, so all candidates sharing a
    working set are solved in a single call.

    Parameters
    ----------
    diagonals:
        Hessian diagonals ``d_l``, shape ``(num_problems, n)`` (all entries
        positive).
    gradient:
        Linear term ``q``: shape ``(n,)`` when all problems share one
        gradient (the CV case: one species scored across a lambda grid), or
        shape ``(num_problems, n)`` for one gradient per row (the mixed-
        lambda micro-batch case: each species brings its own measurements
        *and* its own lambda).
    columns:
        Working-set constraint rows ``C``, shape ``(k, n)`` — equality rows
        first, then the inequality rows pinned active.
    rhs:
        Right-hand side ``b``, shape ``(k,)``.
    num_equalities:
        Number of leading rows of ``columns`` that are true equalities.

    Returns
    -------
    tuple[numpy.ndarray, numpy.ndarray]
        ``(x, ineq_multipliers)``: the solutions, shape
        ``(num_problems, n)``, and the Lagrange multipliers of the pinned
        inequality rows, shape ``(num_problems, k - num_equalities)`` —
        non-negative multipliers mean the pinned rows are dual feasible for
        ``C x >= b`` constraints.

    Raises
    ------
    numpy.linalg.LinAlgError
        If a Schur system is singular (linearly dependent working set).
    """
    diagonals = np.asarray(diagonals, dtype=float)
    gradient = np.asarray(gradient, dtype=float)
    if gradient.ndim == 1:
        gradient = gradient[None, :]
    unconstrained = -gradient / diagonals
    if columns.shape[0] == 0:
        return unconstrained, np.zeros((diagonals.shape[0], 0))
    scaled = columns[None, :, :] / diagonals[:, None, :]
    schur = scaled @ columns.T
    residual = rhs[None, :] - unconstrained @ columns.T
    multipliers = np.linalg.solve(schur, residual[..., None])[..., 0]
    solutions = unconstrained + np.einsum("lk,lkc->lc", multipliers, scaled)
    return solutions, multipliers[:, int(num_equalities):]


class MixedLambdaEigPlan:
    """Cross-lambda stacked solver in the shared shifted-pencil eigenbasis.

    A mixed-lambda micro-batch (one measurement vector *and* one lambda per
    species, all on the same design) used to cost one ``solve_batch`` per
    distinct lambda, and the ~0.1 ms fixed cost per group was the per-batch
    floor.  This plan removes the per-lambda factorizations: diagonalize the
    pencil ``(Omega, A^T W A + ridge/2 + c * Omega)`` **once** — the ``B``
    matrix is the halved Hessian at the shift ``c``, positive definite and
    well conditioned when ``c`` sits mid-grid — and every lambda's Hessian
    becomes diagonal in the shared eigenbasis::

        V^T H(lam) V = diag(2 * (1 + (lam - c) * mu))

    so one mixed-lambda batch is a single stacked
    :func:`kkt_solve_diagonal_batch` call per candidate working set.  Rows
    whose positivity pattern matches none of the candidate sets are returned
    as rejected; the caller falls back to the per-group active-set path for
    exactly those rows.  This is the same numerical trick
    ``KFoldEigPlan`` uses per CV fold, applied to the full (un-folded)
    problem with per-row gradients.

    Accepted rows are *exact* optima of their working set's KKT system with
    verified primal/dual feasibility (same margins as the active-set
    verifier), so the stacked path agrees with the per-group path to solver
    tolerance — the repo-wide 1e-10 equivalence gate holds across both.

    Parameters
    ----------
    gram:
        Weighted Gram matrix ``A^T W A`` (symmetrized), shape ``(n, n)``.
    penalty:
        Roughness penalty ``Omega``, shape ``(n, n)``.
    ridge:
        Ridge term added to the Hessian diagonal.
    shift:
        Pencil shift ``c`` — pick the geometric mean of the batch's lambdas
        so ``|log(lam / c)|`` stays small across the batch.
    eq_matrix, eq_vector:
        Equality constraint rows ``A_eq x = b_eq`` (may be empty).
    ineq_matrix, ineq_vector:
        Inequality constraint rows ``A_in x >= b_in`` (may be empty).

    Raises
    ------
    numpy.linalg.LinAlgError
        If the shifted pencil is not positive definite (caller falls back to
        the per-group path).
    """

    #: Working sets remembered across calls (most recently confirmed first).
    MAX_REMEMBERED = 4

    def __init__(
        self,
        gram: np.ndarray,
        penalty: np.ndarray,
        ridge: float,
        shift: float,
        eq_matrix: Optional[np.ndarray] = None,
        eq_vector: Optional[np.ndarray] = None,
        ineq_matrix: Optional[np.ndarray] = None,
        ineq_vector: Optional[np.ndarray] = None,
    ) -> None:
        from scipy.linalg import eigh

        num_coefficients = gram.shape[0]
        shifted = gram + 0.5 * float(ridge) * np.eye(num_coefficients)
        shifted += float(shift) * penalty
        self.shift = float(shift)
        self.mu, self.vectors = eigh(penalty, shifted)
        if eq_matrix is not None and eq_matrix.size:
            self.eq_columns = eq_matrix @ self.vectors
            self.eq_vector = np.asarray(eq_vector, dtype=float)
        else:
            self.eq_columns = np.zeros((0, num_coefficients))
            self.eq_vector = np.zeros(0)
        if ineq_matrix is not None and ineq_matrix.size:
            self.ineq_columns = ineq_matrix @ self.vectors
            self.ineq_vector = np.asarray(ineq_vector, dtype=float)
        else:
            self.ineq_columns = np.zeros((0, num_coefficients))
            self.ineq_vector = np.zeros(0)
        # Primal feasibility margin per inequality row (same convention as
        # the active-set verifier: tol * (1 + |b|)).
        self._ineq_scale = 1.0 + np.abs(self.ineq_vector)
        self._remembered: list[tuple[int, ...]] = []

    def diagonals(self, lams: np.ndarray) -> np.ndarray:
        """Per-lambda Hessian diagonals ``2 (1 + (lam - c) mu)``.

        Raises :class:`numpy.linalg.LinAlgError` when any diagonal is not
        strictly positive (a lambda too far from the shift for this pencil).
        """
        lams = np.asarray(lams, dtype=float)
        diagonals = 2.0 * (1.0 + (lams[:, None] - self.shift) * self.mu[None, :])
        if not np.all(diagonals > 0.0) or not np.all(np.isfinite(diagonals)):
            raise np.linalg.LinAlgError("indefinite shifted pencil for this lambda batch")
        return diagonals

    def to_eigenbasis(self, gradients: np.ndarray) -> np.ndarray:
        """Map per-row gradients ``(k, n)`` into eigenbasis coordinates."""
        return gradients @ self.vectors

    def remember(self, active_set: Sequence[int]) -> None:
        """Record a confirmed working set (front of the candidate queue)."""
        key = tuple(sorted(int(index) for index in active_set))
        if key in self._remembered:
            self._remembered.remove(key)
        self._remembered.insert(0, key)
        del self._remembered[self.MAX_REMEMBERED :]

    def candidate_sets(self, guess: Optional[Sequence[int]]) -> list[tuple[int, ...]]:
        """Working sets to try, in order: guess, remembered sets, empty."""
        candidates: list[tuple[int, ...]] = []
        if guess is not None:
            candidates.append(tuple(sorted(int(index) for index in guess)))
        for key in self._remembered:
            if key not in candidates:
                candidates.append(key)
        if () not in candidates:
            candidates.append(())
        return candidates

    def solve(
        self,
        lams: np.ndarray,
        gradients: np.ndarray,
        *,
        guess: Optional[Sequence[int]] = None,
        tol: float = 1e-9,
    ) -> tuple[np.ndarray, np.ndarray, list[Optional[list[int]]]]:
        """Stacked solve of ``min 0.5 x^T H(lam_l) x + g_l^T x`` per row.

        Tries each candidate working set (equalities plus pinned positivity
        rows) in one stacked KKT pass over the rows still unsolved, keeping
        the rows whose optimum verifies primal feasibility across *all*
        inequalities and dual feasibility on the pinned rows.

        Returns
        -------
        tuple
            ``(solutions, objectives, active_sets)``: solutions in the
            original basis, shape ``(k, n)``; objective values, shape
            ``(k,)``; and the per-row confirmed working set, or ``None``
            for rows no candidate set solved (caller falls back).
        """
        lams = np.asarray(lams, dtype=float)
        diagonals = self.diagonals(lams)
        gradients_z = self.to_eigenbasis(np.asarray(gradients, dtype=float))
        num_rows = lams.shape[0]
        num_eq = self.eq_columns.shape[0]
        solutions_z = np.zeros_like(gradients_z)
        active_sets: list[Optional[list[int]]] = [None] * num_rows
        # Cancellation guard: a diagonal entry is computed as
        # ``1 + (lam - c) mu`` and loses digits when the product approaches
        # -1; rows where the worst relative rounding in any entry could move
        # the solution past ~1e-12 are sent to the exact per-group fallback
        # instead of risking the repo-wide 1e-10 equivalence gate.
        rounding = np.finfo(float).eps * (
            2.0 + 2.0 * np.abs(lams[:, None] - self.shift) * np.abs(self.mu)[None, :]
        )
        well_conditioned = np.all(rounding <= 1e-12 * diagonals, axis=1)
        pending = np.flatnonzero(well_conditioned)
        for candidate in self.candidate_sets(guess):
            if pending.size == 0:
                break
            pinned = list(candidate)
            columns = np.vstack([self.eq_columns, self.ineq_columns[pinned]])
            rhs = np.concatenate([self.eq_vector, self.ineq_vector[pinned]])
            try:
                trial, multipliers = kkt_solve_diagonal_batch(
                    diagonals[pending], gradients_z[pending], columns, rhs, num_eq
                )
            except np.linalg.LinAlgError:
                continue  # dependent working set: try the next candidate
            accepted = np.ones(pending.size, dtype=bool)
            if self.ineq_columns.shape[0]:
                slack = trial @ self.ineq_columns.T - self.ineq_vector[None, :]
                accepted &= np.all(slack >= -tol * self._ineq_scale[None, :], axis=1)
            if multipliers.shape[1]:
                accepted &= np.all(multipliers >= -tol, axis=1)
            if not np.any(accepted):
                continue
            taken = pending[accepted]
            solutions_z[taken] = trial[accepted]
            for row in taken:
                active_sets[row] = pinned
            self.remember(pinned)
            pending = pending[~accepted]
        objectives = 0.5 * np.einsum("kn,kn,kn->k", diagonals, solutions_z, solutions_z)
        objectives += np.einsum("kn,kn->k", gradients_z, solutions_z)
        solutions = solutions_z @ self.vectors.T
        return solutions, objectives, active_sets


def solve_qp_active_set(
    problem: QuadraticProgram,
    x0: Optional[np.ndarray] = None,
    *,
    active_set: Optional[Sequence[int]] = None,
    workspace: Optional[QPWorkspace] = None,
    max_iterations: int = 500,
    tol: float = 1e-9,
) -> QPResult:
    """Primal null-space active-set method for a convex QP.

    Parameters
    ----------
    problem:
        Problem data; ``hessian`` should be positive definite (add a small
        ridge when building the problem if necessary).
    x0:
        Feasible starting point.  Defaults to the zero vector, which is
        feasible for the homogeneous constraints arising in deconvolution;
        a ``ValueError`` is raised if the starting point is infeasible.
    active_set:
        Warm-start working set (inequality-row indices), typically the
        ``active_set`` of a previous, related solve.
    workspace:
        Reusable :class:`QPWorkspace`; one is created on the fly when omitted
        or when it does not match the problem's Hessian/constraints.
    max_iterations:
        Iteration cap for the active-set loop.
    tol:
        Numerical tolerance used for step, feasibility and multiplier tests.

    Returns
    -------
    QPResult
        The solve outcome (solution, objective, active set, convergence
        metadata).
    """
    if workspace is None or not workspace.matches(problem):
        try:
            workspace = QPWorkspace(problem)
        except np.linalg.LinAlgError as error:
            start = np.zeros(problem.num_variables) if x0 is None else ensure_1d(x0, "x0")
            return QPResult(
                x=start.copy(),
                objective=problem.objective(start),
                iterations=0,
                converged=False,
                message=str(error),
            )
    return workspace.solve(
        problem.gradient,
        x0=x0,
        active_set=active_set,
        max_iterations=max_iterations,
        tol=tol,
    )


def _solve_qp_scipy(problem: QuadraticProgram, x0: Optional[np.ndarray]) -> QPResult:
    """Solve the QP with SciPy's SLSQP (cross-check backend)."""
    from scipy import optimize

    n = problem.num_variables
    start = np.zeros(n) if x0 is None else ensure_1d(x0, "x0")
    constraints = []
    if problem.eq_matrix is not None:
        constraints.append(
            {
                "type": "eq",
                "fun": lambda x, A=problem.eq_matrix, b=problem.eq_vector: A @ x - b,
                "jac": lambda x, A=problem.eq_matrix: A,
            }
        )
    if problem.ineq_matrix is not None:
        constraints.append(
            {
                "type": "ineq",
                "fun": lambda x, A=problem.ineq_matrix, b=problem.ineq_vector: A @ x - b,
                "jac": lambda x, A=problem.ineq_matrix: A,
            }
        )
    result = optimize.minimize(
        problem.objective,
        start,
        jac=lambda x: problem.hessian @ x + problem.gradient,
        method="SLSQP",
        constraints=constraints,
        options={"maxiter": 500, "ftol": 1e-12},
    )
    return QPResult(
        x=np.asarray(result.x, dtype=float),
        objective=float(result.fun),
        iterations=int(result.nit),
        converged=bool(result.success),
        message=str(result.message),
    )


def solve_qp(
    problem: QuadraticProgram,
    x0: Optional[np.ndarray] = None,
    *,
    backend: str = "auto",
    active_set: Optional[Sequence[int]] = None,
    workspace: Optional[QPWorkspace] = None,
    max_iterations: int = 500,
    tol: float = 1e-9,
) -> QPResult:
    """Solve a convex QP with the selected backend.

    Backends: ``"active_set"`` (in-repo null-space solver), ``"scipy"``
    (SLSQP), or ``"auto"`` which runs the active-set solver and falls back to
    SciPy if it fails to converge or returns an infeasible point.  The
    ``active_set`` warm start and the shared ``workspace`` apply to the
    active-set backend only.

    Parameters
    ----------
    problem:
        Problem data (see :class:`QuadraticProgram`).
    x0:
        Optional feasible starting point.
    backend:
        One of ``"auto"``, ``"active_set"``, ``"scipy"``.
    active_set, workspace, max_iterations, tol:
        Passed through to :func:`solve_qp_active_set`.

    Returns
    -------
    QPResult
        The best result of the attempted backend(s).
    """
    if backend == "active_set":
        return solve_qp_active_set(
            problem,
            x0,
            active_set=active_set,
            workspace=workspace,
            max_iterations=max_iterations,
            tol=tol,
        )
    if backend == "scipy":
        return _solve_qp_scipy(problem, x0)
    if backend == "auto":
        result = solve_qp_active_set(
            problem,
            x0,
            active_set=active_set,
            workspace=workspace,
            max_iterations=max_iterations,
            tol=tol,
        )
        if result.converged and problem.is_feasible(result.x, tol=1e-6):
            return result
        fallback = _solve_qp_scipy(problem, x0)
        # Keep whichever feasible solution has the lower objective.
        if not fallback.converged:
            return result if result.converged else fallback
        if result.converged and result.objective < fallback.objective:
            return result
        return fallback
    raise ValueError(f"unknown QP backend {backend!r}")
