"""Dense convex quadratic programming.

The deconvolution estimate (Sec. 2.3 of the paper) is the solution of

    minimize    0.5 x^T H x + g^T x
    subject to  A_eq x  = b_eq          (RNA conservation, rate continuity)
                A_in x >= b_in          (positivity of the expression)

with ``H`` symmetric positive (semi-)definite.  This module provides a primal
active-set solver for that problem class plus a thin wrapper that can also
dispatch to SciPy's SLSQP as an alternative backend (useful for
cross-checking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.validation import ensure_1d, ensure_2d


@dataclass
class QuadraticProgram:
    """Data of a convex quadratic program.

    Attributes
    ----------
    hessian:
        Symmetric matrix ``H`` of the quadratic term, shape ``(n, n)``.
    gradient:
        Linear term ``g``, shape ``(n,)``.
    eq_matrix, eq_vector:
        Equality constraints ``A_eq x = b_eq`` (may be empty).
    ineq_matrix, ineq_vector:
        Inequality constraints ``A_in x >= b_in`` (may be empty).
    """

    hessian: np.ndarray
    gradient: np.ndarray
    eq_matrix: Optional[np.ndarray] = None
    eq_vector: Optional[np.ndarray] = None
    ineq_matrix: Optional[np.ndarray] = None
    ineq_vector: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.hessian = ensure_2d(self.hessian, "hessian")
        self.gradient = ensure_1d(self.gradient, "gradient")
        n = self.gradient.size
        if self.hessian.shape != (n, n):
            raise ValueError("hessian shape does not match gradient length")
        if not np.allclose(self.hessian, self.hessian.T, atol=1e-8):
            raise ValueError("hessian must be symmetric")
        if (self.eq_matrix is None) != (self.eq_vector is None):
            raise ValueError("eq_matrix and eq_vector must be provided together")
        if (self.ineq_matrix is None) != (self.ineq_vector is None):
            raise ValueError("ineq_matrix and ineq_vector must be provided together")
        if self.eq_matrix is not None:
            self.eq_matrix = ensure_2d(self.eq_matrix, "eq_matrix")
            self.eq_vector = ensure_1d(self.eq_vector, "eq_vector")
            if self.eq_matrix.shape != (self.eq_vector.size, n):
                raise ValueError("equality constraint shapes are inconsistent")
        if self.ineq_matrix is not None:
            self.ineq_matrix = ensure_2d(self.ineq_matrix, "ineq_matrix")
            self.ineq_vector = ensure_1d(self.ineq_vector, "ineq_vector")
            if self.ineq_matrix.shape != (self.ineq_vector.size, n):
                raise ValueError("inequality constraint shapes are inconsistent")

    @property
    def num_variables(self) -> int:
        """Number of optimisation variables."""
        return self.gradient.size

    def objective(self, x: np.ndarray) -> float:
        """Evaluate ``0.5 x^T H x + g^T x``."""
        x = ensure_1d(x, "x")
        return float(0.5 * x @ self.hessian @ x + self.gradient @ x)

    def is_feasible(self, x: np.ndarray, tol: float = 1e-7) -> bool:
        """Check whether ``x`` satisfies all constraints within ``tol``."""
        x = ensure_1d(x, "x")
        if self.eq_matrix is not None:
            if np.max(np.abs(self.eq_matrix @ x - self.eq_vector), initial=0.0) > tol:
                return False
        if self.ineq_matrix is not None:
            if np.min(self.ineq_matrix @ x - self.ineq_vector, initial=0.0) < -tol:
                return False
        return True


@dataclass
class QPResult:
    """Result of a quadratic-program solve."""

    x: np.ndarray
    objective: float
    iterations: int
    converged: bool
    active_set: list[int] = field(default_factory=list)
    message: str = ""


def _solve_kkt(hessian: np.ndarray, gradient: np.ndarray, constraints: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Solve the equality-constrained KKT system.

    Returns the step ``p`` minimising ``0.5 p^T H p + gradient^T p`` subject to
    ``constraints @ p = 0`` and the Lagrange multipliers of those constraints.
    """
    n = gradient.size
    m = constraints.shape[0]
    kkt = np.zeros((n + m, n + m))
    kkt[:n, :n] = hessian
    if m:
        kkt[:n, n:] = constraints.T
        kkt[n:, :n] = constraints
    rhs = np.concatenate([-gradient, np.zeros(m)])
    try:
        solution = np.linalg.solve(kkt, rhs)
    except np.linalg.LinAlgError:
        solution, *_ = np.linalg.lstsq(kkt, rhs, rcond=None)
    return solution[:n], solution[n:]


def solve_qp_active_set(
    problem: QuadraticProgram,
    x0: Optional[np.ndarray] = None,
    *,
    max_iterations: int = 500,
    tol: float = 1e-9,
) -> QPResult:
    """Primal active-set method for a convex QP.

    Parameters
    ----------
    problem:
        Problem data; ``hessian`` should be positive definite (add a small
        ridge when building the problem if necessary).
    x0:
        Feasible starting point.  Defaults to the zero vector, which is
        feasible for the homogeneous constraints arising in deconvolution;
        a ``ValueError`` is raised if the starting point is infeasible.
    max_iterations:
        Iteration cap for the active-set loop.
    tol:
        Numerical tolerance used for step, feasibility and multiplier tests.
    """
    n = problem.num_variables
    x = np.zeros(n) if x0 is None else ensure_1d(x0, "x0").copy()
    if x.size != n:
        raise ValueError("x0 has the wrong length")
    if not problem.is_feasible(x, tol=1e-6):
        raise ValueError("the starting point x0 is not feasible")

    eq_matrix = problem.eq_matrix if problem.eq_matrix is not None else np.zeros((0, n))
    ineq_matrix = problem.ineq_matrix if problem.ineq_matrix is not None else np.zeros((0, n))
    ineq_vector = problem.ineq_vector if problem.ineq_vector is not None else np.zeros(0)
    num_ineq = ineq_matrix.shape[0]

    # Working set holds indices of inequality constraints treated as equalities.
    # It starts empty even when some constraints are active at x0 (a common,
    # degenerate situation here: the zero start activates every positivity
    # row); blocking constraints are added one at a time as zero-length steps
    # are taken, which keeps the KKT systems well conditioned.
    working: set[int] = set()

    for iteration in range(1, max_iterations + 1):
        active_rows = ineq_matrix[sorted(working)] if working else np.zeros((0, n))
        constraint_matrix = np.vstack([eq_matrix, active_rows]) if (eq_matrix.size or active_rows.size) else np.zeros((0, n))
        gradient_at_x = problem.hessian @ x + problem.gradient
        step, multipliers = _solve_kkt(problem.hessian, gradient_at_x, constraint_matrix)

        if np.linalg.norm(step) <= tol * max(1.0, np.linalg.norm(x)):
            # Stationary on the working set: check the KKT multipliers of the
            # active inequality constraints.  The KKT solve returns multipliers
            # for the system ``H p + C^T mu = -(H x + g)``, so the Lagrange
            # multipliers of the ``a_i^T x >= b_i`` constraints are ``-mu``.
            num_eq = eq_matrix.shape[0]
            lagrange = -multipliers[num_eq:]
            if lagrange.size == 0 or np.all(lagrange >= -tol):
                return QPResult(
                    x=x,
                    objective=problem.objective(x),
                    iterations=iteration,
                    converged=True,
                    active_set=sorted(working),
                    message="optimal",
                )
            # Drop the active constraint with the most negative multiplier.
            worst = int(np.argmin(lagrange))
            working.remove(sorted(working)[worst])
            continue

        # Determine the largest feasible step length along ``step``.
        alpha = 1.0
        blocking = None
        if num_ineq:
            inactive = [i for i in range(num_ineq) if i not in working]
            if inactive:
                rows = ineq_matrix[inactive]
                directional = rows @ step
                slack = rows @ x - ineq_vector[inactive]
                with np.errstate(divide="ignore", invalid="ignore"):
                    ratios = np.where(directional < -tol, -slack / directional, np.inf)
                best = int(np.argmin(ratios))
                if ratios[best] < alpha:
                    alpha = float(max(ratios[best], 0.0))
                    blocking = inactive[best]
        x = x + alpha * step
        if blocking is not None:
            working.add(blocking)

    return QPResult(
        x=x,
        objective=problem.objective(x),
        iterations=max_iterations,
        converged=False,
        active_set=sorted(working),
        message="maximum iterations reached",
    )


def _solve_qp_scipy(problem: QuadraticProgram, x0: Optional[np.ndarray]) -> QPResult:
    """Solve the QP with SciPy's SLSQP (cross-check backend)."""
    from scipy import optimize

    n = problem.num_variables
    start = np.zeros(n) if x0 is None else ensure_1d(x0, "x0")
    constraints = []
    if problem.eq_matrix is not None:
        constraints.append(
            {
                "type": "eq",
                "fun": lambda x, A=problem.eq_matrix, b=problem.eq_vector: A @ x - b,
                "jac": lambda x, A=problem.eq_matrix: A,
            }
        )
    if problem.ineq_matrix is not None:
        constraints.append(
            {
                "type": "ineq",
                "fun": lambda x, A=problem.ineq_matrix, b=problem.ineq_vector: A @ x - b,
                "jac": lambda x, A=problem.ineq_matrix: A,
            }
        )
    result = optimize.minimize(
        problem.objective,
        start,
        jac=lambda x: problem.hessian @ x + problem.gradient,
        method="SLSQP",
        constraints=constraints,
        options={"maxiter": 500, "ftol": 1e-12},
    )
    return QPResult(
        x=np.asarray(result.x, dtype=float),
        objective=float(result.fun),
        iterations=int(result.nit),
        converged=bool(result.success),
        message=str(result.message),
    )


def solve_qp(
    problem: QuadraticProgram,
    x0: Optional[np.ndarray] = None,
    *,
    backend: str = "auto",
    max_iterations: int = 500,
    tol: float = 1e-9,
) -> QPResult:
    """Solve a convex QP with the selected backend.

    Backends: ``"active_set"`` (in-repo solver), ``"scipy"`` (SLSQP), or
    ``"auto"`` which runs the active-set solver and falls back to SciPy if it
    fails to converge or returns an infeasible point.
    """
    if backend == "active_set":
        return solve_qp_active_set(problem, x0, max_iterations=max_iterations, tol=tol)
    if backend == "scipy":
        return _solve_qp_scipy(problem, x0)
    if backend == "auto":
        result = solve_qp_active_set(problem, x0, max_iterations=max_iterations, tol=tol)
        if result.converged and problem.is_feasible(result.x, tol=1e-6):
            return result
        fallback = _solve_qp_scipy(problem, x0)
        # Keep whichever feasible solution has the lower objective.
        if not fallback.converged:
            return result if result.converged else fallback
        if result.converged and result.objective < fallback.objective:
            return result
        return fallback
    raise ValueError(f"unknown QP backend {backend!r}")
