"""Interpolation utilities: natural cubic splines and linear interpolation.

The natural cubic spline implemented here is the work-horse of the
deconvolution basis (:mod:`repro.core.basis`): each basis function
``psi_i(phi)`` is the natural cubic spline taking the value one at knot ``i``
and zero at every other knot.  The implementation solves the classical
tridiagonal system for the knot second derivatives and supports evaluation of
the spline and of its first and second derivatives, as well as exact
integration of products of second derivatives (needed by the roughness
penalty).
"""

from __future__ import annotations

import numpy as np

from repro.numerics.tridiagonal import solve_tridiagonal
from repro.utils.validation import check_sorted, ensure_1d


class LinearInterpolator:
    """Piecewise-linear interpolation with constant extrapolation.

    Parameters
    ----------
    x:
        Strictly increasing sample locations.
    y:
        Sample values at ``x``.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        self.x = check_sorted(x, "x")
        self.y = ensure_1d(y, "y")
        if self.x.size != self.y.size:
            raise ValueError("x and y must have the same length")
        if self.x.size < 2:
            raise ValueError("need at least two points to interpolate")

    def __call__(self, points: np.ndarray | float) -> np.ndarray:
        """Evaluate the interpolant at ``points`` (clamped to the data range)."""
        pts = np.atleast_1d(np.asarray(points, dtype=float))
        values = np.interp(pts, self.x, self.y)
        return values if np.ndim(points) else float(values[0])


class NaturalCubicSpline:
    """Natural cubic spline through ``(knots, values)``.

    The spline has zero second derivative at both end knots ("natural"
    boundary conditions).  Evaluation outside the knot range extrapolates the
    end cubic pieces, which keeps derivative-based constraints well defined at
    exactly ``phi = 0`` and ``phi = 1`` when they coincide with the end knots.

    Parameters
    ----------
    knots:
        Strictly increasing knot locations (at least three).
    values:
        Function values at the knots.
    """

    def __init__(self, knots: np.ndarray, values: np.ndarray) -> None:
        self.knots = check_sorted(knots, "knots")
        self.values = ensure_1d(values, "values")
        if self.knots.size != self.values.size:
            raise ValueError("knots and values must have the same length")
        if self.knots.size < 3:
            raise ValueError("a natural cubic spline needs at least three knots")
        self.second_derivatives = self._solve_second_derivatives()

    def _solve_second_derivatives(self) -> np.ndarray:
        """Solve the tridiagonal system for the knot second derivatives."""
        x = self.knots
        y = self.values
        n = x.size
        h = np.diff(x)
        # Interior equations: h[i-1] M[i-1] + 2 (h[i-1]+h[i]) M[i] + h[i] M[i+1]
        #                     = 6 ((y[i+1]-y[i])/h[i] - (y[i]-y[i-1])/h[i-1])
        diagonal = np.ones(n)
        lower = np.zeros(n)
        upper = np.zeros(n)
        rhs = np.zeros(n)
        diagonal[1:-1] = 2.0 * (h[:-1] + h[1:])
        lower[1:-1] = h[:-1]
        upper[1:-1] = h[1:]
        slopes = np.diff(y) / h
        rhs[1:-1] = 6.0 * (slopes[1:] - slopes[:-1])
        # Natural boundary conditions: M[0] = M[n-1] = 0 (rows already identity).
        return solve_tridiagonal(lower, diagonal, upper, rhs)

    def _locate(self, points: np.ndarray) -> np.ndarray:
        """Index of the knot interval containing each point (clamped)."""
        idx = np.searchsorted(self.knots, points, side="right") - 1
        return np.clip(idx, 0, self.knots.size - 2)

    def __call__(self, points: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the spline at ``points``."""
        return self._evaluate(points, derivative=0)

    def derivative(self, points: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the first derivative of the spline at ``points``."""
        return self._evaluate(points, derivative=1)

    def second_derivative(self, points: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the second derivative of the spline at ``points``."""
        return self._evaluate(points, derivative=2)

    def _evaluate(self, points: np.ndarray | float, derivative: int) -> np.ndarray | float:
        pts = np.atleast_1d(np.asarray(points, dtype=float))
        idx = self._locate(pts)
        x = self.knots
        y = self.values
        m = self.second_derivatives
        h = x[idx + 1] - x[idx]
        a = (x[idx + 1] - pts) / h
        b = (pts - x[idx]) / h
        if derivative == 0:
            values = (
                a * y[idx]
                + b * y[idx + 1]
                + ((a**3 - a) * m[idx] + (b**3 - b) * m[idx + 1]) * (h**2) / 6.0
            )
        elif derivative == 1:
            values = (
                (y[idx + 1] - y[idx]) / h
                - (3.0 * a**2 - 1.0) / 6.0 * h * m[idx]
                + (3.0 * b**2 - 1.0) / 6.0 * h * m[idx + 1]
            )
        elif derivative == 2:
            values = a * m[idx] + b * m[idx + 1]
        else:
            raise ValueError(f"derivative order must be 0, 1 or 2, got {derivative}")
        return values if np.ndim(points) else float(values[0])

    def integrate(self) -> float:
        """Exact integral of the spline over the full knot range."""
        x = self.knots
        y = self.values
        m = self.second_derivatives
        h = np.diff(x)
        # Integral of the cubic on each interval in terms of endpoint values
        # and second derivatives.
        piece = 0.5 * h * (y[:-1] + y[1:]) - (h**3) / 24.0 * (m[:-1] + m[1:])
        return float(np.sum(piece))

    def roughness_cross(self, other: "NaturalCubicSpline") -> float:
        """Exact ``\\int s''(x) t''(x) dx`` for two splines sharing the knots.

        The second derivative of a cubic spline is piecewise linear, so the
        product on each interval is quadratic and Simpson's rule on the
        interval endpoints and midpoint is exact.
        """
        if other.knots.shape != self.knots.shape or not np.allclose(other.knots, self.knots):
            raise ValueError("roughness_cross requires splines defined on the same knots")
        x = self.knots
        h = np.diff(x)
        m_self = self.second_derivatives
        m_other = other.second_derivatives
        mid_self = 0.5 * (m_self[:-1] + m_self[1:])
        mid_other = 0.5 * (m_other[:-1] + m_other[1:])
        piece = (
            h
            / 6.0
            * (m_self[:-1] * m_other[:-1] + 4.0 * mid_self * mid_other + m_self[1:] * m_other[1:])
        )
        return float(np.sum(piece))
