"""Tridiagonal linear solves (Thomas algorithm).

Natural cubic spline construction requires solving a symmetric tridiagonal
system for the second derivatives at the knots; the Thomas algorithm does this
in ``O(n)``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_1d


def solve_tridiagonal(
    lower: np.ndarray,
    diagonal: np.ndarray,
    upper: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve a tridiagonal system ``A x = rhs``.

    Parameters
    ----------
    lower:
        Sub-diagonal of length ``n`` whose first entry is ignored
        (``lower[i]`` multiplies ``x[i-1]`` in row ``i``).
    diagonal:
        Main diagonal of length ``n``.
    upper:
        Super-diagonal of length ``n`` whose last entry is ignored
        (``upper[i]`` multiplies ``x[i+1]`` in row ``i``).
    rhs:
        Right-hand side; may be 1-D of length ``n`` or 2-D of shape ``(n, k)``.

    Returns
    -------
    numpy.ndarray
        Solution with the same shape as ``rhs``.
    """
    diagonal = ensure_1d(diagonal, "diagonal")
    lower = ensure_1d(lower, "lower")
    upper = ensure_1d(upper, "upper")
    n = diagonal.size
    if lower.size != n or upper.size != n:
        raise ValueError("lower, diagonal and upper must have equal length")
    rhs_arr = np.asarray(rhs, dtype=float)
    squeeze = rhs_arr.ndim == 1
    if squeeze:
        rhs_arr = rhs_arr[:, None]
    if rhs_arr.shape[0] != n:
        raise ValueError("rhs length does not match the system size")

    # Forward elimination with a stability check on the pivots.
    c_prime = np.zeros(n)
    d_prime = np.zeros_like(rhs_arr)
    pivot = diagonal[0]
    if abs(pivot) < 1e-300:
        raise np.linalg.LinAlgError("zero pivot in tridiagonal solve")
    c_prime[0] = upper[0] / pivot
    d_prime[0] = rhs_arr[0] / pivot
    for i in range(1, n):
        pivot = diagonal[i] - lower[i] * c_prime[i - 1]
        if abs(pivot) < 1e-300:
            raise np.linalg.LinAlgError("zero pivot in tridiagonal solve")
        c_prime[i] = upper[i] / pivot
        d_prime[i] = (rhs_arr[i] - lower[i] * d_prime[i - 1]) / pivot

    # Back substitution.
    solution = np.zeros_like(rhs_arr)
    solution[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        solution[i] = d_prime[i] - c_prime[i] * solution[i + 1]
    return solution[:, 0] if squeeze else solution
