"""Explicit Runge-Kutta integrators for initial-value problems.

Two integrators are provided: a fixed-step classical fourth-order Runge-Kutta
scheme (used when solutions are needed on a prescribed uniform grid, e.g. the
single-cell expression profile sampled on the phase grid) and an adaptive
Dormand-Prince 5(4) scheme with dense output by cubic Hermite interpolation
(used for period tuning, where the step size must adapt to the oscillation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.utils.validation import check_positive, check_sorted

RHSFunction = Callable[[float, np.ndarray], np.ndarray]


@dataclass
class ODESolution:
    """Numerical solution of an initial-value problem.

    Attributes
    ----------
    times:
        Sample times, shape ``(n,)``.
    states:
        State samples, shape ``(n, d)``.
    num_steps:
        Number of accepted integration steps taken.
    num_rejected:
        Number of rejected steps (adaptive integrator only).
    """

    times: np.ndarray
    states: np.ndarray
    num_steps: int
    num_rejected: int = 0

    def component(self, index: int) -> np.ndarray:
        """Time series of a single state component."""
        return self.states[:, index]

    def interpolate(self, query_times: Sequence[float] | np.ndarray) -> np.ndarray:
        """Linear interpolation of the solution at arbitrary times."""
        query = np.atleast_1d(np.asarray(query_times, dtype=float))
        result = np.empty((query.size, self.states.shape[1]))
        for j in range(self.states.shape[1]):
            result[:, j] = np.interp(query, self.times, self.states[:, j])
        return result


def integrate_rk4(
    rhs: RHSFunction,
    y0: Sequence[float] | np.ndarray,
    times: Sequence[float] | np.ndarray,
) -> ODESolution:
    """Integrate ``dy/dt = rhs(t, y)`` with classical RK4 on a fixed grid.

    Parameters
    ----------
    rhs:
        Right-hand side returning an array of the same shape as ``y``.
    y0:
        Initial state at ``times[0]``.
    times:
        Strictly increasing output times; each consecutive pair is covered by
        exactly one RK4 step, so the grid must be fine enough for accuracy.
    """
    times = check_sorted(times, "times")
    state = np.asarray(y0, dtype=float).copy()
    if state.ndim != 1:
        raise ValueError("y0 must be one-dimensional")
    states = np.empty((times.size, state.size))
    states[0] = state
    for i in range(times.size - 1):
        t = times[i]
        h = times[i + 1] - t
        k1 = np.asarray(rhs(t, state), dtype=float)
        k2 = np.asarray(rhs(t + 0.5 * h, state + 0.5 * h * k1), dtype=float)
        k3 = np.asarray(rhs(t + 0.5 * h, state + 0.5 * h * k2), dtype=float)
        k4 = np.asarray(rhs(t + h, state + h * k3), dtype=float)
        state = state + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        states[i + 1] = state
    return ODESolution(times=times.copy(), states=states, num_steps=times.size - 1)


# Dormand-Prince 5(4) Butcher tableau.
_DP_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])
_DP_A = [
    np.array([]),
    np.array([1 / 5]),
    np.array([3 / 40, 9 / 40]),
    np.array([44 / 45, -56 / 15, 32 / 9]),
    np.array([19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729]),
    np.array([9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656]),
    np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84]),
]
_DP_B5 = np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0])
_DP_B4 = np.array(
    [5179 / 57600, 0.0, 7571 / 16695, 393 / 640, -92097 / 339200, 187 / 2100, 1 / 40]
)


def integrate_rk45(
    rhs: RHSFunction,
    y0: Sequence[float] | np.ndarray,
    t_span: tuple[float, float],
    *,
    rtol: float = 1e-7,
    atol: float = 1e-9,
    max_step: float | None = None,
    first_step: float | None = None,
    dense_times: Sequence[float] | np.ndarray | None = None,
    max_steps: int = 1_000_000,
) -> ODESolution:
    """Adaptive Dormand-Prince 5(4) integration of ``dy/dt = rhs(t, y)``.

    Parameters
    ----------
    rhs:
        Right-hand side.
    y0:
        Initial state at ``t_span[0]``.
    t_span:
        Integration interval ``(t0, t1)`` with ``t1 > t0``.
    rtol, atol:
        Relative and absolute error tolerances of the embedded error estimate.
    max_step:
        Optional upper bound on the step size.
    first_step:
        Optional initial step size; a heuristic is used when omitted.
    dense_times:
        If given, the returned solution is resampled onto these times using
        cubic Hermite interpolation between accepted steps; otherwise the
        accepted step points are returned.
    max_steps:
        Safety limit on the number of accepted steps.
    """
    t0, t1 = float(t_span[0]), float(t_span[1])
    if not t1 > t0:
        raise ValueError("t_span must satisfy t1 > t0")
    check_positive(rtol, "rtol")
    check_positive(atol, "atol")
    state = np.asarray(y0, dtype=float).copy()
    if state.ndim != 1:
        raise ValueError("y0 must be one-dimensional")

    span = t1 - t0
    if max_step is None:
        max_step = span
    if first_step is None:
        first_step = min(max_step, span / 100.0)
    h = float(first_step)

    times = [t0]
    states = [state.copy()]
    derivs = [np.asarray(rhs(t0, state), dtype=float)]
    t = t0
    accepted = 0
    rejected = 0

    while t < t1 - 1e-14 * span:
        h = min(h, t1 - t, max_step)
        k = np.empty((7, state.size))
        k[0] = derivs[-1]
        for stage in range(1, 7):
            increment = h * (_DP_A[stage] @ k[:stage])
            k[stage] = np.asarray(rhs(t + _DP_C[stage] * h, state + increment), dtype=float)
        y5 = state + h * (_DP_B5 @ k)
        y4 = state + h * (_DP_B4 @ k)
        scale = atol + rtol * np.maximum(np.abs(state), np.abs(y5))
        error = np.sqrt(np.mean(((y5 - y4) / scale) ** 2))
        if error <= 1.0 or h <= 1e-13 * span:
            t = t + h
            state = y5
            times.append(t)
            states.append(state.copy())
            derivs.append(k[6].copy())  # FSAL: last stage is the derivative at t+h.
            accepted += 1
            if accepted >= max_steps:
                raise RuntimeError("integrate_rk45 exceeded the maximum number of steps")
        else:
            rejected += 1
        # Standard step-size controller with safety factor and bounds.
        factor = 0.9 * (1.0 / max(error, 1e-10)) ** 0.2
        h = h * min(5.0, max(0.2, factor))

    times_arr = np.asarray(times)
    states_arr = np.asarray(states)
    if dense_times is None:
        return ODESolution(times=times_arr, states=states_arr, num_steps=accepted, num_rejected=rejected)

    query = check_sorted(dense_times, "dense_times", strict=False)
    if query[0] < times_arr[0] - 1e-9 or query[-1] > times_arr[-1] + 1e-9:
        raise ValueError("dense_times must lie inside the integration interval")
    dense = _hermite_resample(times_arr, states_arr, np.asarray(derivs), query)
    return ODESolution(times=query, states=dense, num_steps=accepted, num_rejected=rejected)


def _hermite_resample(
    times: np.ndarray,
    states: np.ndarray,
    derivs: np.ndarray,
    query: np.ndarray,
) -> np.ndarray:
    """Cubic Hermite interpolation of (states, derivs) samples at ``query``."""
    idx = np.clip(np.searchsorted(times, query, side="right") - 1, 0, times.size - 2)
    h = times[idx + 1] - times[idx]
    s = np.where(h > 0, (query - times[idx]) / np.where(h > 0, h, 1.0), 0.0)
    h00 = 2 * s**3 - 3 * s**2 + 1
    h10 = s**3 - 2 * s**2 + s
    h01 = -2 * s**3 + 3 * s**2
    h11 = s**3 - s**2
    result = (
        h00[:, None] * states[idx]
        + h10[:, None] * (h[:, None] * derivs[idx])
        + h01[:, None] * states[idx + 1]
        + h11[:, None] * (h[:, None] * derivs[idx + 1])
    )
    return result
