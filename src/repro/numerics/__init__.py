"""Numerical substrates used by the deconvolution pipeline.

Everything the pipeline needs is implemented here from scratch — composite
quadrature rules, tridiagonal solves, natural cubic splines, explicit
Runge-Kutta ODE integrators, a dense active-set solver for convex quadratic
programs and a Nelder-Mead simplex optimiser.  SciPy is only used in the test
suite as an independent oracle.
"""

from repro.numerics.quadrature import (
    trapezoid_weights,
    simpson_weights,
    gauss_legendre_nodes,
    integrate_samples,
    integrate_function,
)
from repro.numerics.tridiagonal import solve_tridiagonal
from repro.numerics.interpolation import NaturalCubicSpline, LinearInterpolator
from repro.numerics.integrate import ODESolution, integrate_rk4, integrate_rk45
from repro.numerics.qp import QuadraticProgram, QPResult, solve_qp_active_set, solve_qp
from repro.numerics.nelder_mead import NelderMeadResult, minimize_nelder_mead

__all__ = [
    "trapezoid_weights",
    "simpson_weights",
    "gauss_legendre_nodes",
    "integrate_samples",
    "integrate_function",
    "solve_tridiagonal",
    "NaturalCubicSpline",
    "LinearInterpolator",
    "ODESolution",
    "integrate_rk4",
    "integrate_rk45",
    "QuadraticProgram",
    "QPResult",
    "solve_qp_active_set",
    "solve_qp",
    "NelderMeadResult",
    "minimize_nelder_mead",
]
