"""Cell-cycle parameter set and sampling of per-cell random variables.

Each simulated cell ``k`` carries two random parameters (Sec. 2.1 of the
paper): its swarmer-to-stalked transition phase ``phi_sst_k``, normally
distributed with mean 0.15 and coefficient of variation 0.13, and its total
cycle time ``T_k`` in minutes.  Both are sampled from truncated normal
distributions so that unphysical values (negative times, transition phases
outside ``(0, 1)``) never occur.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive


def _sample_truncated_normal(
    rng: np.random.Generator,
    mean: float,
    std: float,
    low: float,
    high: float,
    size: int,
) -> np.ndarray:
    """Sample a normal distribution truncated to ``(low, high)`` by rejection.

    The distributions used here are narrow relative to their bounds, so
    rejection sampling converges in one or two rounds; a clip-based fallback
    guarantees termination even for extreme parameter choices.
    """
    if std == 0.0:
        return np.full(size, np.clip(mean, low, high))
    samples = rng.normal(mean, std, size)
    for _ in range(100):
        bad = (samples <= low) | (samples >= high)
        num_bad = int(np.count_nonzero(bad))
        if num_bad == 0:
            return samples
        samples[bad] = rng.normal(mean, std, num_bad)
    return np.clip(samples, low + 1e-9, high - 1e-9)


@dataclass(frozen=True)
class CellCycleParameters:
    """Population-level parameters of the Caulobacter cell-cycle model.

    Attributes
    ----------
    mu_sst:
        Mean swarmer-to-stalked transition phase (paper value 0.15).
    cv_sst:
        Coefficient of variation of the transition phase (paper value 0.13).
    mean_cycle_time:
        Mean total cell-cycle time in minutes (paper value 150).
    cv_cycle_time:
        Coefficient of variation of the cell-cycle time.
    swarmer_volume_fraction:
        Fraction of the pre-division volume inherited by the swarmer daughter.
    stalked_volume_fraction:
        Fraction of the pre-division volume inherited by the stalked daughter.
    """

    mu_sst: float = config.DEFAULT_MU_SST
    cv_sst: float = config.DEFAULT_CV_SST
    mean_cycle_time: float = config.DEFAULT_MEAN_CYCLE_TIME
    cv_cycle_time: float = config.DEFAULT_CV_CYCLE_TIME
    swarmer_volume_fraction: float = config.SWARMER_VOLUME_FRACTION
    stalked_volume_fraction: float = config.STALKED_VOLUME_FRACTION

    def __post_init__(self) -> None:
        check_in_range(self.mu_sst, "mu_sst", 0.0, 1.0, inclusive=False)
        check_positive(self.cv_sst, "cv_sst", strict=False)
        check_positive(self.mean_cycle_time, "mean_cycle_time")
        check_positive(self.cv_cycle_time, "cv_cycle_time", strict=False)
        check_in_range(self.swarmer_volume_fraction, "swarmer_volume_fraction", 0.0, 1.0, inclusive=False)
        check_in_range(self.stalked_volume_fraction, "stalked_volume_fraction", 0.0, 1.0, inclusive=False)
        total = self.swarmer_volume_fraction + self.stalked_volume_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                "swarmer and stalked volume fractions must sum to one, got "
                f"{self.swarmer_volume_fraction} + {self.stalked_volume_fraction}"
            )

    @property
    def sigma_sst(self) -> float:
        """Standard deviation of the transition phase."""
        return self.mu_sst * self.cv_sst

    @property
    def sigma_cycle_time(self) -> float:
        """Standard deviation of the cell-cycle time in minutes."""
        return self.mean_cycle_time * self.cv_cycle_time

    def sample_transition_phase(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Sample ``phi_sst`` values truncated to ``(0, 1)``."""
        generator = as_generator(rng)
        return _sample_truncated_normal(generator, self.mu_sst, self.sigma_sst, 0.0, 1.0, int(size))

    def sample_cycle_time(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Sample total cycle times, truncated to stay strictly positive."""
        generator = as_generator(rng)
        lower = 0.2 * self.mean_cycle_time
        upper = 3.0 * self.mean_cycle_time
        return _sample_truncated_normal(
            generator, self.mean_cycle_time, self.sigma_cycle_time, lower, upper, int(size)
        )

    def transition_phase_density(self, phi: np.ndarray | float) -> np.ndarray | float:
        """Gaussian probability density ``p(phi)`` of the transition phase.

        This is the density appearing in the RNA-conservation and
        rate-continuity constraint weights (eqs. 14-19 of the paper).
        """
        sigma = self.sigma_sst
        phi_arr = np.asarray(phi, dtype=float)
        if sigma == 0.0:
            raise ValueError("the transition-phase density is undefined for cv_sst = 0")
        density = np.exp(-0.5 * ((phi_arr - self.mu_sst) / sigma) ** 2) / (sigma * np.sqrt(2.0 * np.pi))
        return density if np.ndim(phi) else float(density)

    def beta(self, phi_sst: np.ndarray | float) -> np.ndarray | float:
        """Normalised pre-division volume growth rate ``beta = 0.4 / (1 - phi_sst)``."""
        phi_arr = np.asarray(phi_sst, dtype=float)
        value = self.swarmer_volume_fraction / (1.0 - phi_arr)
        return value if np.ndim(phi_sst) else float(value)
