"""Cell-type classification and type-fraction time series (Figure 4).

Simulated cells are grouped by their cell-cycle phase into swarmer (SW),
early stalked (STE), early predivisional (STEPD) and late predivisional
(STLPD) morphologies.  The SW/STE boundary is each cell's own transition phase
``phi_sst``; the STE/STEPD and STEPD/STLPD boundaries are uncertain
experimentally, so the paper reports them as ranges (0.6-0.7 and 0.85-0.9)
and draws a band — this module supports both a single boundary set and a
(low, mid, high) band.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.cellcycle.parameters import CellCycleParameters
from repro.cellcycle.phase import InitialCondition
from repro.cellcycle.population import PopulationSimulator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, ensure_1d


class CellType(enum.Enum):
    """Morphological cell types of the Caulobacter cycle."""

    SW = "SW"
    STE = "STE"
    STEPD = "STEPD"
    STLPD = "STLPD"

    @classmethod
    def ordered(cls) -> list["CellType"]:
        """Types in cell-cycle order."""
        return [cls.SW, cls.STE, cls.STEPD, cls.STLPD]


@dataclass(frozen=True)
class CellTypeBoundaries:
    """Phase boundaries separating the stalked sub-types.

    Attributes
    ----------
    ste_stepd:
        Phase separating early stalked from early predivisional cells
        (paper range 0.6-0.7).
    stepd_stlpd:
        Phase separating early from late predivisional cells
        (paper range 0.85-0.9).
    """

    ste_stepd: float = 0.65
    stepd_stlpd: float = 0.875

    def __post_init__(self) -> None:
        check_in_range(self.ste_stepd, "ste_stepd", 0.0, 1.0, inclusive=False)
        check_in_range(self.stepd_stlpd, "stepd_stlpd", 0.0, 1.0, inclusive=False)
        if not self.ste_stepd < self.stepd_stlpd:
            raise ValueError("ste_stepd must be smaller than stepd_stlpd")

    @classmethod
    def paper_low(cls) -> "CellTypeBoundaries":
        """Lower edge of the paper's boundary ranges."""
        return cls(ste_stepd=0.6, stepd_stlpd=0.85)

    @classmethod
    def paper_mid(cls) -> "CellTypeBoundaries":
        """Midpoint of the paper's boundary ranges."""
        return cls(ste_stepd=0.65, stepd_stlpd=0.875)

    @classmethod
    def paper_high(cls) -> "CellTypeBoundaries":
        """Upper edge of the paper's boundary ranges."""
        return cls(ste_stepd=0.7, stepd_stlpd=0.9)


def classify_phases(
    phases: np.ndarray,
    transition_phases: np.ndarray,
    boundaries: CellTypeBoundaries | None = None,
) -> np.ndarray:
    """Classify each cell into a :class:`CellType` by its phase.

    Parameters
    ----------
    phases:
        Cell-cycle phases in ``[0, 1]``.
    transition_phases:
        Per-cell swarmer-to-stalked transition phases.
    boundaries:
        Stalked sub-type boundaries; defaults to the paper midpoints.

    Returns
    -------
    numpy.ndarray
        Object array of :class:`CellType` members, same length as ``phases``.
    """
    phases = ensure_1d(phases, "phases")
    transition_phases = ensure_1d(transition_phases, "transition_phases")
    if phases.size != transition_phases.size:
        raise ValueError("phases and transition_phases must have the same length")
    if boundaries is None:
        boundaries = CellTypeBoundaries.paper_mid()
    result = np.empty(phases.size, dtype=object)
    swarmer = phases < transition_phases
    early_stalked = (~swarmer) & (phases < boundaries.ste_stepd)
    early_pd = (~swarmer) & (phases >= boundaries.ste_stepd) & (phases < boundaries.stepd_stlpd)
    late_pd = (~swarmer) & (phases >= boundaries.stepd_stlpd)
    result[swarmer] = CellType.SW
    result[early_stalked] = CellType.STE
    result[early_pd] = CellType.STEPD
    result[late_pd] = CellType.STLPD
    return result


def type_fractions(
    phases: np.ndarray,
    transition_phases: np.ndarray,
    boundaries: CellTypeBoundaries | None = None,
) -> dict[CellType, float]:
    """Fraction of cells of each type (by cell count)."""
    labels = classify_phases(phases, transition_phases, boundaries)
    total = labels.size
    return {
        cell_type: float(np.count_nonzero(labels == cell_type)) / total
        for cell_type in CellType.ordered()
    }


@dataclass
class CellTypeDistribution:
    """Time-resolved cell-type fractions, optionally with an uncertainty band.

    Attributes
    ----------
    times:
        Sample times in minutes.
    fractions:
        Mapping from cell type to the fraction time series at the midpoint
        boundaries.
    lower, upper:
        Optional mappings giving the band induced by the boundary ranges.
    """

    times: np.ndarray
    fractions: dict[CellType, np.ndarray]
    lower: dict[CellType, np.ndarray] = field(default_factory=dict)
    upper: dict[CellType, np.ndarray] = field(default_factory=dict)

    def as_matrix(self) -> np.ndarray:
        """Fractions as a matrix with one column per type in cycle order."""
        return np.column_stack([self.fractions[t] for t in CellType.ordered()])

    def check_normalised(self, tol: float = 1e-8) -> bool:
        """Whether the four fractions sum to one at every time."""
        sums = self.as_matrix().sum(axis=1)
        return bool(np.all(np.abs(sums - 1.0) <= tol))


def simulate_type_distribution(
    times: np.ndarray,
    parameters: CellCycleParameters | None = None,
    *,
    num_cells: int = 20_000,
    initial_condition: InitialCondition = InitialCondition.SYNCHRONIZED_SWARMER,
    include_band: bool = True,
    rng: SeedLike = None,
) -> CellTypeDistribution:
    """Simulate the batch-culture cell-type distribution over time (Fig. 4).

    Parameters
    ----------
    times:
        Times (minutes) at which to evaluate the type fractions.
    parameters:
        Cell-cycle parameters; defaults to the paper values.
    num_cells:
        Number of founder cells in the Monte-Carlo simulation.
    initial_condition:
        Initial synchrony model; the paper's experiment starts from a
        synchronised swarmer culture.
    include_band:
        Whether to also evaluate the low/high boundary choices to produce the
        shaded band of Fig. 4.
    rng:
        Seed or generator.
    """
    times = ensure_1d(times, "times")
    parameters = parameters if parameters is not None else CellCycleParameters()
    generator = as_generator(rng)
    simulator = PopulationSimulator(parameters, initial_condition=initial_condition)
    horizon = float(np.max(times))
    history = simulator.run(num_cells, horizon, generator)

    boundary_sets = {"mid": CellTypeBoundaries.paper_mid()}
    if include_band:
        # The paper's shaded band spans the STE-STEPD range 0.6-0.7 and the
        # STEPD-STLPD range 0.85-0.9; evaluating every corner of that
        # rectangle gives a true envelope of the possible fractions.
        low = CellTypeBoundaries.paper_low()
        high = CellTypeBoundaries.paper_high()
        boundary_sets["corner_ll"] = CellTypeBoundaries(low.ste_stepd, low.stepd_stlpd)
        boundary_sets["corner_lh"] = CellTypeBoundaries(low.ste_stepd, high.stepd_stlpd)
        boundary_sets["corner_hl"] = CellTypeBoundaries(high.ste_stepd, low.stepd_stlpd)
        boundary_sets["corner_hh"] = CellTypeBoundaries(high.ste_stepd, high.stepd_stlpd)

    series: dict[str, dict[CellType, list[float]]] = {
        key: {cell_type: [] for cell_type in CellType.ordered()} for key in boundary_sets
    }
    for time in times:
        phases, indices = history.phases_at(float(time))
        transition = history.transition_phases[indices]
        for key, boundaries in boundary_sets.items():
            fractions = type_fractions(phases, transition, boundaries)
            for cell_type in CellType.ordered():
                series[key][cell_type].append(fractions[cell_type])

    fractions_mid = {t: np.asarray(v) for t, v in series["mid"].items()}
    lower: dict[CellType, np.ndarray] = {}
    upper: dict[CellType, np.ndarray] = {}
    if include_band:
        for cell_type in CellType.ordered():
            stacked = np.vstack([np.asarray(series[key][cell_type]) for key in boundary_sets])
            lower[cell_type] = stacked.min(axis=0)
            upper[cell_type] = stacked.max(axis=0)
    return CellTypeDistribution(times=times.copy(), fractions=fractions_mid, lower=lower, upper=upper)
