"""Cell-volume models ``v_k(phi)``.

Three models are provided:

* :class:`LinearVolumeModel` — a single straight line from ``0.4 V0`` at
  ``phi = 0`` to ``V0`` at ``phi = 1`` (the "purely linear" 2009 baseline that
  ignores the 40/60 split at the transition phase).
* :class:`PiecewiseLinearVolumeModel` — linear on ``[0, phi_sst]`` and
  ``[phi_sst, 1]`` hitting ``0.4 V0``, ``0.6 V0`` and ``V0`` (volume
  partition respected but with a kink at the transition).
* :class:`SmoothVolumeModel` — the paper's updated piecewise-polynomial model
  (eq. 11) which additionally matches the volume growth *rate* across
  division, ``v'(0) = v'(phi_sst) = v'(1)``.

All models are normalised so that ``v(1) = V0`` (the pre-division volume).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_positive


class VolumeModel(abc.ABC):
    """Interface of a single-cell volume model.

    Parameters
    ----------
    v0:
        Pre-division cell volume ``V0 = v(1)`` (arbitrary units).
    """

    name: str = "volume"

    def __init__(self, v0: float = 1.0) -> None:
        self.v0 = check_positive(v0, "v0")

    @abc.abstractmethod
    def _relative_volume(self, phi: np.ndarray, phi_sst: np.ndarray) -> np.ndarray:
        """Volume divided by ``V0`` for arrays of equal shape."""

    @abc.abstractmethod
    def _relative_derivative(self, phi: np.ndarray, phi_sst: np.ndarray) -> np.ndarray:
        """d(v/V0)/dphi for arrays of equal shape."""

    def volume(self, phi: np.ndarray | float, phi_sst: np.ndarray | float) -> np.ndarray | float:
        """Cell volume at phase ``phi`` for a cell with transition phase ``phi_sst``."""
        phi_arr, sst_arr, scalar = _broadcast(phi, phi_sst)
        result = self.v0 * self._relative_volume(phi_arr, sst_arr)
        return float(result[()]) if scalar else result

    def derivative(self, phi: np.ndarray | float, phi_sst: np.ndarray | float) -> np.ndarray | float:
        """Volume growth rate ``dv/dphi`` at phase ``phi``."""
        phi_arr, sst_arr, scalar = _broadcast(phi, phi_sst)
        result = self.v0 * self._relative_derivative(phi_arr, sst_arr)
        return float(result[()]) if scalar else result

    def volume_for_cells(
        self,
        phi: np.ndarray,
        transition_phases: np.ndarray,
        cell_indices: np.ndarray,
    ) -> np.ndarray:
        """Volumes for (phase, cell) pairs sharing per-cell transition phases.

        ``phi[j]`` is the phase of cell ``cell_indices[j]`` whose transition
        phase is ``transition_phases[cell_indices[j]]``.  Subclasses may
        exploit the per-cell structure (e.g. computing phase-independent
        coefficients once per cell); results are identical to
        ``volume(phi, transition_phases[cell_indices])``.
        """
        return self.volume(phi, np.asarray(transition_phases, dtype=float)[cell_indices])

    def volume_for_cells_into(
        self,
        phi: np.ndarray,
        transition_phases: np.ndarray,
        cell_indices: np.ndarray,
        out: np.ndarray,
        *,
        backend=None,
    ) -> np.ndarray:
        """Pair volumes written into a caller-provided buffer.

        Same contract as :meth:`volume_for_cells` with the result stored in
        ``out`` (shape of ``phi``) and returned.  The fused kernel build
        evaluates volumes directly into the buffer that becomes the binned
        accumulation weights, so subclasses can override this to skip every
        intermediate array; the base implementation simply copies.
        ``backend`` selects the kernel backend (see ``repro.backends``) for
        subclasses with a dispatched evaluation path; the generic base path
        ignores it.
        """
        out[...] = self.volume_for_cells(phi, transition_phases, cell_indices)
        return out

    def swarmer_birth_volume(self) -> float:
        """Volume of a newborn swarmer daughter (``v(0)``)."""
        return 0.4 * self.v0

    def stalked_birth_volume(self, phi_sst: float) -> float:
        """Volume of a newborn stalked daughter (``v(phi_sst)``)."""
        return float(self.volume(phi_sst, phi_sst))


def _broadcast(phi, phi_sst) -> tuple[np.ndarray, np.ndarray, bool]:
    """Broadcast phase and transition-phase inputs and validate their ranges."""
    phi_arr = np.asarray(phi, dtype=float)
    sst_arr = np.asarray(phi_sst, dtype=float)
    scalar = phi_arr.ndim == 0 and sst_arr.ndim == 0
    phi_arr, sst_arr = np.broadcast_arrays(phi_arr, sst_arr)
    phi_arr = np.asarray(phi_arr, dtype=float)
    sst_arr = np.asarray(sst_arr, dtype=float)
    if np.any(phi_arr < -1e-9) or np.any(phi_arr > 1.0 + 1e-9):
        raise ValueError("phase values must lie in [0, 1]")
    if np.any(sst_arr <= 0.0) or np.any(sst_arr >= 1.0):
        raise ValueError("transition phases must lie strictly inside (0, 1)")
    return np.clip(phi_arr, 0.0, 1.0), sst_arr, scalar


class LinearVolumeModel(VolumeModel):
    """Single straight line from ``0.4 V0`` at ``phi = 0`` to ``V0`` at ``phi = 1``."""

    name = "linear"

    def _relative_volume(self, phi: np.ndarray, phi_sst: np.ndarray) -> np.ndarray:
        return 0.4 + 0.6 * phi

    def _relative_derivative(self, phi: np.ndarray, phi_sst: np.ndarray) -> np.ndarray:
        return np.full_like(phi, 0.6)


class PiecewiseLinearVolumeModel(VolumeModel):
    """Two linear pieces hitting ``0.4 V0``, ``0.6 V0`` and ``V0``.

    Respects the 40/60 volume partition at the transition phase but has a
    discontinuous growth rate there (the constraint relaxed by the smooth
    model of eq. 11).
    """

    name = "piecewise_linear"

    def _relative_volume(self, phi: np.ndarray, phi_sst: np.ndarray) -> np.ndarray:
        early = 0.4 + 0.2 * phi / phi_sst
        late = 0.6 + 0.4 * (phi - phi_sst) / (1.0 - phi_sst)
        return np.where(phi < phi_sst, early, late)

    def _relative_derivative(self, phi: np.ndarray, phi_sst: np.ndarray) -> np.ndarray:
        early = 0.2 / phi_sst
        late = 0.4 / (1.0 - phi_sst)
        return np.where(phi < phi_sst, early, late)


class SmoothVolumeModel(VolumeModel):
    """Smooth piecewise-polynomial volume model of eq. 11 in the paper.

    The cubic piece on ``[0, phi_sst)`` and the linear piece on
    ``[phi_sst, 1]`` satisfy

    * ``v(0) = 0.4 V0``, ``v(phi_sst) = 0.6 V0``, ``v(1) = V0`` (the measured
      40/60 volume partition), and
    * ``v'(0) = v'(phi_sst) = v'(1) = 0.4 V0 / (1 - phi_sst)`` (continuity of
      the growth rate across division).
    """

    name = "smooth"

    def __init__(self, v0: float = 1.0) -> None:
        super().__init__(v0)
        # One-slot memo of the per-cell polynomial coefficients (kernel
        # builds call volume_for_cells once per measurement batch with the
        # same transition-phase array).  Keyed by the array *contents* so an
        # in-place edit of the caller's array can never serve stale
        # coefficients; the byte compare is microseconds against the
        # coefficient arithmetic it skips.
        self._coefficient_key: bytes | None = None
        self._coefficient_value: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None

    @staticmethod
    def polynomial_coefficients(
        phi_sst: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Piecewise-polynomial coefficients of eq. 11 for transition phases.

        Returns ``(late_base, linear, quad, cubic)`` such that the relative
        volume is ``0.4 + linear phi + quad phi^2 + cubic phi^3`` before the
        transition and ``late_base + linear phi`` after it.
        """
        s = np.asarray(phi_sst, dtype=float)
        linear = 0.4 / (1.0 - s)
        quad = (0.6 - 1.8 * s) / ((1.0 - s) * s**2)
        cubic = (1.2 * s - 0.4) / ((1.0 - s) * s**3)
        late_base = 1.0 - linear
        return late_base, linear, quad, cubic

    def _cached_coefficients(
        self, transition_phases: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-cell coefficients, recomputed only when the values change."""
        key = np.ascontiguousarray(transition_phases).tobytes()
        if key == self._coefficient_key:
            return self._coefficient_value
        value = self.polynomial_coefficients(transition_phases)
        self._coefficient_key = key
        self._coefficient_value = value
        return value

    def _relative_volume(self, phi: np.ndarray, phi_sst: np.ndarray) -> np.ndarray:
        late_base, linear, quad, cubic = self.polynomial_coefficients(phi_sst)
        early = 0.4 + linear * phi + quad * phi**2 + cubic * phi**3
        late = late_base + linear * phi
        return np.where(phi < phi_sst, early, late)

    def _relative_derivative(self, phi: np.ndarray, phi_sst: np.ndarray) -> np.ndarray:
        _, linear, quad, cubic = self.polynomial_coefficients(phi_sst)
        early = linear + 2.0 * quad * phi + 3.0 * cubic * phi**2
        late = np.broadcast_to(linear, phi.shape)
        return np.where(phi < phi_sst, early, late)

    def volume_for_cells(
        self,
        phi: np.ndarray,
        transition_phases: np.ndarray,
        cell_indices: np.ndarray,
    ) -> np.ndarray:
        """Batched pair evaluation: one Horner pass over gathered coefficients.

        The phase-independent polynomial coefficients are computed once per
        cell (and memoised per transition-phase array, so repeated kernel
        builds over one population history skip even that), then gathered per
        (time, cell) pair and evaluated in a single fused Horner pass.
        Matches the generic ``volume`` path to machine precision (the Horner
        regrouping permutes float rounding at the last ulp).
        """
        phi = np.asarray(phi, dtype=float)
        return self.volume_for_cells_into(
            phi, transition_phases, cell_indices, np.empty(phi.shape)
        )

    def volume_for_cells_into(
        self,
        phi: np.ndarray,
        transition_phases: np.ndarray,
        cell_indices: np.ndarray,
        out: np.ndarray,
        *,
        backend=None,
    ) -> np.ndarray:
        """Fused Horner evaluation straight into a caller-provided buffer.

        The piecewise polynomial is accumulated in place in ``out`` by the
        selected kernel backend (``repro.backends``): the numpy reference
        Horner-evaluates the piece covering the **majority** of the pairs
        over the whole buffer and scatters only the minority piece through
        its boolean mask — no full second-piece array, no ``where``
        allocation — while the compiled backend runs one fused per-pair
        loop.  This is the path the fused kernel build uses: ``out`` is the
        weight buffer of the binned accumulation, so volume evaluation flows
        directly into the histogram pass.
        """
        from repro import backends

        phi = np.asarray(phi, dtype=float)
        s = np.asarray(transition_phases, dtype=float)
        cell_indices = np.asarray(cell_indices)
        if np.any(phi < -1e-9) or np.any(phi > 1.0 + 1e-9):
            raise ValueError("phase values must lie in [0, 1]")
        if np.any(s <= 0.0) or np.any(s >= 1.0):
            raise ValueError("transition phases must lie strictly inside (0, 1)")
        phi = np.clip(phi, 0.0, 1.0)
        late_base, linear, quad, cubic = self._cached_coefficients(s)
        return backends.resolve(backend).smooth_volume_into(
            phi, s, cell_indices, late_base, linear, quad, cubic, self.v0, out
        )


_VOLUME_MODELS = {
    LinearVolumeModel.name: LinearVolumeModel,
    PiecewiseLinearVolumeModel.name: PiecewiseLinearVolumeModel,
    SmoothVolumeModel.name: SmoothVolumeModel,
}


def make_volume_model(name: str, v0: float = 1.0) -> VolumeModel:
    """Construct a volume model by name (``linear``, ``piecewise_linear``, ``smooth``)."""
    try:
        cls = _VOLUME_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown volume model {name!r}; available: {sorted(_VOLUME_MODELS)}"
        ) from None
    return cls(v0=v0)
