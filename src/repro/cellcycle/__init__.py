"""Caulobacter cell-cycle population model (the paper's asynchrony substrate).

This package implements Section 2.1, 2.2 and 3.1 of the paper: the
phase-evolution model of an initially synchronous swarmer culture, the
asymmetric division into swarmer and stalked daughters, the two cell-volume
models (linear baseline and the smooth piecewise-polynomial update), the
Monte-Carlo estimate of the fractional volume density kernel ``Q(phi, t)`` and
the cell-type classification used in the Figure 4 validation.
"""

from repro.cellcycle.parameters import CellCycleParameters
from repro.cellcycle.volume import (
    VolumeModel,
    LinearVolumeModel,
    PiecewiseLinearVolumeModel,
    SmoothVolumeModel,
    make_volume_model,
)
from repro.cellcycle.phase import (
    InitialCondition,
    sample_initial_phases,
    phase_at_time,
    time_to_division,
)
from repro.cellcycle.population import PopulationSimulator, PopulationHistory, PopulationSnapshot
from repro.cellcycle.kernel import VolumeKernel, KernelBuilder
from repro.cellcycle.celltypes import (
    CellType,
    CellTypeBoundaries,
    classify_phases,
    type_fractions,
    CellTypeDistribution,
    simulate_type_distribution,
)

__all__ = [
    "CellCycleParameters",
    "VolumeModel",
    "LinearVolumeModel",
    "PiecewiseLinearVolumeModel",
    "SmoothVolumeModel",
    "make_volume_model",
    "InitialCondition",
    "sample_initial_phases",
    "phase_at_time",
    "time_to_division",
    "PopulationSimulator",
    "PopulationHistory",
    "PopulationSnapshot",
    "VolumeKernel",
    "KernelBuilder",
    "CellType",
    "CellTypeBoundaries",
    "classify_phases",
    "type_fractions",
    "CellTypeDistribution",
    "simulate_type_distribution",
]
