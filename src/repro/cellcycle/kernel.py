"""Monte-Carlo estimation of the fractional volume-density kernel ``Q(phi, t)``.

``Q(phi, t)`` is the fraction of total population volume that sits in a small
phase interval around ``phi`` at experiment time ``t`` (Sec. 2.2, eq. 3).  The
population measurement of a species with synchronous expression ``f(phi)`` is
then the integral transform ``G(t) = \\int Q(phi, t) f(phi) dphi``.

Because cells traverse their cycles at different rates and divide
asymmetrically, ``Q`` has no closed form; as in the paper it is estimated by
simulating a large population and volume-weighted binning of the cell phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import config
from repro.cellcycle.parameters import CellCycleParameters
from repro.cellcycle.phase import InitialCondition
from repro.cellcycle.population import PopulationHistory, PopulationSimulator
from repro.cellcycle.volume import SmoothVolumeModel, VolumeModel
from repro.utils.gridding import bin_centers, bin_edges
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_1d, ensure_2d


@dataclass
class VolumeKernel:
    """Discretised fractional volume-density kernel.

    Attributes
    ----------
    times:
        Measurement times (minutes), shape ``(Nm,)``.
    phase_edges:
        Edges of the phase bins, shape ``(nb + 1,)``.
    density:
        Kernel values ``Q(phi_j, t_m)`` at the bin centres, shape
        ``(Nm, nb)``.  Each row integrates to one:
        ``sum_j density[m, j] * dphi_j == 1``.
    num_cells:
        Number of live cells underlying each row (diagnostic).
    """

    times: np.ndarray
    phase_edges: np.ndarray
    density: np.ndarray
    num_cells: np.ndarray

    def __post_init__(self) -> None:
        self.times = ensure_1d(self.times, "times")
        self.phase_edges = ensure_1d(self.phase_edges, "phase_edges")
        self.density = ensure_2d(self.density, "density")
        self.num_cells = np.asarray(self.num_cells, dtype=int)
        expected = (self.times.size, self.phase_edges.size - 1)
        if self.density.shape != expected:
            raise ValueError(
                f"density has shape {self.density.shape}, expected {expected}"
            )
        # Derived arrays are cached lazily; the kernel data is treated as
        # immutable after construction.
        self._phase_widths: np.ndarray | None = None
        self._weighted_density: np.ndarray | None = None

    @property
    def phase_centers(self) -> np.ndarray:
        """Bin-centre phases, shape ``(nb,)``."""
        return bin_centers(self.phase_edges)

    @property
    def phase_widths(self) -> np.ndarray:
        """Bin widths, shape ``(nb,)`` (cached)."""
        if self._phase_widths is None:
            self._phase_widths = np.diff(self.phase_edges)
        return self._phase_widths

    @property
    def weighted_density(self) -> np.ndarray:
        """Quadrature weights ``density * phase_widths``, shape ``(Nm, nb)``.

        Cached: :meth:`apply` and :meth:`design_matrix` both integrate
        against this product, so it is computed once per kernel instead of on
        every call.
        """
        if self._weighted_density is None:
            self._weighted_density = self.density * self.phase_widths[None, :]
        return self._weighted_density

    @property
    def num_measurements(self) -> int:
        """Number of measurement times."""
        return int(self.times.size)

    @property
    def num_bins(self) -> int:
        """Number of phase bins."""
        return int(self.phase_edges.size - 1)

    def row_integrals(self) -> np.ndarray:
        """Integral of each kernel row over phase (should be one)."""
        return self.density @ self.phase_widths

    def apply(self, profile_values: np.ndarray) -> np.ndarray:
        """Forward-transform a synchronous profile sampled at the bin centres.

        Parameters
        ----------
        profile_values:
            ``f(phi_j)`` at :attr:`phase_centers`, shape ``(nb,)`` or
            ``(nb, k)`` for several species at once.

        Returns
        -------
        numpy.ndarray
            Population values ``G(t_m)`` with shape ``(Nm,)`` or ``(Nm, k)``.
        """
        values = np.asarray(profile_values, dtype=float)
        if values.shape[0] != self.num_bins:
            raise ValueError(
                f"profile has {values.shape[0]} samples but the kernel has {self.num_bins} bins"
            )
        return self.weighted_density @ values

    def apply_function(self, profile: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Forward-transform a callable synchronous profile ``f(phi)``."""
        return self.apply(np.asarray(profile(self.phase_centers), dtype=float))

    def design_matrix(self, basis_matrix: np.ndarray) -> np.ndarray:
        """Design matrix mapping basis coefficients to population measurements.

        Parameters
        ----------
        basis_matrix:
            Basis functions evaluated at the bin centres, shape ``(nb, Nc)``.

        Returns
        -------
        numpy.ndarray
            Matrix ``A`` of shape ``(Nm, Nc)`` with
            ``A[m, i] = \\int Q(phi, t_m) psi_i(phi) dphi``.
        """
        basis_matrix = ensure_2d(basis_matrix, "basis_matrix")
        if basis_matrix.shape[0] != self.num_bins:
            raise ValueError("basis_matrix rows must match the number of phase bins")
        return self.weighted_density @ basis_matrix

    def restrict(self, indices: np.ndarray) -> "VolumeKernel":
        """Kernel restricted to a subset of measurement times (for cross-validation)."""
        indices = np.asarray(indices, dtype=int)
        return VolumeKernel(
            times=self.times[indices],
            phase_edges=self.phase_edges.copy(),
            density=self.density[indices],
            num_cells=self.num_cells[indices],
        )


def _uniform_bin_indices(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Bin index of each value in a uniform-edge grid.

    Matches ``searchsorted(edges, values, "right") - 1`` clipped to the valid
    range (i.e. left-closed bins with the last bin right-closed, as in
    ``np.histogram``) but uses direct index arithmetic with a +/-1 boundary
    fix-up, which is considerably faster than a binary search per value.
    Dispatches to the active kernel backend (``repro.backends``); the numpy
    reference implementation lives in
    :meth:`repro.backends.numpy_backend.NumpyBackend.uniform_bin_indices`.
    """
    from repro import backends

    return backends.active_backend().uniform_bin_indices(values, edges)


class KernelBuilder:
    """Builds :class:`VolumeKernel` objects by population simulation.

    Parameters
    ----------
    parameters:
        Cell-cycle parameters; defaults to the paper's Caulobacter values.
    volume_model:
        Volume model; defaults to the paper's smooth model (Sec. 3.1).
    initial_condition:
        Initial synchrony of the culture; defaults to the synchronised
        swarmer protocol.
    num_cells:
        Number of founder cells in the Monte-Carlo simulation.
    phase_bins:
        Number of equal-width phase bins.
    smoothing_window:
        Odd width (in bins) of a moving-average smoother applied to each
        kernel row to damp Monte-Carlo noise; ``1`` disables smoothing.
    backend:
        Kernel backend for the binning/volume/smoothing inner loops (a
        ``repro.backends`` registry name or instance); ``None`` uses the
        process-wide active backend.  Overridable per call on
        :meth:`build` / :meth:`build_from_history`.
    """

    def __init__(
        self,
        parameters: CellCycleParameters | None = None,
        volume_model: VolumeModel | None = None,
        initial_condition: InitialCondition = InitialCondition.SYNCHRONIZED_SWARMER,
        *,
        num_cells: int = config.DEFAULT_POPULATION_SIZE,
        phase_bins: int = config.DEFAULT_PHASE_BINS,
        smoothing_window: int = 3,
        backend: str | None = None,
    ) -> None:
        self.parameters = parameters if parameters is not None else CellCycleParameters()
        self.volume_model = volume_model if volume_model is not None else SmoothVolumeModel()
        self.initial_condition = initial_condition
        self.num_cells = int(num_cells)
        self.phase_bins = int(phase_bins)
        self.smoothing_window = int(smoothing_window)
        self.backend = backend
        if self.num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        if self.phase_bins < 2:
            raise ValueError("phase_bins must be >= 2")
        if self.smoothing_window < 1 or self.smoothing_window % 2 == 0:
            raise ValueError("smoothing_window must be a positive odd integer")

    def simulate(self, t_end: float, rng: SeedLike = None) -> PopulationHistory:
        """Run the underlying population simulation up to ``t_end``."""
        simulator = PopulationSimulator(
            self.parameters, self.volume_model, self.initial_condition
        )
        return simulator.run(self.num_cells, t_end, rng)

    def build(
        self, times: np.ndarray, rng: SeedLike = None, *, backend: str | None = None
    ) -> VolumeKernel:
        """Estimate the kernel at the given measurement ``times``."""
        times = ensure_1d(times, "times")
        if np.any(times < 0):
            raise ValueError("measurement times must be non-negative")
        generator = as_generator(rng)
        horizon = float(np.max(times)) if np.max(times) > 0 else 1.0
        simulator = PopulationSimulator(
            self.parameters, self.volume_model, self.initial_condition
        )
        history = simulator.run(self.num_cells, horizon, generator)
        return self.build_from_history(history, times, simulator, backend=backend)

    def build_from_history(
        self,
        history: PopulationHistory,
        times: np.ndarray,
        simulator: PopulationSimulator | None = None,
        *,
        backend: str | None = None,
    ) -> VolumeKernel:
        """Estimate the kernel from an existing population history.

        All measurement times are processed in one vectorized pass: the
        birth/division interval of every cell is located in the sorted time
        grid with ``searchsorted`` (instead of a full-history alive mask per
        time), and the volume-weighted phase histograms of every snapshot are
        accumulated with a single ``bincount`` over (time, bin) pairs.  The
        volume evaluation is **fused** into that accumulation: the memoised
        per-cell polynomial coefficients are Horner-evaluated directly into
        the ``bincount`` weight buffer
        (:meth:`~repro.cellcycle.volume.VolumeModel.volume_for_cells_into`),
        and the bin indices are turned into flat (time, bin) keys in place —
        no intermediate volume array, no separate Horner and binning stages.
        The binning, volume and smoothing inner loops run on the selected
        kernel backend (per-call ``backend=``, else the builder's, else the
        process-wide active one — see ``repro.backends``).
        """
        from repro import backends

        kernel_backend = backends.resolve(
            backend if backend is not None else self.backend
        )
        times = ensure_1d(times, "times")
        if np.any(times < 0):
            raise ValueError(f"time must be non-negative, got {float(times.min())}")
        if simulator is None:
            simulator = PopulationSimulator(
                self.parameters, self.volume_model, self.initial_condition
            )
        edges = bin_edges(self.phase_bins)
        widths = np.diff(edges)
        num_times = times.size
        num_bins = self.phase_bins

        order = np.argsort(times, kind="stable")
        sorted_times = times[order]
        time_idx, cell_idx, phases = history.phases_at_many(sorted_times)

        counts_sorted = np.bincount(time_idx, minlength=num_times)
        if np.any(counts_sorted == 0):
            empty = sorted_times[int(np.argmin(counts_sorted > 0))]
            raise RuntimeError(f"no live cells at time {empty}; increase num_cells")

        # Fused accumulation: bin each pair, then evaluate the (possibly
        # caller-supplied) volume model straight into the weight buffer of
        # the histogram pass.  The bin indices double as the flat (time, bin)
        # keys after an in-place shift by the snapshot offset.
        keys = kernel_backend.uniform_bin_indices(phases, edges)
        keys += time_idx * num_bins
        weights = simulator.volume_model.volume_for_cells_into(
            phases,
            history.transition_phases,
            cell_idx,
            np.empty(phases.shape),
            backend=kernel_backend,
        )
        histograms = kernel_backend.weighted_bincount(
            keys, weights, num_times * num_bins
        ).reshape(num_times, num_bins)
        # Every pair lands in exactly one bin, so the per-time total volume
        # is just the histogram row sum -- no second bincount pass needed.
        total_volume = histograms.sum(axis=1)
        rows = histograms / (total_volume[:, None] * widths[None, :])

        density = np.zeros((num_times, num_bins))
        counts = np.zeros(num_times, dtype=int)
        density[order] = self._smooth_rows(rows, widths, backend=kernel_backend)
        counts[order] = counts_sorted
        return VolumeKernel(
            times=times.copy(), phase_edges=edges, density=density, num_cells=counts
        )

    def _smooth_rows(
        self, rows: np.ndarray, widths: np.ndarray, *, backend=None
    ) -> np.ndarray:
        """Moving-average smoothing of all kernel rows in one vectorized pass.

        Equivalent to applying :meth:`_smooth_row` per row (up to float
        rounding of the sliding-sum formulation): edge-padded moving average
        via a cumulative sum, then per-row renormalisation to preserve each
        row's integral.  Rows whose smoothed integral degenerates to zero are
        kept unsmoothed, matching the per-row guard.  The pass runs on the
        selected kernel backend (``repro.backends``).
        """
        if self.smoothing_window == 1:
            return rows
        from repro import backends

        return backends.resolve(
            backend if backend is not None else self.backend
        ).smooth_rows(rows, widths, self.smoothing_window)

    def _smooth_row(self, row: np.ndarray, widths: np.ndarray) -> np.ndarray:
        """Moving-average smoothing of one kernel row, preserving its integral."""
        if self.smoothing_window == 1:
            return row
        half = self.smoothing_window // 2
        padded = np.pad(row, half, mode="edge")
        window = np.ones(self.smoothing_window) / self.smoothing_window
        smoothed = np.convolve(padded, window, mode="valid")
        integral = smoothed @ widths
        if integral <= 0:
            return row
        return smoothed / integral
